// Schedule explorer: feed a workload, a schedule and an allocation; the
// tool materializes the schedule, lists every dependency, draws SeG(s),
// decides conflict serializability, and explains which allocations allow
// the schedule — an interactive version of the paper's Section 2.
//
// Usage:
//   $ ./schedule_explorer                # Built-in demo (paper Figure 2)
//   $ ./schedule_explorer "T1: R[x] W[y]
//     T2: R[y] W[x]" "R1[x] R2[y] W2[x] C2 W1[y] C1" "T1=SI T2=SI"
#include <cstdio>

#include "iso/allowed.h"
#include "iso/materialize.h"
#include "schedule/serializability.h"
#include "schedule/serialization_graph.h"
#include "txn/parser.h"

namespace {

constexpr const char* kDemoWorkload = R"(
  T1: R[t]
  T2: W[t] R[v]
  T3: W[v]
  T4: R[t] R[v] W[t]
)";
constexpr const char* kDemoOrder =
    "W2[t] R4[t] W3[v] C3 R2[v] R1[t] C2 R4[v] W4[t] C4 C1";
constexpr const char* kDemoAllocation = "T2=SI T4=RC";

}  // namespace

int main(int argc, char** argv) {
  using namespace mvrob;

  const char* workload_text = argc > 1 ? argv[1] : kDemoWorkload;
  const char* order_text = argc > 2 ? argv[2] : kDemoOrder;
  const char* alloc_text = argc > 3 ? argv[3] : kDemoAllocation;

  StatusOr<TransactionSet> txns = ParseTransactionSet(workload_text);
  if (!txns.ok()) {
    std::fprintf(stderr, "workload: %s\n", txns.status().ToString().c_str());
    return 1;
  }
  StatusOr<std::vector<OpRef>> order = ParseScheduleOrder(*txns, order_text);
  if (!order.ok()) {
    std::fprintf(stderr, "schedule: %s\n", order.status().ToString().c_str());
    return 1;
  }
  StatusOr<Allocation> alloc =
      ParseAllocation(*txns, alloc_text, IsolationLevel::kSI);
  if (!alloc.ok()) {
    std::fprintf(stderr, "allocation: %s\n",
                 alloc.status().ToString().c_str());
    return 1;
  }

  // Materialize: under {RC, SI, SSI}, the version order and version
  // function are determined by the interleaving and the allocation.
  StatusOr<Schedule> schedule =
      MaterializeSchedule(&*txns, *order, *alloc);
  if (!schedule.ok()) {
    std::fprintf(stderr, "materialize: %s\n",
                 schedule.status().ToString().c_str());
    return 1;
  }

  std::printf("workload:\n%s\n", txns->ToString().c_str());
  std::printf("allocation: %s\n\n", alloc->ToString(*txns).c_str());
  std::printf("schedule (reads annotated with the version observed):\n  %s\n",
              schedule->ToString(/*with_versions=*/true).c_str());

  std::printf("\ndependencies (the edges of SeG(s)):\n");
  SerializationGraph graph = SerializationGraph::Build(*schedule);
  for (const Dependency& edge : graph.edges()) {
    std::printf("  %s\n", FormatDependency(*txns, edge).c_str());
  }

  if (auto cycle = graph.FindCycle(); cycle.has_value()) {
    std::printf("\nNOT conflict serializable; cycle:");
    for (const Dependency& edge : *cycle) {
      std::printf(" %s", txns->txn(edge.from).name().c_str());
    }
    std::printf(" -> %s\n", txns->txn(cycle->front().from).name().c_str());
  } else {
    std::printf("\nconflict serializable; order:");
    std::optional<std::vector<TxnId>> witness =
        SerializationWitness(*schedule);
    for (TxnId t : *witness) {
      std::printf(" %s", txns->txn(t).name().c_str());
    }
    std::printf("\n");
  }

  AllowedCheckResult allowed = CheckAllowedUnder(*schedule, *alloc);
  std::printf("\nallowed under the allocation: %s\n",
              allowed.allowed ? "yes" : "no");
  for (const std::string& violation : allowed.violations) {
    std::printf("  - %s\n", violation.c_str());
  }
  return 0;
}
