// Mixed execution: runs the auction workload on the MVCC engine under its
// optimal mixed allocation and shows that (a) the committed trace is
// always serializable, and (b) running everything at SI instead admits a
// genuine write-skew anomaly — the end-to-end story of the paper.
//
//   $ ./mixed_execution [seed]
#include <cstdio>
#include <cstdlib>

#include "core/optimal_allocation.h"
#include "iso/allowed.h"
#include "mvcc/driver.h"
#include "mvcc/trace.h"
#include "schedule/serializability.h"
#include "workloads/auction.h"

namespace {

void RunAndReport(const mvrob::TransactionSet& programs,
                  const mvrob::Allocation& alloc, const char* label,
                  uint64_t seed) {
  using namespace mvrob;
  Engine engine(programs.num_objects());
  RandomRunOptions options;
  options.concurrency = 4;
  options.seed = seed;
  DriverReport report = RunRandom(engine, programs, alloc, options);

  StatusOr<ExportedRun> run = ExportCommittedRun(engine, programs);
  if (!run.ok()) {
    std::fprintf(stderr, "export: %s\n", run.status().ToString().c_str());
    return;
  }
  StatusOr<Schedule> schedule = run->BuildSchedule();
  if (!schedule.ok()) {
    std::fprintf(stderr, "schedule: %s\n",
                 schedule.status().ToString().c_str());
    return;
  }
  std::printf("%-16s commits=%llu ssi_aborts=%llu fuw_aborts=%llu "
              "serializable=%s\n",
              label, static_cast<unsigned long long>(report.committed),
              static_cast<unsigned long long>(engine.stats().aborts_ssi),
              static_cast<unsigned long long>(
                  engine.stats().aborts_write_conflict),
              IsConflictSerializable(*schedule) ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvrob;
  uint64_t base_seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 0;

  AuctionParams params;
  params.items = 2;
  params.bidders = 3;
  Workload auction = MakeAuction(params);
  std::printf("workload: %s (%zu transactions)\n",
              auction.description.c_str(), auction.txns.size());

  Allocation optimal = ComputeOptimalAllocation(auction.txns).allocation;
  std::printf("optimal allocation: RC=%zu SI=%zu SSI=%zu\n\n",
              optimal.CountAt(IsolationLevel::kRC),
              optimal.CountAt(IsolationLevel::kSI),
              optimal.CountAt(IsolationLevel::kSSI));

  std::printf("20 random executions per allocation:\n");
  for (uint64_t seed = base_seed; seed < base_seed + 20; ++seed) {
    RunAndReport(auction.txns, optimal, "optimal mixed", seed);
  }
  std::printf("\nsame executions with every transaction at SI "
              "(not robust -> anomalies possible):\n");
  for (uint64_t seed = base_seed; seed < base_seed + 20; ++seed) {
    RunAndReport(auction.txns, Allocation::AllSI(auction.txns.size()),
                 "all SI", seed);
  }
  return 0;
}
