// Evolving workload: operate the allocator the way a deployment would —
// programs join over time (incremental re-allocation with warm starts),
// some transactions are pinned by operational constraints, and every level
// assignment comes with an explanation.
//
//   $ ./evolving_workload
#include <cstdio>

#include "core/constrained_allocation.h"
#include "core/explain.h"
#include "core/incremental.h"

namespace {

void ShowState(const mvrob::IncrementalAllocator& allocator) {
  using namespace mvrob;
  std::printf("  workload now:\n");
  for (TxnId t = 0; t < allocator.txns().size(); ++t) {
    std::printf("    %-10s -> %s\n", allocator.txns().txn(t).name().c_str(),
                IsolationLevelToString(allocator.allocation().level(t)));
  }
}

}  // namespace

int main() {
  using namespace mvrob;
  IncrementalAllocator allocator;
  ObjectId checking = allocator.InternObject("checking");
  ObjectId savings = allocator.InternObject("savings");
  ObjectId audit_log = allocator.InternObject("audit_log");

  std::printf("1. The deposit program ships first:\n");
  (void)allocator.AddTransaction(
      "Deposit", {Operation::Read(checking), Operation::Write(checking)});
  ShowState(allocator);

  std::printf("\n2. A second deposit path joins (lost-update pair):\n");
  (void)allocator.AddTransaction(
      "Deposit2", {Operation::Read(checking), Operation::Write(checking)});
  ShowState(allocator);

  std::printf("\n3. Withdrawals with an overdraft check join (write skew):\n");
  (void)allocator.AddTransaction(
      "WithdrawC", {Operation::Read(checking), Operation::Read(savings),
                    Operation::Write(checking)});
  (void)allocator.AddTransaction(
      "WithdrawS", {Operation::Read(checking), Operation::Read(savings),
                    Operation::Write(savings)});
  ShowState(allocator);
  std::printf("  (%llu robustness checks so far — warm starts skip settled "
              "programs)\n",
              static_cast<unsigned long long>(allocator.checks_performed()));

  std::printf("\n4. Why can nothing run lower?\n");
  StatusOr<AllocationExplanation> explanation =
      ExplainAllocation(allocator.txns(), allocator.allocation());
  if (explanation.ok()) {
    std::printf("%s", explanation->ToString(allocator.txns()).c_str());
  }

  std::printf("\n5. Operations insists the audit logger stays at RC\n");
  std::printf("   (it must never retry); is that safe?\n");
  IncrementalAllocator with_logger = allocator;
  (void)with_logger.AddTransaction("AuditLog",
                                   {Operation::Write(audit_log)});
  AllocationBounds bounds = AllocationBounds::Free(with_logger.txns().size());
  bounds.Pin(with_logger.txns().FindTransaction("AuditLog"),
             IsolationLevel::kRC);
  StatusOr<ConstrainedAllocationResult> constrained =
      ComputeConstrainedAllocation(with_logger.txns(), bounds);
  if (constrained.ok() && constrained->feasible) {
    std::printf("   yes: %s\n",
                constrained->allocation->ToString(with_logger.txns()).c_str());
  } else if (constrained.ok()) {
    std::printf("   no: %s\n",
                constrained->counterexample->ToString(with_logger.txns())
                    .c_str());
  }
  return 0;
}
