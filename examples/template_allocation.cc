// Template allocation: the per-*program* view a DBA actually configures.
// Transactions in real systems come from a fixed set of parameterized
// programs (Section 6.3.1 of the paper); this example computes one
// isolation level per program such that EVERY instantiation of the
// workload is serializable, and prints the SET TRANSACTION statements.
//
//   $ ./template_allocation            # Built-in workloads
//   $ ./template_allocation my.tpl     # Your own template file
#include <cstdio>
#include <fstream>
#include <sstream>

#include "templates/library.h"
#include "templates/parser.h"
#include "templates/robustness.h"

namespace {

void Analyze(const char* title, const mvrob::TemplateSet& set) {
  using namespace mvrob;
  std::printf("\n=== %s ===\n%s", title, set.ToString().c_str());

  StatusOr<TemplateAllocationResult> result =
      ComputeOptimalTemplateAllocation(set);
  if (!result.ok()) {
    std::fprintf(stderr, "allocation failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  std::printf("optimal per-program allocation:\n");
  for (size_t t = 0; t < set.size(); ++t) {
    const char* level = IsolationLevelToString(result->levels[t]);
    const char* sql = result->levels[t] == IsolationLevel::kRC
                          ? "READ COMMITTED"
                          : (result->levels[t] == IsolationLevel::kSI
                                 ? "REPEATABLE READ"
                                 : "SERIALIZABLE");
    std::printf("  %-16s -> %-3s  (SET TRANSACTION ISOLATION LEVEL %s)\n",
                set.tmpl(t).name().c_str(), level, sql);
  }
  StatusOr<TemplateExplanation> explanation =
      ExplainTemplateAllocation(set, result->levels);
  if (explanation.ok()) {
    std::printf("why nothing can run lower:\n%s",
                explanation->ToString(set).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvrob;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    StatusOr<TemplateSet> set = ParseTemplateSet(text.str());
    if (!set.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   set.status().ToString().c_str());
      return 1;
    }
    Analyze(argv[1], *set);
    return 0;
  }
  Analyze("TPC-C", TpccTemplates());
  Analyze("SmallBank", SmallBankTemplates());
  Analyze("Auction", AuctionTemplates());
  return 0;
}
