// TPC-C allocation: reproduces the folklore result from the paper's
// introduction — TPC-C is robust against SI (so PostgreSQL's SERIALIZABLE
// monitoring buys nothing for it) but not against RC — and derives the
// per-transaction allocation a DBA would configure.
//
//   $ ./tpcc_allocation [warehouses [districts [rounds]]]
#include <cstdio>
#include <cstdlib>

#include "core/optimal_allocation.h"
#include "core/rc_si_allocation.h"
#include "core/robustness.h"
#include "workloads/tpcc.h"

int main(int argc, char** argv) {
  using namespace mvrob;

  TpccParams params;
  if (argc > 1) params.warehouses = std::atoi(argv[1]);
  if (argc > 2) params.districts_per_warehouse = std::atoi(argv[2]);
  if (argc > 3) params.rounds = std::atoi(argv[3]);

  Workload tpcc = MakeTpcc(params);
  std::printf("%s\n", tpcc.description.c_str());
  std::printf("transactions: %zu over %zu column-granularity objects\n\n",
              tpcc.txns.size(), tpcc.txns.num_objects());

  std::printf("robust against A_RC : %s\n",
              CheckRobustnessRC(tpcc.txns).robust ? "yes" : "no");
  RobustnessResult si = CheckRobustnessSI(tpcc.txns);
  std::printf("robust against A_SI : %s   <- the TPC-C folklore result\n",
              si.robust ? "yes" : "no");

  RobustnessResult rc = CheckRobustnessRC(tpcc.txns);
  if (!rc.robust) {
    std::printf("\nwhy RC fails: %s\n",
                rc.counterexample->ToString(tpcc.txns).c_str());
  }

  OptimalAllocationResult optimal = ComputeOptimalAllocation(tpcc.txns);
  std::printf("\noptimal {RC,SI,SSI} allocation (%llu robustness checks):\n",
              static_cast<unsigned long long>(optimal.robustness_checks));
  std::printf("  RC=%zu SI=%zu SSI=%zu\n",
              optimal.allocation.CountAt(IsolationLevel::kRC),
              optimal.allocation.CountAt(IsolationLevel::kSI),
              optimal.allocation.CountAt(IsolationLevel::kSSI));

  RcSiAllocationResult oracle_style = ComputeOptimalRcSiAllocation(tpcc.txns);
  std::printf("\nOracle-style {RC,SI} setting: %s\n",
              oracle_style.allocatable
                  ? "a robust allocation exists (run everything at SI)"
                  : "NO robust allocation exists");
  return 0;
}
