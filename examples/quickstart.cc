// Quickstart: declare a workload, ask whether an allocation is robust, and
// compute the optimal allocation.
//
//   $ ./quickstart
//
// The workload is the classic write-skew pair plus a read-only auditor —
// the smallest example where the answers are interesting.
#include <cstdio>

#include "core/optimal_allocation.h"
#include "core/robustness.h"
#include "core/split_schedule.h"
#include "txn/parser.h"

int main() {
  using namespace mvrob;

  // 1. Declare the transactions. R[x]/W[x] read and write named objects;
  //    the commit is implicit.
  StatusOr<TransactionSet> parsed = ParseTransactionSet(R"(
    Withdraw1: R[checking] R[savings] W[checking]
    Withdraw2: R[checking] R[savings] W[savings]
    Audit:     R[checking] R[savings]
  )");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const TransactionSet& txns = *parsed;
  std::printf("workload:\n%s\n", txns.ToString().c_str());

  // 2. Is it safe to run everything under snapshot isolation?
  RobustnessResult against_si = CheckRobustness(
      txns, Allocation::AllSI(txns.size()));
  std::printf("robust against A_SI? %s\n",
              against_si.robust ? "yes" : "no");
  if (!against_si.robust) {
    // Algorithm 1 hands back a concrete counterexample schedule.
    std::printf("  counterexample: %s\n",
                against_si.counterexample->ToString(txns).c_str());
    StatusOr<Schedule> witness = BuildSplitSchedule(
        txns, Allocation::AllSI(txns.size()), *against_si.counterexample);
    std::printf("  witness schedule: %s\n", witness->ToString().c_str());
  }

  // 3. Compute the cheapest safe allocation over {RC, SI, SSI}.
  OptimalAllocationResult optimal = ComputeOptimalAllocation(txns);
  std::printf("\noptimal robust allocation:\n  %s\n",
              optimal.allocation.ToString(txns).c_str());
  std::printf("(every schedule the allocation admits is conflict "
              "serializable,\n and no transaction can run any lower.)\n");
  return 0;
}
