file(REMOVE_RECURSE
  "CMakeFiles/serializability_property_test.dir/serializability_property_test.cc.o"
  "CMakeFiles/serializability_property_test.dir/serializability_property_test.cc.o.d"
  "serializability_property_test"
  "serializability_property_test.pdb"
  "serializability_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serializability_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
