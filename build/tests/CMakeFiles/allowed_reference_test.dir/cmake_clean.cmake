file(REMOVE_RECURSE
  "CMakeFiles/allowed_reference_test.dir/allowed_reference_test.cc.o"
  "CMakeFiles/allowed_reference_test.dir/allowed_reference_test.cc.o.d"
  "allowed_reference_test"
  "allowed_reference_test.pdb"
  "allowed_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allowed_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
