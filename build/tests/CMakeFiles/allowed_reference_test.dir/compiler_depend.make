# Empty compiler generated dependencies file for allowed_reference_test.
# This may be replaced when dependencies are built.
