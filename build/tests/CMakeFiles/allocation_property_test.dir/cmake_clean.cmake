file(REMOVE_RECURSE
  "CMakeFiles/allocation_property_test.dir/allocation_property_test.cc.o"
  "CMakeFiles/allocation_property_test.dir/allocation_property_test.cc.o.d"
  "allocation_property_test"
  "allocation_property_test.pdb"
  "allocation_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
