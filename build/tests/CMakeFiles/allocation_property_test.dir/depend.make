# Empty dependencies file for allocation_property_test.
# This may be replaced when dependencies are built.
