# Empty compiler generated dependencies file for constrained_test.
# This may be replaced when dependencies are built.
