# Empty compiler generated dependencies file for general_regime_test.
# This may be replaced when dependencies are built.
