file(REMOVE_RECURSE
  "CMakeFiles/general_regime_test.dir/general_regime_test.cc.o"
  "CMakeFiles/general_regime_test.dir/general_regime_test.cc.o.d"
  "general_regime_test"
  "general_regime_test.pdb"
  "general_regime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_regime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
