# Empty dependencies file for robustness_property_test.
# This may be replaced when dependencies are built.
