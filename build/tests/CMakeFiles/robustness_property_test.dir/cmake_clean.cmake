file(REMOVE_RECURSE
  "CMakeFiles/robustness_property_test.dir/robustness_property_test.cc.o"
  "CMakeFiles/robustness_property_test.dir/robustness_property_test.cc.o.d"
  "robustness_property_test"
  "robustness_property_test.pdb"
  "robustness_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
