
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/edge_cases_test.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/edge_cases_test.dir/edge_cases_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvrob_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_templates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_mvcc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
