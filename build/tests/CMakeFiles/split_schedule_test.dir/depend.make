# Empty dependencies file for split_schedule_test.
# This may be replaced when dependencies are built.
