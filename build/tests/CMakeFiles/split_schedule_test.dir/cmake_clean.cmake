file(REMOVE_RECURSE
  "CMakeFiles/split_schedule_test.dir/split_schedule_test.cc.o"
  "CMakeFiles/split_schedule_test.dir/split_schedule_test.cc.o.d"
  "split_schedule_test"
  "split_schedule_test.pdb"
  "split_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
