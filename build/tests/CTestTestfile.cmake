# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/serializability_property_test[1]_include.cmake")
include("/root/repo/build/tests/iso_test[1]_include.cmake")
include("/root/repo/build/tests/allowed_reference_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/split_schedule_test[1]_include.cmake")
include("/root/repo/build/tests/constrained_test[1]_include.cmake")
include("/root/repo/build/tests/general_regime_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_property_test[1]_include.cmake")
include("/root/repo/build/tests/allocation_property_test[1]_include.cmake")
include("/root/repo/build/tests/templates_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/mvcc_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_property_test[1]_include.cmake")
