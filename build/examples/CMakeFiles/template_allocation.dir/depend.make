# Empty dependencies file for template_allocation.
# This may be replaced when dependencies are built.
