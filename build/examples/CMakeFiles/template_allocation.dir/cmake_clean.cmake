file(REMOVE_RECURSE
  "CMakeFiles/template_allocation.dir/template_allocation.cc.o"
  "CMakeFiles/template_allocation.dir/template_allocation.cc.o.d"
  "template_allocation"
  "template_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
