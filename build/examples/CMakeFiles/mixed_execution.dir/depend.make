# Empty dependencies file for mixed_execution.
# This may be replaced when dependencies are built.
