file(REMOVE_RECURSE
  "CMakeFiles/mixed_execution.dir/mixed_execution.cc.o"
  "CMakeFiles/mixed_execution.dir/mixed_execution.cc.o.d"
  "mixed_execution"
  "mixed_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
