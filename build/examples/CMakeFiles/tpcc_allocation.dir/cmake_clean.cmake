file(REMOVE_RECURSE
  "CMakeFiles/tpcc_allocation.dir/tpcc_allocation.cc.o"
  "CMakeFiles/tpcc_allocation.dir/tpcc_allocation.cc.o.d"
  "tpcc_allocation"
  "tpcc_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
