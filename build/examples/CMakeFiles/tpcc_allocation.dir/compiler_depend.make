# Empty compiler generated dependencies file for tpcc_allocation.
# This may be replaced when dependencies are built.
