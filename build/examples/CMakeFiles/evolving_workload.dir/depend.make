# Empty dependencies file for evolving_workload.
# This may be replaced when dependencies are built.
