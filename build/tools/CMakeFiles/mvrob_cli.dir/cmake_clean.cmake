file(REMOVE_RECURSE
  "CMakeFiles/mvrob_cli.dir/mvrob_main.cc.o"
  "CMakeFiles/mvrob_cli.dir/mvrob_main.cc.o.d"
  "mvrob"
  "mvrob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
