# Empty compiler generated dependencies file for mvrob_cli.
# This may be replaced when dependencies are built.
