# Empty dependencies file for bench_mvcc_throughput.
# This may be replaced when dependencies are built.
