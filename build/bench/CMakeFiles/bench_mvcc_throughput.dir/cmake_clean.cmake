file(REMOVE_RECURSE
  "CMakeFiles/bench_mvcc_throughput.dir/bench_mvcc_throughput.cc.o"
  "CMakeFiles/bench_mvcc_throughput.dir/bench_mvcc_throughput.cc.o.d"
  "bench_mvcc_throughput"
  "bench_mvcc_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mvcc_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
