file(REMOVE_RECURSE
  "CMakeFiles/bench_allocation_lattice.dir/bench_allocation_lattice.cc.o"
  "CMakeFiles/bench_allocation_lattice.dir/bench_allocation_lattice.cc.o.d"
  "bench_allocation_lattice"
  "bench_allocation_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocation_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
