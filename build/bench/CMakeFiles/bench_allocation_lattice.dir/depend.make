# Empty dependencies file for bench_allocation_lattice.
# This may be replaced when dependencies are built.
