# Empty compiler generated dependencies file for bench_anomaly_rates.
# This may be replaced when dependencies are built.
