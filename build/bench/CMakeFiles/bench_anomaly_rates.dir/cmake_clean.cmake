file(REMOVE_RECURSE
  "CMakeFiles/bench_anomaly_rates.dir/bench_anomaly_rates.cc.o"
  "CMakeFiles/bench_anomaly_rates.dir/bench_anomaly_rates.cc.o.d"
  "bench_anomaly_rates"
  "bench_anomaly_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anomaly_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
