file(REMOVE_RECURSE
  "CMakeFiles/mvrob_common.dir/common/rng.cc.o"
  "CMakeFiles/mvrob_common.dir/common/rng.cc.o.d"
  "CMakeFiles/mvrob_common.dir/common/status.cc.o"
  "CMakeFiles/mvrob_common.dir/common/status.cc.o.d"
  "CMakeFiles/mvrob_common.dir/common/string_util.cc.o"
  "CMakeFiles/mvrob_common.dir/common/string_util.cc.o.d"
  "libmvrob_common.a"
  "libmvrob_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
