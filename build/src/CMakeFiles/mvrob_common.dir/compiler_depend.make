# Empty compiler generated dependencies file for mvrob_common.
# This may be replaced when dependencies are built.
