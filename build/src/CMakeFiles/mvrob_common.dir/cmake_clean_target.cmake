file(REMOVE_RECURSE
  "libmvrob_common.a"
)
