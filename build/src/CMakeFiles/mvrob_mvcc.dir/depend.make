# Empty dependencies file for mvrob_mvcc.
# This may be replaced when dependencies are built.
