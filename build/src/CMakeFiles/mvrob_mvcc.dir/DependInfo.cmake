
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mvcc/driver.cc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/driver.cc.o" "gcc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/driver.cc.o.d"
  "/root/repo/src/mvcc/engine.cc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/engine.cc.o" "gcc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/engine.cc.o.d"
  "/root/repo/src/mvcc/ssi_tracker.cc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/ssi_tracker.cc.o" "gcc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/ssi_tracker.cc.o.d"
  "/root/repo/src/mvcc/trace.cc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/trace.cc.o" "gcc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/trace.cc.o.d"
  "/root/repo/src/mvcc/version_store.cc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/version_store.cc.o" "gcc" "src/CMakeFiles/mvrob_mvcc.dir/mvcc/version_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvrob_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
