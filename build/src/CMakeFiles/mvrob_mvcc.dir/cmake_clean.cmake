file(REMOVE_RECURSE
  "CMakeFiles/mvrob_mvcc.dir/mvcc/driver.cc.o"
  "CMakeFiles/mvrob_mvcc.dir/mvcc/driver.cc.o.d"
  "CMakeFiles/mvrob_mvcc.dir/mvcc/engine.cc.o"
  "CMakeFiles/mvrob_mvcc.dir/mvcc/engine.cc.o.d"
  "CMakeFiles/mvrob_mvcc.dir/mvcc/ssi_tracker.cc.o"
  "CMakeFiles/mvrob_mvcc.dir/mvcc/ssi_tracker.cc.o.d"
  "CMakeFiles/mvrob_mvcc.dir/mvcc/trace.cc.o"
  "CMakeFiles/mvrob_mvcc.dir/mvcc/trace.cc.o.d"
  "CMakeFiles/mvrob_mvcc.dir/mvcc/version_store.cc.o"
  "CMakeFiles/mvrob_mvcc.dir/mvcc/version_store.cc.o.d"
  "libmvrob_mvcc.a"
  "libmvrob_mvcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_mvcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
