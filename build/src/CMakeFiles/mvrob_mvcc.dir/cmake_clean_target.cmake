file(REMOVE_RECURSE
  "libmvrob_mvcc.a"
)
