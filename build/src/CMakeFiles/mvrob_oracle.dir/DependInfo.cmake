
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oracle/brute_force.cc" "src/CMakeFiles/mvrob_oracle.dir/oracle/brute_force.cc.o" "gcc" "src/CMakeFiles/mvrob_oracle.dir/oracle/brute_force.cc.o.d"
  "/root/repo/src/oracle/exhaustive_allocation.cc" "src/CMakeFiles/mvrob_oracle.dir/oracle/exhaustive_allocation.cc.o" "gcc" "src/CMakeFiles/mvrob_oracle.dir/oracle/exhaustive_allocation.cc.o.d"
  "/root/repo/src/oracle/interleavings.cc" "src/CMakeFiles/mvrob_oracle.dir/oracle/interleavings.cc.o" "gcc" "src/CMakeFiles/mvrob_oracle.dir/oracle/interleavings.cc.o.d"
  "/root/repo/src/oracle/split_enumerator.cc" "src/CMakeFiles/mvrob_oracle.dir/oracle/split_enumerator.cc.o" "gcc" "src/CMakeFiles/mvrob_oracle.dir/oracle/split_enumerator.cc.o.d"
  "/root/repo/src/oracle/statistics.cc" "src/CMakeFiles/mvrob_oracle.dir/oracle/statistics.cc.o" "gcc" "src/CMakeFiles/mvrob_oracle.dir/oracle/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvrob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
