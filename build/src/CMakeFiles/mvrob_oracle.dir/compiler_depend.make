# Empty compiler generated dependencies file for mvrob_oracle.
# This may be replaced when dependencies are built.
