file(REMOVE_RECURSE
  "libmvrob_oracle.a"
)
