file(REMOVE_RECURSE
  "CMakeFiles/mvrob_oracle.dir/oracle/brute_force.cc.o"
  "CMakeFiles/mvrob_oracle.dir/oracle/brute_force.cc.o.d"
  "CMakeFiles/mvrob_oracle.dir/oracle/exhaustive_allocation.cc.o"
  "CMakeFiles/mvrob_oracle.dir/oracle/exhaustive_allocation.cc.o.d"
  "CMakeFiles/mvrob_oracle.dir/oracle/interleavings.cc.o"
  "CMakeFiles/mvrob_oracle.dir/oracle/interleavings.cc.o.d"
  "CMakeFiles/mvrob_oracle.dir/oracle/split_enumerator.cc.o"
  "CMakeFiles/mvrob_oracle.dir/oracle/split_enumerator.cc.o.d"
  "CMakeFiles/mvrob_oracle.dir/oracle/statistics.cc.o"
  "CMakeFiles/mvrob_oracle.dir/oracle/statistics.cc.o.d"
  "libmvrob_oracle.a"
  "libmvrob_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
