file(REMOVE_RECURSE
  "libmvrob_cli_lib.a"
)
