# Empty dependencies file for mvrob_cli_lib.
# This may be replaced when dependencies are built.
