file(REMOVE_RECURSE
  "CMakeFiles/mvrob_cli_lib.dir/cli/cli.cc.o"
  "CMakeFiles/mvrob_cli_lib.dir/cli/cli.cc.o.d"
  "libmvrob_cli_lib.a"
  "libmvrob_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
