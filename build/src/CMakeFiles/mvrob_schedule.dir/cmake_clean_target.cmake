file(REMOVE_RECURSE
  "libmvrob_schedule.a"
)
