
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/anomaly.cc" "src/CMakeFiles/mvrob_schedule.dir/schedule/anomaly.cc.o" "gcc" "src/CMakeFiles/mvrob_schedule.dir/schedule/anomaly.cc.o.d"
  "/root/repo/src/schedule/dependency.cc" "src/CMakeFiles/mvrob_schedule.dir/schedule/dependency.cc.o" "gcc" "src/CMakeFiles/mvrob_schedule.dir/schedule/dependency.cc.o.d"
  "/root/repo/src/schedule/dot.cc" "src/CMakeFiles/mvrob_schedule.dir/schedule/dot.cc.o" "gcc" "src/CMakeFiles/mvrob_schedule.dir/schedule/dot.cc.o.d"
  "/root/repo/src/schedule/schedule.cc" "src/CMakeFiles/mvrob_schedule.dir/schedule/schedule.cc.o" "gcc" "src/CMakeFiles/mvrob_schedule.dir/schedule/schedule.cc.o.d"
  "/root/repo/src/schedule/serializability.cc" "src/CMakeFiles/mvrob_schedule.dir/schedule/serializability.cc.o" "gcc" "src/CMakeFiles/mvrob_schedule.dir/schedule/serializability.cc.o.d"
  "/root/repo/src/schedule/serialization_graph.cc" "src/CMakeFiles/mvrob_schedule.dir/schedule/serialization_graph.cc.o" "gcc" "src/CMakeFiles/mvrob_schedule.dir/schedule/serialization_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvrob_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
