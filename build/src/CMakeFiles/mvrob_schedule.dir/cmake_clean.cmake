file(REMOVE_RECURSE
  "CMakeFiles/mvrob_schedule.dir/schedule/anomaly.cc.o"
  "CMakeFiles/mvrob_schedule.dir/schedule/anomaly.cc.o.d"
  "CMakeFiles/mvrob_schedule.dir/schedule/dependency.cc.o"
  "CMakeFiles/mvrob_schedule.dir/schedule/dependency.cc.o.d"
  "CMakeFiles/mvrob_schedule.dir/schedule/dot.cc.o"
  "CMakeFiles/mvrob_schedule.dir/schedule/dot.cc.o.d"
  "CMakeFiles/mvrob_schedule.dir/schedule/schedule.cc.o"
  "CMakeFiles/mvrob_schedule.dir/schedule/schedule.cc.o.d"
  "CMakeFiles/mvrob_schedule.dir/schedule/serializability.cc.o"
  "CMakeFiles/mvrob_schedule.dir/schedule/serializability.cc.o.d"
  "CMakeFiles/mvrob_schedule.dir/schedule/serialization_graph.cc.o"
  "CMakeFiles/mvrob_schedule.dir/schedule/serialization_graph.cc.o.d"
  "libmvrob_schedule.a"
  "libmvrob_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
