# Empty compiler generated dependencies file for mvrob_schedule.
# This may be replaced when dependencies are built.
