# Empty compiler generated dependencies file for mvrob_workloads.
# This may be replaced when dependencies are built.
