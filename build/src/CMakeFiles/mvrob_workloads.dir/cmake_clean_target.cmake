file(REMOVE_RECURSE
  "libmvrob_workloads.a"
)
