file(REMOVE_RECURSE
  "CMakeFiles/mvrob_workloads.dir/workloads/auction.cc.o"
  "CMakeFiles/mvrob_workloads.dir/workloads/auction.cc.o.d"
  "CMakeFiles/mvrob_workloads.dir/workloads/registry.cc.o"
  "CMakeFiles/mvrob_workloads.dir/workloads/registry.cc.o.d"
  "CMakeFiles/mvrob_workloads.dir/workloads/smallbank.cc.o"
  "CMakeFiles/mvrob_workloads.dir/workloads/smallbank.cc.o.d"
  "CMakeFiles/mvrob_workloads.dir/workloads/stats.cc.o"
  "CMakeFiles/mvrob_workloads.dir/workloads/stats.cc.o.d"
  "CMakeFiles/mvrob_workloads.dir/workloads/synthetic.cc.o"
  "CMakeFiles/mvrob_workloads.dir/workloads/synthetic.cc.o.d"
  "CMakeFiles/mvrob_workloads.dir/workloads/tpcc.cc.o"
  "CMakeFiles/mvrob_workloads.dir/workloads/tpcc.cc.o.d"
  "CMakeFiles/mvrob_workloads.dir/workloads/voter.cc.o"
  "CMakeFiles/mvrob_workloads.dir/workloads/voter.cc.o.d"
  "CMakeFiles/mvrob_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/mvrob_workloads.dir/workloads/workload.cc.o.d"
  "CMakeFiles/mvrob_workloads.dir/workloads/ycsb.cc.o"
  "CMakeFiles/mvrob_workloads.dir/workloads/ycsb.cc.o.d"
  "libmvrob_workloads.a"
  "libmvrob_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
