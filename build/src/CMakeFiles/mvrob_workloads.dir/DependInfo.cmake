
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/auction.cc" "src/CMakeFiles/mvrob_workloads.dir/workloads/auction.cc.o" "gcc" "src/CMakeFiles/mvrob_workloads.dir/workloads/auction.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/mvrob_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/mvrob_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/smallbank.cc" "src/CMakeFiles/mvrob_workloads.dir/workloads/smallbank.cc.o" "gcc" "src/CMakeFiles/mvrob_workloads.dir/workloads/smallbank.cc.o.d"
  "/root/repo/src/workloads/stats.cc" "src/CMakeFiles/mvrob_workloads.dir/workloads/stats.cc.o" "gcc" "src/CMakeFiles/mvrob_workloads.dir/workloads/stats.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/mvrob_workloads.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/mvrob_workloads.dir/workloads/synthetic.cc.o.d"
  "/root/repo/src/workloads/tpcc.cc" "src/CMakeFiles/mvrob_workloads.dir/workloads/tpcc.cc.o" "gcc" "src/CMakeFiles/mvrob_workloads.dir/workloads/tpcc.cc.o.d"
  "/root/repo/src/workloads/voter.cc" "src/CMakeFiles/mvrob_workloads.dir/workloads/voter.cc.o" "gcc" "src/CMakeFiles/mvrob_workloads.dir/workloads/voter.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/mvrob_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/mvrob_workloads.dir/workloads/workload.cc.o.d"
  "/root/repo/src/workloads/ycsb.cc" "src/CMakeFiles/mvrob_workloads.dir/workloads/ycsb.cc.o" "gcc" "src/CMakeFiles/mvrob_workloads.dir/workloads/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvrob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
