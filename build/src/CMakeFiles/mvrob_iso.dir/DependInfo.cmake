
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iso/allocation.cc" "src/CMakeFiles/mvrob_iso.dir/iso/allocation.cc.o" "gcc" "src/CMakeFiles/mvrob_iso.dir/iso/allocation.cc.o.d"
  "/root/repo/src/iso/allowed.cc" "src/CMakeFiles/mvrob_iso.dir/iso/allowed.cc.o" "gcc" "src/CMakeFiles/mvrob_iso.dir/iso/allowed.cc.o.d"
  "/root/repo/src/iso/dangerous_structure.cc" "src/CMakeFiles/mvrob_iso.dir/iso/dangerous_structure.cc.o" "gcc" "src/CMakeFiles/mvrob_iso.dir/iso/dangerous_structure.cc.o.d"
  "/root/repo/src/iso/isolation_level.cc" "src/CMakeFiles/mvrob_iso.dir/iso/isolation_level.cc.o" "gcc" "src/CMakeFiles/mvrob_iso.dir/iso/isolation_level.cc.o.d"
  "/root/repo/src/iso/materialize.cc" "src/CMakeFiles/mvrob_iso.dir/iso/materialize.cc.o" "gcc" "src/CMakeFiles/mvrob_iso.dir/iso/materialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvrob_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
