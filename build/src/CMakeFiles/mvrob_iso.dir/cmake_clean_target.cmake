file(REMOVE_RECURSE
  "libmvrob_iso.a"
)
