# Empty dependencies file for mvrob_iso.
# This may be replaced when dependencies are built.
