file(REMOVE_RECURSE
  "CMakeFiles/mvrob_iso.dir/iso/allocation.cc.o"
  "CMakeFiles/mvrob_iso.dir/iso/allocation.cc.o.d"
  "CMakeFiles/mvrob_iso.dir/iso/allowed.cc.o"
  "CMakeFiles/mvrob_iso.dir/iso/allowed.cc.o.d"
  "CMakeFiles/mvrob_iso.dir/iso/dangerous_structure.cc.o"
  "CMakeFiles/mvrob_iso.dir/iso/dangerous_structure.cc.o.d"
  "CMakeFiles/mvrob_iso.dir/iso/isolation_level.cc.o"
  "CMakeFiles/mvrob_iso.dir/iso/isolation_level.cc.o.d"
  "CMakeFiles/mvrob_iso.dir/iso/materialize.cc.o"
  "CMakeFiles/mvrob_iso.dir/iso/materialize.cc.o.d"
  "libmvrob_iso.a"
  "libmvrob_iso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_iso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
