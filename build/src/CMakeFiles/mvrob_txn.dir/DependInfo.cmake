
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/operation.cc" "src/CMakeFiles/mvrob_txn.dir/txn/operation.cc.o" "gcc" "src/CMakeFiles/mvrob_txn.dir/txn/operation.cc.o.d"
  "/root/repo/src/txn/parser.cc" "src/CMakeFiles/mvrob_txn.dir/txn/parser.cc.o" "gcc" "src/CMakeFiles/mvrob_txn.dir/txn/parser.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/CMakeFiles/mvrob_txn.dir/txn/transaction.cc.o" "gcc" "src/CMakeFiles/mvrob_txn.dir/txn/transaction.cc.o.d"
  "/root/repo/src/txn/transaction_set.cc" "src/CMakeFiles/mvrob_txn.dir/txn/transaction_set.cc.o" "gcc" "src/CMakeFiles/mvrob_txn.dir/txn/transaction_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvrob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
