# Empty compiler generated dependencies file for mvrob_txn.
# This may be replaced when dependencies are built.
