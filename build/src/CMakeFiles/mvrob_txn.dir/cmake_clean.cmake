file(REMOVE_RECURSE
  "CMakeFiles/mvrob_txn.dir/txn/operation.cc.o"
  "CMakeFiles/mvrob_txn.dir/txn/operation.cc.o.d"
  "CMakeFiles/mvrob_txn.dir/txn/parser.cc.o"
  "CMakeFiles/mvrob_txn.dir/txn/parser.cc.o.d"
  "CMakeFiles/mvrob_txn.dir/txn/transaction.cc.o"
  "CMakeFiles/mvrob_txn.dir/txn/transaction.cc.o.d"
  "CMakeFiles/mvrob_txn.dir/txn/transaction_set.cc.o"
  "CMakeFiles/mvrob_txn.dir/txn/transaction_set.cc.o.d"
  "libmvrob_txn.a"
  "libmvrob_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
