file(REMOVE_RECURSE
  "libmvrob_txn.a"
)
