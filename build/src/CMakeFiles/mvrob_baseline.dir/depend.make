# Empty dependencies file for mvrob_baseline.
# This may be replaced when dependencies are built.
