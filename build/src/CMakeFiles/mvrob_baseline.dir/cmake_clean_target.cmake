file(REMOVE_RECURSE
  "libmvrob_baseline.a"
)
