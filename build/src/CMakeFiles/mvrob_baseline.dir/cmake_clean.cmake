file(REMOVE_RECURSE
  "CMakeFiles/mvrob_baseline.dir/baseline/rc_robustness.cc.o"
  "CMakeFiles/mvrob_baseline.dir/baseline/rc_robustness.cc.o.d"
  "CMakeFiles/mvrob_baseline.dir/baseline/si_robustness.cc.o"
  "CMakeFiles/mvrob_baseline.dir/baseline/si_robustness.cc.o.d"
  "libmvrob_baseline.a"
  "libmvrob_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
