file(REMOVE_RECURSE
  "libmvrob_templates.a"
)
