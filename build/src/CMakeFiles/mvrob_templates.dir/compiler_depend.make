# Empty compiler generated dependencies file for mvrob_templates.
# This may be replaced when dependencies are built.
