file(REMOVE_RECURSE
  "CMakeFiles/mvrob_templates.dir/templates/instantiate.cc.o"
  "CMakeFiles/mvrob_templates.dir/templates/instantiate.cc.o.d"
  "CMakeFiles/mvrob_templates.dir/templates/library.cc.o"
  "CMakeFiles/mvrob_templates.dir/templates/library.cc.o.d"
  "CMakeFiles/mvrob_templates.dir/templates/parser.cc.o"
  "CMakeFiles/mvrob_templates.dir/templates/parser.cc.o.d"
  "CMakeFiles/mvrob_templates.dir/templates/robustness.cc.o"
  "CMakeFiles/mvrob_templates.dir/templates/robustness.cc.o.d"
  "CMakeFiles/mvrob_templates.dir/templates/template.cc.o"
  "CMakeFiles/mvrob_templates.dir/templates/template.cc.o.d"
  "libmvrob_templates.a"
  "libmvrob_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
