
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/templates/instantiate.cc" "src/CMakeFiles/mvrob_templates.dir/templates/instantiate.cc.o" "gcc" "src/CMakeFiles/mvrob_templates.dir/templates/instantiate.cc.o.d"
  "/root/repo/src/templates/library.cc" "src/CMakeFiles/mvrob_templates.dir/templates/library.cc.o" "gcc" "src/CMakeFiles/mvrob_templates.dir/templates/library.cc.o.d"
  "/root/repo/src/templates/parser.cc" "src/CMakeFiles/mvrob_templates.dir/templates/parser.cc.o" "gcc" "src/CMakeFiles/mvrob_templates.dir/templates/parser.cc.o.d"
  "/root/repo/src/templates/robustness.cc" "src/CMakeFiles/mvrob_templates.dir/templates/robustness.cc.o" "gcc" "src/CMakeFiles/mvrob_templates.dir/templates/robustness.cc.o.d"
  "/root/repo/src/templates/template.cc" "src/CMakeFiles/mvrob_templates.dir/templates/template.cc.o" "gcc" "src/CMakeFiles/mvrob_templates.dir/templates/template.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvrob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
