
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cc" "src/CMakeFiles/mvrob_core.dir/core/analyzer.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/analyzer.cc.o.d"
  "/root/repo/src/core/conflict.cc" "src/CMakeFiles/mvrob_core.dir/core/conflict.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/conflict.cc.o.d"
  "/root/repo/src/core/constrained_allocation.cc" "src/CMakeFiles/mvrob_core.dir/core/constrained_allocation.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/constrained_allocation.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/mvrob_core.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/explain.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/mvrob_core.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/mixed_iso_graph.cc" "src/CMakeFiles/mvrob_core.dir/core/mixed_iso_graph.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/mixed_iso_graph.cc.o.d"
  "/root/repo/src/core/optimal_allocation.cc" "src/CMakeFiles/mvrob_core.dir/core/optimal_allocation.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/optimal_allocation.cc.o.d"
  "/root/repo/src/core/rc_si_allocation.cc" "src/CMakeFiles/mvrob_core.dir/core/rc_si_allocation.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/rc_si_allocation.cc.o.d"
  "/root/repo/src/core/robustness.cc" "src/CMakeFiles/mvrob_core.dir/core/robustness.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/robustness.cc.o.d"
  "/root/repo/src/core/split_schedule.cc" "src/CMakeFiles/mvrob_core.dir/core/split_schedule.cc.o" "gcc" "src/CMakeFiles/mvrob_core.dir/core/split_schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvrob_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mvrob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
