file(REMOVE_RECURSE
  "libmvrob_core.a"
)
