# Empty compiler generated dependencies file for mvrob_core.
# This may be replaced when dependencies are built.
