file(REMOVE_RECURSE
  "CMakeFiles/mvrob_core.dir/core/analyzer.cc.o"
  "CMakeFiles/mvrob_core.dir/core/analyzer.cc.o.d"
  "CMakeFiles/mvrob_core.dir/core/conflict.cc.o"
  "CMakeFiles/mvrob_core.dir/core/conflict.cc.o.d"
  "CMakeFiles/mvrob_core.dir/core/constrained_allocation.cc.o"
  "CMakeFiles/mvrob_core.dir/core/constrained_allocation.cc.o.d"
  "CMakeFiles/mvrob_core.dir/core/explain.cc.o"
  "CMakeFiles/mvrob_core.dir/core/explain.cc.o.d"
  "CMakeFiles/mvrob_core.dir/core/incremental.cc.o"
  "CMakeFiles/mvrob_core.dir/core/incremental.cc.o.d"
  "CMakeFiles/mvrob_core.dir/core/mixed_iso_graph.cc.o"
  "CMakeFiles/mvrob_core.dir/core/mixed_iso_graph.cc.o.d"
  "CMakeFiles/mvrob_core.dir/core/optimal_allocation.cc.o"
  "CMakeFiles/mvrob_core.dir/core/optimal_allocation.cc.o.d"
  "CMakeFiles/mvrob_core.dir/core/rc_si_allocation.cc.o"
  "CMakeFiles/mvrob_core.dir/core/rc_si_allocation.cc.o.d"
  "CMakeFiles/mvrob_core.dir/core/robustness.cc.o"
  "CMakeFiles/mvrob_core.dir/core/robustness.cc.o.d"
  "CMakeFiles/mvrob_core.dir/core/split_schedule.cc.o"
  "CMakeFiles/mvrob_core.dir/core/split_schedule.cc.o.d"
  "libmvrob_core.a"
  "libmvrob_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvrob_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
