// The pre-bitset RobustnessAnalyzer, kept verbatim (vector<bool> matrices,
// sorted-vector component intersections, per-triple scalar condition
// checks, per-iteration triple counting) as the baseline for the
// old-vs-bitset benchmarks in bench_robustness. Benchmark-only: production
// code uses core/analyzer.h.
#ifndef MVROB_BENCH_LEGACY_ANALYZER_H_
#define MVROB_BENCH_LEGACY_ANALYZER_H_

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "core/mixed_iso_graph.h"
#include "core/robustness.h"

namespace mvrob {

class LegacyRobustnessAnalyzer {
 public:
  explicit LegacyRobustnessAnalyzer(const TransactionSet& txns)
      : txns_(txns) {
    const size_t n = txns.size();
    conflict_.assign(n, std::vector<bool>(n, false));
    rw_.assign(n, std::vector<bool>(n, false));
    first_ww_idx_.assign(n, std::vector<int>(n, kNever));
    first_rw_idx_.assign(n, std::vector<int>(n, kNever));
    last_conflict_idx_.assign(n, std::vector<int>(n, -1));
    pivot_cache_.resize(n);

    for (TxnId i = 0; i < n; ++i) {
      const Transaction& ti = txns.txn(i);
      for (TxnId j = 0; j < n; ++j) {
        if (i == j) continue;
        const Transaction& tj = txns.txn(j);
        for (int k = 0; k < ti.num_ops(); ++k) {
          const Operation& op = ti.op(k);
          if (op.IsCommit()) continue;
          bool writes_j = tj.Writes(op.object);
          bool reads_j = tj.Reads(op.object);
          if (op.IsWrite()) {
            if (writes_j && first_ww_idx_[i][j] == kNever) {
              first_ww_idx_[i][j] = k;
            }
            if (writes_j || reads_j) last_conflict_idx_[i][j] = k;
          } else {
            if (writes_j) {
              rw_[i][j] = true;
              if (first_rw_idx_[i][j] == kNever) first_rw_idx_[i][j] = k;
              last_conflict_idx_[i][j] = k;
            }
          }
        }
        conflict_[i][j] = rw_[i][j] || first_ww_idx_[i][j] != kNever ||
                          last_conflict_idx_[i][j] >= 0;
      }
    }
    for (TxnId i = 0; i < n; ++i) {
      for (TxnId j = 0; j < n; ++j) {
        if (conflict_[i][j]) conflict_[j][i] = true;
      }
    }
  }

  RobustnessResult Check(const Allocation& alloc) const {
    RobustnessResult result;
    const size_t n = txns_.size();
    auto is_ssi = [&](TxnId t) {
      return alloc.level(t) == IsolationLevel::kSSI;
    };

    for (TxnId t1 = 0; t1 < n; ++t1) {
      bool t1_rc = alloc.level(t1) == IsolationLevel::kRC;
      bool s1 = is_ssi(t1);
      for (TxnId t2 = 0; t2 < n; ++t2) {
        if (t2 == t1) continue;
        int first_rw = first_rw_idx_[t1][t2];
        if (first_rw == kNever) {
          result.triples_examined += n - 1;
          continue;
        }
        if (s1 && is_ssi(t2) && rw_[t2][t1]) {
          result.triples_examined += n - 1;
          continue;
        }
        int ww2 = first_ww_idx_[t1][t2];
        if (t1_rc ? first_rw >= ww2 : ww2 != kNever) {
          result.triples_examined += n - 1;
          continue;
        }
        for (TxnId tm = 0; tm < n; ++tm) {
          if (tm == t1) continue;
          ++result.triples_examined;
          if (s1 && is_ssi(t2) && is_ssi(tm)) continue;
          if (s1 && is_ssi(tm) && rw_[t1][tm]) continue;
          int wwm = first_ww_idx_[t1][tm];
          if (t1_rc ? first_rw >= wwm : wwm != kNever) continue;
          bool case_rw = rw_[tm][t1];
          bool case_rc = t1_rc && last_conflict_idx_[t1][tm] > first_rw;
          if (!case_rw && !case_rc) continue;
          if (!Reachable(t1, t2, tm)) continue;

          CounterexampleChain chain;
          bool found =
              internal::FindChainOperations(txns_, alloc, t1, t2, tm, &chain);
          if (!found) continue;
          MixedIsoGraph graph(txns_, t1, {t2, tm});
          std::optional<std::vector<TxnId>> inner =
              graph.FindInnerChain(t2, tm);
          if (!inner.has_value()) continue;
          chain.inner = std::move(inner).value();
          result.robust = false;
          result.counterexample = std::move(chain);
          return result;
        }
      }
    }
    return result;
  }

 private:
  static constexpr int kNever = std::numeric_limits<int>::max();

  struct PivotCache {
    std::vector<std::vector<uint32_t>> comp_conf;
  };

  const PivotCache& PivotFor(TxnId t1) const {
    std::optional<PivotCache>& slot = pivot_cache_[t1];
    if (slot.has_value()) return *slot;

    const size_t n = txns_.size();
    std::vector<int> comp_of(n, -1);
    std::vector<TxnId> nodes;
    for (TxnId x = 0; x < n; ++x) {
      if (x != t1 && !conflict_[x][t1]) nodes.push_back(x);
    }
    std::vector<size_t> parent(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) parent[i] = i;
    auto find = [&](size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        if (conflict_[nodes[i]][nodes[j]]) parent[find(i)] = find(j);
      }
    }
    std::vector<int> dense(nodes.size(), -1);
    int num_components = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      size_t root = find(i);
      if (dense[root] < 0) dense[root] = num_components++;
      comp_of[nodes[i]] = dense[root];
    }

    PivotCache cache;
    cache.comp_conf.assign(n, {});
    for (TxnId x = 0; x < n; ++x) {
      std::vector<uint32_t>& comps = cache.comp_conf[x];
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i] != x && conflict_[x][nodes[i]]) {
          comps.push_back(static_cast<uint32_t>(comp_of[nodes[i]]));
        }
      }
      std::sort(comps.begin(), comps.end());
      comps.erase(std::unique(comps.begin(), comps.end()), comps.end());
    }
    slot = std::move(cache);
    return *slot;
  }

  bool Reachable(TxnId t1, TxnId t2, TxnId tm) const {
    if (t2 == tm || conflict_[t2][tm]) return true;
    const PivotCache& cache = PivotFor(t1);
    const std::vector<uint32_t>& a = cache.comp_conf[t2];
    const std::vector<uint32_t>& b = cache.comp_conf[tm];
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] == b[j]) return true;
      if (a[i] < b[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return false;
  }

  const TransactionSet& txns_;
  std::vector<std::vector<bool>> conflict_;
  std::vector<std::vector<bool>> rw_;
  std::vector<std::vector<int>> first_ww_idx_;
  std::vector<std::vector<int>> first_rw_idx_;
  std::vector<std::vector<int>> last_conflict_idx_;
  mutable std::vector<std::optional<PivotCache>> pivot_cache_;
};

}  // namespace mvrob

#endif  // MVROB_BENCH_LEGACY_ANALYZER_H_
