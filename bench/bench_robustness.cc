// Scaling benchmarks for Algorithm 1 (DESIGN.md E7): validates the PTIME
// claim of Theorem 3.3 empirically by sweeping the number of transactions
// |T|, the operations per transaction (the paper's l), and the contention
// level, for robust and non-robust instances and for all three homogeneous
// allocations plus a mixed one.
#include <benchmark/benchmark.h>

#include "core/analyzer.h"
#include "core/robustness.h"
#include "legacy_analyzer.h"
#include "workloads/synthetic.h"

namespace mvrob {
namespace {

TransactionSet MakeWorkload(int num_txns, int ops, double hotspot,
                            uint64_t seed) {
  SyntheticParams params;
  params.num_txns = num_txns;
  params.num_objects = std::max(4, num_txns * 2);
  params.min_ops = ops;
  params.max_ops = ops;
  params.write_fraction = 0.4;
  params.hotspot_fraction = hotspot;
  params.num_hotspots = 2;
  params.seed = seed;
  return GenerateSynthetic(params);
}

// A worst-case family for Algorithm 1: every transaction read-modify-
// writes a shared hot object plus `ops` private objects. The hot ww
// conflict makes the set robust against A_SI (vulnerable edges need
// disjoint write sets), so the checker must scan every triple with the
// full operation loops — no early exit.
TransactionSet MakeRmwClique(int num_txns, int ops) {
  TransactionSet set;
  ObjectId hot = set.InternObject("hot");
  for (int t = 0; t < num_txns; ++t) {
    std::vector<Operation> body{Operation::Read(hot), Operation::Write(hot)};
    for (int k = 0; k < ops; ++k) {
      ObjectId obj = set.InternObject("p" + std::to_string(t) + "_" +
                                      std::to_string(k));
      body.push_back(Operation::Read(obj));
      body.push_back(Operation::Write(obj));
    }
    StatusOr<TxnId> id = set.AddTransaction("", std::move(body));
    (void)id;
  }
  return set;
}

Allocation MixedThirds(size_t n) {
  std::vector<IsolationLevel> levels(n);
  for (size_t i = 0; i < n; ++i) levels[i] = kAllIsolationLevels[i % 3];
  return Allocation(std::move(levels));
}

// A scan-heavy *robust* family: half the transactions are writers over
// private object groups, half are readers each reading from `fanout`
// writers. Every reader pair passes the T2-side gate, but no Tm satisfies
// condition (5) — so the per-triple scan over Tm runs in full and finds
// nothing. This is the regime where the legacy analyzer spends O(|T|) per
// pair in the inner loop while the bitset engine reduces each pair to a
// handful of word ANDs over an empty candidate mask.
TransactionSet MakeReadersWriters(int num_txns, int fanout) {
  TransactionSet set;
  const int writers = num_txns / 2;
  const int readers = num_txns - writers;
  for (int w = 0; w < writers; ++w) {
    std::vector<Operation> body;
    for (int k = 0; k < fanout; ++k) {
      body.push_back(Operation::Write(
          set.InternObject("o" + std::to_string(w) + "_" + std::to_string(k))));
    }
    StatusOr<TxnId> id = set.AddTransaction("", std::move(body));
    (void)id;
  }
  for (int r = 0; r < readers; ++r) {
    std::vector<Operation> body;
    for (int k = 0; k < fanout; ++k) {
      int w = (r + k) % writers;
      body.push_back(Operation::Read(
          set.InternObject("o" + std::to_string(w) + "_" + std::to_string(k))));
    }
    StatusOr<TxnId> id = set.AddTransaction("", std::move(body));
    (void)id;
  }
  return set;
}

// Sweep |T| on the worst-case clique (robust: the algorithm scans all
// triples and operation pairs).
void BM_Robustness_ScaleTxns(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(n, 2);
  Allocation alloc = Allocation::AllSI(txns.size());
  uint64_t triples = 0;
  for (auto _ : state) {
    RobustnessResult result = CheckRobustness(txns, alloc);
    triples = result.triples_examined;
    benchmark::DoNotOptimize(result.robust);
  }
  state.counters["txns"] = n;
  state.counters["triples"] = static_cast<double>(triples);
}
BENCHMARK(BM_Robustness_ScaleTxns)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(128)->Unit(benchmark::kMicrosecond);

// Sweep the transaction size l at fixed |T| on the worst-case clique.
void BM_Robustness_ScaleOpsPerTxn(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(12, ops / 2);
  Allocation alloc = Allocation::AllSI(txns.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckRobustness(txns, alloc).robust);
  }
  state.counters["ops_per_txn"] = ops;
}
BENCHMARK(BM_Robustness_ScaleOpsPerTxn)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(32)->Unit(benchmark::kMicrosecond);

// High contention: non-robust instances exit early with a counterexample.
void BM_Robustness_NonRobustEarlyExit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeWorkload(n, 4, 0.9, 3);
  Allocation alloc = Allocation::AllRC(txns.size());
  bool robust = true;
  for (auto _ : state) {
    RobustnessResult result = CheckRobustness(txns, alloc);
    robust = result.robust;
    benchmark::DoNotOptimize(result);
  }
  state.counters["robust"] = robust ? 1 : 0;
}
BENCHMARK(BM_Robustness_NonRobustEarlyExit)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

// The three homogeneous allocations and a mixed allocation on the same
// workload: SSI allocations prune triples via conditions (6)-(8).
void BM_Robustness_ByAllocation(benchmark::State& state) {
  TransactionSet txns = MakeWorkload(24, 4, 0.3, 11);
  Allocation allocs[] = {
      Allocation::AllRC(txns.size()), Allocation::AllSI(txns.size()),
      Allocation::AllSSI(txns.size()), MixedThirds(txns.size())};
  const Allocation& alloc = allocs[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckRobustness(txns, alloc).robust);
  }
}
BENCHMARK(BM_Robustness_ByAllocation)->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

// Ablation: the matrix-cached analyzer vs the reference checker on the
// worst-case clique (DESIGN.md design-choice: precomputed conflict
// matrices + per-pivot components vs recomputation in the triple loop).
void BM_Analyzer_ScaleTxns(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(n, 2);
  RobustnessAnalyzer analyzer(txns);
  Allocation alloc = Allocation::AllSI(txns.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Check(alloc).robust);
  }
  state.counters["txns"] = n;
}
BENCHMARK(BM_Analyzer_ScaleTxns)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

// ---- Old-vs-bitset: the pre-refactor analyzer (bench/legacy_analyzer.h,
// a verbatim copy) against the bitset engine on the same instances. Same
// verdicts and triple counts; only the kernels differ.

void BM_LegacyAnalyzer_RmwClique(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(n, 2);
  LegacyRobustnessAnalyzer analyzer(txns);
  Allocation alloc = Allocation::AllSI(txns.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Check(alloc).robust);
  }
  state.counters["txns"] = n;
}
BENCHMARK(BM_LegacyAnalyzer_RmwClique)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_BitsetAnalyzer_RmwClique(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(n, 2);
  RobustnessAnalyzer analyzer(txns);
  Allocation alloc = Allocation::AllSI(txns.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Check(alloc).robust);
  }
  state.counters["txns"] = n;
}
BENCHMARK(BM_BitsetAnalyzer_RmwClique)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_LegacyAnalyzer_ReadersWriters(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeReadersWriters(n, 4);
  LegacyRobustnessAnalyzer analyzer(txns);
  Allocation alloc = Allocation::AllSI(txns.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Check(alloc).robust);
  }
  state.counters["txns"] = n;
}
BENCHMARK(BM_LegacyAnalyzer_ReadersWriters)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_BitsetAnalyzer_ReadersWriters(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeReadersWriters(n, 4);
  RobustnessAnalyzer analyzer(txns);
  Allocation alloc = Allocation::AllSI(txns.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Check(alloc).robust);
  }
  state.counters["txns"] = n;
}
BENCHMARK(BM_BitsetAnalyzer_ReadersWriters)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// ---- Sequential-vs-parallel: the bitset engine's t1 loop over the thread
// pool. range(0) = |T|, range(1) = num_threads. On a machine with a single
// core the pool degrades to the sequential path and the curve is flat;
// tools/bench_to_json.sh records whatever the hardware provides.

void BM_ParallelCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  TransactionSet txns = MakeReadersWriters(n, 4);
  RobustnessAnalyzer analyzer(txns);
  Allocation alloc = Allocation::AllSI(txns.size());
  CheckOptions options;
  options.num_threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Check(alloc, options).robust);
  }
  state.counters["txns"] = n;
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ParallelCheck)
    ->Args({64, 1})->Args({64, 2})->Args({64, 4})->Args({64, 8})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8})
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})->Args({1024, 8})
    ->Unit(benchmark::kMicrosecond);

// Construction cost of the analyzer (amortized over Algorithm 2's 2|T|
// checks).
void BM_Analyzer_Construction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(n, 2);
  for (auto _ : state) {
    RobustnessAnalyzer analyzer(txns);
    benchmark::DoNotOptimize(&analyzer);
  }
  state.counters["txns"] = n;
}
BENCHMARK(BM_Analyzer_Construction)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mvrob

BENCHMARK_MAIN();
