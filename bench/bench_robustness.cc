// Scaling benchmarks for Algorithm 1 (DESIGN.md E7): validates the PTIME
// claim of Theorem 3.3 empirically by sweeping the number of transactions
// |T|, the operations per transaction (the paper's l), and the contention
// level, for robust and non-robust instances and for all three homogeneous
// allocations plus a mixed one.
#include <benchmark/benchmark.h>

#include "core/analyzer.h"
#include "core/robustness.h"
#include "workloads/synthetic.h"

namespace mvrob {
namespace {

TransactionSet MakeWorkload(int num_txns, int ops, double hotspot,
                            uint64_t seed) {
  SyntheticParams params;
  params.num_txns = num_txns;
  params.num_objects = std::max(4, num_txns * 2);
  params.min_ops = ops;
  params.max_ops = ops;
  params.write_fraction = 0.4;
  params.hotspot_fraction = hotspot;
  params.num_hotspots = 2;
  params.seed = seed;
  return GenerateSynthetic(params);
}

// A worst-case family for Algorithm 1: every transaction read-modify-
// writes a shared hot object plus `ops` private objects. The hot ww
// conflict makes the set robust against A_SI (vulnerable edges need
// disjoint write sets), so the checker must scan every triple with the
// full operation loops — no early exit.
TransactionSet MakeRmwClique(int num_txns, int ops) {
  TransactionSet set;
  ObjectId hot = set.InternObject("hot");
  for (int t = 0; t < num_txns; ++t) {
    std::vector<Operation> body{Operation::Read(hot), Operation::Write(hot)};
    for (int k = 0; k < ops; ++k) {
      ObjectId obj = set.InternObject("p" + std::to_string(t) + "_" +
                                      std::to_string(k));
      body.push_back(Operation::Read(obj));
      body.push_back(Operation::Write(obj));
    }
    StatusOr<TxnId> id = set.AddTransaction("", std::move(body));
    (void)id;
  }
  return set;
}

Allocation MixedThirds(size_t n) {
  std::vector<IsolationLevel> levels(n);
  for (size_t i = 0; i < n; ++i) levels[i] = kAllIsolationLevels[i % 3];
  return Allocation(std::move(levels));
}

// Sweep |T| on the worst-case clique (robust: the algorithm scans all
// triples and operation pairs).
void BM_Robustness_ScaleTxns(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(n, 2);
  Allocation alloc = Allocation::AllSI(txns.size());
  uint64_t triples = 0;
  for (auto _ : state) {
    RobustnessResult result = CheckRobustness(txns, alloc);
    triples = result.triples_examined;
    benchmark::DoNotOptimize(result.robust);
  }
  state.counters["txns"] = n;
  state.counters["triples"] = static_cast<double>(triples);
}
BENCHMARK(BM_Robustness_ScaleTxns)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(128)->Unit(benchmark::kMicrosecond);

// Sweep the transaction size l at fixed |T| on the worst-case clique.
void BM_Robustness_ScaleOpsPerTxn(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(12, ops / 2);
  Allocation alloc = Allocation::AllSI(txns.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckRobustness(txns, alloc).robust);
  }
  state.counters["ops_per_txn"] = ops;
}
BENCHMARK(BM_Robustness_ScaleOpsPerTxn)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(32)->Unit(benchmark::kMicrosecond);

// High contention: non-robust instances exit early with a counterexample.
void BM_Robustness_NonRobustEarlyExit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeWorkload(n, 4, 0.9, 3);
  Allocation alloc = Allocation::AllRC(txns.size());
  bool robust = true;
  for (auto _ : state) {
    RobustnessResult result = CheckRobustness(txns, alloc);
    robust = result.robust;
    benchmark::DoNotOptimize(result);
  }
  state.counters["robust"] = robust ? 1 : 0;
}
BENCHMARK(BM_Robustness_NonRobustEarlyExit)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

// The three homogeneous allocations and a mixed allocation on the same
// workload: SSI allocations prune triples via conditions (6)-(8).
void BM_Robustness_ByAllocation(benchmark::State& state) {
  TransactionSet txns = MakeWorkload(24, 4, 0.3, 11);
  Allocation allocs[] = {
      Allocation::AllRC(txns.size()), Allocation::AllSI(txns.size()),
      Allocation::AllSSI(txns.size()), MixedThirds(txns.size())};
  const Allocation& alloc = allocs[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckRobustness(txns, alloc).robust);
  }
}
BENCHMARK(BM_Robustness_ByAllocation)->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

// Ablation: the matrix-cached analyzer vs the reference checker on the
// worst-case clique (DESIGN.md design-choice: precomputed conflict
// matrices + per-pivot components vs recomputation in the triple loop).
void BM_Analyzer_ScaleTxns(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(n, 2);
  RobustnessAnalyzer analyzer(txns);
  Allocation alloc = Allocation::AllSI(txns.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Check(alloc).robust);
  }
  state.counters["txns"] = n;
}
BENCHMARK(BM_Analyzer_ScaleTxns)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

// Construction cost of the analyzer (amortized over Algorithm 2's 2|T|
// checks).
void BM_Analyzer_Construction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeRmwClique(n, 2);
  for (auto _ : state) {
    RobustnessAnalyzer analyzer(txns);
    benchmark::DoNotOptimize(&analyzer);
  }
  state.counters["txns"] = n;
}
BENCHMARK(BM_Analyzer_Construction)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mvrob

BENCHMARK_MAIN();
