// Throughput-vs-cores curves for the many-core MVCC engine (EXPERIMENTS.md
// E22): committed transactions per second as the worker count sweeps
// 1/2/4/8, per allocation (A_RC, A_SI, A_SSI, mixed) and contention level
// (uniform vs theta=0.99 Zipfian YCSB).
//
// Each iteration executes a fixed step budget through RunConcurrent on a
// fresh engine, so real_time per iteration is the scaling signal
// (UseRealTime: the workers are internal threads). The rows feed
// tools/bench_compare.py, which groups them by the /threads:N name suffix
// and gates the speedup curve against bench/baselines/.
#include <benchmark/benchmark.h>

#include <optional>

#include "common/log.h"
#include "common/profiler.h"
#include "common/status.h"
#include "iso/allocation.h"
#include "mvcc/concurrent_driver.h"
#include "mvcc/concurrent_engine.h"
#include "mvcc/driver.h"
#include "mvcc/txn_trace.h"
#include "workloads/registry.h"

namespace mvrob {
namespace {

// Steps per iteration: enough commits (~10k at 6 steps/txn) for a stable
// rate, small enough that the sweep stays CI-friendly.
constexpr uint64_t kStepsPerIteration = 65'536;

Allocation MixedThirds(size_t n) {
  std::vector<IsolationLevel> levels(n);
  for (size_t i = 0; i < n; ++i) {
    levels[i] = kAllIsolationLevels[i % kAllIsolationLevels.size()];
  }
  return Allocation(std::move(levels));
}

void BM_MvccScaling(benchmark::State& state, const char* spec,
                    Allocation (*make_alloc)(size_t)) {
  StatusOr<Workload> workload = MakeNamedWorkload(spec);
  if (!workload.ok()) {
    state.SkipWithError(workload.status().ToString().c_str());
    return;
  }
  const TransactionSet& txns = workload->txns;
  const Allocation alloc = make_alloc(txns.size());
  const size_t threads = static_cast<size_t>(state.range(0));

  uint64_t committed = 0;
  uint64_t attempts = 0;
  for (auto _ : state) {
    ConcurrentEngine engine(txns.num_objects(), threads);
    RandomRunOptions options;
    options.seed = 42;
    options.continuous = true;
    options.max_steps = kStepsPerIteration;
    DriverReport report = RunConcurrent(engine, txns, alloc, options);
    committed += report.committed;
    attempts += report.attempts;
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(committed), benchmark::Counter::kIsRate);
  state.counters["abort_rate"] =
      attempts > 0 ? 1.0 - static_cast<double>(committed) /
                               static_cast<double>(attempts)
                   : 0.0;
}

// Low contention: uniform key choice over a key space much larger than
// the worker count, so shards rarely collide. High contention: classic
// YCSB hot spots (theta=0.99) over few keys.
constexpr const char* kLow = "ycsb:a,n=64,k=1024,theta=0,seed=1";
constexpr const char* kHigh = "ycsb:a,n=64,k=64,theta=0.99,seed=1";

#define MVROB_SCALING_BENCH(name, spec, alloc)                      \
  BENCHMARK_CAPTURE(BM_MvccScaling, name, spec, alloc)              \
      ->ArgName("threads")                                          \
      ->Arg(1)                                                      \
      ->Arg(2)                                                      \
      ->Arg(4)                                                      \
      ->Arg(8)                                                      \
      ->UseRealTime()

MVROB_SCALING_BENCH(RC_low, kLow, Allocation::AllRC);
MVROB_SCALING_BENCH(SI_low, kLow, Allocation::AllSI);
MVROB_SCALING_BENCH(SSI_low, kLow, Allocation::AllSSI);
MVROB_SCALING_BENCH(MIX_low, kLow, MixedThirds);
MVROB_SCALING_BENCH(RC_high, kHigh, Allocation::AllRC);
MVROB_SCALING_BENCH(SI_high, kHigh, Allocation::AllSI);
MVROB_SCALING_BENCH(SSI_high, kHigh, Allocation::AllSSI);
MVROB_SCALING_BENCH(MIX_high, kHigh, MixedThirds);

// Tracer-overhead guard (txn_trace.h): the deterministic driver on the
// high-contention workload with the tracer detached (sample:0 — the
// null-pointer fast path every untraced run takes), tracing every 16th
// transaction (the documented serve setting), and tracing everything
// (sample:1, worst case). sample:0 rides the same bench gate as the
// scaling rows, so a cost leak onto the disabled path is a regression
// the gate catches; the sampled rows quantify the opt-in overhead.
void BM_MvccTracing(benchmark::State& state) {
  StatusOr<Workload> workload = MakeNamedWorkload(kHigh);
  if (!workload.ok()) {
    state.SkipWithError(workload.status().ToString().c_str());
    return;
  }
  const TransactionSet& txns = workload->txns;
  const Allocation alloc = Allocation::AllSI(txns.size());
  const uint64_t sample = static_cast<uint64_t>(state.range(0));

  uint64_t committed = 0;
  uint64_t attributed = 0;
  for (auto _ : state) {
    std::optional<TxnTracer> tracer;
    if (sample > 0) {
      TxnTracerOptions tracer_options;
      tracer_options.sample_every_n = sample;
      tracer.emplace(tracer_options);
    }
    TxnTracer* tracer_ptr = tracer.has_value() ? &*tracer : nullptr;
    EngineOptions engine_options;
    engine_options.tracer = tracer_ptr;
    Engine engine(txns.num_objects(), engine_options);
    RandomRunOptions options;
    options.seed = 42;
    options.continuous = true;
    options.max_steps = kStepsPerIteration;
    options.tracer = tracer_ptr;
    DriverReport report = RunRandom(engine, txns, alloc, options);
    committed += report.committed;
    if (tracer_ptr != nullptr) attributed += tracer_ptr->aborts_attributed();
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(committed), benchmark::Counter::kIsRate);
  state.counters["aborts_attributed"] =
      static_cast<double>(attributed);
}

BENCHMARK(BM_MvccTracing)->ArgName("sample")->Arg(0)->Arg(16)->Arg(1);

// Profiler-overhead guard (common/profiler.h): the same deterministic run
// with the sampling profiler detached (hz:0 — the zero-cost path every
// unprofiled run takes) versus attached at the serve default (hz:97) and
// a deliberately hot rate (hz:997). hz:0 rides the bench gate, so any
// cost leaking onto the detached path is a regression the gate catches;
// the sampled rows bound the signal-delivery overhead of live profiling.
void BM_ProfilerOverhead(benchmark::State& state) {
  StatusOr<Workload> workload = MakeNamedWorkload(kHigh);
  if (!workload.ok()) {
    state.SkipWithError(workload.status().ToString().c_str());
    return;
  }
  const TransactionSet& txns = workload->txns;
  const Allocation alloc = Allocation::AllSI(txns.size());
  const int hz = static_cast<int>(state.range(0));

  ProfiledThreadScope scope("bench.profiler_overhead");
  if (hz > 0) {
    ProfilerOptions profile_options;
    profile_options.hz = hz;
    Status started = Profiler::Start(profile_options);
    if (!started.ok()) {
      state.SkipWithError(started.ToString().c_str());
      return;
    }
  }
  uint64_t committed = 0;
  for (auto _ : state) {
    Engine engine(txns.num_objects());
    RandomRunOptions options;
    options.seed = 42;
    options.continuous = true;
    options.max_steps = kStepsPerIteration;
    DriverReport report = RunRandom(engine, txns, alloc, options);
    committed += report.committed;
  }
  if (hz > 0) Profiler::Stop();
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(committed), benchmark::Counter::kIsRate);
  state.counters["samples"] =
      static_cast<double>(Profiler::samples_total());
}

BENCHMARK(BM_ProfilerOverhead)->ArgName("hz")->Arg(0)->Arg(97)->Arg(997);

}  // namespace
}  // namespace mvrob

int main(int argc, char** argv) {
  // Epoch GC logs one info line per reclamation — noise at bench volume.
  mvrob::GlobalLogger().set_min_level(mvrob::LogLevel::kWarn);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
