// Workload study (DESIGN.md E12): the per-workload robustness matrix and
// optimal allocations, reproducing the folklore results the paper builds
// on — TPC-C robust against SI but not RC; SmallBank robust against
// neither (needs SSI); the auction scenario's optimum mixing all three
// levels.
#include <cstdio>

#include "core/optimal_allocation.h"
#include "core/rc_si_allocation.h"
#include "core/robustness.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/synthetic.h"
#include "workloads/tpcc.h"
#include "workloads/voter.h"
#include "workloads/ycsb.h"

namespace mvrob {
namespace {

void Report(const Workload& workload) {
  const TransactionSet& txns = workload.txns;
  std::printf("\n--- %s: %s ---\n", workload.name.c_str(),
              workload.description.c_str());
  std::printf("transactions: %zu, objects: %zu, operations: %d\n",
              txns.size(), txns.num_objects(), txns.TotalOps());

  bool rc = CheckRobustnessRC(txns).robust;
  bool si = CheckRobustnessSI(txns).robust;
  bool ssi = CheckRobustnessSSI(txns).robust;
  std::printf("robust against: A_RC=%-3s A_SI=%-3s A_SSI=%-3s\n",
              rc ? "yes" : "no", si ? "yes" : "no", ssi ? "yes" : "no");

  OptimalAllocationResult optimal = ComputeOptimalAllocation(txns);
  std::printf("optimal {RC,SI,SSI} allocation: RC=%zu SI=%zu SSI=%zu "
              "(%llu robustness checks)\n",
              optimal.allocation.CountAt(IsolationLevel::kRC),
              optimal.allocation.CountAt(IsolationLevel::kSI),
              optimal.allocation.CountAt(IsolationLevel::kSSI),
              static_cast<unsigned long long>(optimal.robustness_checks));
  if (txns.size() <= 16) {
    std::printf("  %s\n", optimal.allocation.ToString(txns).c_str());
  }

  RcSiAllocationResult rcsi = ComputeOptimalRcSiAllocation(txns);
  if (rcsi.allocatable) {
    std::printf("{RC,SI}-allocatable: yes (RC=%zu SI=%zu)\n",
                rcsi.allocation->CountAt(IsolationLevel::kRC),
                rcsi.allocation->CountAt(IsolationLevel::kSI));
  } else {
    std::printf("{RC,SI}-allocatable: no — counterexample: %s\n",
                rcsi.counterexample->ToString(txns).c_str());
  }
}

}  // namespace
}  // namespace mvrob

int main() {
  using namespace mvrob;
  std::printf("Workload robustness & allocation study\n");
  std::printf("======================================\n");

  Report(MakeTpcc(TpccParams{}));

  {
    TpccParams big;
    big.warehouses = 2;
    big.districts_per_warehouse = 3;
    big.rounds = 2;
    Report(MakeTpcc(big));
  }

  Report(MakeSmallBank(SmallBankParams{}));

  {
    SmallBankParams big;
    big.customers = 4;
    Report(MakeSmallBank(big));
  }

  Report(MakeAuction(AuctionParams{}));

  {
    VoterParams params;
    params.contestants = 3;
    params.callers = 2;
    Report(MakeVoter(params));
  }

  Report(MakeYcsb(YcsbParams::MixA()));

  {
    SyntheticParams params;
    params.num_txns = 12;
    params.num_objects = 8;
    params.min_ops = 2;
    params.max_ops = 5;
    params.write_fraction = 0.4;
    params.hotspot_fraction = 0.4;
    params.num_hotspots = 2;
    params.seed = 99;
    Workload synth{"synthetic", "12 txns, 8 objects, 40% writes, hotspot",
                   GenerateSynthetic(params)};
    Report(synth);
  }
  return 0;
}
