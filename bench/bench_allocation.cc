// Scaling benchmarks for Algorithm 2 and the {RC, SI} allocator
// (DESIGN.md E9): empirical validation of Theorem 4.3 / Theorem 5.5, with
// the number of robustness checks surfaced as a counter.
#include <benchmark/benchmark.h>

#include "core/incremental.h"
#include "core/optimal_allocation.h"
#include "core/rc_si_allocation.h"
#include "core/robustness.h"
#include "workloads/smallbank.h"
#include "workloads/synthetic.h"
#include "workloads/tpcc.h"

namespace mvrob {
namespace {

TransactionSet MakeWorkload(int num_txns, uint64_t seed) {
  SyntheticParams params;
  params.num_txns = num_txns;
  params.num_objects = std::max(4, num_txns);
  params.min_ops = 2;
  params.max_ops = 5;
  params.write_fraction = 0.4;
  params.hotspot_fraction = 0.3;
  params.num_hotspots = 2;
  params.seed = seed;
  return GenerateSynthetic(params);
}

void BM_OptimalAllocation_ScaleTxns(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeWorkload(n, 5);
  uint64_t checks = 0;
  size_t rc = 0, si = 0, ssi = 0;
  for (auto _ : state) {
    OptimalAllocationResult result = ComputeOptimalAllocation(txns);
    checks = result.robustness_checks;
    rc = result.allocation.CountAt(IsolationLevel::kRC);
    si = result.allocation.CountAt(IsolationLevel::kSI);
    ssi = result.allocation.CountAt(IsolationLevel::kSSI);
    benchmark::DoNotOptimize(result);
  }
  state.counters["txns"] = n;
  state.counters["robustness_checks"] = static_cast<double>(checks);
  state.counters["rc"] = static_cast<double>(rc);
  state.counters["si"] = static_cast<double>(si);
  state.counters["ssi"] = static_cast<double>(ssi);
}
BENCHMARK(BM_OptimalAllocation_ScaleTxns)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Arg(64)->Unit(benchmark::kMillisecond);

// Algorithm 2 with a parallel inner checker: every one of the 2|T|
// robustness checks fans its t1 loop out over the thread pool. range(0) =
// |T|, range(1) = num_threads (the allocation is identical regardless).
void BM_OptimalAllocation_Parallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  TransactionSet txns = MakeWorkload(n, 5);
  CheckOptions options;
  options.num_threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeOptimalAllocation(txns, options));
  }
  state.counters["txns"] = n;
  state.counters["threads"] = threads;
}
BENCHMARK(BM_OptimalAllocation_Parallel)
    ->Args({32, 1})->Args({32, 2})->Args({32, 4})->Args({32, 8})
    ->Args({64, 1})->Args({64, 2})->Args({64, 4})->Args({64, 8})
    ->Unit(benchmark::kMillisecond);

void BM_RcSiAllocation_ScaleTxns(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeWorkload(n, 5);
  bool allocatable = false;
  for (auto _ : state) {
    RcSiAllocationResult result = ComputeOptimalRcSiAllocation(txns);
    allocatable = result.allocatable;
    benchmark::DoNotOptimize(result);
  }
  state.counters["allocatable"] = allocatable ? 1 : 0;
}
BENCHMARK(BM_RcSiAllocation_ScaleTxns)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_OptimalAllocation_Tpcc(benchmark::State& state) {
  TpccParams params;
  params.rounds = static_cast<int>(state.range(0));
  Workload tpcc = MakeTpcc(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeOptimalAllocation(tpcc.txns));
  }
  state.counters["txns"] = static_cast<double>(tpcc.txns.size());
}
BENCHMARK(BM_OptimalAllocation_Tpcc)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_OptimalAllocation_SmallBank(benchmark::State& state) {
  SmallBankParams params;
  params.customers = static_cast<int>(state.range(0));
  Workload bank = MakeSmallBank(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeOptimalAllocation(bank.txns));
  }
  state.counters["txns"] = static_cast<double>(bank.txns.size());
}
BENCHMARK(BM_OptimalAllocation_SmallBank)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Ablation: Algorithm 2 with the reference checker (no caching) vs the
// analyzer-backed implementation used in production code.
void BM_OptimalAllocation_ReferenceChecker(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeWorkload(n, 5);
  for (auto _ : state) {
    Allocation allocation = Allocation::AllSSI(txns.size());
    for (TxnId t = 0; t < txns.size(); ++t) {
      for (IsolationLevel level :
           {IsolationLevel::kRC, IsolationLevel::kSI}) {
        Allocation candidate = allocation.With(t, level);
        if (CheckRobustness(txns, candidate).robust) {
          allocation = candidate;
          break;
        }
      }
    }
    benchmark::DoNotOptimize(allocation);
  }
}
BENCHMARK(BM_OptimalAllocation_ReferenceChecker)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Incremental maintenance: the cost of keeping the optimum current while a
// workload grows one program at a time, versus recomputing from scratch at
// the end. The checks_performed counter shows the warm-start savings.
void BM_IncrementalAllocator_GrowWorkload(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransactionSet txns = MakeWorkload(n, 5);
  uint64_t checks = 0;
  for (auto _ : state) {
    IncrementalAllocator incremental;
    for (size_t o = 0; o < txns.num_objects(); ++o) {
      incremental.InternObject(txns.ObjectName(static_cast<ObjectId>(o)));
    }
    for (TxnId t = 0; t < txns.size(); ++t) {
      const Transaction& txn = txns.txn(t);
      std::vector<Operation> ops(txn.ops().begin(), txn.ops().end() - 1);
      benchmark::DoNotOptimize(
          incremental.AddTransaction(txn.name(), std::move(ops)));
    }
    checks = incremental.checks_performed();
  }
  state.counters["total_checks"] = static_cast<double>(checks);
  state.counters["scratch_equivalent"] =
      static_cast<double>(n) * (static_cast<double>(n) + 1);  // sum 2k.
}
BENCHMARK(BM_IncrementalAllocator_GrowWorkload)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mvrob

BENCHMARK_MAIN();
