// Baseline comparison (DESIGN.md E13): the specialized homogeneous
// checkers (Fekete-style SI, Vandevoort-style RC) versus the general
// Algorithm 1 at A_SI / A_RC. Both must agree (asserted in tests); here we
// compare their cost.
#include <benchmark/benchmark.h>

#include "baseline/rc_robustness.h"
#include "baseline/si_robustness.h"
#include "core/robustness.h"
#include "workloads/synthetic.h"

namespace mvrob {
namespace {

TransactionSet MakeWorkload(int num_txns, uint64_t seed) {
  SyntheticParams params;
  params.num_txns = num_txns;
  params.num_objects = std::max(4, num_txns * 2);
  params.min_ops = 3;
  params.max_ops = 5;
  params.write_fraction = 0.4;
  params.hotspot_fraction = 0.2;
  params.num_hotspots = 2;
  params.seed = seed;
  return GenerateSynthetic(params);
}

void BM_SiBaseline(benchmark::State& state) {
  TransactionSet txns = MakeWorkload(static_cast<int>(state.range(0)), 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SiRobust(txns));
  }
}
BENCHMARK(BM_SiBaseline)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_Algorithm1AtSi(benchmark::State& state) {
  TransactionSet txns = MakeWorkload(static_cast<int>(state.range(0)), 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckRobustnessSI(txns).robust);
  }
}
BENCHMARK(BM_Algorithm1AtSi)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_RcBaseline(benchmark::State& state) {
  TransactionSet txns = MakeWorkload(static_cast<int>(state.range(0)), 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RcRobust(txns));
  }
}
BENCHMARK(BM_RcBaseline)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_Algorithm1AtRc(benchmark::State& state) {
  TransactionSet txns = MakeWorkload(static_cast<int>(state.range(0)), 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckRobustnessRC(txns).robust);
  }
}
BENCHMARK(BM_Algorithm1AtRc)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mvrob

BENCHMARK_MAIN();
