// Anomaly-rate study: for canonical two/three-transaction patterns, the
// fraction of interleavings each allocation admits (permissiveness) and
// the fraction of admitted schedules that are NOT serializable (anomaly
// rate). This quantifies the trade-off behind the paper's preference order
// RC < SI < SSI: lower levels admit more schedules but more anomalies;
// a *robust* allocation is exactly one whose anomaly rate is zero.
#include <cstdio>

#include "core/robustness.h"
#include "oracle/statistics.h"
#include "txn/parser.h"
#include "workloads/synthetic.h"

namespace mvrob {
namespace {

void Report(const char* name, const TransactionSet& txns) {
  std::printf("\n--- %s ---\n%s", name, txns.ToString().c_str());
  std::printf("  %-28s %12s %10s %12s %8s\n", "allocation", "allowed",
              "anomalous", "anomaly-rate", "robust");
  struct Row {
    const char* label;
    Allocation alloc;
  };
  std::vector<Row> rows = {
      {"A_RC", Allocation::AllRC(txns.size())},
      {"A_SI", Allocation::AllSI(txns.size())},
      {"A_SSI", Allocation::AllSSI(txns.size())},
  };
  if (txns.size() == 2) {
    rows.push_back({"T1=SSI T2=SI",
                    Allocation({IsolationLevel::kSSI, IsolationLevel::kSI})});
    rows.push_back({"T1=RC  T2=SI",
                    Allocation({IsolationLevel::kRC, IsolationLevel::kSI})});
  }
  for (const Row& row : rows) {
    StatusOr<ScheduleCensus> census = ComputeScheduleCensus(txns, row.alloc);
    if (!census.ok()) {
      std::printf("  %-28s (too large to enumerate)\n", row.label);
      continue;
    }
    bool robust = CheckRobustness(txns, row.alloc).robust;
    std::printf("  %-28s %7llu/%-4llu %10llu %11.1f%% %8s\n", row.label,
                static_cast<unsigned long long>(census->allowed),
                static_cast<unsigned long long>(census->interleavings),
                static_cast<unsigned long long>(census->anomalous),
                100.0 * census->AnomalyRate(), robust ? "yes" : "no");
  }
}

}  // namespace
}  // namespace mvrob

int main() {
  using namespace mvrob;
  std::printf("Allowed-schedule census and anomaly rates\n");
  std::printf("=========================================\n");
  std::printf("(anomaly rate 0.0%% <=> the allocation is robust — the\n");
  std::printf(" census and Algorithm 1 must agree on the yes/no column)\n");

  Report("write skew", *ParseTransactionSet(R"(
    T1: R[x] W[y]
    T2: R[y] W[x]
  )"));
  Report("lost update", *ParseTransactionSet(R"(
    T1: R[x] W[x]
    T2: R[x] W[x]
  )"));
  Report("read-only observer (SmallBank core)", *ParseTransactionSet(R"(
    T1: R[s] R[c] W[c]
    T2: R[s] W[s]
    T3: R[s] R[c]
  )"));
  Report("paper Figure 2 workload", *ParseTransactionSet(R"(
    T1: R[t]
    T2: W[t] R[v]
    T3: W[v]
    T4: R[t] R[v] W[t]
  )"));
  return 0;
}
