// Promotion benchmarks (DESIGN.md E21): what read promotion buys and what
// it costs, on the bundled workload families.
//
// Two families of numbers:
//
//  - BM_OptimizePromotions/* times the promotion search itself (greedy
//    frontier + exhaustive fallback) and reports the machine-INDEPENDENT
//    outcome as counters: weighted allocation cost before and after, and
//    the number of promotions committed. tools/bench_compare.py checks
//    these counters exactly — a changed cost is a behavior change, not
//    noise.
//
//  - BM_Throughput/* runs the MVCC engine and compares the promoted
//    workload under its optimized (cheaper) allocation against the
//    unpromoted workload under A_SSI — the safe allocation one would pick
//    without the search. Promotions trade first-updater-wins aborts on
//    the promoted rows for freedom from SSI dangerous-structure aborts.
#include <benchmark/benchmark.h>

#include <string>

#include "core/optimal_allocation.h"
#include "mvcc/driver.h"
#include "mvcc/engine.h"
#include "promote/optimizer.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

namespace mvrob {
namespace {

TransactionSet LoadWorkload(const std::string& spec) {
  StatusOr<Workload> workload = MakeNamedWorkload(spec);
  if (!workload.ok()) {
    std::abort();  // Bundled specs; a parse failure is a build bug.
  }
  return std::move(workload->txns);
}

// --------------------------------------------------------------------------
// Search cost and outcome.
// --------------------------------------------------------------------------

void BM_OptimizePromotions(benchmark::State& state, const char* spec) {
  TransactionSet txns = LoadWorkload(spec);
  PromotionPlan last;
  for (auto _ : state) {
    StatusOr<PromotionPlan> plan = OptimizePromotions(txns);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    last = *std::move(plan);
    benchmark::DoNotOptimize(last.improved);
  }
  state.counters["before_weighted"] =
      static_cast<double>(last.before_cost.weighted);
  state.counters["after_weighted"] =
      static_cast<double>(last.after_cost.weighted);
  state.counters["promotions"] = static_cast<double>(last.promotions.size());
  state.counters["allocations_computed"] =
      static_cast<double>(last.allocations_computed);
}
BENCHMARK_CAPTURE(BM_OptimizePromotions, smallbank, "smallbank:c=2")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OptimizePromotions, tpcc, "tpcc:w=1,d=2")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OptimizePromotions, auction, "auction:i=2,b=2")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OptimizePromotions, voter, "voter:c=2,p=2")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OptimizePromotions, synthetic,
                  "synthetic:n=8,o=6,w=40,h=30,seed=3")
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// Engine throughput: promoted-cheap vs unpromoted-SSI.
// --------------------------------------------------------------------------

struct ThroughputOutcome {
  uint64_t committed = 0;
  uint64_t retries = 0;
  uint64_t fuw_aborts = 0;
  uint64_t ssi_aborts = 0;
};

ThroughputOutcome RunOnce(const TransactionSet& programs,
                          const Allocation& alloc, uint64_t seed) {
  Engine engine(programs.num_objects(), EngineOptions{SsiMode::kExact});
  RandomRunOptions options;
  options.concurrency = 8;
  options.max_retries = 5;
  options.seed = seed;
  DriverReport report = RunRandom(engine, programs, alloc, options);
  ThroughputOutcome outcome;
  outcome.committed = report.committed;
  outcome.retries = report.attempts - report.committed -
                    report.aborted_programs;
  outcome.fuw_aborts = engine.stats().aborts_write_conflict;
  outcome.ssi_aborts = engine.stats().aborts_ssi;
  return outcome;
}

void ReportThroughput(benchmark::State& state, const ThroughputOutcome& total,
                      size_t programs) {
  const double iters = static_cast<double>(state.iterations());
  state.counters["commits_per_run"] =
      static_cast<double>(total.committed) / iters;
  state.counters["retries_per_run"] =
      static_cast<double>(total.retries) / iters;
  state.counters["fuw_aborts_per_run"] =
      static_cast<double>(total.fuw_aborts) / iters;
  state.counters["ssi_aborts_per_run"] =
      static_cast<double>(total.ssi_aborts) / iters;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(programs));
}

// The payoff side: the promoted workload under the cheaper allocation the
// search unlocked.
void BM_Throughput_Promoted(benchmark::State& state, const char* spec) {
  TransactionSet txns = LoadWorkload(spec);
  StatusOr<PromotionPlan> plan = OptimizePromotions(txns);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  ThroughputOutcome total;
  uint64_t seed = 17;
  for (auto _ : state) {
    ThroughputOutcome one =
        RunOnce(plan->promoted, plan->after_allocation, seed++);
    total.committed += one.committed;
    total.retries += one.retries;
    total.fuw_aborts += one.fuw_aborts;
    total.ssi_aborts += one.ssi_aborts;
  }
  ReportThroughput(state, total, plan->promoted.size());
}

// The baseline side: the unpromoted workload under all-SSI, the safe
// choice absent the search.
void BM_Throughput_UnpromotedSsi(benchmark::State& state, const char* spec) {
  TransactionSet txns = LoadWorkload(spec);
  ThroughputOutcome total;
  uint64_t seed = 17;
  for (auto _ : state) {
    ThroughputOutcome one =
        RunOnce(txns, Allocation::AllSSI(txns.size()), seed++);
    total.committed += one.committed;
    total.retries += one.retries;
    total.fuw_aborts += one.fuw_aborts;
    total.ssi_aborts += one.ssi_aborts;
  }
  ReportThroughput(state, total, txns.size());
}

#define MVROB_THROUGHPUT_PAIR(name, spec)                             \
  BENCHMARK_CAPTURE(BM_Throughput_Promoted, name, spec)               \
      ->Unit(benchmark::kMillisecond);                                \
  BENCHMARK_CAPTURE(BM_Throughput_UnpromotedSsi, name, spec)          \
      ->Unit(benchmark::kMillisecond)

MVROB_THROUGHPUT_PAIR(smallbank, "smallbank:c=2");
MVROB_THROUGHPUT_PAIR(tpcc, "tpcc:w=1,d=2");
MVROB_THROUGHPUT_PAIR(auction, "auction:i=2,b=2");
MVROB_THROUGHPUT_PAIR(voter, "voter:c=2,p=2");
MVROB_THROUGHPUT_PAIR(synthetic, "synthetic:n=8,o=6,w=40,h=30,seed=3");

#undef MVROB_THROUGHPUT_PAIR

}  // namespace
}  // namespace mvrob

BENCHMARK_MAIN();
