// MVCC execution study (DESIGN.md E11): the practical payoff of mixed
// allocations, on the engine substrate.
//
// Part 1 — footnote 1 of the paper: under contention, RC outperforms SI
// (first-updater-wins aborts cost SI commits/retries on hotspot RMW
// workloads).
//
// Part 2 — the allocation payoff on SmallBank: A_RC and A_SI are cheap but
// admit non-serializable executions; A_SSI is safe but pays dangerous-
// structure aborts for every transaction; the *optimal mixed* allocation
// (Algorithm 2) is exactly as safe with fewer aborts and retries.
#include <chrono>
#include <cstdio>

#include "core/optimal_allocation.h"
#include "iso/allowed.h"
#include "mvcc/driver.h"
#include "mvcc/trace.h"
#include "schedule/serializability.h"
#include "workloads/smallbank.h"
#include "workloads/synthetic.h"
#include "workloads/ycsb.h"

namespace mvrob {
namespace {

struct RunOutcome {
  uint64_t committed = 0;
  uint64_t gave_up = 0;
  uint64_t attempts = 0;
  uint64_t fuw_aborts = 0;   // First-updater-wins.
  uint64_t ssi_aborts = 0;
  uint64_t blocked = 0;
  uint64_t serializable_runs = 0;
  uint64_t runs = 0;
  double wall_ms = 0;
};

RunOutcome Measure(const TransactionSet& programs, const Allocation& alloc,
                   int concurrency, int repetitions,
                   SsiMode ssi_mode = SsiMode::kExact) {
  RunOutcome outcome;
  for (int rep = 0; rep < repetitions; ++rep) {
    Engine engine(programs.num_objects(), EngineOptions{ssi_mode});
    RandomRunOptions options;
    options.concurrency = concurrency;
    options.max_retries = 5;
    options.seed = static_cast<uint64_t>(rep) * 31 + 5;
    auto start = std::chrono::steady_clock::now();
    DriverReport report = RunRandom(engine, programs, alloc, options);
    auto end = std::chrono::steady_clock::now();
    outcome.wall_ms +=
        std::chrono::duration<double, std::milli>(end - start).count();
    outcome.committed += report.committed;
    outcome.gave_up += report.aborted_programs;
    outcome.attempts += report.attempts;
    outcome.fuw_aborts += engine.stats().aborts_write_conflict;
    outcome.ssi_aborts += engine.stats().aborts_ssi;
    outcome.blocked += report.blocked_steps;
    ++outcome.runs;
    StatusOr<ExportedRun> run = ExportCommittedRun(engine, programs);
    if (run.ok()) {
      StatusOr<Schedule> schedule = run->BuildSchedule();
      if (schedule.ok() && IsConflictSerializable(*schedule)) {
        ++outcome.serializable_runs;
      }
    }
  }
  return outcome;
}

void PrintRow(const char* label, const RunOutcome& o) {
  std::printf(
      "  %-14s commits=%-5llu retries=%-4llu fuw_aborts=%-4llu "
      "ssi_aborts=%-4llu blocked=%-4llu serializable=%llu/%llu "
      "wall=%.1fms\n",
      label, static_cast<unsigned long long>(o.committed),
      static_cast<unsigned long long>(o.attempts - o.committed - o.gave_up),
      static_cast<unsigned long long>(o.fuw_aborts),
      static_cast<unsigned long long>(o.ssi_aborts),
      static_cast<unsigned long long>(o.blocked),
      static_cast<unsigned long long>(o.serializable_runs),
      static_cast<unsigned long long>(o.runs), o.wall_ms);
}

void ContentionSweep() {
  std::printf("\nPart 1: RC vs SI vs SSI on hotspot read-modify-writes\n");
  std::printf("(paper footnote 1: under contention RC outperforms SI)\n");
  for (double hotspot : {0.1, 0.5, 0.9}) {
    SyntheticParams params;
    params.num_txns = 40;
    params.num_objects = 16;
    params.min_ops = 2;
    params.max_ops = 4;
    params.write_fraction = 0.5;
    params.hotspot_fraction = hotspot;
    params.num_hotspots = 2;
    params.reads_precede_writes = true;
    params.seed = 12;
    TransactionSet programs = GenerateSynthetic(params);
    std::printf("hotspot fraction %.1f:\n", hotspot);
    PrintRow("A_RC",
             Measure(programs, Allocation::AllRC(programs.size()), 8, 10));
    PrintRow("A_SI",
             Measure(programs, Allocation::AllSI(programs.size()), 8, 10));
    PrintRow("A_SSI",
             Measure(programs, Allocation::AllSSI(programs.size()), 8, 10));
  }
}

void SmallBankAllocationPayoff() {
  std::printf("\nPart 2: allocation payoff on SmallBank\n");
  SmallBankParams params;
  params.customers = 4;
  params.rounds = 3;
  Workload bank = MakeSmallBank(params);
  const TransactionSet& programs = bank.txns;
  Allocation optimal = ComputeOptimalAllocation(programs).allocation;
  std::printf("programs: %zu; optimal allocation: RC=%zu SI=%zu SSI=%zu\n",
              programs.size(), optimal.CountAt(IsolationLevel::kRC),
              optimal.CountAt(IsolationLevel::kSI),
              optimal.CountAt(IsolationLevel::kSSI));
  PrintRow("A_RC (unsafe)",
           Measure(programs, Allocation::AllRC(programs.size()), 8, 10));
  PrintRow("A_SI (unsafe)",
           Measure(programs, Allocation::AllSI(programs.size()), 8, 10));
  PrintRow("A_SSI", Measure(programs, Allocation::AllSSI(programs.size()),
                            8, 10));
  PrintRow("optimal mixed", Measure(programs, optimal, 8, 10));
  std::printf(
      "expected shape: the unsafe allocations may yield non-serializable\n"
      "runs; A_SSI and the optimal mixed allocation are always\n"
      "serializable, with the mixed allocation paying fewer aborts.\n");
}

void YcsbMixes() {
  std::printf("\nPart 3: YCSB mixes under their optimal allocations\n");
  struct Mix {
    const char* name;
    YcsbParams params;
  } mixes[] = {
      {"YCSB-A (50/50)", YcsbParams::MixA()},
      {"YCSB-B (95/5) ", YcsbParams::MixB()},
      {"YCSB-C (reads)", YcsbParams::MixC()},
      {"YCSB-F (RMW)  ", YcsbParams::MixF()},
  };
  for (Mix& mix : mixes) {
    mix.params.num_txns = 40;
    mix.params.seed = 9;
    Workload workload = MakeYcsb(mix.params);
    Allocation optimal = ComputeOptimalAllocation(workload.txns).allocation;
    std::printf("%s optimal: RC=%zu SI=%zu SSI=%zu\n", mix.name,
                optimal.CountAt(IsolationLevel::kRC),
                optimal.CountAt(IsolationLevel::kSI),
                optimal.CountAt(IsolationLevel::kSSI));
    PrintRow("  optimal", Measure(workload.txns, optimal, 8, 5));
    PrintRow("  A_SSI",
             Measure(workload.txns,
                     Allocation::AllSSI(workload.txns.size()), 8, 5));
  }
}

void SsiModeAblation() {
  std::printf("\nPart 4: exact vs conservative SSI detection (ablation)\n");
  std::printf("(DESIGN.md: the engine defaults to the exact Definition 2.4\n");
  std::printf(" check; Postgres-style pivot flags are cheaper per commit\n");
  std::printf(" but abort on false positives)\n");
  SmallBankParams params;
  params.customers = 4;
  params.rounds = 3;
  Workload bank = MakeSmallBank(params);
  Allocation all_ssi = Allocation::AllSSI(bank.txns.size());
  PrintRow("SSI exact", Measure(bank.txns, all_ssi, 8, 10, SsiMode::kExact));
  PrintRow("SSI conserv.",
           Measure(bank.txns, all_ssi, 8, 10, SsiMode::kConservative));
}

}  // namespace
}  // namespace mvrob

int main() {
  std::printf("MVCC throughput & safety study\n");
  std::printf("==============================\n");
  mvrob::ContentionSweep();
  mvrob::SmallBankAllocationPayoff();
  mvrob::YcsbMixes();
  mvrob::SsiModeAblation();
  return 0;
}
