// Template subsystem benchmarks: instantiation size versus analysis time,
// and the per-program allocations for the shipped template workloads.
#include <benchmark/benchmark.h>

#include "templates/instantiate.h"
#include "templates/library.h"
#include "templates/robustness.h"

namespace mvrob {
namespace {

void BM_Template_InstantiateTpcc(benchmark::State& state) {
  TemplateSet tpcc =
      TpccTemplates(1, static_cast<int>(state.range(0)), 2, 2, 1);
  size_t instances = 0;
  for (auto _ : state) {
    StatusOr<Instantiation> inst = InstantiateTemplates(tpcc);
    if (inst.ok()) instances = inst->txns.size();
    benchmark::DoNotOptimize(inst);
  }
  state.counters["instances"] = static_cast<double>(instances);
}
BENCHMARK(BM_Template_InstantiateTpcc)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_Template_RobustnessTpcc(benchmark::State& state) {
  TemplateSet tpcc =
      TpccTemplates(1, static_cast<int>(state.range(0)), 2, 2, 1);
  TemplateAllocation all_si(tpcc.size(), IsolationLevel::kSI);
  bool robust = false;
  for (auto _ : state) {
    StatusOr<TemplateRobustnessResult> result =
        CheckTemplateRobustness(tpcc, all_si);
    if (result.ok()) robust = result->robust;
    benchmark::DoNotOptimize(result);
  }
  state.counters["robust"] = robust ? 1 : 0;
}
BENCHMARK(BM_Template_RobustnessTpcc)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_Template_OptimalAllocation(benchmark::State& state) {
  TemplateSet set =
      state.range(0) == 0 ? SmallBankTemplates() : AuctionTemplates();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeOptimalTemplateAllocation(set));
  }
}
BENCHMARK(BM_Template_OptimalAllocation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mvrob

BENCHMARK_MAIN();
