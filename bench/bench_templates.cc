// Template subsystem benchmarks: instantiation size versus analysis time,
// the per-program allocations for the shipped template workloads, and the
// allocation-quality outcomes of the v2 predicate/constraint refinement.
//
// BM_Template_ConstraintShowcase attaches the machine-INDEPENDENT outcome
// of the documented showcase as counters (before_weighted under the
// distinct-parameter rule, after_weighted under the declared constraint,
// promotions from the template-granularity promotion search);
// tools/bench_compare.py checks those exactly, so a changed allocation
// cost fails the gate as a behavior change rather than timing noise.
#include <benchmark/benchmark.h>

#include "templates/instantiate.h"
#include "templates/library.h"
#include "templates/predicate.h"
#include "templates/promote.h"
#include "templates/robustness.h"

namespace mvrob {
namespace {

// Weighted cost of a per-template allocation under the default promotion
// weights (RC free, SI 1, SSI 2).
double Weighted(const TemplateAllocation& levels) {
  return static_cast<double>(
      ComputeAllocationCost(Allocation(levels), PromoteOptions{}).weighted);
}

void BM_Template_InstantiateTpcc(benchmark::State& state) {
  TemplateSet tpcc =
      TpccTemplates(1, static_cast<int>(state.range(0)), 2, 2, 1);
  size_t instances = 0;
  for (auto _ : state) {
    StatusOr<Instantiation> inst = InstantiateTemplates(tpcc);
    if (inst.ok()) instances = inst->txns.size();
    benchmark::DoNotOptimize(inst);
  }
  state.counters["instances"] = static_cast<double>(instances);
}
BENCHMARK(BM_Template_InstantiateTpcc)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_Template_RobustnessTpcc(benchmark::State& state) {
  TemplateSet tpcc =
      TpccTemplates(1, static_cast<int>(state.range(0)), 2, 2, 1);
  TemplateAllocation all_si(tpcc.size(), IsolationLevel::kSI);
  bool robust = false;
  for (auto _ : state) {
    StatusOr<TemplateRobustnessResult> result =
        CheckTemplateRobustness(tpcc, all_si);
    if (result.ok()) robust = result->robust;
    benchmark::DoNotOptimize(result);
  }
  state.counters["robust"] = robust ? 1 : 0;
}
BENCHMARK(BM_Template_RobustnessTpcc)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_Template_OptimalAllocation(benchmark::State& state) {
  TemplateSet set =
      state.range(0) == 0 ? SmallBankTemplates() : AuctionTemplates();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeOptimalTemplateAllocation(set));
  }
}
BENCHMARK(BM_Template_OptimalAllocation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The documented "constraint buys a cheaper allocation" case
// (docs/templates.md): under the distinct-parameter rule the showcase
// needs all-SSI (weighted 4); with `constraint Move: src == dst` the
// optimum drops to all-SI (weighted 2); promoting Audit's range read then
// reaches Audit=RC. All three numbers are exact-gated.
void BM_Template_ConstraintShowcase(benchmark::State& state) {
  TemplateSet baseline = ConstraintShowcaseTemplates(false);
  TemplateSet constrained = ConstraintShowcaseTemplates(true);
  TemplateAllocation before_levels;
  TemplateAllocation after_levels;
  size_t promotions = 0;
  for (auto _ : state) {
    StatusOr<TemplateAllocationResult> before =
        ComputeOptimalTemplateAllocation(baseline);
    StatusOr<TemplateAllocationResult> after =
        ComputeOptimalTemplateAllocation(constrained);
    StatusOr<TemplatePromotionPlan> plan =
        OptimizeTemplatePromotions(constrained);
    if (before.ok()) before_levels = before->levels;
    if (after.ok()) after_levels = after->levels;
    if (plan.ok()) promotions = plan->promotions.size();
    benchmark::DoNotOptimize(plan);
  }
  state.counters["before_weighted"] = Weighted(before_levels);
  state.counters["after_weighted"] = Weighted(after_levels);
  state.counters["promotions"] = static_cast<double>(promotions);
}
BENCHMARK(BM_Template_ConstraintShowcase)->Unit(benchmark::kMillisecond);

// Cost of the refined template-pair conflict analysis on the range-scan
// TPC-C flavor, as the item domain (and with it every scan width) grows.
void BM_Template_ScanConflictAnalysis(benchmark::State& state) {
  TemplateSet scan = TpccScanTemplates(static_cast<int>(state.range(0)));
  int conflicting = 0;
  int baseline = 0;
  for (auto _ : state) {
    StatusOr<TemplateConflictAnalysis> analysis =
        AnalyzeTemplateConflicts(scan);
    if (analysis.ok()) {
      conflicting = analysis->conflicting_pairs;
      baseline = analysis->baseline_conflicting_pairs;
    }
    benchmark::DoNotOptimize(analysis);
  }
  state.counters["conflicting_pairs"] = conflicting;
  state.counters["baseline_pairs"] = baseline;
}
BENCHMARK(BM_Template_ScanConflictAnalysis)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// End-to-end allocation with predicate reads in the set: the range scan
// expands per instance, and the conflict relation prunes the analyzers.
void BM_Template_ScanAllocation(benchmark::State& state) {
  TemplateSet scan = TpccScanTemplates(static_cast<int>(state.range(0)));
  size_t ssi = 0;
  for (auto _ : state) {
    StatusOr<TemplateAllocationResult> result =
        ComputeOptimalTemplateAllocation(scan);
    if (result.ok()) {
      ssi = 0;
      for (IsolationLevel level : result->levels) {
        if (level == IsolationLevel::kSSI) ++ssi;
      }
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["ssi_templates"] = static_cast<double>(ssi);
}
BENCHMARK(BM_Template_ScanAllocation)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mvrob

BENCHMARK_MAIN();
