// Allocation-lattice census: for small workloads, how rare are robust
// allocations within the 3^|T| lattice, and how far below A_SSI does the
// unique optimum sit? Quantifies the value of computing the optimum rather
// than guessing (the fraction of robust allocations is the probability a
// random assignment is safe).
#include <cstdio>

#include "core/optimal_allocation.h"
#include "oracle/exhaustive_allocation.h"
#include "txn/parser.h"
#include "workloads/registry.h"
#include "workloads/stats.h"

namespace mvrob {
namespace {

void Report(const char* name, const TransactionSet& txns) {
  std::printf("\n--- %s ---\n", name);
  std::printf("%s\n", ComputeWorkloadStats(txns).ToString().c_str());
  StatusOr<ExhaustiveAllocationResult> lattice = EnumerateRobustAllocations(
      txns, {IsolationLevel::kRC, IsolationLevel::kSI, IsolationLevel::kSSI},
      RobustnessOracle::kAlgorithm, /*max_candidates=*/600'000);
  if (!lattice.ok()) {
    std::printf("lattice too large: %s\n",
                lattice.status().ToString().c_str());
    return;
  }
  uint64_t total = 1;
  for (size_t i = 0; i < txns.size(); ++i) total *= 3;
  std::printf("robust allocations: %zu of %llu (%.2f%%)\n",
              lattice->robust_allocations.size(),
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(lattice->robust_allocations.size()) /
                  static_cast<double>(total));
  Allocation optimal = ComputeOptimalAllocation(txns).allocation;
  std::printf("optimum: RC=%zu SI=%zu SSI=%zu  (A_SSI would use SSI=%zu)\n",
              optimal.CountAt(IsolationLevel::kRC),
              optimal.CountAt(IsolationLevel::kSI),
              optimal.CountAt(IsolationLevel::kSSI), txns.size());
}

}  // namespace
}  // namespace mvrob

int main() {
  using namespace mvrob;
  std::printf("Robust-allocation lattice census\n");
  std::printf("================================\n");

  Report("write skew + auditor", *ParseTransactionSet(R"(
    T1: R[x] W[y]
    T2: R[y] W[x]
    T3: R[x] R[y]
  )"));
  Report("lost-update clique (4)", *ParseTransactionSet(R"(
    T1: R[h] W[h]
    T2: R[h] W[h]
    T3: R[h] W[h]
    T4: R[h] W[h]
  )"));
  Report("smallbank (2 customers)",
         MakeNamedWorkload("smallbank:c=2")->txns);
  Report("auction", MakeNamedWorkload("auction")->txns);
  Report("paper Figure 2 workload", *ParseTransactionSet(R"(
    T1: R[t]
    T2: W[t] R[v]
    T3: W[v]
    T4: R[t] R[v] W[t]
  )"));
  return 0;
}
