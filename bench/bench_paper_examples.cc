// Regenerates the paper's worked artifacts (DESIGN.md E1-E5):
//  - Figure 2: the schedule s with its version function and version order;
//  - Figure 3: SeG(s) with the cycle witnessing non-serializability;
//  - Example 2.5: the full allocation analysis of s;
//  - Figure 4 / Example 2.6: the mixed-allocation asymmetry;
//  - Figure 5 / Example 5.2: SI-allowed but not RC-allowed;
//  - Figure 1 / Definition 3.1: a concrete multiversion split schedule
//    produced by Algorithm 1 for a non-robust allocation.
#include <cstdio>

#include "core/robustness.h"
#include "core/split_schedule.h"
#include "iso/allowed.h"
#include "schedule/serializability.h"
#include "schedule/serialization_graph.h"
#include "txn/parser.h"

namespace mvrob {
namespace {

Schedule MustCreate(StatusOr<Schedule> schedule) {
  if (!schedule.ok()) {
    std::fprintf(stderr, "fixture error: %s\n",
                 schedule.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(schedule).value();
}

void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

void Figure2And3AndExample25() {
  TransactionSet txns = *ParseTransactionSet(R"(
    T1: R[t]
    T2: W[t] R[v]
    T3: W[v]
    T4: R[t] R[v] W[t]
  )");
  std::vector<OpRef> order = *ParseScheduleOrder(
      txns, "W2[t] R4[t] W3[v] C3 R2[v] R1[t] C2 R4[v] W4[t] C4 C1");
  VersionFunction versions{{OpRef{0, 0}, OpRef::Op0()},
                           {OpRef{1, 1}, OpRef::Op0()},
                           {OpRef{3, 0}, OpRef::Op0()},
                           {OpRef{3, 1}, OpRef{2, 0}}};
  VersionOrder version_order;
  version_order[txns.FindObject("t")] = {OpRef{1, 0}, OpRef{3, 2}};
  version_order[txns.FindObject("v")] = {OpRef{2, 0}};
  Schedule s = MustCreate(
      Schedule::Create(&txns, order, versions, version_order));

  PrintHeader("Figure 2: schedule s (reads annotated with v_s)");
  std::printf("%s\n", s.ToString(/*with_versions=*/true).c_str());

  PrintHeader("Figure 3: serialization graph SeG(s)");
  SerializationGraph graph = SerializationGraph::Build(s);
  std::printf("%s", graph.ToString(txns).c_str());
  auto cycle = graph.FindCycle();
  std::printf("conflict serializable: %s\n",
              IsConflictSerializable(s) ? "yes" : "NO");
  if (cycle.has_value()) {
    std::printf("cycle:");
    for (const Dependency& edge : *cycle) {
      std::printf(" %s->%s", txns.txn(edge.from).name().c_str(),
                  txns.txn(edge.to).name().c_str());
    }
    std::printf("\n");
  }

  PrintHeader("Example 2.5: which allocations allow s");
  for (const char* alloc_text :
       {"T1=SI T2=SI T3=SI T4=RC", "T1=SSI T2=SSI T3=SSI T4=RC",
        "T1=RC T2=RC T3=RC T4=RC", "T1=SI T2=RC T3=SI T4=RC",
        "T1=SI T2=SI T3=SI T4=SI"}) {
    Allocation alloc =
        *ParseAllocation(txns, alloc_text, IsolationLevel::kSI);
    AllowedCheckResult result = CheckAllowedUnder(s, alloc);
    std::printf("  %-28s -> %s\n", alloc_text,
                result.allowed ? "allowed" : "not allowed");
    for (const std::string& violation : result.violations) {
      std::printf("      %s\n", violation.c_str());
    }
  }
}

void Example26() {
  PrintHeader("Figure 4 / Example 2.6: asymmetry of mixed allocations");
  TransactionSet txns = *ParseTransactionSet(R"(
    T1: W[v]
    T2: R[v] W[v]
  )");
  Schedule s = MustCreate(Schedule::Create(
      &txns, *ParseScheduleOrder(txns, "W1[v] R2[v] C1 W2[v] C2"),
      VersionFunction{{OpRef{1, 0}, OpRef::Op0()}},
      VersionOrder{{txns.FindObject("v"), {OpRef{0, 0}, OpRef{1, 1}}}}));
  std::printf("s = %s\n", s.ToString().c_str());
  struct Case {
    const char* name;
    Allocation alloc;
  } cases[] = {
      {"A1 = (T1=SI,  T2=SI)", Allocation::AllSI(2)},
      {"A2 = (T1=RC,  T2=SI)",
       Allocation({IsolationLevel::kRC, IsolationLevel::kSI})},
      {"A3 = (T1=SI,  T2=RC)",
       Allocation({IsolationLevel::kSI, IsolationLevel::kRC})},
  };
  for (const Case& c : cases) {
    std::printf("  %s -> %s\n", c.name,
                AllowedUnder(s, c.alloc) ? "allowed" : "not allowed");
  }
}

void Example52() {
  PrintHeader("Figure 5 / Example 5.2: allowed under SI but not under RC");
  TransactionSet txns = *ParseTransactionSet(R"(
    T1: W[t]
    T2: R[v] R[t]
  )");
  Schedule s = MustCreate(Schedule::Create(
      &txns, *ParseScheduleOrder(txns, "W1[t] R2[v] C1 R2[t] C2"),
      VersionFunction{{OpRef{1, 0}, OpRef::Op0()},
                      {OpRef{1, 1}, OpRef::Op0()}},
      VersionOrder{{txns.FindObject("t"), {OpRef{0, 0}}}}));
  std::printf("s = %s\n", s.ToString(/*with_versions=*/true).c_str());
  std::printf("  allowed under A_SI: %s\n",
              AllowedUnder(s, Allocation::AllSI(2)) ? "yes" : "no");
  std::printf("  allowed under A_RC: %s\n",
              AllowedUnder(s, Allocation::AllRC(2)) ? "yes" : "no");
}

void Figure1SplitSchedule() {
  PrintHeader("Figure 1 / Definition 3.1: a multiversion split schedule");
  TransactionSet txns = *ParseTransactionSet(R"(
    T1: R[x] W[y]
    T2: W[x] W[b]
    T3: R[b] R[y]
  )");
  Allocation alloc = Allocation::AllSI(3);
  RobustnessResult result = CheckRobustness(txns, alloc);
  std::printf("workload:\n%s", txns.ToString().c_str());
  std::printf("allocation: %s\n", alloc.ToString(txns).c_str());
  std::printf("robust: %s\n", result.robust ? "yes" : "NO");
  if (!result.robust) {
    std::printf("counterexample chain: %s\n",
                result.counterexample->ToString(txns).c_str());
    StatusOr<Schedule> schedule =
        BuildSplitSchedule(txns, alloc, *result.counterexample);
    std::printf("split schedule: %s\n", schedule->ToString().c_str());
    std::printf("  allowed under allocation: %s\n",
                AllowedUnder(*schedule, alloc) ? "yes" : "no");
    std::printf("  conflict serializable:    %s\n",
                IsConflictSerializable(*schedule) ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace mvrob

int main() {
  mvrob::Figure2And3AndExample25();
  mvrob::Example26();
  mvrob::Example52();
  mvrob::Figure1SplitSchedule();
  return 0;
}
