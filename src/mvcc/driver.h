#ifndef MVROB_MVCC_DRIVER_H_
#define MVROB_MVCC_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "iso/allocation.h"
#include "mvcc/engine.h"
#include "txn/transaction_set.h"

namespace mvrob {

class TxnTracer;
class Watchdog;
class WindowedCounter;
class WindowedHistogram;

/// Sliding-window instruments the random driver updates per commit/abort,
/// keyed by the transaction's isolation level — the live per-level
/// throughput / abort-rate / latency series behind `mvrob serve`. All
/// pointers may be null (that series is simply skipped); resolve a full
/// set from a registry with MakeLiveTelemetry. Latency is wall time from
/// the attempt's Begin to its successful Commit, in microseconds.
struct LiveTelemetry {
  struct PerLevel {
    WindowedCounter* commits = nullptr;
    WindowedCounter* aborts_write_conflict = nullptr;
    WindowedCounter* aborts_ssi = nullptr;
    WindowedCounter* aborts_deadlock = nullptr;
    WindowedHistogram* commit_latency_us = nullptr;
  };
  /// Indexed by static_cast<size_t>(IsolationLevel).
  PerLevel per_level[kAllIsolationLevels.size()];
};

/// Resolves the full per-level instrument set on `registry` using the
/// labeled-name convention consumed by the Prometheus renderer
/// (e.g. "mvcc.live.commits{level=SI}").
LiveTelemetry MakeLiveTelemetry(MetricsRegistry& registry,
                                uint32_t window_seconds = 60);

/// Summary of a driver run.
struct DriverReport {
  uint64_t committed = 0;
  uint64_t aborted_programs = 0;  // Programs that exhausted their retries.
  uint64_t attempts = 0;          // Sessions started (retries included).
  uint64_t blocked_steps = 0;
  uint64_t deadlock_victims = 0;
  /// For exact runs: the session executing each program transaction.
  std::vector<SessionId> session_of_program;
};

/// Replays an exact operation interleaving (an order over `programs` as
/// accepted by Schedule::Create) against the engine, one engine call per
/// operation. Each program transaction starts its session at its first
/// operation, so SI/SSI snapshots anchor at first(T) exactly as in the
/// formal model.
///
/// Fails with FailedPrecondition if any step blocks or aborts — callers
/// replay schedules (e.g. Algorithm 1 counterexamples) that are expected to
/// run clean, and a refusal is itself meaningful signal.
StatusOr<DriverReport> RunExactInterleaving(Engine& engine,
                                            const TransactionSet& programs,
                                            const Allocation& alloc,
                                            const std::vector<OpRef>& order);

/// Options for randomized concurrent execution.
struct RandomRunOptions {
  /// Programs concurrently in flight.
  int concurrency = 4;
  /// Retries per program after engine-initiated aborts.
  int max_retries = 5;
  uint64_t seed = 0;
  /// Hard stop (steps across all sessions) against livelock.
  uint64_t max_steps = 10'000'000;
  /// Optional observability sink for driver-level counters (driver.runs,
  /// driver.committed, ...) and the driver.run_random phase span. Null
  /// disables; does not affect the run.
  MetricsRegistry* metrics = nullptr;
  /// Cooperative cancellation: when non-null, checked between steps, and
  /// the run returns as soon as it is set. Required for serve mode, where
  /// the loop otherwise never ends.
  const std::atomic<bool>* stop = nullptr;
  /// Continuous (serve) mode: a program that commits or exhausts its
  /// retries is reset and re-enqueued, so the run ends only via `stop` or
  /// `max_steps`. Version GC is epoch-driven (see commits_per_epoch) to
  /// keep the version store bounded. Scheduling stays deterministic for a
  /// fixed seed and step budget.
  bool continuous = false;
  /// Live windowed per-isolation-level instruments (serve mode). Null
  /// disables; like `metrics`, attaching it never changes the run.
  const LiveTelemetry* live = nullptr;
  /// Engine worker threads. 1 selects the deterministic single-threaded
  /// driver (RunRandom); > 1 selects the many-core engine path
  /// (RunConcurrent in mvcc/concurrent_driver.h), which executes programs
  /// on engine_threads OS threads. Ignored by RunRandom itself.
  int engine_threads = 1;
  // Note: key-space sharding is an engine-construction knob, not a run
  // knob — set ConcurrentEngineOptions::num_shards (CLI --engine-shards)
  // when building the ConcurrentEngine.
  /// Continuous mode: commits per version-reclamation epoch. Every
  /// commits_per_epoch commits the driver (or the concurrent engine)
  /// reclaims versions below the oldest live snapshot and logs one
  /// structured "mvcc.gc" line with the reclaimed count. 0 disables GC.
  uint64_t commits_per_epoch = 4096;
  /// Optional transaction tracer (mvcc/txn_trace.h). The driver owns the
  /// flow lifecycle: one flow per logical program execution, one attempt
  /// span per engine session, ops on sampled flows, and attribution of
  /// its own aborts (deadlock victims; the concurrent driver's no-wait
  /// lock conflicts). Null disables tracing entirely; attaching a tracer
  /// never changes scheduling — runs stay bit-identical.
  TxnTracer* tracer = nullptr;
  /// Optional stall watchdog (common/watchdog.h). The drivers register a
  /// heartbeat-carrying scope per driving thread and beat it as steps
  /// retire, so a wedged engine phase (latch cycle, runaway GC sweep)
  /// surfaces as a symbolized stall dump instead of silent hang. Null
  /// (the default) disables monitoring; like tracer/metrics, attaching it
  /// never changes the run.
  Watchdog* watchdog = nullptr;
};

/// Executes every program of `programs` once (plus retries) under the
/// allocation, interleaving up to `concurrency` sessions uniformly at
/// random. Blocked sessions wait for their blocker; deadlocks are broken by
/// aborting the youngest session, which then retries. The throughput
/// benchmarks measure commits against engine steps and wall time.
DriverReport RunRandom(Engine& engine, const TransactionSet& programs,
                       const Allocation& alloc,
                       const RandomRunOptions& options);

}  // namespace mvrob

#endif  // MVROB_MVCC_DRIVER_H_
