#ifndef MVROB_MVCC_CONCURRENT_ENGINE_H_
#define MVROB_MVCC_CONCURRENT_ENGINE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "mvcc/engine.h"

namespace mvrob {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class ScheduleRecorder;
class TxnTracer;
class Watchdog;
struct EngineEvent;

/// Tuning knobs for the many-core engine.
struct ConcurrentEngineOptions {
  /// Key-space partitions. Each shard owns object ids congruent to its
  /// index and has one latch guarding its version chains and row locks.
  /// 0 picks a default (4x the worker count, at least 16).
  size_t num_shards = 0;
  /// SSI detection. The conservative pivot check reads *active* sessions
  /// and is only sound single-threaded, so the concurrent engine always
  /// runs the exact Definition 2.4 check over committed SSI sessions;
  /// kConservative is accepted and silently upgraded to kExact.
  SsiMode ssi_mode = SsiMode::kExact;
  /// Writer commits per garbage-collection epoch. When a worker's commit
  /// crosses an epoch boundary it reclaims every version no published
  /// snapshot can observe (the concurrent replacement for the driver's
  /// periodic Vacuum). 0 disables epoch GC.
  uint64_t commits_per_epoch = 4096;
  /// Optional observability sink. Beyond the single-threaded engine's
  /// mvcc.* families this exports per-shard telemetry
  /// (mvcc.shard.versions{shard=K}, mvcc.shard.lock_wait_us{shard=K}) and
  /// the epoch-GC series (mvcc.gc.reclaimed, mvcc.gc.epochs,
  /// mvcc.gc.horizon). Null disables all instrumentation.
  MetricsRegistry* metrics = nullptr;
  /// Optional schedule recorder. Event appends are serialized on an
  /// internal mutex (sessions still execute concurrently); the log
  /// round-trips through `mvrob validate` exactly like a single-threaded
  /// recording. Null disables recording.
  ScheduleRecorder* recorder = nullptr;
  /// Optional transaction tracer (mvcc/txn_trace.h): causal attribution of
  /// engine-initiated aborts (first-updater-wins, SSI dangerous
  /// structure), same nullable zero-cost contract as the single-threaded
  /// engine. The tracer serializes internally on one mutex; attribution
  /// facts are captured under the owning shard/commit latch, so they are
  /// consistent with the abort decision.
  TxnTracer* tracer = nullptr;
  /// Optional stall watchdog: epoch GC sweeps run under a monitored scope
  /// so a sweep wedged on a shard latch produces a symbolized stall dump.
  /// Null disables (the usual zero-cost-when-detached contract).
  Watchdog* watchdog = nullptr;
};

/// The many-core MVCC engine: the same Postgres-modeled semantics as
/// `Engine` (buffered writes installed at commit, row locks against dirty
/// writes, first-updater-wins for SI/SSI, exact Definition 2.4 SSI
/// checks), executed by `num_workers` threads in parallel.
///
/// Concurrency design:
///
///  - the version store is key-space partitioned: shard latches guard the
///    version chains and row locks, so reads and writes of disjoint
///    shards never contend;
///  - commits that install versions serialize on one commit mutex: the
///    commit timestamp is allocated, versions installed, and only then
///    the global clock published, so an RC read at clock c never observes
///    half of a commit. Read-only RC/SI commits skip the mutex entirely;
///  - writers follow a no-wait policy: a write that hits a foreign row
///    lock returns kBlocked immediately and the driver aborts + retries,
///    so no cross-thread deadlock detection is needed;
///  - every operation gets a 64-bit step key `(clock << 32) | seq` from
///    the clock value it observed and a global tie-break counter; commits
///    installing at timestamp ts take key `ts << 32`. Because a commit's
///    key is derived from the timestamp it publishes, sorting any run by
///    step key yields a legal sequential interleaving: a version is
///    visible to an operation iff its commit key precedes the operation's
///    key. This is the commit-ordering layer that lets concurrent runs
///    round-trip through the formal checker unchanged;
///  - SI/SSI snapshots anchor at the session's *first operation* (the
///    formal model's first(T)), not at Begin: the first read/write
///    samples the clock under its shard latch and that sample is both the
///    snapshot and the key's clock component;
///  - version reclamation is epoch-based: workers publish their session's
///    snapshot in a per-worker slot, and every `commits_per_epoch`
///    commits one worker sweeps all shards at the minimum published
///    horizon, logging a structured mvcc.gc line per reclamation.
///
/// Sessions live in a deque (stable addresses); committed SSI records are
/// published into a registry under the commit mutex and are immutable
/// afterwards, which keeps the exact SSI check race-free.
///
/// Each worker index executes at most one session at a time (Begin
/// retires the worker's previous session handle). Total operations per
/// engine instance must stay below 2^32 so step keys cannot collide; the
/// drivers' max_steps budgets are far below that.
class ConcurrentEngine {
 public:
  ConcurrentEngine(size_t num_objects, size_t num_workers,
                   ConcurrentEngineOptions options = {});
  ~ConcurrentEngine();

  ConcurrentEngine(const ConcurrentEngine&) = delete;
  ConcurrentEngine& operator=(const ConcurrentEngine&) = delete;

  /// Starts a session at `level` on behalf of `worker`. SI/SSI snapshots
  /// are taken lazily at the session's first operation.
  SessionId Begin(size_t worker, IsolationLevel level);

  /// Reads `object` in the worker's active session. Never blocks beyond
  /// the shard latch.
  ReadResult Read(size_t worker, ObjectId object);

  /// Writes `object` (buffered until commit). Returns kBlocked without
  /// waiting when another active session holds the row lock (no-wait);
  /// the caller aborts and retries.
  WriteResult Write(size_t worker, ObjectId object, Value value);

  /// Commits the worker's active session, installing its writes under the
  /// global commit order.
  CommitResult Commit(size_t worker);

  /// Aborts the worker's active session (caller-initiated, e.g. after a
  /// no-wait lock conflict).
  void Abort(size_t worker);

  /// Sweeps all shards, reclaiming versions below the minimum published
  /// snapshot horizon. Runs automatically every commits_per_epoch writer
  /// commits; callable directly for tests. Returns versions reclaimed
  /// (0 when another worker's sweep is already in flight).
  size_t RunEpochGc();

  size_t num_objects() const;
  size_t num_workers() const { return num_workers_; }
  size_t num_shards() const { return num_shards_; }
  /// Published global clock (the newest commit timestamp).
  Timestamp clock() const { return clock_.load(std::memory_order_acquire); }
  uint64_t gc_epochs() const { return gc_epochs_.load(); }
  uint64_t gc_reclaimed() const { return gc_reclaimed_.load(); }

  // ---- Quiescent accessors: callers must ensure no worker is inside an
  // engine call (the drivers join their threads first). ----

  /// Copies all session records (ids are positions), in the shape
  /// ExportCommittedSessions expects.
  std::vector<SessionRecord> SessionSnapshot() const;
  /// Aggregated per-worker counters.
  EngineStats stats() const;
  /// Stored versions across all shards (initial versions included).
  size_t TotalVersions() const;
  size_t num_sessions() const;

 private:
  struct Shard;
  struct WorkerSlot;

  uint64_t NextKey(Timestamp clock_value) {
    return (clock_value << 32) |
           ((seq_.fetch_add(1, std::memory_order_relaxed) + 1) & 0xffffffffull);
  }
  /// A non-advancing key for informational events (begin/blocked/abort).
  uint64_t CurrentKey() const {
    return (clock_.load(std::memory_order_relaxed) << 32) |
           (seq_.load(std::memory_order_relaxed) & 0xffffffffull);
  }
  Shard& ShardOf(ObjectId object);
  void LockShard(Shard& shard);
  void AbortInternal(WorkerSlot& slot, AbortReason reason);
  void ReleaseRowLocks(const SessionRecord& record, SessionId id);
  void RecordEvent(const EngineEvent& event);
  /// Drops committed-SSI registry entries that can no longer join a
  /// dangerous structure with any active or future session. Caller holds
  /// commit_mu_.
  void PruneSsiRegistryLocked();

  ConcurrentEngineOptions options_;
  size_t num_workers_;
  size_t num_shards_;
  VersionStore store_;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<WorkerSlot[]> workers_;

  /// Session table: the deque gives stable addresses under push_back, so
  /// registry pointers and worker handles survive concurrent Begins.
  mutable std::mutex session_mu_;
  std::deque<SessionRecord> sessions_;

  std::atomic<Timestamp> clock_{0};
  std::atomic<uint64_t> seq_{0};

  /// Serializes version-installing commits (and all SSI commits).
  std::mutex commit_mu_;
  /// Committed SSI sessions still relevant for dangerous structures;
  /// guarded by commit_mu_.
  std::vector<std::pair<SessionId, const SessionRecord*>> ssi_committed_;

  std::atomic<uint64_t> writer_commits_{0};
  std::atomic<bool> gc_running_{false};
  std::atomic<uint64_t> gc_epochs_{0};
  std::atomic<uint64_t> gc_reclaimed_{0};

  std::mutex record_mu_;

  // Engine-wide metric handles (null when options_.metrics is null).
  Counter* m_begins_ = nullptr;
  Counter* m_reads_ = nullptr;
  Counter* m_writes_ = nullptr;
  Counter* m_commits_ = nullptr;
  Counter* m_aborts_write_conflict_ = nullptr;
  Counter* m_aborts_ssi_ = nullptr;
  Counter* m_aborts_user_ = nullptr;
  Counter* m_blocked_steps_ = nullptr;
  Histogram* m_version_chain_len_ = nullptr;
  Counter* m_gc_reclaimed_ = nullptr;
  Counter* m_gc_epochs_ = nullptr;
  Gauge* m_gc_horizon_ = nullptr;
};

}  // namespace mvrob

#endif  // MVROB_MVCC_CONCURRENT_ENGINE_H_
