#ifndef MVROB_MVCC_RECORDER_H_
#define MVROB_MVCC_RECORDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "mvcc/engine.h"
#include "mvcc/trace.h"

namespace mvrob {

/// What happened at one engine step. Every event carries the session and
/// the engine's global step counter at the moment it was recorded, so the
/// log is a total order over the execution.
enum class EngineEventKind : uint8_t {
  kBegin,    // Session started (level, snapshot timestamp).
  kRead,     // Read with the observed version's writer + commit timestamp.
  kWrite,    // Buffered write (value recorded for replay).
  kBlocked,  // Write blocked on a row lock (blocker in version_writer).
  kCommit,   // Commit with its commit timestamp.
  kAbort,    // Abort with its reason (engine- or user-initiated).
};

const char* EngineEventKindToString(EngineEventKind kind);
const char* AbortReasonToString(AbortReason reason);

/// One recorded engine event. Fields are kind-dependent; unused fields
/// keep their zero values so events compare bitwise for the round-trip
/// tests.
struct EngineEvent {
  EngineEventKind kind = EngineEventKind::kBegin;
  SessionId session = kInvalidSessionId;
  /// Engine step counter when the event was recorded. Begin and blocked
  /// writes do not advance the counter; they carry the current value.
  uint64_t step = 0;
  IsolationLevel level = IsolationLevel::kRC;  // kBegin.
  ObjectId object = kInvalidObjectId;  // kRead / kWrite / kBlocked.
  Value value = 0;                     // kRead / kWrite.
  /// kRead: session that wrote the observed version (kInvalidSessionId =
  /// initial version). kBlocked: the lock-holding session.
  SessionId version_writer = kInvalidSessionId;
  /// kRead: commit timestamp of the observed version. kBegin: the
  /// session's snapshot timestamp.
  Timestamp version_ts = 0;
  bool own_write = false;                    // kRead from the own buffer.
  AbortReason reason = AbortReason::kNone;   // kAbort.
  Timestamp commit_ts = 0;                   // kCommit.

  friend bool operator==(const EngineEvent&, const EngineEvent&) = default;
};

/// A ring-buffered event log for the MVCC engine: attach via
/// EngineOptions::recorder and the engine records every
/// begin/read/write/commit/abort (and blocked write) as it executes. The
/// buffer keeps the most recent `capacity` events; older events are
/// dropped and counted, so recording long runs is safe at fixed memory.
///
/// Exports:
///  - ToText(): a replayable schedule file (see docs/formats.md) that
///    ParseRecordedSchedule() reads back verbatim — the round-trip the
///    validator relies on;
///  - ToChromeTrace(): a trace_event timeline (chrome://tracing,
///    Perfetto) with one track per session, steps as timestamps.
class ScheduleRecorder {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  explicit ScheduleRecorder(size_t capacity = kDefaultCapacity);

  void Record(const EngineEvent& event);

  /// Events in recording order (oldest surviving first).
  std::vector<EngineEvent> Events() const;

  uint64_t total_recorded() const { return total_; }
  /// Events lost to the ring bound. A faithful replay requires 0.
  uint64_t dropped() const {
    return total_ > buffer_.size() ? total_ - buffer_.size() : 0;
  }
  size_t capacity() const { return capacity_; }
  void Clear();

  /// The replayable schedule file: header, one line per event, and
  /// trailing version-order comments. `object_names` supplies display
  /// names (ids must match the engine's).
  std::string ToText(const TransactionSet& object_names) const;

  /// Chrome trace_event JSON: per-session lifetime spans plus one slice
  /// per operation, with the engine step counter as the timebase.
  std::string ToChromeTrace(const TransactionSet& object_names) const;

 private:
  size_t capacity_;
  std::vector<EngineEvent> buffer_;  // Ring; start_ is the oldest index.
  size_t start_ = 0;
  uint64_t total_ = 0;
};

/// Parses a recorded schedule file back into events. Object names resolve
/// against `object_names` (unknown objects are an error); comment lines
/// (`#`) and the version-order trailer are skipped. Round-trip contract:
/// ParseRecordedSchedule(recorder.ToText(t), t) == recorder.Events()
/// whenever nothing was dropped.
StatusOr<std::vector<EngineEvent>> ParseRecordedSchedule(
    std::string_view text, const TransactionSet& object_names);

/// Rebuilds the formal image of the committed sessions from a recorded
/// event log alone — no engine needed. This is the recorded-schedule half
/// of the round-trip validator: engine log -> text -> events -> formal
/// schedule -> checker. Fails when the log is incomplete (a session
/// commits without a begin, a read observes a version from a session that
/// never committed in the log, ...).
StatusOr<ExportedRun> BuildRunFromRecording(
    const std::vector<EngineEvent>& events,
    const TransactionSet& object_names);

}  // namespace mvrob

#endif  // MVROB_MVCC_RECORDER_H_
