#ifndef MVROB_MVCC_SSI_TRACKER_H_
#define MVROB_MVCC_SSI_TRACKER_H_

#include <utility>
#include <vector>

#include "mvcc/engine.h"

namespace mvrob {

/// Exact dangerous-structure detection for the engine's SSI sessions.
///
/// Postgres' SSI implementation tracks rw-antidependencies conservatively
/// (per-transaction in/out flags) and may abort on false positives. This
/// simulator instead evaluates the *exact* condition of Definition 2.4 at
/// each SSI commit: committing is refused iff it would complete a dangerous
/// structure T1 -> T2 -> T3 among committed SSI sessions (including the
/// commit-order optimization C3 <= C1, C3 < C2). Exactness matters for the
/// conformance tests: every committed trace must map to a formal schedule
/// allowed under the session allocation — no more, no less.
/// Attribution of an SSI abort: the session on the other side of an
/// rw-antidependency adjacent to the aborting candidate in the dangerous
/// structure that refused the commit, and the object carrying that edge.
/// `found` is false when no exact structure exists (possible under the
/// conservative mode, which also aborts on false positives).
struct SsiConflictDetail {
  SessionId peer = kInvalidSessionId;
  ObjectId object = kInvalidObjectId;
  /// Commit timestamp of the version the edge's reader observed (0 for a
  /// read of the reader's own buffered write).
  Timestamp version_ts = 0;
  bool found = false;
};

class SsiTracker {
 public:
  /// True iff committing `candidate` (with the given hypothetical commit
  /// timestamp and step) completes a dangerous structure whose other
  /// members are already-committed SSI sessions.
  static bool WouldCompleteDangerousStructure(
      const std::vector<SessionRecord>& sessions, SessionId candidate,
      Timestamp candidate_commit_ts, uint64_t candidate_commit_step);

  /// The same exact check against an explicit registry of
  /// already-committed SSI sessions — the concurrent engine's, which
  /// cannot hand out a dense session vector — with the (active) candidate
  /// supplied out of line. The referenced records must not change while
  /// the check runs; the concurrent engine guarantees this by publishing
  /// registry entries only after commit under its commit mutex.
  static bool WouldCompleteDangerousStructure(
      const std::vector<std::pair<SessionId, const SessionRecord*>>& committed,
      SessionId candidate_id, const SessionRecord& candidate_record,
      Timestamp candidate_commit_ts, uint64_t candidate_commit_step);

  /// Attribution companions to the two exact checks above, for the trace
  /// layer: re-run the search and report the rw-edge neighbor of the
  /// candidate in the first dangerous structure found. Engines call these
  /// only on the (rare) abort path of a traced run, so the extra scan is
  /// pay-for-what-you-sample.
  static SsiConflictDetail FindDangerousStructureDetail(
      const std::vector<SessionRecord>& sessions, SessionId candidate,
      Timestamp candidate_commit_ts, uint64_t candidate_commit_step);
  static SsiConflictDetail FindDangerousStructureDetail(
      const std::vector<std::pair<SessionId, const SessionRecord*>>& committed,
      SessionId candidate_id, const SessionRecord& candidate_record,
      Timestamp candidate_commit_ts, uint64_t candidate_commit_step);

  /// Conservative flag check (SsiMode::kConservative): true iff, treating
  /// `candidate` as committed, some SSI session (committed, active, or the
  /// candidate) would be a pivot — an incoming and an outgoing
  /// rw-antidependency between concurrent SSI sessions — regardless of
  /// commit order. A superset of the exact condition: everything the exact
  /// check aborts is also aborted here, plus false positives.
  static bool WouldCreatePivot(const std::vector<SessionRecord>& sessions,
                               SessionId candidate,
                               Timestamp candidate_commit_ts,
                               uint64_t candidate_commit_step);
};

}  // namespace mvrob

#endif  // MVROB_MVCC_SSI_TRACKER_H_
