#ifndef MVROB_MVCC_ROUNDTRIP_H_
#define MVROB_MVCC_ROUNDTRIP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/robustness.h"
#include "iso/allocation.h"
#include "mvcc/engine.h"
#include "mvcc/recorder.h"
#include "txn/transaction_set.h"

namespace mvrob {

class MetricsRegistry;

/// Options for the round-trip validator.
struct RoundTripOptions {
  /// Randomized engine runs to record and validate.
  int runs = 200;
  int concurrency = 4;
  uint64_t seed = 0;
  /// Engine worker threads per run. 1 = the deterministic single-threaded
  /// driver; > 1 runs the many-core engine (RunConcurrent) and adds a
  /// differential stage: the exported interleaving must replay cleanly on
  /// a fresh single-threaded engine and produce the identical schedule,
  /// i.e. every concurrent run is equivalent to a deterministic one.
  int engine_threads = 1;
  /// Key-space shards for the many-core engine (0 = auto); ignored when
  /// engine_threads == 1.
  size_t engine_shards = 0;
  SsiMode ssi_mode = SsiMode::kExact;
  size_t recorder_capacity = ScheduleRecorder::kDefaultCapacity;
  /// Knobs for the robustness verdict computed once up front.
  CheckOptions check;
  /// Optional sink for roundtrip.* counters and the roundtrip.validate
  /// phase span.
  MetricsRegistry* metrics = nullptr;
};

/// What the validator found. `disagreements` is the headline number: it
/// counts runs where the executable engine and the formal theory diverge —
/// any value other than 0 is a bug in one of them.
struct RoundTripReport {
  /// Robustness verdict for (txns, alloc) from the formal checker.
  bool allocation_robust = false;
  uint64_t triples_examined = 0;
  uint64_t runs = 0;
  /// Runs that passed every stage (recording round-trip, replay equality,
  /// Definition 2.4 conformance, serializability cross-check).
  uint64_t certified = 0;
  uint64_t serializable_runs = 0;
  /// Runs whose committed image has at least one anomaly (necessarily
  /// non-serializable; only possible when the allocation is not robust).
  uint64_t anomalous_runs = 0;
  /// Runs with no formal image (a session wrote the same object twice);
  /// these are validated for round-trip fidelity only.
  uint64_t skipped_unexportable = 0;
  uint64_t disagreements = 0;
  /// Diagnostics for the first few disagreements.
  std::vector<std::string> failures;

  std::string ToString() const;
};

/// The round-trip validator: records randomized engine executions of
/// `txns` under `alloc` with the ScheduleRecorder, feeds each recording
/// back through text serialization (ToText -> ParseRecordedSchedule) and
/// replay (BuildRunFromRecording), and checks theory against execution:
///
///  1. the parsed recording equals the in-memory event log (round-trip);
///  2. the schedule replayed from the recording equals the one exported
///     directly from the engine;
///  3. the recorded schedule is allowed under the allocation it ran with
///     (Definition 2.4);
///  4. anomaly reports agree with conflict serializability (anomalies
///     found iff the serialization graph is cyclic);
///  5. if the formal checker certifies (txns, alloc) robust, every
///     recorded run is conflict serializable — robustness is closed under
///     subsets, and a committed run is a subset of the programs, so a
///     single non-serializable run refutes the verdict;
///  6. with engine_threads > 1, the exported interleaving additionally
///     replays step for step on a fresh single-threaded engine and must
///     yield the identical schedule — every concurrent execution is
///     equivalent to some deterministic interleaving (the deterministic
///     driver is the correctness oracle for the many-core engine).
///
/// Any violation counts as a disagreement. Fails with InvalidArgument on
/// configuration errors (allocation size mismatch, recorder capacity too
/// small to hold a full run).
StatusOr<RoundTripReport> ValidateEngineRuns(const TransactionSet& txns,
                                             const Allocation& alloc,
                                             const RoundTripOptions& options);

}  // namespace mvrob

#endif  // MVROB_MVCC_ROUNDTRIP_H_
