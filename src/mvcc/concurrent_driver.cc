#include "mvcc/concurrent_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/profiler.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/watchdog.h"
#include "mvcc/txn_trace.h"

namespace mvrob {
namespace {

/// Workers settle their local step count against the shared budget in
/// batches, so the hot loop does not contend on one atomic per operation.
constexpr uint64_t kStepBatch = 256;

/// Decorrelates per-worker rng streams derived from one seed
/// (splitmix64 finalizer).
uint64_t MixSeed(uint64_t seed, uint64_t worker) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (worker + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

DriverReport RunConcurrent(ConcurrentEngine& engine,
                           const TransactionSet& programs,
                           const Allocation& alloc,
                           const RandomRunOptions& options) {
  PhaseTimer timer(options.metrics, "driver.run_concurrent");
  const size_t workers = engine.num_workers();
  const LiveTelemetry* live = options.live;
  TxnTracer* tracer = options.tracer;
  if (tracer != nullptr) tracer->BeginRun(programs);

  std::atomic<uint64_t> shared_steps{0};
  std::atomic<bool> out_of_budget{false};
  auto stop_requested = [&]() {
    return out_of_budget.load(std::memory_order_relaxed) ||
           (options.stop != nullptr &&
            options.stop->load(std::memory_order_relaxed));
  };

  std::mutex report_mu;
  DriverReport report;

  auto worker_fn = [&](size_t w) {
    // Visible to the sampling profiler / stack dumps under a stable role,
    // and stall-monitored: the scope is re-armed every settled step batch,
    // so a worker wedged inside the engine (latch cycle, stuck commit)
    // trips the watchdog with this thread's stack.
    ProfiledThreadScope profile_scope(StrCat("engine.worker.", w));
    WatchdogScope watch(options.watchdog, "engine.worker",
                        std::chrono::seconds(10));
    Rng rng(MixSeed(options.seed, w));
    std::vector<TxnId> mine;
    for (TxnId t = static_cast<TxnId>(w); t < programs.size();
         t += static_cast<TxnId>(workers)) {
      mine.push_back(t);
    }
    std::shuffle(mine.begin(), mine.end(), rng.engine());

    DriverReport local;
    uint64_t local_steps = 0;
    // Disjoint per-worker value streams keep written values unique
    // process-wide without sharing a counter.
    Value next_value = (static_cast<Value>(w) << 40) + 1;

    auto count_step = [&]() {
      if (++local_steps < kStepBatch) return;
      uint64_t total =
          shared_steps.fetch_add(local_steps, std::memory_order_relaxed) +
          local_steps;
      local_steps = 0;
      watch.Heartbeat();
      if (total >= options.max_steps) {
        out_of_budget.store(true, std::memory_order_relaxed);
      }
    };
    auto live_abort = [&](TxnId t, AbortReason reason) {
      if (live == nullptr) return;
      const LiveTelemetry::PerLevel& slot =
          live->per_level[static_cast<size_t>(alloc.level(t))];
      WindowedCounter* counter = nullptr;
      switch (reason) {
        case AbortReason::kWriteConflict:
          counter = slot.aborts_write_conflict;
          break;
        case AbortReason::kSsiDangerousStructure:
          counter = slot.aborts_ssi;
          break;
        case AbortReason::kUser:
          counter = slot.aborts_deadlock;
          break;
        case AbortReason::kNone:
          break;
      }
      if (counter != nullptr) counter->Increment();
    };

    // Runs one program to commit (or until it gives up / the run stops).
    auto run_program = [&](TxnId t) {
      const Transaction& program = programs.txn(t);
      int retries_left = options.max_retries;
      uint64_t flow = 0;
      if (tracer != nullptr) flow = tracer->StartFlow(t, alloc.level(t));
      while (!stop_requested()) {
        SessionId session = engine.Begin(w, alloc.level(t));
        ++local.attempts;
        if (tracer != nullptr) {
          tracer->BeginAttempt(flow, session, t, alloc.level(t));
        }
        std::chrono::steady_clock::time_point attempt_start{};
        if (live != nullptr) {
          attempt_start = std::chrono::steady_clock::now();
        }
        bool aborted = false;
        bool lock_conflict = false;
        bool committed = false;
        AbortReason reason = AbortReason::kNone;
        for (int i = 0; !aborted && !committed; ++i) {
          const Operation& op = program.op(i);
          count_step();
          if (op.IsRead()) {
            engine.Read(w, op.object);
            if (tracer != nullptr) tracer->OnRead(flow, op.object);
          } else if (op.IsWrite()) {
            WriteResult result = engine.Write(w, op.object, next_value++);
            if (result.status == StepStatus::kBlocked) {
              // No-wait: abort this attempt and retry after a yield. Does
              // not consume the retry budget (the deterministic driver
              // would have waited here, not aborted).
              ++local.blocked_steps;
              if (tracer != nullptr) {
                tracer->OnBlocked(flow, op.object, result.blocker);
                ConflictAttribution attribution;
                attribution.conflicting_session = result.blocker;
                attribution.object = op.object;
                attribution.type = ConflictType::kWW;
                attribution.cause = TraceAbortCause::kNoWaitLockConflict;
                tracer->AttributeAbort(session, attribution);
              }
              engine.Abort(w);
              aborted = true;
              lock_conflict = true;
              reason = AbortReason::kUser;
            } else if (result.status == StepStatus::kAborted) {
              aborted = true;
              reason = result.abort_reason;
            } else if (tracer != nullptr) {
              tracer->OnWrite(flow, op.object);
            }
          } else {
            CommitResult result = engine.Commit(w);
            if (result.status == StepStatus::kOk) {
              committed = true;
            } else {
              aborted = true;
              reason = result.abort_reason;
            }
          }
        }
        if (tracer != nullptr) tracer->EndAttempt(flow, committed, reason);
        if (committed) {
          if (tracer != nullptr) tracer->EndFlow(flow, true);
          ++local.committed;
          if (live != nullptr) {
            const LiveTelemetry::PerLevel& slot =
                live->per_level[static_cast<size_t>(alloc.level(t))];
            if (slot.commits != nullptr) slot.commits->Increment();
            if (slot.commit_latency_us != nullptr) {
              const auto now = std::chrono::steady_clock::now();
              slot.commit_latency_us->Observe(
                  static_cast<uint64_t>(
                      std::chrono::duration_cast<std::chrono::microseconds>(
                          now - attempt_start)
                          .count()),
                  now);
            }
          }
          return;
        }
        live_abort(t, reason);
        if (lock_conflict) {
          ++local.deadlock_victims;
          std::this_thread::yield();
          continue;
        }
        if (retries_left-- <= 0) {
          ++local.aborted_programs;
          if (tracer != nullptr) tracer->EndFlow(flow, false);
          return;
        }
      }
      // Stopped mid-flight (or gave up above): close the flow if still
      // open — EndFlow is idempotent.
      if (tracer != nullptr) tracer->EndFlow(flow, false);
    };

    do {
      for (TxnId t : mine) {
        if (stop_requested()) break;
        run_program(t);
      }
    } while (options.continuous && !stop_requested() && !mine.empty());

    // Flush the step remainder and merge the worker's tallies.
    shared_steps.fetch_add(local_steps, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(report_mu);
    report.committed += local.committed;
    report.aborted_programs += local.aborted_programs;
    report.attempts += local.attempts;
    report.blocked_steps += local.blocked_steps;
    report.deadlock_victims += local.deadlock_victims;
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back(worker_fn, w);
  }
  for (std::thread& thread : threads) thread.join();

  if (MetricsRegistry* metrics = options.metrics; metrics != nullptr) {
    metrics->counter("driver.runs").Increment();
    metrics->counter("driver.committed").Add(report.committed);
    metrics->counter("driver.attempts").Add(report.attempts);
    metrics->counter("driver.aborted_programs").Add(report.aborted_programs);
    metrics->counter("driver.deadlock_victims").Add(report.deadlock_victims);
    metrics->counter("driver.blocked_steps").Add(report.blocked_steps);
  }
  return report;
}

}  // namespace mvrob
