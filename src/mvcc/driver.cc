#include "mvcc/driver.h"

#include <algorithm>
#include <chrono>
#include <deque>

#include "common/log.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/watchdog.h"
#include "mvcc/txn_trace.h"

namespace mvrob {

StatusOr<DriverReport> RunExactInterleaving(Engine& engine,
                                            const TransactionSet& programs,
                                            const Allocation& alloc,
                                            const std::vector<OpRef>& order) {
  DriverReport report;
  report.session_of_program.assign(programs.size(), kInvalidSessionId);

  Value next_value = 1;
  for (const OpRef& ref : order) {
    if (ref.IsOp0() || !programs.IsValidRef(ref)) {
      return Status::InvalidArgument("invalid operation reference in order");
    }
    SessionId& session = report.session_of_program[ref.txn];
    if (session == kInvalidSessionId) {
      session = engine.Begin(alloc.level(ref.txn));
      ++report.attempts;
    }
    const Operation& op = programs.op(ref);
    if (op.IsRead()) {
      ReadResult result = engine.Read(session, op.object);
      if (result.status != StepStatus::kOk) {
        return Status::FailedPrecondition(
            StrCat("read of ", programs.FormatOp(ref), " did not succeed"));
      }
    } else if (op.IsWrite()) {
      WriteResult result = engine.Write(session, op.object, next_value++);
      if (result.status == StepStatus::kBlocked) {
        return Status::FailedPrecondition(
            StrCat(programs.FormatOp(ref), " blocked on session ",
                   result.blocker));
      }
      if (result.status == StepStatus::kAborted) {
        return Status::FailedPrecondition(
            StrCat(programs.FormatOp(ref), " aborted"));
      }
    } else {
      CommitResult result = engine.Commit(session);
      if (result.status != StepStatus::kOk) {
        return Status::FailedPrecondition(
            StrCat("commit of ", programs.txn(ref.txn).name(), " aborted"));
      }
      ++report.committed;
    }
  }
  return report;
}

LiveTelemetry MakeLiveTelemetry(MetricsRegistry& registry,
                                uint32_t window_seconds) {
  LiveTelemetry live;
  for (IsolationLevel level : kAllIsolationLevels) {
    const char* name = IsolationLevelToString(level);
    LiveTelemetry::PerLevel& slot =
        live.per_level[static_cast<size_t>(level)];
    slot.commits = &registry.windowed_counter(
        StrCat("mvcc.live.commits{level=", name, "}"), window_seconds);
    slot.aborts_write_conflict = &registry.windowed_counter(
        StrCat("mvcc.live.aborts{level=", name, ",reason=write_conflict}"),
        window_seconds);
    slot.aborts_ssi = &registry.windowed_counter(
        StrCat("mvcc.live.aborts{level=", name, ",reason=ssi}"),
        window_seconds);
    slot.aborts_deadlock = &registry.windowed_counter(
        StrCat("mvcc.live.aborts{level=", name, ",reason=deadlock}"),
        window_seconds);
    slot.commit_latency_us = &registry.windowed_histogram(
        StrCat("mvcc.live.commit_latency_us{level=", name, "}"),
        window_seconds);
  }
  return live;
}

namespace {

// Execution state of one program transaction in the random driver.
struct ProgramState {
  SessionId session = kInvalidSessionId;
  int next_op = 0;
  int retries_left = 0;
  SessionId waiting_on = kInvalidSessionId;
  bool done = false;
  bool gave_up = false;
  // Tracing flow of the current logical execution (0 = unsampled);
  // flow_started survives retries so StartFlow runs once per execution.
  uint64_t flow = 0;
  bool flow_started = false;
  // Wall-clock start of the current attempt; only read when live
  // telemetry is attached.
  std::chrono::steady_clock::time_point attempt_start{};
};

}  // namespace

DriverReport RunRandom(Engine& engine, const TransactionSet& programs,
                       const Allocation& alloc,
                       const RandomRunOptions& options) {
  PhaseTimer timer(options.metrics, "driver.run_random");
  DriverReport report;
  Rng rng(options.seed);
  Value next_value = 1;

  TxnTracer* tracer = options.tracer;
  if (tracer != nullptr) tracer->BeginRun(programs);

  std::vector<ProgramState> states(programs.size());
  for (ProgramState& state : states) {
    state.retries_left = options.max_retries;
  }
  // Programs not yet admitted to the concurrent window, in random order.
  std::vector<TxnId> pending(programs.size());
  for (TxnId t = 0; t < programs.size(); ++t) pending[t] = t;
  std::shuffle(pending.begin(), pending.end(), rng.engine());
  std::deque<TxnId> queue(pending.begin(), pending.end());

  std::vector<TxnId> window;
  uint64_t steps = 0;
  uint64_t commits_at_last_gc = 0;
  uint64_t gc_epoch = 0;

  const LiveTelemetry* live = options.live;
  auto live_level = [&](TxnId t) -> const LiveTelemetry::PerLevel& {
    return live->per_level[static_cast<size_t>(alloc.level(t))];
  };

  auto admit = [&]() {
    while (window.size() < static_cast<size_t>(options.concurrency) &&
           !queue.empty()) {
      window.push_back(queue.front());
      queue.pop_front();
    }
  };
  // Removes a finished program from the window; in continuous mode it is
  // reset and re-enqueued so the workload runs forever.
  auto retire = [&](TxnId t) {
    window.erase(std::find(window.begin(), window.end(), t));
    if (options.continuous) {
      states[t] = ProgramState{};
      states[t].retries_left = options.max_retries;
      queue.push_back(t);
    }
  };
  auto is_runnable = [&](TxnId t) {
    ProgramState& state = states[t];
    if (state.done || state.gave_up) return false;
    if (state.waiting_on == kInvalidSessionId) return true;
    // Re-runnable once the blocker finished.
    if (engine.session(state.waiting_on).state != TxnState::kActive) {
      state.waiting_on = kInvalidSessionId;
      return true;
    }
    return false;
  };
  auto handle_abort = [&](TxnId t, AbortReason reason) {
    ProgramState& state = states[t];
    if (tracer != nullptr) tracer->EndAttempt(state.flow, false, reason);
    state.session = kInvalidSessionId;
    state.next_op = 0;
    state.waiting_on = kInvalidSessionId;
    if (state.retries_left-- <= 0) {
      state.gave_up = true;
      ++report.aborted_programs;
      if (tracer != nullptr) tracer->EndFlow(state.flow, false);
      retire(t);
    }
  };

  // Records an engine-initiated abort on the live per-level series.
  auto live_abort = [&](TxnId t, AbortReason reason) {
    if (live == nullptr) return;
    const LiveTelemetry::PerLevel& slot = live_level(t);
    WindowedCounter* counter = nullptr;
    switch (reason) {
      case AbortReason::kWriteConflict:
        counter = slot.aborts_write_conflict;
        break;
      case AbortReason::kSsiDangerousStructure:
        counter = slot.aborts_ssi;
        break;
      case AbortReason::kUser:
        counter = slot.aborts_deadlock;
        break;
      case AbortReason::kNone:
        break;
    }
    if (counter != nullptr) counter->Increment();
  };
  auto stop_requested = [&]() {
    return options.stop != nullptr &&
           options.stop->load(std::memory_order_relaxed);
  };

  // Stall monitoring: one scope for the whole run, re-armed every few
  // hundred retired steps. A healthy driver beats many times per second;
  // a wedged engine call leaves the deadline to expire.
  WatchdogScope watch(options.watchdog, "driver.run_random",
                      std::chrono::seconds(10));

  admit();
  while (!window.empty() && steps < options.max_steps && !stop_requested()) {
    if ((steps & 0xFF) == 0) watch.Heartbeat();
    // Pick a runnable program uniformly at random.
    std::vector<TxnId> runnable;
    for (TxnId t : window) {
      if (is_runnable(t)) runnable.push_back(t);
    }
    if (runnable.empty()) {
      // Every in-flight program waits on an active session: deadlock (or a
      // wait chain). Abort the youngest session as victim.
      TxnId victim = window.front();
      uint64_t youngest = 0;
      for (TxnId t : window) {
        const ProgramState& state = states[t];
        if (state.session == kInvalidSessionId) continue;
        uint64_t first = engine.session(state.session).first_step;
        if (first >= youngest) {
          youngest = first;
          victim = t;
        }
      }
      if (tracer != nullptr) {
        // The victim was waiting on `waiting_on` for its next write.
        ConflictAttribution attribution;
        attribution.conflicting_session = states[victim].waiting_on;
        attribution.object =
            programs.txn(victim).op(states[victim].next_op).object;
        attribution.type = ConflictType::kWW;
        attribution.cause = TraceAbortCause::kDeadlockVictim;
        tracer->AttributeAbort(states[victim].session, attribution);
      }
      engine.Abort(states[victim].session);
      ++report.deadlock_victims;
      live_abort(victim, AbortReason::kUser);
      handle_abort(victim, AbortReason::kUser);
      admit();
      continue;
    }
    TxnId t = runnable[rng.Index(runnable.size())];
    ProgramState& state = states[t];
    if (state.session == kInvalidSessionId) {
      if (tracer != nullptr && !state.flow_started) {
        state.flow = tracer->StartFlow(t, alloc.level(t));
        state.flow_started = true;
      }
      state.session = engine.Begin(alloc.level(t));
      ++report.attempts;
      if (tracer != nullptr) {
        tracer->BeginAttempt(state.flow, state.session, t, alloc.level(t));
      }
      if (live != nullptr) {
        state.attempt_start = std::chrono::steady_clock::now();
      }
    }
    const Transaction& program = programs.txn(t);
    const Operation& op = program.op(state.next_op);
    ++steps;
    if (op.IsRead()) {
      engine.Read(state.session, op.object);
      if (tracer != nullptr) tracer->OnRead(state.flow, op.object);
      ++state.next_op;
    } else if (op.IsWrite()) {
      WriteResult result = engine.Write(state.session, op.object,
                                        next_value++);
      if (result.status == StepStatus::kOk) {
        if (tracer != nullptr) tracer->OnWrite(state.flow, op.object);
        ++state.next_op;
      } else if (result.status == StepStatus::kBlocked) {
        if (tracer != nullptr) {
          tracer->OnBlocked(state.flow, op.object, result.blocker);
        }
        ++report.blocked_steps;
        state.waiting_on = result.blocker;
      } else {
        live_abort(t, result.abort_reason);
        handle_abort(t, result.abort_reason);
      }
    } else {
      CommitResult result = engine.Commit(state.session);
      if (result.status == StepStatus::kOk) {
        state.done = true;
        ++report.committed;
        if (tracer != nullptr) {
          tracer->EndAttempt(state.flow, true, AbortReason::kNone);
          tracer->EndFlow(state.flow, true);
        }
        if (live != nullptr) {
          const LiveTelemetry::PerLevel& slot = live_level(t);
          if (slot.commits != nullptr) slot.commits->Increment();
          if (slot.commit_latency_us != nullptr) {
            const auto now = std::chrono::steady_clock::now();
            slot.commit_latency_us->Observe(
                static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        now - state.attempt_start)
                        .count()),
                now);
          }
        }
        retire(t);
        admit();
      } else {
        live_abort(t, result.abort_reason);
        handle_abort(t, result.abort_reason);
        admit();
      }
    }
    // Epoch-driven version reclamation in continuous mode: one sweep per
    // commits_per_epoch commits (not per elapsed steps, so an idle or
    // conflict-heavy serve does not churn the store), with a structured
    // log line per reclamation.
    if (options.continuous && options.commits_per_epoch != 0 &&
        report.committed - commits_at_last_gc >= options.commits_per_epoch) {
      commits_at_last_gc = report.committed;
      size_t reclaimed;
      {
        WatchdogScope gc_watch(options.watchdog, "mvcc.gc",
                               std::chrono::seconds(10));
        reclaimed = engine.Vacuum();
      }
      ++gc_epoch;
      if (MetricsRegistry* metrics = options.metrics; metrics != nullptr) {
        metrics->counter("mvcc.gc.epochs").Increment();
        metrics->counter("mvcc.gc.reclaimed").Add(reclaimed);
      }
      Logger& logger = GlobalLogger();
      if (logger.enabled(LogLevel::kInfo)) {
        logger.Log(LogLevel::kInfo, "mvcc.gc", "epoch reclamation",
                   {{"epoch", gc_epoch},
                    {"commits", report.committed},
                    {"reclaimed", static_cast<uint64_t>(reclaimed)}});
      }
    }
  }
  if (MetricsRegistry* metrics = options.metrics; metrics != nullptr) {
    metrics->counter("driver.runs").Increment();
    metrics->counter("driver.committed").Add(report.committed);
    metrics->counter("driver.attempts").Add(report.attempts);
    metrics->counter("driver.aborted_programs").Add(report.aborted_programs);
    metrics->counter("driver.deadlock_victims").Add(report.deadlock_victims);
    metrics->counter("driver.blocked_steps").Add(report.blocked_steps);
  }
  return report;
}

}  // namespace mvrob
