#include "mvcc/driver.h"

#include <algorithm>
#include <deque>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace mvrob {

StatusOr<DriverReport> RunExactInterleaving(Engine& engine,
                                            const TransactionSet& programs,
                                            const Allocation& alloc,
                                            const std::vector<OpRef>& order) {
  DriverReport report;
  report.session_of_program.assign(programs.size(), kInvalidSessionId);

  Value next_value = 1;
  for (const OpRef& ref : order) {
    if (ref.IsOp0() || !programs.IsValidRef(ref)) {
      return Status::InvalidArgument("invalid operation reference in order");
    }
    SessionId& session = report.session_of_program[ref.txn];
    if (session == kInvalidSessionId) {
      session = engine.Begin(alloc.level(ref.txn));
      ++report.attempts;
    }
    const Operation& op = programs.op(ref);
    if (op.IsRead()) {
      ReadResult result = engine.Read(session, op.object);
      if (result.status != StepStatus::kOk) {
        return Status::FailedPrecondition(
            StrCat("read of ", programs.FormatOp(ref), " did not succeed"));
      }
    } else if (op.IsWrite()) {
      WriteResult result = engine.Write(session, op.object, next_value++);
      if (result.status == StepStatus::kBlocked) {
        return Status::FailedPrecondition(
            StrCat(programs.FormatOp(ref), " blocked on session ",
                   result.blocker));
      }
      if (result.status == StepStatus::kAborted) {
        return Status::FailedPrecondition(
            StrCat(programs.FormatOp(ref), " aborted"));
      }
    } else {
      CommitResult result = engine.Commit(session);
      if (result.status != StepStatus::kOk) {
        return Status::FailedPrecondition(
            StrCat("commit of ", programs.txn(ref.txn).name(), " aborted"));
      }
      ++report.committed;
    }
  }
  return report;
}

namespace {

// Execution state of one program transaction in the random driver.
struct ProgramState {
  SessionId session = kInvalidSessionId;
  int next_op = 0;
  int retries_left = 0;
  SessionId waiting_on = kInvalidSessionId;
  bool done = false;
  bool gave_up = false;
};

}  // namespace

DriverReport RunRandom(Engine& engine, const TransactionSet& programs,
                       const Allocation& alloc,
                       const RandomRunOptions& options) {
  PhaseTimer timer(options.metrics, "driver.run_random");
  DriverReport report;
  Rng rng(options.seed);
  Value next_value = 1;

  std::vector<ProgramState> states(programs.size());
  for (ProgramState& state : states) {
    state.retries_left = options.max_retries;
  }
  // Programs not yet admitted to the concurrent window, in random order.
  std::vector<TxnId> pending(programs.size());
  for (TxnId t = 0; t < programs.size(); ++t) pending[t] = t;
  std::shuffle(pending.begin(), pending.end(), rng.engine());
  std::deque<TxnId> queue(pending.begin(), pending.end());

  std::vector<TxnId> window;
  uint64_t steps = 0;

  auto admit = [&]() {
    while (window.size() < static_cast<size_t>(options.concurrency) &&
           !queue.empty()) {
      window.push_back(queue.front());
      queue.pop_front();
    }
  };
  auto retire = [&](TxnId t) {
    window.erase(std::find(window.begin(), window.end(), t));
  };
  auto is_runnable = [&](TxnId t) {
    ProgramState& state = states[t];
    if (state.done || state.gave_up) return false;
    if (state.waiting_on == kInvalidSessionId) return true;
    // Re-runnable once the blocker finished.
    if (engine.session(state.waiting_on).state != TxnState::kActive) {
      state.waiting_on = kInvalidSessionId;
      return true;
    }
    return false;
  };
  auto handle_abort = [&](TxnId t) {
    ProgramState& state = states[t];
    state.session = kInvalidSessionId;
    state.next_op = 0;
    state.waiting_on = kInvalidSessionId;
    if (state.retries_left-- <= 0) {
      state.gave_up = true;
      ++report.aborted_programs;
      retire(t);
    }
  };

  admit();
  while (!window.empty() && steps < options.max_steps) {
    // Pick a runnable program uniformly at random.
    std::vector<TxnId> runnable;
    for (TxnId t : window) {
      if (is_runnable(t)) runnable.push_back(t);
    }
    if (runnable.empty()) {
      // Every in-flight program waits on an active session: deadlock (or a
      // wait chain). Abort the youngest session as victim.
      TxnId victim = window.front();
      uint64_t youngest = 0;
      for (TxnId t : window) {
        const ProgramState& state = states[t];
        if (state.session == kInvalidSessionId) continue;
        uint64_t first = engine.session(state.session).first_step;
        if (first >= youngest) {
          youngest = first;
          victim = t;
        }
      }
      engine.Abort(states[victim].session);
      ++report.deadlock_victims;
      handle_abort(victim);
      admit();
      continue;
    }
    TxnId t = runnable[rng.Index(runnable.size())];
    ProgramState& state = states[t];
    if (state.session == kInvalidSessionId) {
      state.session = engine.Begin(alloc.level(t));
      ++report.attempts;
    }
    const Transaction& program = programs.txn(t);
    const Operation& op = program.op(state.next_op);
    ++steps;
    if (op.IsRead()) {
      engine.Read(state.session, op.object);
      ++state.next_op;
    } else if (op.IsWrite()) {
      WriteResult result = engine.Write(state.session, op.object,
                                        next_value++);
      if (result.status == StepStatus::kOk) {
        ++state.next_op;
      } else if (result.status == StepStatus::kBlocked) {
        ++report.blocked_steps;
        state.waiting_on = result.blocker;
      } else {
        handle_abort(t);
      }
    } else {
      CommitResult result = engine.Commit(state.session);
      if (result.status == StepStatus::kOk) {
        state.done = true;
        ++report.committed;
        retire(t);
        admit();
      } else {
        handle_abort(t);
        admit();
      }
    }
  }
  if (MetricsRegistry* metrics = options.metrics; metrics != nullptr) {
    metrics->counter("driver.runs").Increment();
    metrics->counter("driver.committed").Add(report.committed);
    metrics->counter("driver.attempts").Add(report.attempts);
    metrics->counter("driver.aborted_programs").Add(report.aborted_programs);
    metrics->counter("driver.deadlock_victims").Add(report.deadlock_victims);
    metrics->counter("driver.blocked_steps").Add(report.blocked_steps);
  }
  return report;
}

}  // namespace mvrob
