#include "mvcc/txn_trace.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/json.h"
#include "common/metrics.h"
#include "mvcc/recorder.h"

namespace mvrob {

const char* ConflictTypeToString(ConflictType type) {
  switch (type) {
    case ConflictType::kWW:
      return "ww";
    case ConflictType::kWR:
      return "wr";
    case ConflictType::kRW:
      return "rw";
  }
  return "?";
}

const char* TraceAbortCauseToString(TraceAbortCause cause) {
  switch (cause) {
    case TraceAbortCause::kFirstUpdaterWins:
      return "first_updater_wins";
    case TraceAbortCause::kSsiDangerousStructure:
      return "ssi_dangerous_structure";
    case TraceAbortCause::kDeadlockVictim:
      return "deadlock_victim";
    case TraceAbortCause::kNoWaitLockConflict:
      return "no_wait_lock_conflict";
  }
  return "?";
}

namespace {

const char* TraceOpKindToString(TraceOpKind kind) {
  switch (kind) {
    case TraceOpKind::kRead:
      return "read";
    case TraceOpKind::kWrite:
      return "write";
    case TraceOpKind::kBlocked:
      return "blocked";
  }
  return "?";
}

}  // namespace

bool TxnTracer::ConflictKey::operator<(const ConflictKey& other) const {
  return std::tie(victim, conflicting, victim_level, conflicting_level, type,
                  cause) < std::tie(other.victim, other.conflicting,
                                    other.victim_level, other.conflicting_level,
                                    other.type, other.cause);
}

TxnTracer::TxnTracer(TxnTracerOptions options)
    : options_([&options] {
        if (options.sample_every_n == 0) options.sample_every_n = 1;
        if (options.ring_capacity == 0) options.ring_capacity = 1;
        return options;
      }()),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.metrics != nullptr) {
    MetricsRegistry& metrics = *options_.metrics;
    m_flows_started_ = &metrics.counter("trace.flows_started");
    m_flows_sampled_ = &metrics.counter("trace.flows_sampled");
    m_attempts_ = &metrics.counter("trace.attempts_sampled");
    m_attributed_[static_cast<size_t>(ConflictType::kWW)] =
        &metrics.counter("trace.aborts_attributed{type=ww}");
    m_attributed_[static_cast<size_t>(ConflictType::kWR)] =
        &metrics.counter("trace.aborts_attributed{type=wr}");
    m_attributed_[static_cast<size_t>(ConflictType::kRW)] =
        &metrics.counter("trace.aborts_attributed{type=rw}");
    m_dropped_ = &metrics.counter("trace.completed_dropped");
  }
}

uint64_t TxnTracer::NowUs() const {
  if (options_.clock_us != nullptr) return options_.clock_us();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::string TxnTracer::TxnNameLocked(TxnId txn) const {
  if (txn < txn_names_.size()) return txn_names_[txn];
  return "txn" + std::to_string(txn);
}

std::string TxnTracer::ObjectNameLocked(ObjectId object) const {
  if (object < object_names_.size()) return object_names_[object];
  return "obj" + std::to_string(object);
}

void TxnTracer::BeginRun(const TransactionSet& txns) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.clear();
  txn_names_.clear();
  txn_names_.reserve(txns.size());
  for (TxnId t = 0; t < txns.size(); ++t) {
    txn_names_.push_back(txns.txn(t).name());
  }
  object_names_.clear();
  object_names_.reserve(txns.num_objects());
  for (ObjectId o = 0; o < txns.num_objects(); ++o) {
    object_names_.push_back(txns.ObjectName(o));
  }
}

uint64_t TxnTracer::StartFlow(TxnId txn, IsolationLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t instance = instances_++;
  if (m_flows_started_ != nullptr) m_flows_started_->Increment();
  if (instance % options_.sample_every_n != 0) return 0;
  ++flows_sampled_;
  if (m_flows_sampled_ != nullptr) m_flows_sampled_->Increment();
  const uint64_t flow_id = ++next_flow_id_;
  TxnTrace& trace = live_[flow_id];
  trace.flow_id = flow_id;
  trace.txn = txn;
  trace.name = TxnNameLocked(txn);
  trace.level = level;
  return flow_id;
}

void TxnTracer::BeginAttempt(uint64_t flow_id, SessionId session, TxnId txn,
                             IsolationLevel level) {
  if (session == kInvalidSessionId) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (session >= sessions_.size()) sessions_.resize(session + 1);
  sessions_[session] = SessionInfo{txn, level, flow_id};
  if (flow_id == 0) return;
  auto it = live_.find(flow_id);
  if (it == live_.end()) return;
  TxnTrace& trace = it->second;
  if (trace.attempts.size() >= options_.max_attempts_per_flow) {
    ++trace.attempts_dropped;
    return;
  }
  TxnAttempt attempt;
  attempt.session = session;
  attempt.tid = MetricsRegistry::CurrentThreadId();
  attempt.begin_us = NowUs();
  trace.attempts.push_back(std::move(attempt));
  if (m_attempts_ != nullptr) m_attempts_->Increment();
}

void TxnTracer::OnRead(uint64_t flow_id, ObjectId object) {
  if (flow_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(flow_id);
  if (it == live_.end() || it->second.attempts.empty()) return;
  TxnAttempt& attempt = it->second.attempts.back();
  if (attempt.ops.size() >= options_.max_ops_per_attempt) {
    ++attempt.ops_dropped;
    return;
  }
  attempt.ops.push_back(TraceOp{TraceOpKind::kRead, object, kInvalidSessionId});
}

void TxnTracer::OnWrite(uint64_t flow_id, ObjectId object) {
  if (flow_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(flow_id);
  if (it == live_.end() || it->second.attempts.empty()) return;
  TxnAttempt& attempt = it->second.attempts.back();
  if (attempt.ops.size() >= options_.max_ops_per_attempt) {
    ++attempt.ops_dropped;
    return;
  }
  attempt.ops.push_back(
      TraceOp{TraceOpKind::kWrite, object, kInvalidSessionId});
}

void TxnTracer::OnBlocked(uint64_t flow_id, ObjectId object,
                          SessionId blocker) {
  if (flow_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(flow_id);
  if (it == live_.end() || it->second.attempts.empty()) return;
  TxnAttempt& attempt = it->second.attempts.back();
  if (attempt.ops.size() >= options_.max_ops_per_attempt) {
    ++attempt.ops_dropped;
    return;
  }
  attempt.ops.push_back(TraceOp{TraceOpKind::kBlocked, object, blocker});
}

void TxnTracer::EndAttempt(uint64_t flow_id, bool committed,
                           AbortReason reason) {
  if (flow_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(flow_id);
  if (it == live_.end() || it->second.attempts.empty()) return;
  TxnAttempt& attempt = it->second.attempts.back();
  attempt.end_us = NowUs();
  attempt.committed = committed;
  attempt.abort_reason = reason;
}

void TxnTracer::EndFlow(uint64_t flow_id, bool committed) {
  if (flow_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(flow_id);
  if (it == live_.end()) return;
  TxnTrace trace = std::move(it->second);
  live_.erase(it);
  trace.committed = committed;
  completed_.push_back(std::move(trace));
  while (completed_.size() > options_.ring_capacity) {
    completed_.pop_front();
    ++completed_dropped_;
    if (m_dropped_ != nullptr) m_dropped_->Increment();
  }
}

void TxnTracer::AttributeAbort(SessionId victim,
                               const ConflictAttribution& attribution) {
  std::lock_guard<std::mutex> lock(mu_);
  ++aborts_attributed_;
  Counter* counter = m_attributed_[static_cast<size_t>(attribution.type)];
  if (counter != nullptr) counter->Increment();

  SessionInfo victim_info;
  if (victim < sessions_.size()) victim_info = sessions_[victim];
  SessionInfo conflicting_info;
  bool conflicting_known = false;
  if (attribution.conflicting_session != kInvalidSessionId &&
      attribution.conflicting_session < sessions_.size()) {
    conflicting_info = sessions_[attribution.conflicting_session];
    conflicting_known = conflicting_info.txn != kInvalidTxnId;
  }

  ConflictKey key;
  key.victim = victim_info.txn == kInvalidTxnId ? "?"
                                                : TxnNameLocked(victim_info.txn);
  key.conflicting =
      conflicting_known ? TxnNameLocked(conflicting_info.txn) : "?";
  key.victim_level = victim_info.level;
  key.conflicting_level = conflicting_info.level;
  key.type = attribution.type;
  key.cause = attribution.cause;
  ++conflicts_[key];

  if (victim_info.flow == 0) return;
  auto it = live_.find(victim_info.flow);
  if (it == live_.end() || it->second.attempts.empty()) return;
  TxnAttempt& attempt = it->second.attempts.back();
  attempt.attributed = true;
  attempt.attribution = attribution;
  attempt.conflicting_txn = key.conflicting;
  attempt.conflicting_level = conflicting_info.level;
}

uint64_t TxnTracer::flows_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instances_;
}

uint64_t TxnTracer::flows_sampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flows_sampled_;
}

uint64_t TxnTracer::aborts_attributed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aborts_attributed_;
}

std::vector<TxnTrace> TxnTracer::CompletedTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TxnTrace>(completed_.begin(), completed_.end());
}

std::vector<TraceConflictRow> TxnTracer::TopConflicts(size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceConflictRow> rows;
  rows.reserve(conflicts_.size());
  for (const auto& [key, count] : conflicts_) {
    TraceConflictRow row;
    row.victim = key.victim;
    row.victim_level = key.victim_level;
    row.conflicting = key.conflicting;
    row.conflicting_level = key.conflicting_level;
    row.type = key.type;
    row.cause = key.cause;
    row.count = count;
    rows.push_back(std::move(row));
  }
  // Stable: equal counts keep the deterministic map order.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const TraceConflictRow& a, const TraceConflictRow& b) {
                     return a.count > b.count;
                   });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

void TxnTracer::WriteAttemptJsonLocked(const TxnAttempt& attempt,
                                       JsonWriter& json) const {
  json.BeginObject();
  json.Key("session");
  json.Uint(attempt.session);
  json.Key("begin_us");
  json.Uint(attempt.begin_us);
  json.Key("end_us");
  json.Uint(attempt.end_us);
  json.Key("committed");
  json.Bool(attempt.committed);
  json.Key("abort_reason");
  json.String(AbortReasonToString(attempt.abort_reason));
  json.Key("ops");
  json.BeginArray();
  for (const TraceOp& op : attempt.ops) {
    json.BeginObject();
    json.Key("kind");
    json.String(TraceOpKindToString(op.kind));
    json.Key("object");
    json.String(ObjectNameLocked(op.object));
    if (op.kind == TraceOpKind::kBlocked) {
      json.Key("blocker");
      json.Uint(op.blocker);
    }
    json.EndObject();
  }
  json.EndArray();
  if (attempt.ops_dropped > 0) {
    json.Key("ops_dropped");
    json.Uint(attempt.ops_dropped);
  }
  if (attempt.attributed) {
    json.Key("attribution");
    json.BeginObject();
    json.Key("conflicting");
    json.String(attempt.conflicting_txn);
    json.Key("conflicting_session");
    json.Uint(attempt.attribution.conflicting_session);
    json.Key("conflicting_level");
    json.String(IsolationLevelToString(attempt.conflicting_level));
    json.Key("object");
    json.String(ObjectNameLocked(attempt.attribution.object));
    json.Key("version_ts");
    json.Uint(attempt.attribution.version_ts);
    json.Key("type");
    json.String(ConflictTypeToString(attempt.attribution.type));
    json.Key("cause");
    json.String(TraceAbortCauseToString(attempt.attribution.cause));
    json.EndObject();
  }
  json.EndObject();
}

std::string TxnTracer::StatusJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Uint(1);
  json.Key("sample_every_n");
  json.Uint(options_.sample_every_n);
  json.Key("ring_capacity");
  json.Uint(options_.ring_capacity);
  json.Key("flows_started");
  json.Uint(instances_);
  json.Key("flows_sampled");
  json.Uint(flows_sampled_);
  json.Key("flows_live");
  json.Uint(live_.size());
  json.Key("aborts_attributed");
  json.Uint(aborts_attributed_);
  json.Key("completed_dropped");
  json.Uint(completed_dropped_);
  json.Key("conflicts");
  json.BeginArray();
  for (const auto& [key, count] : conflicts_) {
    json.BeginObject();
    json.Key("victim");
    json.String(key.victim);
    json.Key("victim_level");
    json.String(IsolationLevelToString(key.victim_level));
    json.Key("conflicting");
    json.String(key.conflicting);
    json.Key("conflicting_level");
    json.String(IsolationLevelToString(key.conflicting_level));
    json.Key("type");
    json.String(ConflictTypeToString(key.type));
    json.Key("cause");
    json.String(TraceAbortCauseToString(key.cause));
    json.Key("count");
    json.Uint(count);
    json.EndObject();
  }
  json.EndArray();
  json.Key("traces");
  json.BeginArray();
  for (const TxnTrace& trace : completed_) {
    json.BeginObject();
    json.Key("flow_id");
    json.Uint(trace.flow_id);
    json.Key("txn");
    json.String(trace.name);
    json.Key("level");
    json.String(IsolationLevelToString(trace.level));
    json.Key("committed");
    json.Bool(trace.committed);
    json.Key("attempts");
    json.BeginArray();
    for (const TxnAttempt& attempt : trace.attempts) {
      WriteAttemptJsonLocked(attempt, json);
    }
    json.EndArray();
    if (trace.attempts_dropped > 0) {
      json.Key("attempts_dropped");
      json.Uint(trace.attempts_dropped);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

void TxnTracer::WriteChromeEvents(JsonWriter& json) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TxnTrace& trace : completed_) {
    const std::string span_name =
        trace.name + " (" + IsolationLevelToString(trace.level) + ")";
    for (size_t i = 0; i < trace.attempts.size(); ++i) {
      const TxnAttempt& attempt = trace.attempts[i];
      json.BeginObject();
      json.Key("name");
      json.String(span_name);
      json.Key("cat");
      json.String("txn");
      json.Key("ph");
      json.String("X");
      json.Key("ts");
      json.Uint(attempt.begin_us);
      json.Key("dur");
      json.Uint(attempt.end_us - attempt.begin_us);
      json.Key("pid");
      json.Uint(1);
      json.Key("tid");
      json.Uint(attempt.tid);
      json.Key("args");
      json.BeginObject();
      json.Key("flow_id");
      json.Uint(trace.flow_id);
      json.Key("attempt");
      json.Uint(i);
      json.Key("session");
      json.Uint(attempt.session);
      json.Key("committed");
      json.Bool(attempt.committed);
      json.Key("abort_reason");
      json.String(AbortReasonToString(attempt.abort_reason));
      if (attempt.attributed) {
        json.Key("conflicting");
        json.String(attempt.conflicting_txn);
        json.Key("conflict_object");
        json.String(ObjectNameLocked(attempt.attribution.object));
        json.Key("conflict_type");
        json.String(ConflictTypeToString(attempt.attribution.type));
        json.Key("conflict_cause");
        json.String(TraceAbortCauseToString(attempt.attribution.cause));
      }
      json.EndObject();
      json.EndObject();
    }
    // Flow events stitch the retries of one logical txn into a single
    // arrow chain: start at the first attempt's end, step through middle
    // attempts, finish at the last attempt's start.
    if (trace.attempts.size() < 2) continue;
    for (size_t i = 0; i < trace.attempts.size(); ++i) {
      const TxnAttempt& attempt = trace.attempts[i];
      const bool first = i == 0;
      const bool last = i + 1 == trace.attempts.size();
      json.BeginObject();
      json.Key("name");
      json.String("retry");
      json.Key("cat");
      json.String("txn");
      json.Key("ph");
      json.String(first ? "s" : (last ? "f" : "t"));
      if (last) {
        json.Key("bp");
        json.String("e");
      }
      json.Key("id");
      json.Uint(trace.flow_id);
      json.Key("ts");
      json.Uint(first ? attempt.end_us : attempt.begin_us);
      json.Key("pid");
      json.Uint(1);
      json.Key("tid");
      json.Uint(attempt.tid);
      json.EndObject();
    }
  }
}

}  // namespace mvrob
