#include "mvcc/trace.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace mvrob {

StatusOr<ExportedRun> ExportCommittedSessions(
    const std::vector<SessionRecord>& all_sessions,
    const TransactionSet& object_names) {
  ExportedRun run;

  // Committed sessions ordered by their first operation.
  std::vector<SessionId> committed;
  for (SessionId id = 0; id < all_sessions.size(); ++id) {
    if (all_sessions[id].state == TxnState::kCommitted) {
      committed.push_back(id);
    }
  }
  std::sort(committed.begin(), committed.end(), [&](SessionId a, SessionId b) {
    return all_sessions[a].first_step < all_sessions[b].first_step;
  });

  // Mirror the object universe so ids line up with the engine's.
  for (size_t o = 0; o < object_names.num_objects(); ++o) {
    run.txns.InternObject(object_names.ObjectName(static_cast<ObjectId>(o)));
  }

  // (step, session, op, read-record index) for the global order.
  struct Event {
    uint64_t step;
    SessionId session;
    Operation op;
    int read_index;  // Index into the session's reads, or -1.
  };
  std::vector<Event> events;
  std::vector<IsolationLevel> levels;

  for (SessionId id : committed) {
    const SessionRecord& record = all_sessions[id];
    levels.push_back(record.level);
    std::map<ObjectId, int> writes_per_object;
    for (const SessionWriteRecord& write : record.writes) {
      if (++writes_per_object[write.object] > 1) {
        return Status::InvalidArgument(
            StrCat("session ", id, " wrote object ",
                   object_names.ObjectName(write.object),
                   " more than once; no faithful formal image"));
      }
      events.push_back(
          Event{write.step, id, Operation::Write(write.object), -1});
    }
    for (size_t r = 0; r < record.reads.size(); ++r) {
      events.push_back(Event{record.reads[r].step, id,
                             Operation::Read(record.reads[r].object),
                             static_cast<int>(r)});
    }
    events.push_back(
        Event{record.commit_step, id, Operation::Commit(), -1});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.step < b.step; });

  // Create the transactions (ops in executed order).
  std::map<SessionId, TxnId> txn_of_session;
  std::map<SessionId, std::vector<Operation>> ops_of_session;
  for (const Event& event : events) {
    if (!event.op.IsCommit()) {
      ops_of_session[event.session].push_back(event.op);
    }
  }
  for (SessionId id : committed) {
    StatusOr<TxnId> txn =
        run.txns.AddTransaction(StrCat("S", id + 1), ops_of_session[id]);
    if (!txn.ok()) return txn.status();
    txn_of_session[id] = *txn;
    run.session_of_txn.push_back(id);
  }
  run.allocation = Allocation(std::move(levels));

  // Global order, version function and version order.
  std::map<SessionId, int> next_index;
  // (writer session, object) -> the writer's OpRef for that object.
  std::map<std::pair<SessionId, ObjectId>, OpRef> write_ref;
  for (const Event& event : events) {
    TxnId txn = txn_of_session[event.session];
    OpRef ref{txn, next_index[event.session]++};
    run.order.push_back(ref);
    if (event.op.IsWrite()) {
      write_ref[{event.session, event.op.object}] = ref;
    }
  }
  // Second pass for reads (write refs are now complete) and version order.
  std::map<SessionId, int> replay_index;
  for (const Event& event : events) {
    TxnId txn = txn_of_session[event.session];
    OpRef ref{txn, replay_index[event.session]++};
    if (!event.op.IsRead()) continue;
    const SessionReadRecord& read =
        all_sessions[event.session].reads[event.read_index];
    if (read.version_writer == kInvalidSessionId) {
      run.versions[ref] = OpRef::Op0();
    } else {
      auto it = write_ref.find({read.version_writer, read.object});
      if (it == write_ref.end()) {
        return Status::InvalidArgument(
            StrCat("read observed a version from session ",
                   read.version_writer,
                   " which is not part of the committed trace"));
      }
      run.versions[ref] = it->second;
    }
  }
  // Version order = commit order per object (sessions sorted by commit_ts).
  std::map<ObjectId, std::vector<SessionId>> writers;
  for (SessionId id : committed) {
    for (const SessionWriteRecord& write : all_sessions[id].writes) {
      writers[write.object].push_back(id);
    }
  }
  for (auto& [object, sessions] : writers) {
    std::sort(sessions.begin(), sessions.end(),
              [&](SessionId a, SessionId b) {
                return all_sessions[a].commit_ts < all_sessions[b].commit_ts;
              });
    for (SessionId id : sessions) {
      run.version_order[object].push_back(write_ref[{id, object}]);
    }
  }
  return run;
}

StatusOr<ExportedRun> ExportCommittedRun(const Engine& engine,
                                         const TransactionSet& object_names) {
  std::vector<SessionRecord> sessions;
  sessions.reserve(engine.num_sessions());
  for (SessionId id = 0; id < engine.num_sessions(); ++id) {
    sessions.push_back(engine.session(id));
  }
  return ExportCommittedSessions(sessions, object_names);
}

}  // namespace mvrob
