#ifndef MVROB_MVCC_VERSION_STORE_H_
#define MVROB_MVCC_VERSION_STORE_H_

#include <cstdint>
#include <vector>

#include "txn/operation.h"

namespace mvrob {

/// Logical timestamps assigned by the engine's global clock. Timestamp 0 is
/// reserved for the initial versions (the paper's op_0).
using Timestamp = uint64_t;
/// Stored values; the simulator stores opaque integers so tests can check
/// which version a read observed.
using Value = int64_t;
/// Engine session handle. Each execution attempt of a transaction program
/// is one session.
using SessionId = uint32_t;
inline constexpr SessionId kInvalidSessionId = UINT32_MAX;

/// One installed version of an object.
struct StoredVersion {
  Value value = 0;
  /// Session that wrote it; kInvalidSessionId for the initial version.
  SessionId writer = kInvalidSessionId;
  /// Commit timestamp of the writer; 0 for the initial version.
  Timestamp commit_ts = 0;
};

/// The multiversion heap: per object, the chain of committed versions in
/// commit-timestamp order (the version order <<_s of the formal model).
/// Uncommitted writes live in the owning session's buffer, not here —
/// mirroring a Postgres-style MVCC heap where visibility is decided by
/// snapshot timestamps.
class VersionStore {
 public:
  explicit VersionStore(size_t num_objects);

  size_t num_objects() const { return chains_.size(); }

  /// Newest version with commit_ts <= ts (the snapshot read). Always
  /// defined: the initial version has commit_ts 0.
  const StoredVersion& SnapshotRead(ObjectId object, Timestamp ts) const;

  /// Newest committed version regardless of timestamp.
  const StoredVersion& Latest(ObjectId object) const;

  /// True if some version of `object` has commit_ts > ts — the
  /// first-updater-wins test for SI/SSI writers with snapshot ts.
  bool HasVersionAfter(ObjectId object, Timestamp ts) const;

  /// Installs a new version; `version.commit_ts` must exceed all existing
  /// commit timestamps for the object (commits are totally ordered by the
  /// engine clock).
  void Install(ObjectId object, StoredVersion version);

  /// Full chain, oldest first (initial version included).
  const std::vector<StoredVersion>& ChainOf(ObjectId object) const {
    return chains_[object];
  }

  /// Garbage-collects versions no active snapshot can observe: for every
  /// object, drops all versions strictly older than the newest version
  /// with commit_ts <= horizon (Postgres VACUUM with `horizon` = the oldest
  /// active snapshot timestamp). Returns the number of versions dropped.
  /// Snapshot reads at timestamps >= horizon are unaffected.
  size_t Vacuum(Timestamp horizon);

  /// Vacuum restricted to one object's chain, so the sharded engine can
  /// reclaim shard by shard under the owning latch. Same keep rule and
  /// return value as Vacuum.
  size_t VacuumObject(ObjectId object, Timestamp horizon);

  /// Total stored versions across all objects (initial versions included).
  size_t TotalVersions() const;

 private:
  std::vector<std::vector<StoredVersion>> chains_;
};

}  // namespace mvrob

#endif  // MVROB_MVCC_VERSION_STORE_H_
