#ifndef MVROB_MVCC_ENGINE_H_
#define MVROB_MVCC_ENGINE_H_

#include <map>
#include <optional>
#include <vector>

#include "iso/isolation_level.h"
#include "mvcc/version_store.h"

namespace mvrob {

class Counter;
class Histogram;
class MetricsRegistry;
class ScheduleRecorder;
class TxnTracer;

/// Lifecycle of an engine session.
enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// Outcome of a single engine step.
enum class StepStatus : uint8_t {
  kOk,
  /// The step must wait (another active session holds the row lock). The
  /// session is unchanged; retry after the blocker finishes.
  kBlocked,
  /// The session was aborted by the engine (first-updater-wins or SSI
  /// dangerous structure). All its effects are discarded.
  kAborted,
};

/// Why the engine aborted a session.
enum class AbortReason : uint8_t {
  kNone,
  /// SI/SSI write to an object with a version committed after the
  /// session's snapshot (first-updater-wins).
  kWriteConflict,
  /// Committing would complete a dangerous structure among SSI sessions
  /// (Definition 2.4 / Cahill et al.).
  kSsiDangerousStructure,
  /// Aborted by the caller (e.g. deadlock victim).
  kUser,
};

struct ReadResult {
  StepStatus status = StepStatus::kOk;
  Value value = 0;
  /// Who wrote the observed version: a session id, kInvalidSessionId for
  /// the initial version, or the reader itself for own-buffer reads.
  SessionId version_writer = kInvalidSessionId;
  /// True if the value came from the session's own uncommitted buffer.
  bool own_write = false;
};

struct WriteResult {
  StepStatus status = StepStatus::kOk;
  /// When blocked: the active session holding the row lock (for deadlock
  /// detection by the driver).
  SessionId blocker = kInvalidSessionId;
  AbortReason abort_reason = AbortReason::kNone;
};

struct CommitResult {
  StepStatus status = StepStatus::kOk;
  AbortReason abort_reason = AbortReason::kNone;
  Timestamp commit_ts = 0;
};

/// Aggregate counters exposed to the benchmarks.
struct EngineStats {
  uint64_t begins = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t commits = 0;
  uint64_t aborts_write_conflict = 0;
  uint64_t aborts_ssi = 0;
  uint64_t aborts_user = 0;
  uint64_t blocked_steps = 0;
};

/// Read/write record kept per session for SSI tracking and trace export.
struct SessionReadRecord {
  ObjectId object;
  Timestamp version_ts;     // Commit timestamp of the observed version.
  SessionId version_writer; // kInvalidSessionId for the initial version.
  uint64_t step;            // Global step at which the read happened.
};
struct SessionWriteRecord {
  ObjectId object;
  uint64_t step;
};

/// Everything the engine knows about one session; exposed (const) to the
/// SSI tracker and the trace exporter.
struct SessionRecord {
  IsolationLevel level = IsolationLevel::kRC;
  TxnState state = TxnState::kActive;
  AbortReason abort_reason = AbortReason::kNone;
  Timestamp snapshot_ts = 0;  // Snapshot for SI/SSI reads and FUW checks.
  Timestamp commit_ts = 0;
  uint64_t first_step = 0;    // Step of the first read/write; 0 if none.
  uint64_t commit_step = 0;
  std::map<ObjectId, Value> write_buffer;
  std::vector<SessionReadRecord> reads;
  std::vector<SessionWriteRecord> writes;
};

/// How the engine detects SSI dangerous structures.
enum class SsiMode : uint8_t {
  /// Exact Definition 2.4: abort a commit iff it completes a dangerous
  /// structure among committed SSI sessions (no false positives).
  kExact,
  /// Postgres/Cahill-style conservative flags: abort a committing SSI
  /// session if any SSI pivot then has both an incoming and an outgoing
  /// rw-antidependency, ignoring the commit-order conditions and counting
  /// still-active sessions. Strictly more aborts (false positives), much
  /// cheaper bookkeeping in a real system; the ablation benchmark
  /// quantifies the gap.
  kConservative,
};

struct EngineOptions {
  SsiMode ssi_mode = SsiMode::kExact;
  /// Optional observability sink (common/metrics.h). Null disables all
  /// instrumentation. With kConservative SSI mode and a sink attached, the
  /// engine additionally runs the exact Definition 2.4 check on every
  /// conservative abort and counts the disagreements as
  /// mvcc.ssi_false_positives (conservative aborts the exact check would
  /// not have taken).
  MetricsRegistry* metrics = nullptr;
  /// Optional schedule recorder (mvcc/recorder.h). When attached, the
  /// engine logs every begin/read/write/commit/abort (and blocked write)
  /// as an EngineEvent; the log can be exported as a replayable schedule
  /// file or a Chrome trace, and fed back through the formal checker by
  /// the round-trip validator. Null disables recording.
  ScheduleRecorder* recorder = nullptr;
  /// Optional transaction tracer (mvcc/txn_trace.h). When attached, the
  /// engine reports a causal attribution at each abort it initiates —
  /// first-updater-wins (the conflicting version's writer) and SSI
  /// dangerous structure (the rw-edge neighbor) — to the tracer's
  /// conflict table and to the victim's sampled attempt span. Same
  /// zero-cost contract as the other sinks: null disables every call
  /// site, and the tracer never influences engine decisions.
  TxnTracer* tracer = nullptr;
};

/// An in-memory multiversion engine executing transactions under
/// per-session isolation levels {RC, SI, SSI} — the executable form of the
/// paper's Definitions 2.3/2.4, modeled on Postgres:
///
///  - writes are buffered and installed at commit in commit order
///    (writes respect the commit order);
///  - RC reads observe the newest committed version at the *read*;
///    SI/SSI reads observe the newest version committed before the
///    session's snapshot (read-last-committed relative to first(T));
///  - row locks serialize concurrent writers (no dirty writes): a write to
///    a row locked by another active session blocks;
///  - SI/SSI writers abort when a version was committed after their
///    snapshot (first-updater-wins: no concurrent writes);
///  - SSI sessions are monitored for dangerous structures (exactly the
///    condition of Definition 2.4, including the commit-order
///    optimization); a commit that would complete one aborts instead.
///
/// Single-threaded by design: callers (the Driver) interleave sessions
/// step by step, which makes anomalies reproducible and lets tests replay
/// the exact counterexample schedules produced by the robustness checker.
class Engine {
 public:
  explicit Engine(size_t num_objects, EngineOptions options = {});

  /// Starts a session at `level`. The snapshot is taken at Begin.
  SessionId Begin(IsolationLevel level);

  /// Reads `object`. Never blocks (MVCC readers don't block).
  ReadResult Read(SessionId session, ObjectId object);

  /// Writes `object` (buffered until commit).
  WriteResult Write(SessionId session, ObjectId object, Value value);

  /// Commits the session, installing its writes.
  CommitResult Commit(SessionId session);

  /// Aborts the session (driver-initiated, e.g. deadlock victim).
  void Abort(SessionId session);

  /// Garbage-collects versions unreachable by every active snapshot
  /// (VACUUM). Safe to call at any time; returns versions dropped.
  size_t Vacuum();

  const SessionRecord& session(SessionId id) const { return sessions_[id]; }
  size_t num_sessions() const { return sessions_.size(); }
  const VersionStore& store() const { return store_; }
  const EngineStats& stats() const { return stats_; }
  /// Global step counter (each read/write/commit is one step).
  uint64_t current_step() const { return step_; }

 private:
  void AbortInternal(SessionId session, AbortReason reason);

  EngineOptions options_;
  // Metric handles resolved once at construction (one relaxed atomic add
  // per instrumented step); all null when options_.metrics is null.
  Counter* m_begins_ = nullptr;
  Counter* m_reads_ = nullptr;
  Counter* m_writes_ = nullptr;
  Counter* m_commits_ = nullptr;
  Counter* m_aborts_write_conflict_ = nullptr;
  Counter* m_aborts_ssi_ = nullptr;
  Counter* m_aborts_user_ = nullptr;
  Counter* m_blocked_steps_ = nullptr;
  Counter* m_ssi_false_positives_ = nullptr;
  Histogram* m_version_chain_len_ = nullptr;
  VersionStore store_;
  std::vector<SessionRecord> sessions_;
  /// Row locks: object -> active writing session.
  std::map<ObjectId, SessionId> row_locks_;
  Timestamp clock_ = 0;
  uint64_t step_ = 0;
  EngineStats stats_;
};

}  // namespace mvrob

#endif  // MVROB_MVCC_ENGINE_H_
