#include "mvcc/roundtrip.h"

#include <optional>

#include "common/metrics.h"
#include "common/string_util.h"
#include "iso/allowed.h"
#include "mvcc/concurrent_driver.h"
#include "mvcc/driver.h"
#include "mvcc/trace.h"
#include "schedule/anomaly.h"
#include "schedule/serializability.h"

namespace mvrob {

namespace {

constexpr size_t kMaxFailureDiagnostics = 8;

void AddFailure(RoundTripReport* report, uint64_t run, std::string_view why) {
  ++report->disagreements;
  if (report->failures.size() < kMaxFailureDiagnostics) {
    report->failures.push_back(StrCat("run ", run, ": ", why));
  }
}

}  // namespace

std::string RoundTripReport::ToString() const {
  std::string out = StrCat(
      "round-trip validation: ", runs, " runs, ", certified, " certified, ",
      disagreements, " disagreements\n");
  out += StrCat("  allocation robust: ", allocation_robust ? "yes" : "no",
                " (", triples_examined, " triples examined)\n");
  out += StrCat("  serializable runs: ", serializable_runs, "\n");
  out += StrCat("  anomalous runs:    ", anomalous_runs, "\n");
  if (skipped_unexportable > 0) {
    out += StrCat("  unexportable runs: ", skipped_unexportable,
                  " (double-write sessions; round-trip checked only)\n");
  }
  for (const std::string& failure : failures) {
    out += StrCat("  DISAGREEMENT ", failure, "\n");
  }
  if (disagreements > static_cast<uint64_t>(failures.size())) {
    out += StrCat("  ... and ",
                  disagreements - static_cast<uint64_t>(failures.size()),
                  " more\n");
  }
  return out;
}

StatusOr<RoundTripReport> ValidateEngineRuns(const TransactionSet& txns,
                                             const Allocation& alloc,
                                             const RoundTripOptions& options) {
  if (alloc.size() != txns.size()) {
    return Status::InvalidArgument(
        StrCat("allocation has ", alloc.size(), " levels for ", txns.size(),
               " transactions"));
  }
  if (options.runs < 0) {
    return Status::InvalidArgument("runs must be >= 0");
  }
  PhaseTimer timer(options.metrics, "roundtrip.validate");

  RoundTripReport report;
  RobustnessResult verdict = CheckRobustness(txns, alloc, options.check);
  report.allocation_robust = verdict.robust;
  report.triples_examined = verdict.triples_examined;

  const bool concurrent = options.engine_threads > 1;
  ScheduleRecorder recorder(options.recorder_capacity);
  for (int run = 0; run < options.runs; ++run) {
    recorder.Clear();
    RandomRunOptions run_options;
    run_options.concurrency = options.concurrency;
    run_options.seed = options.seed + static_cast<uint64_t>(run);
    // Engines live in optionals so one loop body serves both paths.
    std::optional<Engine> engine;
    std::optional<ConcurrentEngine> concurrent_engine;
    if (concurrent) {
      ConcurrentEngineOptions engine_options;
      engine_options.num_shards = options.engine_shards;
      engine_options.ssi_mode = options.ssi_mode;
      engine_options.recorder = &recorder;
      // Surfaces the per-shard/GC series for `mvrob validate
      // --engine-shards`; attaching metrics never changes a run.
      engine_options.metrics = options.metrics;
      concurrent_engine.emplace(txns.num_objects(),
                                static_cast<size_t>(options.engine_threads),
                                engine_options);
      run_options.engine_threads = options.engine_threads;
      RunConcurrent(*concurrent_engine, txns, alloc, run_options);
    } else {
      EngineOptions engine_options;
      engine_options.ssi_mode = options.ssi_mode;
      engine_options.recorder = &recorder;
      engine.emplace(txns.num_objects(), engine_options);
      RunRandom(*engine, txns, alloc, run_options);
    }
    ++report.runs;

    if (recorder.dropped() > 0) {
      // Not a theory/execution disagreement — the ring was simply too
      // small for a faithful replay. Configuration error.
      return Status::InvalidArgument(
          StrCat("recorder dropped ", recorder.dropped(),
                 " events at capacity ", recorder.capacity(),
                 "; raise recorder_capacity for a faithful replay"));
    }

    // Stage 1: text round-trip. The parsed file must reproduce the
    // in-memory event log bit for bit.
    std::string text = recorder.ToText(txns);
    StatusOr<std::vector<EngineEvent>> parsed =
        ParseRecordedSchedule(text, txns);
    if (!parsed.ok()) {
      AddFailure(&report, run,
                 StrCat("recording does not parse back: ",
                        parsed.status().message()));
      continue;
    }
    if (*parsed != recorder.Events()) {
      AddFailure(&report, run,
                 "parsed recording differs from the in-memory event log");
      continue;
    }

    // Stage 2: replay equality. The formal image rebuilt from the
    // recording must equal the one exported from the live engine.
    StatusOr<ExportedRun> from_recording =
        BuildRunFromRecording(*parsed, txns);
    StatusOr<ExportedRun> from_engine =
        concurrent
            ? ExportCommittedSessions(concurrent_engine->SessionSnapshot(),
                                      txns)
            : ExportCommittedRun(*engine, txns);
    if (from_recording.ok() != from_engine.ok()) {
      AddFailure(&report, run,
                 StrCat("exportability disagrees: recording says ",
                        from_recording.ok() ? "ok" : "unexportable",
                        ", engine says ",
                        from_engine.ok() ? "ok" : "unexportable"));
      continue;
    }
    if (!from_engine.ok()) {
      // A session wrote the same object twice: no faithful formal image
      // exists (at-most-one-write regime). Round-trip fidelity held, so
      // the run still counts as certified.
      ++report.skipped_unexportable;
      ++report.certified;
      continue;
    }
    StatusOr<Schedule> recorded_schedule = from_recording->BuildSchedule();
    StatusOr<Schedule> engine_schedule = from_engine->BuildSchedule();
    if (!recorded_schedule.ok() || !engine_schedule.ok()) {
      AddFailure(&report, run,
                 StrCat("exported run is not a valid schedule: ",
                        (!recorded_schedule.ok() ? recorded_schedule.status()
                                                 : engine_schedule.status())
                            .message()));
      continue;
    }
    if (from_recording->allocation != from_engine->allocation ||
        recorded_schedule->ToString(/*with_versions=*/true) !=
            engine_schedule->ToString(/*with_versions=*/true)) {
      AddFailure(&report, run,
                 "replayed schedule differs from the engine's own export");
      continue;
    }

    // Stage 3: Definition 2.4 conformance. Every engine execution must be
    // allowed under the levels it ran with.
    AllowedCheckResult allowed =
        CheckAllowedUnder(*recorded_schedule, from_recording->allocation);
    if (!allowed.allowed) {
      AddFailure(&report, run,
                 StrCat("recorded run violates Definition 2.4: ",
                        allowed.violations.empty() ? std::string("?")
                                                   : allowed.violations[0]));
      continue;
    }

    // Stage 4 + 5: serializability cross-checks.
    bool serializable = IsConflictSerializable(*recorded_schedule);
    std::vector<AnomalyReport> anomalies = FindAnomalies(*recorded_schedule);
    if (serializable) {
      ++report.serializable_runs;
    } else {
      ++report.anomalous_runs;
    }
    if (!anomalies.empty() && serializable) {
      AddFailure(&report, run,
                 StrCat("anomaly reported on a conflict-serializable run: ",
                        anomalies[0].ToString(recorded_schedule->txns())));
      continue;
    }
    if (anomalies.empty() && !serializable) {
      AddFailure(&report, run,
                 "non-serializable run but no anomaly was certified");
      continue;
    }
    // Robustness is closed under subsets, and RunRandom commits each
    // program at most once, so the committed image is always a subset of
    // `txns`: a robust verdict promises this run is serializable.
    if (report.allocation_robust && !serializable) {
      AddFailure(&report, run,
                 StrCat("allocation certified robust but the run is not "
                        "conflict serializable: ",
                        anomalies.empty()
                            ? std::string("?")
                            : anomalies[0].ToString(recorded_schedule->txns())));
      continue;
    }

    // Stage 6 (concurrent runs only): differential oracle. The exported
    // interleaving must replay cleanly on a fresh single-threaded engine
    // and reproduce the identical schedule, proving the concurrent
    // execution equivalent to a deterministic interleaving.
    if (concurrent) {
      Engine oracle(from_engine->txns.num_objects(),
                    EngineOptions{SsiMode::kExact, nullptr, nullptr});
      StatusOr<DriverReport> replay =
          RunExactInterleaving(oracle, from_engine->txns,
                               from_engine->allocation, from_engine->order);
      if (!replay.ok()) {
        AddFailure(&report, run,
                   StrCat("concurrent run has no deterministic replay: ",
                          replay.status().message()));
        continue;
      }
      StatusOr<ExportedRun> oracle_run =
          ExportCommittedRun(oracle, from_engine->txns);
      if (!oracle_run.ok()) {
        AddFailure(&report, run,
                   StrCat("deterministic replay does not export: ",
                          oracle_run.status().message()));
        continue;
      }
      // Structural comparison: order, version function and version order
      // all use positional txn ids, so this is insensitive to session
      // naming (the oracle numbers sessions densely while the concurrent
      // engine's committed ids have gaps from retried no-wait attempts).
      bool same_programs =
          oracle_run->txns.size() == from_engine->txns.size();
      for (TxnId t = 0; same_programs && t < oracle_run->txns.size(); ++t) {
        const Transaction& a = oracle_run->txns.txn(t);
        const Transaction& b = from_engine->txns.txn(t);
        same_programs = a.num_ops() == b.num_ops();
        for (int i = 0; same_programs && i < a.num_ops(); ++i) {
          same_programs = a.op(i) == b.op(i);
        }
      }
      if (!same_programs ||
          oracle_run->allocation != from_engine->allocation ||
          oracle_run->order != from_engine->order ||
          oracle_run->versions != from_engine->versions ||
          oracle_run->version_order != from_engine->version_order) {
        AddFailure(&report, run,
                   "deterministic replay of the concurrent run diverges "
                   "from the recorded schedule");
        continue;
      }
    }
    ++report.certified;
  }

  if (MetricsRegistry* metrics = options.metrics; metrics != nullptr) {
    metrics->counter("roundtrip.runs").Add(report.runs);
    metrics->counter("roundtrip.certified").Add(report.certified);
    metrics->counter("roundtrip.disagreements").Add(report.disagreements);
    metrics->counter("roundtrip.anomalous_runs").Add(report.anomalous_runs);
  }
  return report;
}

}  // namespace mvrob
