#include "mvcc/concurrent_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/watchdog.h"
#include "mvcc/recorder.h"
#include "mvcc/ssi_tracker.h"
#include "mvcc/txn_trace.h"

namespace mvrob {
namespace {

/// Published-snapshot slot value while a worker has no snapshot pinned.
constexpr Timestamp kNoSnapshot = ~Timestamp{0};
/// Prune the committed-SSI registry whenever it grows past this.
constexpr size_t kSsiPruneThreshold = 128;

}  // namespace

struct alignas(64) ConcurrentEngine::WorkerSlot {
  SessionRecord* record = nullptr;
  SessionId id = kInvalidSessionId;
  /// Snapshot pinned by the worker's active session, read by the epoch
  /// GC to compute the reclamation horizon. Publish-before-sample: the
  /// worker stores a clock value *before* sampling its snapshot, so a GC
  /// pass that misses the store computed its horizon from a clock the
  /// snapshot is guaranteed to be at or above.
  std::atomic<Timestamp> snapshot{kNoSnapshot};
  EngineStats stats;
};

struct ConcurrentEngine::Shard {
  std::mutex mu;
  /// Row locks for objects this shard owns: object -> active writer.
  std::map<ObjectId, SessionId> row_locks;
  /// Stored versions across the shard's chains (guarded by mu).
  size_t versions = 0;
  Gauge* m_versions = nullptr;
  Counter* m_lock_wait_us = nullptr;
};

ConcurrentEngine::ConcurrentEngine(size_t num_objects, size_t num_workers,
                                   ConcurrentEngineOptions options)
    : options_(options),
      num_workers_(std::max<size_t>(1, num_workers)),
      num_shards_(options.num_shards != 0
                      ? options.num_shards
                      : std::max<size_t>(16, 4 * std::max<size_t>(1, num_workers))),
      store_(num_objects),
      shards_(new Shard[num_shards_]),
      workers_(new WorkerSlot[num_workers_]) {
  for (size_t s = 0; s < num_shards_; ++s) {
    // Initial versions (timestamp 0) owned by this shard.
    shards_[s].versions =
        num_objects / num_shards_ + (s < num_objects % num_shards_ ? 1 : 0);
  }
  if (MetricsRegistry* metrics = options_.metrics; metrics != nullptr) {
    m_begins_ = &metrics->counter("mvcc.begins");
    m_reads_ = &metrics->counter("mvcc.reads");
    m_writes_ = &metrics->counter("mvcc.writes");
    m_commits_ = &metrics->counter("mvcc.commits");
    m_aborts_write_conflict_ = &metrics->counter("mvcc.aborts.write_conflict");
    m_aborts_ssi_ = &metrics->counter("mvcc.aborts.ssi");
    m_aborts_user_ = &metrics->counter("mvcc.aborts.user");
    m_blocked_steps_ = &metrics->counter("mvcc.blocked_steps");
    m_version_chain_len_ = &metrics->histogram("mvcc.version_chain_len");
    m_gc_reclaimed_ = &metrics->counter("mvcc.gc.reclaimed");
    m_gc_epochs_ = &metrics->counter("mvcc.gc.epochs");
    m_gc_horizon_ = &metrics->gauge("mvcc.gc.horizon");
    for (size_t s = 0; s < num_shards_; ++s) {
      shards_[s].m_versions =
          &metrics->gauge(StrCat("mvcc.shard.versions{shard=", s, "}"));
      shards_[s].m_versions->Set(static_cast<int64_t>(shards_[s].versions));
      shards_[s].m_lock_wait_us =
          &metrics->counter(StrCat("mvcc.shard.lock_wait_us{shard=", s, "}"));
    }
  }
}

ConcurrentEngine::~ConcurrentEngine() = default;

size_t ConcurrentEngine::num_objects() const { return store_.num_objects(); }

ConcurrentEngine::Shard& ConcurrentEngine::ShardOf(ObjectId object) {
  return shards_[object % num_shards_];
}

void ConcurrentEngine::LockShard(Shard& shard) {
  if (shard.m_lock_wait_us == nullptr) {
    shard.mu.lock();
    return;
  }
  if (shard.mu.try_lock()) return;
  auto start = std::chrono::steady_clock::now();
  shard.mu.lock();
  auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  shard.m_lock_wait_us->Add(static_cast<uint64_t>(waited.count()));
}

void ConcurrentEngine::RecordEvent(const EngineEvent& event) {
  std::lock_guard<std::mutex> lock(record_mu_);
  options_.recorder->Record(event);
}

SessionId ConcurrentEngine::Begin(size_t worker, IsolationLevel level) {
  WorkerSlot& slot = workers_[worker];
  assert(slot.record == nullptr || slot.record->state != TxnState::kActive);
  SessionRecord record;
  record.level = level;
  record.state = TxnState::kActive;
  // SI/SSI snapshots are taken at the session's first operation; until
  // then the session pins nothing.
  SessionId id;
  if (options_.recorder != nullptr) {
    // The begin event must be recorded before any later-allocated
    // session's begin: BuildRunFromRecording requires begins in id order,
    // so allocation and recording are one critical section.
    std::lock_guard<std::mutex> rec_lock(record_mu_);
    {
      std::lock_guard<std::mutex> lock(session_mu_);
      sessions_.push_back(std::move(record));
      id = static_cast<SessionId>(sessions_.size() - 1);
      slot.record = &sessions_.back();
    }
    EngineEvent event;
    event.kind = EngineEventKind::kBegin;
    event.session = id;
    event.step = CurrentKey();
    event.level = level;
    event.version_ts = clock_.load(std::memory_order_relaxed);
    options_.recorder->Record(event);
  } else {
    std::lock_guard<std::mutex> lock(session_mu_);
    sessions_.push_back(std::move(record));
    id = static_cast<SessionId>(sessions_.size() - 1);
    slot.record = &sessions_.back();
  }
  slot.id = id;
  ++slot.stats.begins;
  if (m_begins_ != nullptr) m_begins_->Increment();
  return id;
}

ReadResult ConcurrentEngine::Read(size_t worker, ObjectId object) {
  WorkerSlot& slot = workers_[worker];
  SessionRecord& record = *slot.record;
  assert(record.state == TxnState::kActive);
  ++slot.stats.reads;
  if (m_reads_ != nullptr) m_reads_->Increment();

  ReadResult result;
  // Read-your-own-writes: the buffered value wins; no shard state is
  // touched (an own write implies the session already has a first step
  // and, for SI/SSI, a snapshot).
  auto own = record.write_buffer.find(object);
  if (own != record.write_buffer.end()) {
    uint64_t key = NextKey(clock_.load(std::memory_order_seq_cst));
    result.value = own->second;
    result.version_writer = slot.id;
    result.own_write = true;
    record.reads.push_back(
        SessionReadRecord{object, /*version_ts=*/0, slot.id, key});
    if (options_.recorder != nullptr) {
      EngineEvent event;
      event.kind = EngineEventKind::kRead;
      event.session = slot.id;
      event.step = key;
      event.object = object;
      event.value = result.value;
      event.version_writer = slot.id;
      event.own_write = true;
      RecordEvent(event);
    }
    return result;
  }

  Shard& shard = ShardOf(object);
  LockShard(shard);
  Timestamp c;
  if (record.level == IsolationLevel::kRC) {
    c = clock_.load(std::memory_order_seq_cst);
  } else if (record.first_step == 0) {
    // Lazy snapshot at first(T): publish a conservative bound for the
    // epoch GC *before* sampling, then sample. The sample is both the
    // snapshot and the clock component of this operation's step key, so
    // the exported position of first(T) matches its visibility.
    slot.snapshot.store(clock_.load(std::memory_order_seq_cst),
                        std::memory_order_seq_cst);
    c = clock_.load(std::memory_order_seq_cst);
    record.snapshot_ts = c;
    slot.snapshot.store(c, std::memory_order_seq_cst);
  } else {
    c = clock_.load(std::memory_order_seq_cst);
  }
  Timestamp read_ts =
      record.level == IsolationLevel::kRC ? c : record.snapshot_ts;
  const StoredVersion version = store_.SnapshotRead(object, read_ts);
  shard.mu.unlock();

  uint64_t key = NextKey(c);
  if (record.first_step == 0) record.first_step = key;
  result.value = version.value;
  result.version_writer = version.writer;
  record.reads.push_back(
      SessionReadRecord{object, version.commit_ts, version.writer, key});
  if (options_.recorder != nullptr) {
    EngineEvent event;
    event.kind = EngineEventKind::kRead;
    event.session = slot.id;
    event.step = key;
    event.object = object;
    event.value = result.value;
    event.version_writer = version.writer;
    event.version_ts = version.commit_ts;
    RecordEvent(event);
  }
  return result;
}

WriteResult ConcurrentEngine::Write(size_t worker, ObjectId object,
                                    Value value) {
  WorkerSlot& slot = workers_[worker];
  SessionRecord& record = *slot.record;
  assert(record.state == TxnState::kActive);
  WriteResult result;

  Shard& shard = ShardOf(object);
  LockShard(shard);
  // No-wait row locking: a foreign lock means kBlocked immediately; the
  // driver aborts and retries instead of waiting, so no cross-thread
  // deadlock detection is needed. The entry may linger briefly after the
  // holder commits (locks are released after the clock is published),
  // which only costs a spurious retry.
  auto lock_it = shard.row_locks.find(object);
  if (lock_it != shard.row_locks.end() && lock_it->second != slot.id) {
    SessionId blocker = lock_it->second;
    shard.mu.unlock();
    ++slot.stats.blocked_steps;
    if (m_blocked_steps_ != nullptr) m_blocked_steps_->Increment();
    result.status = StepStatus::kBlocked;
    result.blocker = blocker;
    if (options_.recorder != nullptr) {
      EngineEvent event;
      event.kind = EngineEventKind::kBlocked;
      event.session = slot.id;
      event.step = CurrentKey();
      event.object = object;
      event.version_writer = blocker;
      RecordEvent(event);
    }
    return result;
  }

  Timestamp c;
  if (record.level != IsolationLevel::kRC && record.first_step == 0) {
    // Lazy snapshot at first(T); see Read.
    slot.snapshot.store(clock_.load(std::memory_order_seq_cst),
                        std::memory_order_seq_cst);
    c = clock_.load(std::memory_order_seq_cst);
    record.snapshot_ts = c;
    slot.snapshot.store(c, std::memory_order_seq_cst);
  } else {
    c = clock_.load(std::memory_order_seq_cst);
  }
  // First-updater-wins for snapshot levels (Definition 2.3). The chain
  // can contain a version whose commit is not yet clock-published; such a
  // version is certain to commit (it is being installed under the commit
  // mutex), so aborting on it is still a true conflict.
  if (record.level != IsolationLevel::kRC &&
      store_.HasVersionAfter(object, record.snapshot_ts)) {
    // Capture the conflicting version (the newest one) while the shard
    // latch still pins the chain; attribute after unlock.
    StoredVersion conflicting{};
    if (options_.tracer != nullptr) conflicting = store_.Latest(object);
    shard.mu.unlock();
    if (options_.tracer != nullptr) {
      ConflictAttribution attribution;
      attribution.conflicting_session = conflicting.writer;
      attribution.object = object;
      attribution.version_ts = conflicting.commit_ts;
      attribution.type = ConflictType::kWW;
      attribution.cause = TraceAbortCause::kFirstUpdaterWins;
      options_.tracer->AttributeAbort(slot.id, attribution);
    }
    AbortInternal(slot, AbortReason::kWriteConflict);
    result.status = StepStatus::kAborted;
    result.abort_reason = AbortReason::kWriteConflict;
    return result;
  }
  uint64_t key = NextKey(c);
  if (record.first_step == 0) record.first_step = key;
  shard.row_locks[object] = slot.id;
  shard.mu.unlock();

  record.write_buffer[object] = value;
  record.writes.push_back(SessionWriteRecord{object, key});
  ++slot.stats.writes;
  if (m_writes_ != nullptr) m_writes_->Increment();
  if (options_.recorder != nullptr) {
    EngineEvent event;
    event.kind = EngineEventKind::kWrite;
    event.session = slot.id;
    event.step = key;
    event.object = object;
    event.value = value;
    RecordEvent(event);
  }
  return result;
}

CommitResult ConcurrentEngine::Commit(size_t worker) {
  WorkerSlot& slot = workers_[worker];
  SessionRecord& record = *slot.record;
  assert(record.state == TxnState::kActive);
  CommitResult result;
  const bool has_writes = !record.write_buffer.empty();

  if (record.level == IsolationLevel::kSSI || has_writes) {
    // Version-installing commits (and every SSI commit, so SSI commit
    // timestamps stay unique) serialize on the commit mutex.
    std::unique_lock<std::mutex> commit_lock(commit_mu_);
    Timestamp ts = clock_.load(std::memory_order_relaxed) + 1;
    uint64_t commit_step = ts << 32;
    if (record.level == IsolationLevel::kSSI &&
        SsiTracker::WouldCompleteDangerousStructure(ssi_committed_, slot.id,
                                                    record, ts, commit_step)) {
      // The registry is only mutated under the commit mutex, so the detail
      // scan must run before unlocking.
      SsiConflictDetail detail;
      if (options_.tracer != nullptr) {
        detail = SsiTracker::FindDangerousStructureDetail(
            ssi_committed_, slot.id, record, ts, commit_step);
      }
      commit_lock.unlock();
      if (options_.tracer != nullptr) {
        ConflictAttribution attribution;
        attribution.conflicting_session = detail.peer;
        attribution.object = detail.object;
        attribution.version_ts = detail.version_ts;
        attribution.type = ConflictType::kRW;
        attribution.cause = TraceAbortCause::kSsiDangerousStructure;
        options_.tracer->AttributeAbort(slot.id, attribution);
      }
      AbortInternal(slot, AbortReason::kSsiDangerousStructure);
      result.status = StepStatus::kAborted;
      result.abort_reason = AbortReason::kSsiDangerousStructure;
      return result;
    }
    record.commit_ts = ts;
    record.commit_step = commit_step;
    record.state = TxnState::kCommitted;
    for (const auto& [object, value] : record.write_buffer) {
      Shard& shard = ShardOf(object);
      LockShard(shard);
      store_.Install(object, StoredVersion{value, slot.id, ts});
      ++shard.versions;
      if (shard.m_versions != nullptr) {
        shard.m_versions->Set(static_cast<int64_t>(shard.versions));
      }
      if (m_version_chain_len_ != nullptr) {
        m_version_chain_len_->Observe(store_.ChainOf(object).size());
      }
      shard.mu.unlock();
    }
    // Publish only after every version is installed: a reader that
    // samples clock >= ts is guaranteed to see all of this commit's
    // versions in the chains.
    clock_.store(ts, std::memory_order_seq_cst);
    if (record.level == IsolationLevel::kSSI) {
      ssi_committed_.emplace_back(slot.id, &record);
      if (ssi_committed_.size() >= kSsiPruneThreshold) {
        PruneSsiRegistryLocked();
      }
    }
    commit_lock.unlock();
    // Release row locks only after the clock publish: a writer that finds
    // the lock gone then samples a clock >= ts, so its step key follows
    // this commit's key (no formal dirty write).
    ReleaseRowLocks(record, slot.id);
    result.commit_ts = ts;
  } else {
    // Read-only RC/SI fast path: nothing to install, no clock bump, no
    // commit mutex. The commit key carries the current clock plus a fresh
    // tie-break, placing it after every operation of the session.
    Timestamp c = clock_.load(std::memory_order_seq_cst);
    record.commit_ts = c;
    record.commit_step = NextKey(c);
    record.state = TxnState::kCommitted;
    result.commit_ts = c;
  }

  slot.snapshot.store(kNoSnapshot, std::memory_order_seq_cst);
  ++slot.stats.commits;
  if (m_commits_ != nullptr) m_commits_->Increment();
  if (options_.recorder != nullptr) {
    EngineEvent event;
    event.kind = EngineEventKind::kCommit;
    event.session = slot.id;
    event.step = record.commit_step;
    event.commit_ts = record.commit_ts;
    RecordEvent(event);
  }
  if (has_writes && options_.commits_per_epoch != 0) {
    uint64_t n = writer_commits_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % options_.commits_per_epoch == 0) RunEpochGc();
  }
  return result;
}

void ConcurrentEngine::Abort(size_t worker) {
  AbortInternal(workers_[worker], AbortReason::kUser);
}

void ConcurrentEngine::AbortInternal(WorkerSlot& slot, AbortReason reason) {
  SessionRecord& record = *slot.record;
  assert(record.state == TxnState::kActive);
  record.state = TxnState::kAborted;
  record.abort_reason = reason;
  ReleaseRowLocks(record, slot.id);
  slot.snapshot.store(kNoSnapshot, std::memory_order_seq_cst);
  if (options_.recorder != nullptr) {
    EngineEvent event;
    event.kind = EngineEventKind::kAbort;
    event.session = slot.id;
    event.step = CurrentKey();
    event.reason = reason;
    RecordEvent(event);
  }
  switch (reason) {
    case AbortReason::kWriteConflict:
      ++slot.stats.aborts_write_conflict;
      if (m_aborts_write_conflict_ != nullptr) {
        m_aborts_write_conflict_->Increment();
      }
      break;
    case AbortReason::kSsiDangerousStructure:
      ++slot.stats.aborts_ssi;
      if (m_aborts_ssi_ != nullptr) m_aborts_ssi_->Increment();
      break;
    default:
      ++slot.stats.aborts_user;
      if (m_aborts_user_ != nullptr) m_aborts_user_->Increment();
      break;
  }
}

void ConcurrentEngine::ReleaseRowLocks(const SessionRecord& record,
                                       SessionId id) {
  for (const auto& [object, value] : record.write_buffer) {
    (void)value;
    Shard& shard = ShardOf(object);
    LockShard(shard);
    auto it = shard.row_locks.find(object);
    if (it != shard.row_locks.end() && it->second == id) {
      shard.row_locks.erase(it);
    }
    shard.mu.unlock();
  }
}

size_t ConcurrentEngine::RunEpochGc() {
  // Single sweeper at a time; a colliding trigger simply skips (the next
  // epoch boundary retries).
  bool expected = false;
  if (!gc_running_.compare_exchange_strong(expected, true)) return 0;

  // Per-shard heartbeats: a sweep wedged on one shard latch stalls out.
  WatchdogScope watch(options_.watchdog, "mvcc.gc", std::chrono::seconds(10));

  // Horizon: the clock first, then the published slots. A worker whose
  // snapshot publish we miss here sampled its snapshot after our clock
  // read, so its snapshot is >= this horizon and stays readable.
  Timestamp horizon = clock_.load(std::memory_order_seq_cst);
  for (size_t w = 0; w < num_workers_; ++w) {
    horizon =
        std::min(horizon, workers_[w].snapshot.load(std::memory_order_seq_cst));
  }

  size_t reclaimed = 0;
  const size_t objects = store_.num_objects();
  for (size_t s = 0; s < num_shards_; ++s) {
    watch.Heartbeat();
    Shard& shard = shards_[s];
    size_t shard_reclaimed = 0;
    LockShard(shard);
    for (size_t object = s; object < objects; object += num_shards_) {
      shard_reclaimed +=
          store_.VacuumObject(static_cast<ObjectId>(object), horizon);
    }
    shard.versions -= shard_reclaimed;
    if (shard.m_versions != nullptr) {
      shard.m_versions->Set(static_cast<int64_t>(shard.versions));
    }
    shard.mu.unlock();
    reclaimed += shard_reclaimed;
  }

  uint64_t epoch = gc_epochs_.fetch_add(1, std::memory_order_relaxed) + 1;
  gc_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  if (m_gc_epochs_ != nullptr) m_gc_epochs_->Increment();
  if (m_gc_reclaimed_ != nullptr) m_gc_reclaimed_->Add(reclaimed);
  if (m_gc_horizon_ != nullptr) {
    m_gc_horizon_->Set(static_cast<int64_t>(horizon));
  }
  Logger& logger = GlobalLogger();
  if (logger.enabled(LogLevel::kInfo)) {
    logger.Log(LogLevel::kInfo, "mvcc.gc", "epoch reclamation",
               {{"epoch", epoch},
                {"horizon", horizon},
                {"reclaimed", static_cast<uint64_t>(reclaimed)}});
  }
  gc_running_.store(false, std::memory_order_seq_cst);
  return reclaimed;
}

void ConcurrentEngine::PruneSsiRegistryLocked() {
  // An entry can still join a dangerous structure only through a chain of
  // Concurrent() links reaching a session whose first step is >= m — the
  // lower bound on every active and future first step. Concurrent() is
  // interval overlap of [first_step, commit_step), so merge entries into
  // overlap components and drop every component that ends at or below m.
  Timestamp min_ts = clock_.load(std::memory_order_seq_cst);
  for (size_t w = 0; w < num_workers_; ++w) {
    min_ts =
        std::min(min_ts, workers_[w].snapshot.load(std::memory_order_seq_cst));
  }
  uint64_t m = min_ts << 32;

  std::vector<std::pair<SessionId, const SessionRecord*>> kept;
  kept.reserve(ssi_committed_.size());
  std::sort(ssi_committed_.begin(), ssi_committed_.end(),
            [](const auto& a, const auto& b) {
              return a.second->first_step < b.second->first_step;
            });
  size_t component_begin = 0;
  uint64_t component_end = 0;
  auto flush = [&](size_t component_limit) {
    if (component_end > m) {
      for (size_t i = component_begin; i < component_limit; ++i) {
        kept.push_back(ssi_committed_[i]);
      }
    }
  };
  for (size_t i = 0; i < ssi_committed_.size(); ++i) {
    const SessionRecord* record = ssi_committed_[i].second;
    // first_step == 0 (a committed SSI session with no operations) is
    // never concurrent with anything; drop it outright.
    if (record->first_step == 0) {
      if (component_begin == i) ++component_begin;
      continue;
    }
    if (i > component_begin && record->first_step >= component_end) {
      flush(i);
      component_begin = i;
      component_end = 0;
    }
    component_end = std::max(component_end, record->commit_step);
  }
  flush(ssi_committed_.size());
  ssi_committed_ = std::move(kept);
}

std::vector<SessionRecord> ConcurrentEngine::SessionSnapshot() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  return std::vector<SessionRecord>(sessions_.begin(), sessions_.end());
}

EngineStats ConcurrentEngine::stats() const {
  EngineStats total;
  for (size_t w = 0; w < num_workers_; ++w) {
    const EngineStats& s = workers_[w].stats;
    total.begins += s.begins;
    total.reads += s.reads;
    total.writes += s.writes;
    total.commits += s.commits;
    total.aborts_write_conflict += s.aborts_write_conflict;
    total.aborts_ssi += s.aborts_ssi;
    total.aborts_user += s.aborts_user;
    total.blocked_steps += s.blocked_steps;
  }
  return total;
}

size_t ConcurrentEngine::TotalVersions() const {
  return store_.TotalVersions();
}

size_t ConcurrentEngine::num_sessions() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  return sessions_.size();
}

}  // namespace mvrob
