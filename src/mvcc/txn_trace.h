#ifndef MVROB_MVCC_TXN_TRACE_H_
#define MVROB_MVCC_TXN_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "mvcc/engine.h"
#include "txn/transaction_set.h"

namespace mvrob {

class Counter;
class JsonWriter;
class MetricsRegistry;

/// Conflict-edge type of an attributed abort, matching the formal edge
/// vocabulary of the checker (ww/wr/rw of core/conflict.h). A FUW abort is
/// a ww conflict (two concurrent writers of one object); an SSI abort is
/// attributed along an rw-antidependency of the dangerous structure.
enum class ConflictType : uint8_t { kWW, kWR, kRW };

const char* ConflictTypeToString(ConflictType type);

/// Why an attributed abort happened, in mechanism terms (finer than
/// AbortReason: driver-initiated kUser aborts split into deadlock victims
/// and no-wait lock conflicts).
enum class TraceAbortCause : uint8_t {
  kFirstUpdaterWins,
  kSsiDangerousStructure,
  kDeadlockVictim,
  kNoWaitLockConflict,
};

const char* TraceAbortCauseToString(TraceAbortCause cause);

/// Causal attribution of one abort (or block): which concurrent session
/// the victim conflicted with, on which object/version, and how. Producers
/// (the engines and drivers) fill session-level facts; the tracer resolves
/// the conflicting session to its program name and level at record time,
/// so attributions stay meaningful after the session retires.
struct ConflictAttribution {
  SessionId conflicting_session = kInvalidSessionId;
  ObjectId object = kInvalidObjectId;
  /// Commit timestamp of the conflicting version (FUW) — 0 when the
  /// conflict is not version-mediated (lock conflicts, SSI edges on
  /// uncommitted writes).
  Timestamp version_ts = 0;
  ConflictType type = ConflictType::kWW;
  TraceAbortCause cause = TraceAbortCause::kFirstUpdaterWins;
};

/// One operation of a sampled attempt (bounded per attempt; overflow is
/// counted, not stored).
enum class TraceOpKind : uint8_t { kRead, kWrite, kBlocked };

struct TraceOp {
  TraceOpKind kind = TraceOpKind::kRead;
  ObjectId object = kInvalidObjectId;
  /// kBlocked: the session holding the row lock.
  SessionId blocker = kInvalidSessionId;
};

/// One execution attempt (engine session) of a sampled logical
/// transaction: begin -> ops -> commit/abort, with the abort's causal
/// attribution when the engine or driver supplied one.
struct TxnAttempt {
  SessionId session = kInvalidSessionId;
  /// Dense thread id (MetricsRegistry::CurrentThreadId) of the executing
  /// worker — the Chrome trace track.
  uint32_t tid = 0;
  uint64_t begin_us = 0;
  uint64_t end_us = 0;
  bool committed = false;
  AbortReason abort_reason = AbortReason::kNone;
  std::vector<TraceOp> ops;
  uint32_t ops_dropped = 0;
  bool attributed = false;
  ConflictAttribution attribution;
  /// Resolved at attribution time from the tracer's session table.
  std::string conflicting_txn;
  IsolationLevel conflicting_level = IsolationLevel::kRC;
};

/// The full trace of one sampled logical transaction: every attempt
/// (retries included) linked under one flow id. Flow ids are process-wide
/// unique and become Chrome flow-event ids, so retries render as one
/// connected arrow chain across worker tracks.
struct TxnTrace {
  uint64_t flow_id = 0;
  TxnId txn = kInvalidTxnId;
  std::string name;
  IsolationLevel level = IsolationLevel::kRC;
  bool committed = false;
  std::vector<TxnAttempt> attempts;
  uint32_t attempts_dropped = 0;
};

/// One row of the aggregated conflict-attribution table: every attributed
/// abort (sampled or not) counts here, keyed by the (victim level,
/// conflicting level) pair, the conflict type/cause, and the transaction
/// templates involved.
struct TraceConflictRow {
  std::string victim;
  IsolationLevel victim_level = IsolationLevel::kRC;
  std::string conflicting;
  IsolationLevel conflicting_level = IsolationLevel::kRC;
  ConflictType type = ConflictType::kWW;
  TraceAbortCause cause = TraceAbortCause::kFirstUpdaterWins;
  uint64_t count = 0;
};

struct TxnTracerOptions {
  /// Head-based deterministic sampling: logical transaction instance k
  /// (0-based, in StartFlow order) is sampled iff k % sample_every_n == 0.
  /// On the deterministic driver the instance order is a pure function of
  /// the seed, so the sampled set is reproducible.
  uint64_t sample_every_n = 1;
  /// Completed sampled traces retained (oldest dropped, drop counted).
  size_t ring_capacity = 256;
  /// Ops recorded per attempt / attempts per flow before counting drops.
  size_t max_ops_per_attempt = 64;
  size_t max_attempts_per_flow = 32;
  /// Optional sink for the trace.* counter family (trace.flows_started,
  /// trace.flows_sampled, trace.attempts_sampled,
  /// trace.aborts_attributed{type=...}, trace.completed_dropped). Null
  /// disables the counters; the tracer itself still records.
  MetricsRegistry* metrics = nullptr;
  /// Test hook: overrides the span clock (default: microseconds since the
  /// tracer's construction on the steady clock), so golden exports are
  /// deterministic. Timestamps never influence engine behavior.
  uint64_t (*clock_us)() = nullptr;
};

/// A sampled, thread-safe recorder of per-transaction lifecycle spans
/// with causal abort attribution — the runtime mirror of the checker's
/// counterexample edges. Drivers own the flow lifecycle (StartFlow /
/// BeginAttempt / OnRead / OnWrite / OnBlocked / EndAttempt / EndFlow);
/// engines report attributions at their abort sites (AttributeAbort).
///
/// Cost contract, same discipline as the metrics sink: a null TxnTracer*
/// in EngineOptions / RandomRunOptions disables every call site, and the
/// tracer only observes — attaching one never changes a run's results.
/// Unsampled flows (flow id 0) skip all per-op recording; their aborts
/// still feed the aggregated conflict table, which costs one mutexed map
/// bump per abort.
///
/// All state sits behind one mutex: only sampled flows record ops, and
/// abort/attribution events are rare relative to engine steps, so the
/// lock is uncontended in practice and the type is trivially TSan-clean.
class TxnTracer {
 public:
  explicit TxnTracer(TxnTracerOptions options = {});
  TxnTracer(const TxnTracer&) = delete;
  TxnTracer& operator=(const TxnTracer&) = delete;

  /// Resets the per-run session table and caches the workload's
  /// transaction/object names for attribution rendering. Drivers call it
  /// once per engine instance (session ids restart with each engine);
  /// completed traces and the conflict table persist across runs.
  void BeginRun(const TransactionSet& txns);

  /// Registers one logical transaction instance; returns its flow id when
  /// sampled, 0 otherwise. Flow ids start at 1.
  uint64_t StartFlow(TxnId txn, IsolationLevel level);

  /// Registers `session` as executing `txn` at `level` (all sessions, so
  /// conflicting sessions can be named), and opens an attempt span on the
  /// flow when `flow_id` != 0.
  void BeginAttempt(uint64_t flow_id, SessionId session, TxnId txn,
                    IsolationLevel level);

  /// Per-op records on a sampled flow; no-ops when flow_id == 0.
  void OnRead(uint64_t flow_id, ObjectId object);
  void OnWrite(uint64_t flow_id, ObjectId object);
  void OnBlocked(uint64_t flow_id, ObjectId object, SessionId blocker);

  /// Closes the current attempt span; consumes any pending attribution
  /// recorded by AttributeAbort since BeginAttempt.
  void EndAttempt(uint64_t flow_id, bool committed, AbortReason reason);

  /// Completes the flow and moves it into the bounded ring of finished
  /// traces. Idempotent; no-op when flow_id == 0.
  void EndFlow(uint64_t flow_id, bool committed);

  /// Records the causal attribution of an abort of `victim` (engine abort
  /// sites and the drivers' deadlock/no-wait aborts). Always feeds the
  /// aggregated conflict table; additionally attaches to the victim's
  /// current attempt when its flow is sampled. Call before EndAttempt.
  void AttributeAbort(SessionId victim, const ConflictAttribution& attribution);

  uint64_t sample_every_n() const { return options_.sample_every_n; }
  uint64_t flows_started() const;
  uint64_t flows_sampled() const;
  uint64_t aborts_attributed() const;

  /// Completed traces, oldest first (ring copy).
  std::vector<TxnTrace> CompletedTraces() const;

  /// The conflict table's top `k` rows by count (ties broken by key
  /// order — deterministic).
  std::vector<TraceConflictRow> TopConflicts(size_t k) const;

  /// The /trace payload (schema v1, docs/formats.md): sampling config,
  /// lifetime totals, the aggregated conflict table, and the recent
  /// completed traces.
  std::string StatusJson() const;

  /// Appends Chrome trace_event objects (one "X" span per attempt plus
  /// "s"/"t"/"f" flow events linking retries) into an already-open
  /// traceEvents array on `json`. Timestamps share the tracer's epoch.
  void WriteChromeEvents(JsonWriter& json) const;

 private:
  struct SessionInfo {
    TxnId txn = kInvalidTxnId;
    IsolationLevel level = IsolationLevel::kRC;
    uint64_t flow = 0;  // 0 = unsampled.
  };
  /// Conflict-table key; operator< gives the deterministic render order.
  struct ConflictKey {
    std::string victim;
    std::string conflicting;
    IsolationLevel victim_level;
    IsolationLevel conflicting_level;
    ConflictType type;
    TraceAbortCause cause;
    bool operator<(const ConflictKey& other) const;
  };

  uint64_t NowUs() const;
  std::string TxnNameLocked(TxnId txn) const;
  std::string ObjectNameLocked(ObjectId object) const;
  void WriteAttemptJsonLocked(const TxnAttempt& attempt,
                              JsonWriter& json) const;

  const TxnTracerOptions options_;
  const std::chrono::steady_clock::time_point epoch_;

  // Counter handles resolved once at construction; null without a sink.
  Counter* m_flows_started_ = nullptr;
  Counter* m_flows_sampled_ = nullptr;
  Counter* m_attempts_ = nullptr;
  Counter* m_attributed_[3] = {nullptr, nullptr, nullptr};  // By ConflictType.
  Counter* m_dropped_ = nullptr;

  mutable std::mutex mu_;
  std::vector<std::string> txn_names_;
  std::vector<std::string> object_names_;
  std::vector<SessionInfo> sessions_;  // Indexed by SessionId, per run.
  uint64_t instances_ = 0;             // StartFlow calls (sampling base).
  uint64_t next_flow_id_ = 0;
  uint64_t flows_sampled_ = 0;
  uint64_t aborts_attributed_ = 0;
  uint64_t completed_dropped_ = 0;
  std::map<uint64_t, TxnTrace> live_;  // Sampled in-flight flows.
  std::deque<TxnTrace> completed_;     // Bounded ring, oldest first.
  std::map<ConflictKey, uint64_t> conflicts_;
};

}  // namespace mvrob

#endif  // MVROB_MVCC_TXN_TRACE_H_
