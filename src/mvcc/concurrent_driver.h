#ifndef MVROB_MVCC_CONCURRENT_DRIVER_H_
#define MVROB_MVCC_CONCURRENT_DRIVER_H_

#include "iso/allocation.h"
#include "mvcc/concurrent_engine.h"
#include "mvcc/driver.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// The many-core counterpart of RunRandom: executes `programs` under
/// `alloc` on engine.num_workers() OS threads, each worker driving its own
/// round-robin share of the programs through the sharded engine.
///
/// Differences from the deterministic driver:
///
///  - scheduling is the OS scheduler, not a seeded shuffle, so runs are
///    NOT reproducible step for step (the seed still fixes each worker's
///    program order and value stream). Correctness is checked after the
///    fact: the recorded run must round-trip through the validator and be
///    equivalent to a deterministic interleaving (mvcc/roundtrip.h);
///  - no-wait locking: a write that hits a foreign row lock aborts the
///    attempt and retries after a yield instead of waiting, so there are
///    no cross-thread wait cycles to detect. Lock-conflict aborts are
///    counted in DriverReport::deadlock_victims (and on the live
///    "deadlock" abort series) and do not consume the program's retry
///    budget — only engine-initiated aborts (first-updater-wins, SSI) do.
///
/// Honors options.max_retries, max_steps (approximately: the budget is
/// checked in small batches per worker), seed, stop, continuous, metrics
/// and live. options.concurrency is ignored — the effective concurrency
/// is the engine's worker count. session_of_program is left empty.
DriverReport RunConcurrent(ConcurrentEngine& engine,
                           const TransactionSet& programs,
                           const Allocation& alloc,
                           const RandomRunOptions& options);

}  // namespace mvrob

#endif  // MVROB_MVCC_CONCURRENT_DRIVER_H_
