#include "mvcc/version_store.h"

#include <cassert>
#include <cstddef>

namespace mvrob {

VersionStore::VersionStore(size_t num_objects) : chains_(num_objects) {
  for (std::vector<StoredVersion>& chain : chains_) {
    chain.push_back(StoredVersion{});  // Initial version at timestamp 0.
  }
}

const StoredVersion& VersionStore::SnapshotRead(ObjectId object,
                                                Timestamp ts) const {
  const std::vector<StoredVersion>& chain = chains_[object];
  for (size_t i = chain.size(); i-- > 0;) {
    if (chain[i].commit_ts <= ts) return chain[i];
  }
  return chain.front();  // Unreachable: the initial version has ts 0.
}

const StoredVersion& VersionStore::Latest(ObjectId object) const {
  return chains_[object].back();
}

bool VersionStore::HasVersionAfter(ObjectId object, Timestamp ts) const {
  return chains_[object].back().commit_ts > ts;
}

void VersionStore::Install(ObjectId object, StoredVersion version) {
  assert(version.commit_ts > chains_[object].back().commit_ts);
  chains_[object].push_back(version);
}

size_t VersionStore::Vacuum(Timestamp horizon) {
  size_t dropped = 0;
  for (ObjectId object = 0; object < chains_.size(); ++object) {
    dropped += VacuumObject(object, horizon);
  }
  return dropped;
}

size_t VersionStore::VacuumObject(ObjectId object, Timestamp horizon) {
  std::vector<StoredVersion>& chain = chains_[object];
  // Keep the newest version with commit_ts <= horizon plus everything
  // after it.
  size_t keep_from = 0;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].commit_ts <= horizon) keep_from = i;
  }
  if (keep_from > 0) {
    chain.erase(chain.begin(),
                chain.begin() + static_cast<std::ptrdiff_t>(keep_from));
  }
  return keep_from;
}

size_t VersionStore::TotalVersions() const {
  size_t total = 0;
  for (const std::vector<StoredVersion>& chain : chains_) {
    total += chain.size();
  }
  return total;
}

}  // namespace mvrob
