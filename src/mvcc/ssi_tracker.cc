#include "mvcc/ssi_tracker.h"

#include <algorithm>

namespace mvrob {
namespace {

// View of a session with the candidate's hypothetical commit applied.
struct MemberView {
  SessionId id = kInvalidSessionId;
  const SessionRecord* record = nullptr;
  Timestamp commit_ts = 0;
  uint64_t commit_step = 0;
};

bool Concurrent(const MemberView& a, const MemberView& b) {
  if (a.record->first_step == 0 || b.record->first_step == 0) return false;
  return a.record->first_step < b.commit_step &&
         b.record->first_step < a.commit_step;
}

// rw-antidependency a -> b: a read a version of an object installed before
// the version b writes. All writes of b install at b.commit_ts; a read of
// a's own buffered write is treated as reading a's own version (installed
// at a.commit_ts).
bool RwAntiEdge(const MemberView& a, const MemberView& b,
                ObjectId* edge_object = nullptr,
                Timestamp* edge_version_ts = nullptr) {
  if (a.id == b.id) return false;
  for (const SessionReadRecord& read : a.record->reads) {
    if (!b.record->write_buffer.contains(read.object)) continue;
    Timestamp observed_ts =
        read.version_writer == a.id ? a.commit_ts : read.version_ts;
    if (observed_ts < b.commit_ts) {
      if (edge_object != nullptr) *edge_object = read.object;
      if (edge_version_ts != nullptr) {
        *edge_version_ts = read.version_writer == a.id ? 0 : read.version_ts;
      }
      return true;
    }
  }
  return false;
}

// Potential rw-antidependency for the conservative mode: a read by `a` of
// an object `b` writes, where `a` did not observe `b`'s version —
// uncommitted writes count (the edge will materialize if b commits).
bool PotentialRwAntiEdge(const MemberView& a, const MemberView& b) {
  if (a.id == b.id) return false;
  for (const SessionReadRecord& read : a.record->reads) {
    if (!b.record->write_buffer.contains(read.object)) continue;
    if (read.version_writer != b.id) return true;
  }
  return false;
}

// A structure completed by this commit involves the candidate (the commit
// is the last event of the three transactions), but scanning all triples
// keeps the check simple and exact; the early concurrency filters keep it
// cheap in practice.
bool DangerousStructureAmong(const std::vector<MemberView>& members,
                             SessionId candidate,
                             SsiConflictDetail* detail = nullptr) {
  for (const MemberView& t1 : members) {
    for (const MemberView& t2 : members) {
      if (t2.id == t1.id || !Concurrent(t1, t2)) continue;
      if (!(t2.commit_ts > 0) || !RwAntiEdge(t1, t2)) continue;
      for (const MemberView& t3 : members) {
        if (t3.id == t2.id || !Concurrent(t2, t3)) continue;
        if (t1.id != candidate && t2.id != candidate && t3.id != candidate) {
          continue;
        }
        // Commit-order conditions: C3 <= C1 (equality iff T3 = T1) and
        // C3 < C2.
        bool c3_le_c1 = t3.id == t1.id || t3.commit_ts < t1.commit_ts;
        if (!c3_le_c1 || !(t3.commit_ts < t2.commit_ts)) continue;
        if (RwAntiEdge(t2, t3)) {
          if (detail != nullptr) {
            // Attribute the rw edge adjacent to the candidate: its peer on
            // that edge and the edge's object/version.
            detail->found = true;
            if (candidate == t2.id) {
              detail->peer = t1.id;
              RwAntiEdge(t1, t2, &detail->object, &detail->version_ts);
            } else if (candidate == t1.id) {
              detail->peer = t2.id;
              RwAntiEdge(t1, t2, &detail->object, &detail->version_ts);
            } else {
              detail->peer = t2.id;
              RwAntiEdge(t2, t3, &detail->object, &detail->version_ts);
            }
          }
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

bool SsiTracker::WouldCompleteDangerousStructure(
    const std::vector<SessionRecord>& sessions, SessionId candidate,
    Timestamp candidate_commit_ts, uint64_t candidate_commit_step) {
  // Member pool: committed SSI sessions plus the hypothetically committed
  // candidate.
  std::vector<MemberView> members;
  for (SessionId id = 0; id < sessions.size(); ++id) {
    const SessionRecord& record = sessions[id];
    if (record.level != IsolationLevel::kSSI) continue;
    if (id == candidate) {
      members.push_back(
          MemberView{id, &record, candidate_commit_ts, candidate_commit_step});
    } else if (record.state == TxnState::kCommitted) {
      members.push_back(
          MemberView{id, &record, record.commit_ts, record.commit_step});
    }
  }
  return DangerousStructureAmong(members, candidate);
}

bool SsiTracker::WouldCompleteDangerousStructure(
    const std::vector<std::pair<SessionId, const SessionRecord*>>& committed,
    SessionId candidate_id, const SessionRecord& candidate_record,
    Timestamp candidate_commit_ts, uint64_t candidate_commit_step) {
  std::vector<MemberView> members;
  members.reserve(committed.size() + 1);
  for (const auto& [id, record] : committed) {
    members.push_back(
        MemberView{id, record, record->commit_ts, record->commit_step});
  }
  members.push_back(MemberView{candidate_id, &candidate_record,
                               candidate_commit_ts, candidate_commit_step});
  return DangerousStructureAmong(members, candidate_id);
}

namespace {

// Shared member-pool construction for the dense-session overload.
std::vector<MemberView> CommittedSsiMembers(
    const std::vector<SessionRecord>& sessions, SessionId candidate,
    Timestamp candidate_commit_ts, uint64_t candidate_commit_step) {
  std::vector<MemberView> members;
  for (SessionId id = 0; id < sessions.size(); ++id) {
    const SessionRecord& record = sessions[id];
    if (record.level != IsolationLevel::kSSI) continue;
    if (id == candidate) {
      members.push_back(
          MemberView{id, &record, candidate_commit_ts, candidate_commit_step});
    } else if (record.state == TxnState::kCommitted) {
      members.push_back(
          MemberView{id, &record, record.commit_ts, record.commit_step});
    }
  }
  return members;
}

}  // namespace

SsiConflictDetail SsiTracker::FindDangerousStructureDetail(
    const std::vector<SessionRecord>& sessions, SessionId candidate,
    Timestamp candidate_commit_ts, uint64_t candidate_commit_step) {
  SsiConflictDetail detail;
  DangerousStructureAmong(
      CommittedSsiMembers(sessions, candidate, candidate_commit_ts,
                          candidate_commit_step),
      candidate, &detail);
  return detail;
}

SsiConflictDetail SsiTracker::FindDangerousStructureDetail(
    const std::vector<std::pair<SessionId, const SessionRecord*>>& committed,
    SessionId candidate_id, const SessionRecord& candidate_record,
    Timestamp candidate_commit_ts, uint64_t candidate_commit_step) {
  std::vector<MemberView> members;
  members.reserve(committed.size() + 1);
  for (const auto& [id, record] : committed) {
    members.push_back(
        MemberView{id, record, record->commit_ts, record->commit_step});
  }
  members.push_back(MemberView{candidate_id, &candidate_record,
                               candidate_commit_ts, candidate_commit_step});
  SsiConflictDetail detail;
  DangerousStructureAmong(members, candidate_id, &detail);
  return detail;
}

bool SsiTracker::WouldCreatePivot(const std::vector<SessionRecord>& sessions,
                                  SessionId candidate,
                                  Timestamp candidate_commit_ts,
                                  uint64_t candidate_commit_step) {
  constexpr Timestamp kInfTs = ~Timestamp{0};
  constexpr uint64_t kInfStep = ~uint64_t{0};
  std::vector<MemberView> members;
  for (SessionId id = 0; id < sessions.size(); ++id) {
    const SessionRecord& record = sessions[id];
    if (record.level != IsolationLevel::kSSI) continue;
    if (id == candidate) {
      members.push_back(
          MemberView{id, &record, candidate_commit_ts, candidate_commit_step});
    } else if (record.state == TxnState::kCommitted) {
      members.push_back(
          MemberView{id, &record, record.commit_ts, record.commit_step});
    } else if (record.state == TxnState::kActive) {
      members.push_back(MemberView{id, &record, kInfTs, kInfStep});
    }
  }
  for (const MemberView& pivot : members) {
    for (const MemberView& in : members) {
      if (in.id == pivot.id || !Concurrent(in, pivot)) continue;
      if (!PotentialRwAntiEdge(in, pivot)) continue;
      for (const MemberView& out : members) {
        if (out.id == pivot.id || !Concurrent(pivot, out)) continue;
        if (pivot.id != candidate && in.id != candidate &&
            out.id != candidate) {
          continue;
        }
        if (PotentialRwAntiEdge(pivot, out)) return true;
      }
    }
  }
  return false;
}

}  // namespace mvrob

