#include "mvcc/recorder.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/json.h"
#include "common/string_util.h"

namespace mvrob {

const char* EngineEventKindToString(EngineEventKind kind) {
  switch (kind) {
    case EngineEventKind::kBegin:
      return "begin";
    case EngineEventKind::kRead:
      return "read";
    case EngineEventKind::kWrite:
      return "write";
    case EngineEventKind::kBlocked:
      return "blocked";
    case EngineEventKind::kCommit:
      return "commit";
    case EngineEventKind::kAbort:
      return "abort";
  }
  return "unknown";
}

const char* AbortReasonToString(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kWriteConflict:
      return "write_conflict";
    case AbortReason::kSsiDangerousStructure:
      return "ssi_dangerous_structure";
    case AbortReason::kUser:
      return "user";
  }
  return "unknown";
}

namespace {

StatusOr<AbortReason> ParseAbortReason(std::string_view text) {
  if (text == "none") return AbortReason::kNone;
  if (text == "write_conflict") return AbortReason::kWriteConflict;
  if (text == "ssi_dangerous_structure") {
    return AbortReason::kSsiDangerousStructure;
  }
  if (text == "user") return AbortReason::kUser;
  return Status::InvalidArgument(StrCat("unknown abort reason '", text, "'"));
}

// Session display form "S<id+1>", matching the exported transaction names.
std::string SessionName(SessionId session) {
  return StrCat("S", session + 1);
}

StatusOr<SessionId> ParseSessionName(std::string_view token) {
  if (token.size() < 2 || token[0] != 'S') {
    return Status::InvalidArgument(
        StrCat("expected session 'S<k>', got '", token, "'"));
  }
  StatusOr<uint64_t> id = ParseUint64(token.substr(1));
  if (!id.ok() || *id == 0) {
    return Status::InvalidArgument(
        StrCat("invalid session id in '", token, "'"));
  }
  return static_cast<SessionId>(*id - 1);
}

}  // namespace

ScheduleRecorder::ScheduleRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  buffer_.reserve(std::min<size_t>(capacity_, 1024));
}

void ScheduleRecorder::Record(const EngineEvent& event) {
  ++total_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  // Ring overwrite: drop the oldest event.
  buffer_[start_] = event;
  start_ = (start_ + 1) % capacity_;
}

std::vector<EngineEvent> ScheduleRecorder::Events() const {
  std::vector<EngineEvent> events;
  events.reserve(buffer_.size());
  for (size_t i = 0; i < buffer_.size(); ++i) {
    events.push_back(buffer_[(start_ + i) % buffer_.size()]);
  }
  return events;
}

void ScheduleRecorder::Clear() {
  buffer_.clear();
  start_ = 0;
  total_ = 0;
}

std::string ScheduleRecorder::ToText(
    const TransactionSet& object_names) const {
  std::vector<EngineEvent> events = Events();
  std::string out = "# mvrob recorded schedule v1\n";
  out += StrCat("# events=", events.size(), " dropped=", dropped(), "\n");
  out += "objects";
  for (size_t o = 0; o < object_names.num_objects(); ++o) {
    out += StrCat(" ", object_names.ObjectName(static_cast<ObjectId>(o)));
  }
  out += "\n";
  for (const EngineEvent& event : events) {
    switch (event.kind) {
      case EngineEventKind::kBegin:
        out += StrCat("begin ", SessionName(event.session), " ",
                      IsolationLevelToString(event.level),
                      " snapshot=", event.version_ts, " step=", event.step,
                      "\n");
        break;
      case EngineEventKind::kRead:
        out += StrCat("read ", SessionName(event.session), " ",
                      object_names.ObjectName(event.object),
                      " value=", event.value, " src=",
                      event.own_write
                          ? std::string("own")
                          : (event.version_writer == kInvalidSessionId
                                 ? std::string("init")
                                 : SessionName(event.version_writer)),
                      " ts=", event.version_ts, " step=", event.step, "\n");
        break;
      case EngineEventKind::kWrite:
        out += StrCat("write ", SessionName(event.session), " ",
                      object_names.ObjectName(event.object),
                      " value=", event.value, " step=", event.step, "\n");
        break;
      case EngineEventKind::kBlocked:
        out += StrCat("blocked ", SessionName(event.session), " ",
                      object_names.ObjectName(event.object),
                      " by=", SessionName(event.version_writer),
                      " step=", event.step, "\n");
        break;
      case EngineEventKind::kCommit:
        out += StrCat("commit ", SessionName(event.session),
                      " ts=", event.commit_ts, " step=", event.step, "\n");
        break;
      case EngineEventKind::kAbort:
        out += StrCat("abort ", SessionName(event.session),
                      " reason=", AbortReasonToString(event.reason),
                      " step=", event.step, "\n");
        break;
    }
  }
  // Version-order trailer: per object, the committed writers in commit
  // order — the <<_s edges of the formal image, for human inspection
  // (the parser skips comments).
  std::map<SessionId, Timestamp> commit_ts;
  for (const EngineEvent& event : events) {
    if (event.kind == EngineEventKind::kCommit) {
      commit_ts[event.session] = event.commit_ts;
    }
  }
  std::map<ObjectId, std::vector<SessionId>> writers;
  for (const EngineEvent& event : events) {
    if (event.kind == EngineEventKind::kWrite &&
        commit_ts.contains(event.session)) {
      writers[event.object].push_back(event.session);
    }
  }
  for (auto& [object, sessions] : writers) {
    std::sort(sessions.begin(), sessions.end(),
              [&](SessionId a, SessionId b) {
                return commit_ts[a] < commit_ts[b];
              });
    out += StrCat("# version-order ", object_names.ObjectName(object), ":");
    for (SessionId id : sessions) out += StrCat(" ", SessionName(id));
    out += "\n";
  }
  return out;
}

std::string ScheduleRecorder::ToChromeTrace(
    const TransactionSet& object_names) const {
  std::vector<EngineEvent> events = Events();
  // Session lifetimes for the per-session spans.
  struct Lifetime {
    uint64_t begin = 0;
    uint64_t end = 0;
    IsolationLevel level = IsolationLevel::kRC;
    bool ended = false;
  };
  std::map<SessionId, Lifetime> lifetimes;
  for (const EngineEvent& event : events) {
    auto [it, inserted] = lifetimes.try_emplace(event.session);
    Lifetime& life = it->second;
    if (inserted || event.kind == EngineEventKind::kBegin) {
      if (event.kind == EngineEventKind::kBegin) life.level = event.level;
      if (inserted) life.begin = event.step;
    }
    life.end = std::max(life.end, event.step);
    if (event.kind == EngineEventKind::kCommit ||
        event.kind == EngineEventKind::kAbort) {
      life.ended = true;
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("traceEvents");
  json.BeginArray();
  auto emit_common = [&](std::string_view name, std::string_view phase,
                         uint64_t ts, SessionId session) {
    json.Key("name");
    json.String(name);
    json.Key("cat");
    json.String("mvcc");
    json.Key("ph");
    json.String(phase);
    json.Key("ts");
    json.Uint(ts);
    json.Key("pid");
    json.Uint(1);
    json.Key("tid");
    json.Uint(session + 1);
  };
  // Thread-name metadata + lifetime span per session.
  for (const auto& [session, life] : lifetimes) {
    json.BeginObject();
    json.Key("name");
    json.String("thread_name");
    json.Key("ph");
    json.String("M");
    json.Key("pid");
    json.Uint(1);
    json.Key("tid");
    json.Uint(session + 1);
    json.Key("args");
    json.BeginObject();
    json.Key("name");
    json.String(StrCat(SessionName(session), " (",
                       IsolationLevelToString(life.level), ")"));
    json.EndObject();
    json.EndObject();

    json.BeginObject();
    emit_common(StrCat(SessionName(session), " ",
                       IsolationLevelToString(life.level)),
                "X", life.begin, session);
    json.Key("dur");
    json.Uint(life.end - life.begin + 1);
    json.EndObject();
  }
  for (const EngineEvent& event : events) {
    std::string name;
    switch (event.kind) {
      case EngineEventKind::kBegin:
        name = StrCat("begin ", IsolationLevelToString(event.level));
        break;
      case EngineEventKind::kRead:
        name = StrCat("R[", object_names.ObjectName(event.object),
                      "]=", event.value, "@",
                      event.own_write
                          ? std::string("own")
                          : (event.version_writer == kInvalidSessionId
                                 ? std::string("init")
                                 : SessionName(event.version_writer)));
        break;
      case EngineEventKind::kWrite:
        name = StrCat("W[", object_names.ObjectName(event.object),
                      "]=", event.value);
        break;
      case EngineEventKind::kBlocked:
        name = StrCat("BLOCKED[", object_names.ObjectName(event.object),
                      "] by ", SessionName(event.version_writer));
        break;
      case EngineEventKind::kCommit:
        name = StrCat("C ts=", event.commit_ts);
        break;
      case EngineEventKind::kAbort:
        name = StrCat("ABORT ", AbortReasonToString(event.reason));
        break;
    }
    json.BeginObject();
    emit_common(name, "X", event.step, event.session);
    json.Key("dur");
    json.Uint(1);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

StatusOr<std::vector<EngineEvent>> ParseRecordedSchedule(
    std::string_view text, const TransactionSet& object_names) {
  std::vector<EngineEvent> events;
  std::istringstream stream{std::string(text)};
  std::string raw_line;
  bool saw_objects = false;
  int line_number = 0;
  while (std::getline(stream, raw_line)) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line.starts_with("#")) continue;
    std::vector<std::string> tokens(SplitAndTrim(line, ' '));
    auto fail = [&](std::string_view why) {
      return Status::InvalidArgument(
          StrCat("recorded schedule line ", line_number, ": ", why));
    };
    if (tokens[0] == "objects") {
      // The header must agree with the supplied object universe, name by
      // name — object ids in the events are positional.
      if (tokens.size() - 1 != object_names.num_objects()) {
        return fail(StrCat("object universe mismatch: file has ",
                           tokens.size() - 1, ", expected ",
                           object_names.num_objects()));
      }
      for (size_t o = 1; o < tokens.size(); ++o) {
        if (tokens[o] !=
            object_names.ObjectName(static_cast<ObjectId>(o - 1))) {
          return fail(StrCat("object ", o - 1, " is '", tokens[o],
                             "', expected '",
                             object_names.ObjectName(
                                 static_cast<ObjectId>(o - 1)),
                             "'"));
        }
      }
      saw_objects = true;
      continue;
    }
    if (!saw_objects) return fail("missing 'objects' header line");
    if (tokens.size() < 2) return fail("truncated event line");

    EngineEvent event;
    StatusOr<SessionId> session = ParseSessionName(tokens[1]);
    if (!session.ok()) return fail(session.status().message());
    event.session = *session;

    // key=value fields after the positional ones.
    std::map<std::string, std::string> fields;
    size_t positional_end = tokens.size();
    for (size_t i = 2; i < tokens.size(); ++i) {
      size_t eq = tokens[i].find('=');
      if (eq == std::string::npos) continue;
      fields[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
      positional_end = std::min(positional_end, i);
    }
    auto uint_field = [&](const std::string& key,
                          uint64_t* value) -> Status {
      auto it = fields.find(key);
      if (it == fields.end()) {
        return Status::InvalidArgument(StrCat("missing field ", key, "="));
      }
      StatusOr<uint64_t> parsed = ParseUint64(it->second);
      if (!parsed.ok()) return parsed.status();
      *value = *parsed;
      return Status::Ok();
    };
    auto object_field = [&](size_t index) -> StatusOr<ObjectId> {
      if (index >= positional_end || index >= tokens.size()) {
        return Status::InvalidArgument("missing object name");
      }
      ObjectId object = object_names.FindObject(tokens[index]);
      if (object == kInvalidObjectId) {
        return Status::InvalidArgument(
            StrCat("unknown object '", tokens[index], "'"));
      }
      return object;
    };
    Status step = uint_field("step", &event.step);
    if (!step.ok()) return fail(step.message());

    const std::string& kind = tokens[0];
    if (kind == "begin") {
      event.kind = EngineEventKind::kBegin;
      if (tokens.size() < 3) return fail("begin needs a level");
      StatusOr<IsolationLevel> level = ParseIsolationLevel(tokens[2]);
      if (!level.ok()) return fail(level.status().message());
      event.level = *level;
      Status snapshot = uint_field("snapshot", &event.version_ts);
      if (!snapshot.ok()) return fail(snapshot.message());
    } else if (kind == "read") {
      event.kind = EngineEventKind::kRead;
      StatusOr<ObjectId> object = object_field(2);
      if (!object.ok()) return fail(object.status().message());
      event.object = *object;
      auto value = fields.find("value");
      if (value == fields.end()) return fail("missing field value=");
      StatusOr<int64_t> parsed_value = ParseInt64(value->second);
      if (!parsed_value.ok()) return fail(parsed_value.status().message());
      event.value = *parsed_value;
      Status ts = uint_field("ts", &event.version_ts);
      if (!ts.ok()) return fail(ts.message());
      auto src = fields.find("src");
      if (src == fields.end()) return fail("missing field src=");
      if (src->second == "init") {
        event.version_writer = kInvalidSessionId;
      } else if (src->second == "own") {
        event.version_writer = event.session;
        event.own_write = true;
      } else {
        StatusOr<SessionId> writer = ParseSessionName(src->second);
        if (!writer.ok()) return fail(writer.status().message());
        event.version_writer = *writer;
      }
    } else if (kind == "write") {
      event.kind = EngineEventKind::kWrite;
      StatusOr<ObjectId> object = object_field(2);
      if (!object.ok()) return fail(object.status().message());
      event.object = *object;
      auto value = fields.find("value");
      if (value == fields.end()) return fail("missing field value=");
      StatusOr<int64_t> parsed_value = ParseInt64(value->second);
      if (!parsed_value.ok()) return fail(parsed_value.status().message());
      event.value = *parsed_value;
    } else if (kind == "blocked") {
      event.kind = EngineEventKind::kBlocked;
      StatusOr<ObjectId> object = object_field(2);
      if (!object.ok()) return fail(object.status().message());
      event.object = *object;
      auto by = fields.find("by");
      if (by == fields.end()) return fail("missing field by=");
      StatusOr<SessionId> blocker = ParseSessionName(by->second);
      if (!blocker.ok()) return fail(blocker.status().message());
      event.version_writer = *blocker;
    } else if (kind == "commit") {
      event.kind = EngineEventKind::kCommit;
      Status ts = uint_field("ts", &event.commit_ts);
      if (!ts.ok()) return fail(ts.message());
    } else if (kind == "abort") {
      event.kind = EngineEventKind::kAbort;
      auto reason = fields.find("reason");
      if (reason == fields.end()) return fail("missing field reason=");
      StatusOr<AbortReason> parsed = ParseAbortReason(reason->second);
      if (!parsed.ok()) return fail(parsed.status().message());
      event.reason = *parsed;
    } else {
      return fail(StrCat("unknown event kind '", kind, "'"));
    }
    events.push_back(event);
  }
  return events;
}

StatusOr<ExportedRun> BuildRunFromRecording(
    const std::vector<EngineEvent>& events,
    const TransactionSet& object_names) {
  std::vector<SessionRecord> sessions;
  auto session_of = [&](const EngineEvent& event) -> StatusOr<SessionRecord*> {
    if (event.session >= sessions.size()) {
      return Status::InvalidArgument(
          StrCat("event for session S", event.session + 1,
                 " before its begin — truncated recording?"));
    }
    SessionRecord* record = &sessions[event.session];
    if (record->state != TxnState::kActive) {
      return Status::InvalidArgument(
          StrCat("event for finished session S", event.session + 1));
    }
    return record;
  };
  for (const EngineEvent& event : events) {
    switch (event.kind) {
      case EngineEventKind::kBegin: {
        if (event.session != sessions.size()) {
          return Status::InvalidArgument(
              StrCat("begin of S", event.session + 1, " out of order (",
                     sessions.size(), " sessions so far)"));
        }
        SessionRecord record;
        record.level = event.level;
        record.snapshot_ts = event.version_ts;
        sessions.push_back(std::move(record));
        break;
      }
      case EngineEventKind::kRead: {
        StatusOr<SessionRecord*> record = session_of(event);
        if (!record.ok()) return record.status();
        (*record)->reads.push_back(SessionReadRecord{
            event.object, event.version_ts, event.version_writer,
            event.step});
        if ((*record)->first_step == 0) (*record)->first_step = event.step;
        break;
      }
      case EngineEventKind::kWrite: {
        StatusOr<SessionRecord*> record = session_of(event);
        if (!record.ok()) return record.status();
        (*record)->writes.push_back(
            SessionWriteRecord{event.object, event.step});
        (*record)->write_buffer[event.object] = event.value;
        if ((*record)->first_step == 0) (*record)->first_step = event.step;
        break;
      }
      case EngineEventKind::kBlocked:
        break;  // No state change; kept for timeline fidelity only.
      case EngineEventKind::kCommit: {
        StatusOr<SessionRecord*> record = session_of(event);
        if (!record.ok()) return record.status();
        (*record)->state = TxnState::kCommitted;
        (*record)->commit_ts = event.commit_ts;
        (*record)->commit_step = event.step;
        break;
      }
      case EngineEventKind::kAbort: {
        StatusOr<SessionRecord*> record = session_of(event);
        if (!record.ok()) return record.status();
        (*record)->state = TxnState::kAborted;
        (*record)->abort_reason = event.reason;
        break;
      }
    }
  }
  return ExportCommittedSessions(sessions, object_names);
}

}  // namespace mvrob
