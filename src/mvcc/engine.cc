#include "mvcc/engine.h"

#include <algorithm>
#include <cassert>

#include "mvcc/ssi_tracker.h"

namespace mvrob {

Engine::Engine(size_t num_objects, EngineOptions options)
    : options_(options), store_(num_objects) {}

SessionId Engine::Begin(IsolationLevel level) {
  SessionRecord record;
  record.level = level;
  record.state = TxnState::kActive;
  // The snapshot is taken at Begin; RC ignores it and re-reads the clock at
  // every read.
  record.snapshot_ts = clock_;
  sessions_.push_back(std::move(record));
  ++stats_.begins;
  return static_cast<SessionId>(sessions_.size() - 1);
}

ReadResult Engine::Read(SessionId session, ObjectId object) {
  SessionRecord& record = sessions_[session];
  assert(record.state == TxnState::kActive);
  ++step_;
  ++stats_.reads;
  if (record.first_step == 0) record.first_step = step_;

  ReadResult result;
  // Read-your-own-writes: the buffered value wins.
  auto own = record.write_buffer.find(object);
  if (own != record.write_buffer.end()) {
    result.value = own->second;
    result.version_writer = session;
    result.own_write = true;
    record.reads.push_back(SessionReadRecord{object, /*version_ts=*/0,
                                             session, step_});
    return result;
  }
  Timestamp read_ts =
      record.level == IsolationLevel::kRC ? clock_ : record.snapshot_ts;
  const StoredVersion& version = store_.SnapshotRead(object, read_ts);
  result.value = version.value;
  result.version_writer = version.writer;
  record.reads.push_back(
      SessionReadRecord{object, version.commit_ts, version.writer, step_});
  return result;
}

WriteResult Engine::Write(SessionId session, ObjectId object, Value value) {
  SessionRecord& record = sessions_[session];
  assert(record.state == TxnState::kActive);
  WriteResult result;

  // Row lock: concurrent active writers block (prevents dirty writes).
  auto lock = row_locks_.find(object);
  if (lock != row_locks_.end() && lock->second != session) {
    ++stats_.blocked_steps;
    result.status = StepStatus::kBlocked;
    result.blocker = lock->second;
    return result;
  }
  // First-updater-wins for snapshot levels: a version committed after the
  // snapshot means a concurrent write — forbidden under SI/SSI
  // (Definition 2.3).
  if (record.level != IsolationLevel::kRC &&
      store_.HasVersionAfter(object, record.snapshot_ts)) {
    AbortInternal(session, AbortReason::kWriteConflict);
    result.status = StepStatus::kAborted;
    result.abort_reason = AbortReason::kWriteConflict;
    return result;
  }
  ++step_;
  ++stats_.writes;
  if (record.first_step == 0) record.first_step = step_;
  row_locks_[object] = session;
  record.write_buffer[object] = value;
  record.writes.push_back(SessionWriteRecord{object, step_});
  return result;
}

CommitResult Engine::Commit(SessionId session) {
  SessionRecord& record = sessions_[session];
  assert(record.state == TxnState::kActive);
  CommitResult result;

  bool ssi_abort =
      record.level == IsolationLevel::kSSI &&
      (options_.ssi_mode == SsiMode::kExact
           ? SsiTracker::WouldCompleteDangerousStructure(
                 sessions_, session, clock_ + 1, step_ + 1)
           : SsiTracker::WouldCreatePivot(sessions_, session, clock_ + 1,
                                          step_ + 1));
  if (ssi_abort) {
    AbortInternal(session, AbortReason::kSsiDangerousStructure);
    result.status = StepStatus::kAborted;
    result.abort_reason = AbortReason::kSsiDangerousStructure;
    return result;
  }

  ++step_;
  Timestamp commit_ts = ++clock_;
  record.commit_ts = commit_ts;
  record.commit_step = step_;
  record.state = TxnState::kCommitted;
  for (const auto& [object, value] : record.write_buffer) {
    store_.Install(object, StoredVersion{value, session, commit_ts});
    row_locks_.erase(object);
  }
  ++stats_.commits;
  result.commit_ts = commit_ts;
  return result;
}

void Engine::Abort(SessionId session) {
  AbortInternal(session, AbortReason::kUser);
}

size_t Engine::Vacuum() {
  // RC sessions always read the newest committed version, so only snapshot
  // sessions pin history.
  Timestamp horizon = clock_;
  for (const SessionRecord& record : sessions_) {
    if (record.state == TxnState::kActive &&
        record.level != IsolationLevel::kRC) {
      horizon = std::min(horizon, record.snapshot_ts);
    }
  }
  return store_.Vacuum(horizon);
}

void Engine::AbortInternal(SessionId session, AbortReason reason) {
  SessionRecord& record = sessions_[session];
  assert(record.state == TxnState::kActive);
  record.state = TxnState::kAborted;
  record.abort_reason = reason;
  for (const auto& [object, value] : record.write_buffer) {
    (void)value;
    auto lock = row_locks_.find(object);
    if (lock != row_locks_.end() && lock->second == session) {
      row_locks_.erase(lock);
    }
  }
  switch (reason) {
    case AbortReason::kWriteConflict:
      ++stats_.aborts_write_conflict;
      break;
    case AbortReason::kSsiDangerousStructure:
      ++stats_.aborts_ssi;
      break;
    default:
      ++stats_.aborts_user;
      break;
  }
}

}  // namespace mvrob
