#include "mvcc/engine.h"

#include <algorithm>
#include <cassert>

#include "common/metrics.h"
#include "mvcc/recorder.h"
#include "mvcc/ssi_tracker.h"
#include "mvcc/txn_trace.h"

namespace mvrob {

Engine::Engine(size_t num_objects, EngineOptions options)
    : options_(options), store_(num_objects) {
  if (MetricsRegistry* metrics = options_.metrics; metrics != nullptr) {
    m_begins_ = &metrics->counter("mvcc.begins");
    m_reads_ = &metrics->counter("mvcc.reads");
    m_writes_ = &metrics->counter("mvcc.writes");
    m_commits_ = &metrics->counter("mvcc.commits");
    m_aborts_write_conflict_ = &metrics->counter("mvcc.aborts.write_conflict");
    m_aborts_ssi_ = &metrics->counter("mvcc.aborts.ssi");
    m_aborts_user_ = &metrics->counter("mvcc.aborts.user");
    m_blocked_steps_ = &metrics->counter("mvcc.blocked_steps");
    m_ssi_false_positives_ = &metrics->counter("mvcc.ssi_false_positives");
    m_version_chain_len_ = &metrics->histogram("mvcc.version_chain_len");
  }
}

SessionId Engine::Begin(IsolationLevel level) {
  SessionRecord record;
  record.level = level;
  record.state = TxnState::kActive;
  // The snapshot is taken at Begin; RC ignores it and re-reads the clock at
  // every read.
  record.snapshot_ts = clock_;
  sessions_.push_back(std::move(record));
  ++stats_.begins;
  if (m_begins_ != nullptr) m_begins_->Increment();
  SessionId id = static_cast<SessionId>(sessions_.size() - 1);
  if (options_.recorder != nullptr) {
    EngineEvent event;
    event.kind = EngineEventKind::kBegin;
    event.session = id;
    event.step = step_;
    event.level = level;
    event.version_ts = sessions_[id].snapshot_ts;
    options_.recorder->Record(event);
  }
  return id;
}

ReadResult Engine::Read(SessionId session, ObjectId object) {
  SessionRecord& record = sessions_[session];
  assert(record.state == TxnState::kActive);
  ++step_;
  ++stats_.reads;
  if (m_reads_ != nullptr) m_reads_->Increment();
  if (record.first_step == 0) record.first_step = step_;

  ReadResult result;
  // Read-your-own-writes: the buffered value wins.
  auto own = record.write_buffer.find(object);
  if (own != record.write_buffer.end()) {
    result.value = own->second;
    result.version_writer = session;
    result.own_write = true;
    record.reads.push_back(SessionReadRecord{object, /*version_ts=*/0,
                                             session, step_});
    if (options_.recorder != nullptr) {
      EngineEvent event;
      event.kind = EngineEventKind::kRead;
      event.session = session;
      event.step = step_;
      event.object = object;
      event.value = result.value;
      event.version_writer = session;
      event.own_write = true;
      options_.recorder->Record(event);
    }
    return result;
  }
  Timestamp read_ts =
      record.level == IsolationLevel::kRC ? clock_ : record.snapshot_ts;
  const StoredVersion& version = store_.SnapshotRead(object, read_ts);
  result.value = version.value;
  result.version_writer = version.writer;
  record.reads.push_back(
      SessionReadRecord{object, version.commit_ts, version.writer, step_});
  if (options_.recorder != nullptr) {
    EngineEvent event;
    event.kind = EngineEventKind::kRead;
    event.session = session;
    event.step = step_;
    event.object = object;
    event.value = result.value;
    event.version_writer = version.writer;
    event.version_ts = version.commit_ts;
    options_.recorder->Record(event);
  }
  return result;
}

WriteResult Engine::Write(SessionId session, ObjectId object, Value value) {
  SessionRecord& record = sessions_[session];
  assert(record.state == TxnState::kActive);
  WriteResult result;

  // Row lock: concurrent active writers block (prevents dirty writes).
  auto lock = row_locks_.find(object);
  if (lock != row_locks_.end() && lock->second != session) {
    ++stats_.blocked_steps;
    if (m_blocked_steps_ != nullptr) m_blocked_steps_->Increment();
    result.status = StepStatus::kBlocked;
    result.blocker = lock->second;
    if (options_.recorder != nullptr) {
      EngineEvent event;
      event.kind = EngineEventKind::kBlocked;
      event.session = session;
      event.step = step_;
      event.object = object;
      event.version_writer = lock->second;
      options_.recorder->Record(event);
    }
    return result;
  }
  // First-updater-wins for snapshot levels: a version committed after the
  // snapshot means a concurrent write — forbidden under SI/SSI
  // (Definition 2.3).
  if (record.level != IsolationLevel::kRC &&
      store_.HasVersionAfter(object, record.snapshot_ts)) {
    if (options_.tracer != nullptr) {
      // The conflicting version is the newest one: HasVersionAfter tests
      // exactly its commit timestamp against the snapshot.
      const StoredVersion& conflicting = store_.Latest(object);
      ConflictAttribution attribution;
      attribution.conflicting_session = conflicting.writer;
      attribution.object = object;
      attribution.version_ts = conflicting.commit_ts;
      attribution.type = ConflictType::kWW;
      attribution.cause = TraceAbortCause::kFirstUpdaterWins;
      options_.tracer->AttributeAbort(session, attribution);
    }
    AbortInternal(session, AbortReason::kWriteConflict);
    result.status = StepStatus::kAborted;
    result.abort_reason = AbortReason::kWriteConflict;
    return result;
  }
  ++step_;
  ++stats_.writes;
  if (m_writes_ != nullptr) m_writes_->Increment();
  if (record.first_step == 0) record.first_step = step_;
  row_locks_[object] = session;
  record.write_buffer[object] = value;
  record.writes.push_back(SessionWriteRecord{object, step_});
  if (options_.recorder != nullptr) {
    EngineEvent event;
    event.kind = EngineEventKind::kWrite;
    event.session = session;
    event.step = step_;
    event.object = object;
    event.value = value;
    options_.recorder->Record(event);
  }
  return result;
}

CommitResult Engine::Commit(SessionId session) {
  SessionRecord& record = sessions_[session];
  assert(record.state == TxnState::kActive);
  CommitResult result;

  bool ssi_abort =
      record.level == IsolationLevel::kSSI &&
      (options_.ssi_mode == SsiMode::kExact
           ? SsiTracker::WouldCompleteDangerousStructure(
                 sessions_, session, clock_ + 1, step_ + 1)
           : SsiTracker::WouldCreatePivot(sessions_, session, clock_ + 1,
                                          step_ + 1));
  if (ssi_abort) {
    // Conservative abort the exact check disagrees with = false positive.
    // Only evaluated when someone is watching; the verdict is unchanged.
    if (m_ssi_false_positives_ != nullptr &&
        options_.ssi_mode == SsiMode::kConservative &&
        !SsiTracker::WouldCompleteDangerousStructure(sessions_, session,
                                                     clock_ + 1, step_ + 1)) {
      m_ssi_false_positives_->Increment();
    }
    if (options_.tracer != nullptr) {
      const SsiConflictDetail detail = SsiTracker::FindDangerousStructureDetail(
          sessions_, session, clock_ + 1, step_ + 1);
      ConflictAttribution attribution;
      attribution.conflicting_session = detail.peer;
      attribution.object = detail.object;
      attribution.version_ts = detail.version_ts;
      attribution.type = ConflictType::kRW;
      attribution.cause = TraceAbortCause::kSsiDangerousStructure;
      options_.tracer->AttributeAbort(session, attribution);
    }
    AbortInternal(session, AbortReason::kSsiDangerousStructure);
    result.status = StepStatus::kAborted;
    result.abort_reason = AbortReason::kSsiDangerousStructure;
    return result;
  }

  ++step_;
  Timestamp commit_ts = ++clock_;
  record.commit_ts = commit_ts;
  record.commit_step = step_;
  record.state = TxnState::kCommitted;
  for (const auto& [object, value] : record.write_buffer) {
    store_.Install(object, StoredVersion{value, session, commit_ts});
    row_locks_.erase(object);
    if (m_version_chain_len_ != nullptr) {
      m_version_chain_len_->Observe(store_.ChainOf(object).size());
    }
  }
  ++stats_.commits;
  if (m_commits_ != nullptr) m_commits_->Increment();
  result.commit_ts = commit_ts;
  if (options_.recorder != nullptr) {
    EngineEvent event;
    event.kind = EngineEventKind::kCommit;
    event.session = session;
    event.step = step_;
    event.commit_ts = commit_ts;
    options_.recorder->Record(event);
  }
  return result;
}

void Engine::Abort(SessionId session) {
  AbortInternal(session, AbortReason::kUser);
}

size_t Engine::Vacuum() {
  // RC sessions always read the newest committed version, so only snapshot
  // sessions pin history.
  Timestamp horizon = clock_;
  for (const SessionRecord& record : sessions_) {
    if (record.state == TxnState::kActive &&
        record.level != IsolationLevel::kRC) {
      horizon = std::min(horizon, record.snapshot_ts);
    }
  }
  return store_.Vacuum(horizon);
}

void Engine::AbortInternal(SessionId session, AbortReason reason) {
  SessionRecord& record = sessions_[session];
  assert(record.state == TxnState::kActive);
  record.state = TxnState::kAborted;
  record.abort_reason = reason;
  for (const auto& [object, value] : record.write_buffer) {
    (void)value;
    auto lock = row_locks_.find(object);
    if (lock != row_locks_.end() && lock->second == session) {
      row_locks_.erase(lock);
    }
  }
  if (options_.recorder != nullptr) {
    EngineEvent event;
    event.kind = EngineEventKind::kAbort;
    event.session = session;
    event.step = step_;
    event.reason = reason;
    options_.recorder->Record(event);
  }
  switch (reason) {
    case AbortReason::kWriteConflict:
      ++stats_.aborts_write_conflict;
      if (m_aborts_write_conflict_ != nullptr) {
        m_aborts_write_conflict_->Increment();
      }
      break;
    case AbortReason::kSsiDangerousStructure:
      ++stats_.aborts_ssi;
      if (m_aborts_ssi_ != nullptr) m_aborts_ssi_->Increment();
      break;
    default:
      ++stats_.aborts_user;
      if (m_aborts_user_ != nullptr) m_aborts_user_->Increment();
      break;
  }
}

}  // namespace mvrob
