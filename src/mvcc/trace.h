#ifndef MVROB_MVCC_TRACE_H_
#define MVROB_MVCC_TRACE_H_

#include <vector>

#include "iso/allocation.h"
#include "mvcc/engine.h"
#include "schedule/schedule.h"

namespace mvrob {

/// The formal image of an engine execution: the committed sessions as a
/// transaction set, their operations as a multiversion schedule, and the
/// session isolation levels as an allocation.
///
/// BuildSchedule() must be called on the struct at its final address (the
/// Schedule references the embedded TransactionSet).
struct ExportedRun {
  TransactionSet txns;
  std::vector<OpRef> order;
  VersionFunction versions;
  VersionOrder version_order;
  Allocation allocation;
  /// Engine session backing each exported transaction.
  std::vector<SessionId> session_of_txn;

  StatusOr<Schedule> BuildSchedule() const {
    return Schedule::Create(&txns, order, versions, version_order);
  }
};

/// Maps the committed sessions of `engine` to a formal multiversion
/// schedule — the bridge that lets the conformance tests assert that every
/// engine execution is allowed (Definition 2.4) under the allocation it ran
/// with.
///
/// `object_names` supplies display names (object ids must match the
/// engine's). Restriction: fails with InvalidArgument if a committed
/// session wrote the same object twice — the engine's write buffer installs
/// one version per object, so such sessions have no faithful image in the
/// formal model (the paper's at-most-one-write regime).
StatusOr<ExportedRun> ExportCommittedRun(const Engine& engine,
                                         const TransactionSet& object_names);

/// The same export over bare session records (ids are positions in
/// `sessions`). This is the shared core of ExportCommittedRun and the
/// schedule recorder's replay path (mvcc/recorder.h), which reconstructs
/// session records from a recorded event log instead of a live engine.
StatusOr<ExportedRun> ExportCommittedSessions(
    const std::vector<SessionRecord>& sessions,
    const TransactionSet& object_names);

}  // namespace mvrob

#endif  // MVROB_MVCC_TRACE_H_
