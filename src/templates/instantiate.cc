#include "templates/instantiate.h"

#include <set>
#include <string>

#include "common/string_util.h"

namespace mvrob {
namespace {

// Expands one template op under a concrete assignment into the list of
// object names it touches: point patterns yield one name, predicate reads
// one name per matching key (cartesian over multiple predicate segments;
// an empty range yields none).
std::vector<std::string> ExpandObjects(const TemplateSet& set,
                                       const TransactionTemplate& tmpl,
                                       const TemplateOp& op,
                                       const std::vector<int>& values) {
  std::vector<std::string> objects = {""};
  for (const PatternSegment& seg : op.segments) {
    switch (seg.kind) {
      case PatternSegment::Kind::kLiteral:
        for (std::string& object : objects) object += seg.text;
        break;
      case PatternSegment::Kind::kParam: {
        std::string value = StrCat(values[tmpl.FindParam(seg.text)]);
        for (std::string& object : objects) object += value;
        break;
      }
      case PatternSegment::Kind::kWildcard: {
        std::vector<std::string> forked;
        int size = set.DomainSize(seg.text);
        forked.reserve(objects.size() * size);
        for (const std::string& object : objects) {
          for (int v = 0; v < size; ++v) {
            forked.push_back(StrCat(object, v));
          }
        }
        objects = std::move(forked);
        break;
      }
      case PatternSegment::Kind::kRange: {
        int lo = values[tmpl.FindParam(seg.lo)];
        int hi = values[tmpl.FindParam(seg.hi)];
        std::vector<std::string> forked;
        for (const std::string& object : objects) {
          for (int v = lo; v <= hi; ++v) {
            forked.push_back(StrCat(object, v));
          }
        }
        objects = std::move(forked);
        break;
      }
    }
  }
  return objects;
}

}  // namespace

std::vector<std::string> ExpandTemplateOpObjects(
    const TemplateSet& set, const TransactionTemplate& tmpl,
    const TemplateOp& op, const std::vector<int>& values) {
  return ExpandObjects(set, tmpl, op, values);
}

StatusOr<Instantiation> InstantiateTemplates(
    const TemplateSet& set, const FunctionWorld& world,
    const InstantiationOptions& options) {
  Instantiation result;
  result.world = world.name;
  Status failure;
  ConstraintIndex index(set);

  for (size_t t = 0; t < set.size(); ++t) {
    const TransactionTemplate& tmpl = set.tmpl(t);
    ForEachAdmissibleAssignment(
        set, t, index, world, options.distinct_same_domain_params,
        [&](const std::vector<int>& values) {
          if (!failure.ok()) return;
          std::string suffix;
          for (size_t p = 0; p < tmpl.params().size(); ++p) {
            suffix += StrCat("_", tmpl.params()[p].name, values[p]);
          }
          for (int copy = 0; copy < options.copies_per_assignment; ++copy) {
            if (result.txns.size() >=
                static_cast<size_t>(options.max_instances)) {
              failure = Status::ResourceExhausted(
                  StrCat("instantiation exceeds ", options.max_instances,
                         " transactions"));
              return;
            }
            std::vector<Operation> ops;
            std::vector<int> op_of_op;
            std::set<std::string> reads_seen;
            for (size_t o = 0; o < tmpl.ops().size(); ++o) {
              const TemplateOp& op = tmpl.ops()[o];
              std::set<std::string> in_this_op;
              for (const std::string& name :
                   ExpandObjects(set, tmpl, op, values)) {
                if (op.type == OpType::kRead && op.IsPredicate()) {
                  // A predicate read names each matching key once, and a
                  // key already read by an earlier op adds nothing.
                  if (!in_this_op.insert(name).second) continue;
                  if (reads_seen.count(name) > 0) continue;
                }
                ObjectId object = result.txns.InternObject(name);
                if (op.type == OpType::kRead) {
                  reads_seen.insert(name);
                  ops.push_back(Operation::Read(object));
                } else {
                  ops.push_back(Operation::Write(object));
                }
                op_of_op.push_back(static_cast<int>(o));
              }
            }
            StatusOr<TxnId> id = result.txns.AddTransaction(
                StrCat(tmpl.name(), suffix, "#", copy + 1), std::move(ops));
            if (!id.ok()) {
              failure = id.status();
              return;
            }
            result.template_of_txn.push_back(static_cast<int>(t));
            result.template_op_of_op.push_back(std::move(op_of_op));
          }
        });
    if (!failure.ok()) return failure;
  }
  return result;
}

StatusOr<Instantiation> InstantiateTemplates(
    const TemplateSet& set, const InstantiationOptions& options) {
  if (!set.functions().empty()) {
    return Status::InvalidArgument(
        "template set declares function symbols; instantiate per world "
        "(InstantiateAllWorlds)");
  }
  return InstantiateTemplates(set, FunctionWorld{}, options);
}

StatusOr<std::vector<WorldInstantiation>> InstantiateAllWorlds(
    const TemplateSet& set, const InstantiationOptions& options) {
  StatusOr<std::vector<FunctionWorld>> worlds =
      EnumerateFunctionWorlds(set, options.max_worlds);
  if (!worlds.ok()) return worlds.status();
  std::vector<WorldInstantiation> result;
  result.reserve(worlds->size());
  for (FunctionWorld& world : *worlds) {
    StatusOr<Instantiation> instantiation =
        InstantiateTemplates(set, world, options);
    if (!instantiation.ok()) return instantiation.status();
    result.push_back(WorldInstantiation{std::move(world),
                                        std::move(instantiation).value()});
  }
  return result;
}

}  // namespace mvrob
