#include "templates/instantiate.h"

#include <functional>
#include <map>

#include "common/string_util.h"

namespace mvrob {
namespace {

// Enumerates parameter assignments for `tmpl` as value indices per
// parameter; returns false from the visitor to stop.
void ForEachAssignment(
    const TemplateSet& set, const TransactionTemplate& tmpl,
    bool distinct_same_domain,
    const std::function<void(const std::vector<int>&)>& visit) {
  const std::vector<ParamDecl>& params = tmpl.params();
  std::vector<int> values(params.size(), 0);
  while (true) {
    bool admissible = true;
    if (distinct_same_domain) {
      for (size_t i = 0; i < params.size() && admissible; ++i) {
        for (size_t j = i + 1; j < params.size(); ++j) {
          if (params[i].domain == params[j].domain &&
              values[i] == values[j]) {
            admissible = false;
            break;
          }
        }
      }
    }
    if (admissible) visit(values);
    // Odometer.
    size_t k = 0;
    while (k < params.size() &&
           ++values[k] == set.DomainSize(params[k].domain)) {
      values[k] = 0;
      ++k;
    }
    if (k == params.size()) break;
  }
}

}  // namespace

StatusOr<Instantiation> InstantiateTemplates(
    const TemplateSet& set, const InstantiationOptions& options) {
  Instantiation result;
  Status failure;

  for (size_t t = 0; t < set.size(); ++t) {
    const TransactionTemplate& tmpl = set.tmpl(t);
    ForEachAssignment(
        set, tmpl, options.distinct_same_domain_params,
        [&](const std::vector<int>& values) {
          if (!failure.ok()) return;
          std::map<std::string, std::string> assignment;
          std::string suffix;
          for (size_t p = 0; p < tmpl.params().size(); ++p) {
            assignment[tmpl.params()[p].name] = StrCat(values[p]);
            suffix += StrCat("_", tmpl.params()[p].name, values[p]);
          }
          for (int copy = 0; copy < options.copies_per_assignment; ++copy) {
            if (result.txns.size() >=
                static_cast<size_t>(options.max_instances)) {
              failure = Status::ResourceExhausted(
                  StrCat("instantiation exceeds ", options.max_instances,
                         " transactions"));
              return;
            }
            std::vector<Operation> ops;
            for (const TemplateOp& op : tmpl.ops()) {
              ObjectId object = result.txns.InternObject(
                  TransactionTemplate::Substitute(op.object_pattern,
                                                  assignment));
              ops.push_back(op.type == OpType::kRead
                                ? Operation::Read(object)
                                : Operation::Write(object));
            }
            StatusOr<TxnId> id = result.txns.AddTransaction(
                StrCat(tmpl.name(), suffix, "#", copy + 1), std::move(ops));
            if (!id.ok()) {
              failure = id.status();
              return;
            }
            result.template_of_txn.push_back(static_cast<int>(t));
          }
        });
    if (!failure.ok()) return failure;
  }
  return result;
}

}  // namespace mvrob
