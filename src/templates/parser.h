#ifndef MVROB_TEMPLATES_PARSER_H_
#define MVROB_TEMPLATES_PARSER_H_

#include <string_view>

#include "templates/template.h"

namespace mvrob {

/// Parses a template set from a compact text form:
///
///   domain W 2
///   domain D 2
///   NewOrder(w:W, d:D): R[wtax_$w] R[dnext_$w_$d] W[dnext_$w_$d]
///   StockLevel(w:W, d:D): R[dnext_$w_$d]
///   Audit(): R[total]
///
/// `domain NAME SIZE` declares a parameter domain with its canonical
/// instantiation size; each remaining line declares one template. Blank
/// lines and lines starting with '#' are ignored.
StatusOr<TemplateSet> ParseTemplateSet(std::string_view text);

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_PARSER_H_
