#include "templates/predicate.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace mvrob {
namespace {

// Position inside one segment automaton: `off` is the index into a literal
// segment's text, or for hole segments (param/wildcard/range, which all
// generate nonempty digit runs) a 0/1 flag for "consumed at least one
// digit".
struct Pos {
  size_t seg = 0;
  size_t off = 0;
  friend bool operator<(const Pos& a, const Pos& b) {
    return a.seg != b.seg ? a.seg < b.seg : a.off < b.off;
  }
  friend bool operator==(const Pos&, const Pos&) = default;
};

bool IsHole(const PatternSegment& seg) {
  return seg.kind != PatternSegment::Kind::kLiteral;
}

// Epsilon-closure: positions where the automaton can rest after completing
// literals and optionally leaving satisfied holes.
void Close(const std::vector<PatternSegment>& segs, Pos p,
           std::vector<Pos>& out) {
  if (p.seg >= segs.size()) {
    out.push_back(p);
    return;
  }
  const PatternSegment& seg = segs[p.seg];
  if (!IsHole(seg) && p.off == seg.text.size()) {
    Close(segs, Pos{p.seg + 1, 0}, out);
    return;
  }
  out.push_back(p);
  if (IsHole(seg) && p.off == 1) {
    Close(segs, Pos{p.seg + 1, 0}, out);
  }
}

}  // namespace

bool PatternsMayOverlap(const std::vector<PatternSegment>& a,
                        const std::vector<PatternSegment>& b) {
  std::set<std::pair<Pos, Pos>> visited;
  std::vector<std::pair<Pos, Pos>> frontier;
  auto push = [&](Pos x, Pos y) {
    std::vector<Pos> xs;
    std::vector<Pos> ys;
    Close(a, x, xs);
    Close(b, y, ys);
    for (const Pos& cx : xs) {
      for (const Pos& cy : ys) {
        if (visited.insert({cx, cy}).second) frontier.push_back({cx, cy});
      }
    }
  };
  push(Pos{0, 0}, Pos{0, 0});
  while (!frontier.empty()) {
    auto [x, y] = frontier.back();
    frontier.pop_back();
    bool x_done = x.seg >= a.size();
    bool y_done = y.seg >= b.size();
    if (x_done && y_done) return true;
    if (x_done || y_done) continue;
    const PatternSegment& sx = a[x.seg];
    const PatternSegment& sy = b[y.seg];
    if (!IsHole(sx) && !IsHole(sy)) {
      if (sx.text[x.off] == sy.text[y.off]) {
        push(Pos{x.seg, x.off + 1}, Pos{y.seg, y.off + 1});
      }
    } else if (!IsHole(sx)) {
      if (std::isdigit(static_cast<unsigned char>(sx.text[x.off])) != 0) {
        push(Pos{x.seg, x.off + 1}, Pos{y.seg, 1});
      }
    } else if (!IsHole(sy)) {
      if (std::isdigit(static_cast<unsigned char>(sy.text[y.off])) != 0) {
        push(Pos{x.seg, 1}, Pos{y.seg, y.off + 1});
      }
    } else {
      push(Pos{x.seg, 1}, Pos{y.seg, 1});
    }
  }
  return false;
}

namespace {

using Assignment = std::vector<int>;

std::string RenderAssignment(const TransactionTemplate& tmpl,
                             const Assignment& values) {
  std::vector<std::string> parts;
  for (size_t p = 0; p < tmpl.params().size(); ++p) {
    parts.push_back(StrCat(tmpl.params()[p].name, "=", values[p]));
  }
  return StrCat(tmpl.name(), "(", Join(parts, ", "), ")");
}

// Sorted object names of one (template, op, assignment); memoized.
class ObjectCache {
 public:
  explicit ObjectCache(const TemplateSet& set) : set_(set) {}

  const std::vector<std::string>& Get(size_t tmpl, int op,
                                      const Assignment& values) {
    auto key = std::make_pair(tmpl * 64 + static_cast<size_t>(op), values);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    std::vector<std::string> objects = ExpandTemplateOpObjects(
        set_, set_.tmpl(tmpl), set_.tmpl(tmpl).ops()[op], values);
    std::sort(objects.begin(), objects.end());
    return cache_.emplace(std::move(key), std::move(objects)).first->second;
  }

 private:
  const TemplateSet& set_;
  std::map<std::pair<size_t, Assignment>, std::vector<std::string>> cache_;
};

// First common object of two sorted vectors, or nullptr.
const std::string* FirstCommon(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return &a[i];
    }
  }
  return nullptr;
}

struct Collision {
  std::string key;
  Assignment alpha;
  Assignment beta;
  std::string world;
};

// Does any assignment pair collide on this op pair? Assignments with
// identical values still form a pair (two instance copies).
bool FindCollision(ObjectCache& cache, size_t ta, int oa, size_t tb, int ob,
                   const std::vector<Assignment>& assigns_a,
                   const std::vector<Assignment>& assigns_b,
                   const std::string& world, Collision* out) {
  for (const Assignment& alpha : assigns_a) {
    const std::vector<std::string>& objects_a = cache.Get(ta, oa, alpha);
    if (objects_a.empty()) continue;
    for (const Assignment& beta : assigns_b) {
      const std::string* key =
          FirstCommon(objects_a, cache.Get(tb, ob, beta));
      if (key != nullptr) {
        if (out != nullptr) *out = Collision{*key, alpha, beta, world};
        return true;
      }
    }
  }
  return false;
}

std::vector<std::vector<Assignment>> CollectAssignments(
    const TemplateSet& set, const ConstraintIndex& index,
    const FunctionWorld& world, bool distinct) {
  std::vector<std::vector<Assignment>> per_template(set.size());
  for (size_t t = 0; t < set.size(); ++t) {
    ForEachAdmissibleAssignment(
        set, t, index, world, distinct,
        [&](const Assignment& values) { per_template[t].push_back(values); });
  }
  return per_template;
}

}  // namespace

StatusOr<TemplateConflictAnalysis> AnalyzeTemplateConflicts(
    const TemplateSet& set, const InstantiationOptions& options) {
  StatusOr<std::vector<FunctionWorld>> worlds =
      EnumerateFunctionWorlds(set, options.max_worlds);
  if (!worlds.ok()) return worlds.status();
  const bool distinct = options.distinct_same_domain_params;
  ConstraintIndex full(set);
  ConstraintIndex baseline(set, {});

  std::vector<std::vector<std::vector<Assignment>>> refined;
  refined.reserve(worlds->size());
  for (const FunctionWorld& world : *worlds) {
    refined.push_back(CollectAssignments(set, full, world, distinct));
  }
  std::vector<std::vector<Assignment>> base =
      CollectAssignments(set, baseline, FunctionWorld{}, distinct);

  // Budget: elementary assignment-pair tests across all op pairs/worlds.
  uint64_t work = 0;
  for (size_t ta = 0; ta < set.size(); ++ta) {
    for (size_t tb = ta; tb < set.size(); ++tb) {
      uint64_t pairs = static_cast<uint64_t>(base[ta].size()) *
                       base[tb].size() * (worlds->size() + 1);
      work += pairs * set.tmpl(ta).ops().size() * set.tmpl(tb).ops().size();
    }
  }
  if (work > 5'000'000) {
    return Status::ResourceExhausted(
        StrCat("template-pair conflict analysis needs ", work,
               " assignment-pair tests; shrink the canonical domains"));
  }

  ObjectCache cache(set);
  TemplateConflictAnalysis analysis;
  analysis.num_templates = set.size();
  analysis.pair_conflicts = BitMatrix(set.size(), set.size());
  analysis.baseline_pair_conflicts = BitMatrix(set.size(), set.size());

  for (size_t ta = 0; ta < set.size(); ++ta) {
    const TransactionTemplate& a = set.tmpl(ta);
    for (size_t tb = ta; tb < set.size(); ++tb) {
      const TransactionTemplate& b = set.tmpl(tb);
      for (size_t oa = 0; oa < a.ops().size(); ++oa) {
        for (size_t ob = 0; ob < b.ops().size(); ++ob) {
          if (a.ops()[oa].type != OpType::kWrite &&
              b.ops()[ob].type != OpType::kWrite) {
            continue;
          }
          TemplateOpPairConflict pair;
          pair.tmpl_a = ta;
          pair.tmpl_b = tb;
          pair.op_a = static_cast<int>(oa);
          pair.op_b = static_cast<int>(ob);
          pair.kind =
              StrCat(a.ops()[oa].IsPredicate() ? "range" : "point", "-vs-",
                     b.ops()[ob].IsPredicate() ? "range" : "point");
          bool structurally_disjoint =
              !PatternsMayOverlap(a.ops()[oa].segments, b.ops()[ob].segments);
          if (!structurally_disjoint) {
            pair.baseline_conflicts =
                FindCollision(cache, ta, static_cast<int>(oa), tb,
                              static_cast<int>(ob), base[ta], base[tb], "",
                              nullptr);
            Collision collision;
            for (size_t w = 0; w < worlds->size() && !pair.conflicts; ++w) {
              pair.conflicts = FindCollision(
                  cache, ta, static_cast<int>(oa), tb, static_cast<int>(ob),
                  refined[w][ta], refined[w][tb], (*worlds)[w].name,
                  &collision);
            }
            if (pair.conflicts) {
              pair.example =
                  StrCat(collision.key, " via ",
                         RenderAssignment(a, collision.alpha), ", ",
                         RenderAssignment(b, collision.beta));
              if (!collision.world.empty()) {
                pair.example += StrCat(" [world ", collision.world, "]");
              }
            }
          }
          if (!pair.conflicts) {
            if (structurally_disjoint) {
              pair.discharged_by = "disjoint key patterns";
            } else if (!pair.baseline_conflicts) {
              pair.discharged_by = "distinct-parameter rule";
            } else {
              // Attribute the discharge to a single constraint when one
              // suffices on its own.
              pair.discharged_by = "the declared constraints (in combination)";
              for (const FunctionalConstraint& c : set.constraints()) {
                if (c.tmpl != a.name() && c.tmpl != b.name()) continue;
                ConstraintIndex only(set, {c});
                bool still_conflicts = false;
                for (const FunctionWorld& world : *worlds) {
                  std::vector<std::vector<Assignment>> under =
                      CollectAssignments(set, only, world, distinct);
                  if (FindCollision(cache, ta, static_cast<int>(oa), tb,
                                    static_cast<int>(ob), under[ta],
                                    under[tb], world.name, nullptr)) {
                    still_conflicts = true;
                    break;
                  }
                }
                if (!still_conflicts) {
                  pair.discharged_by = c.ToString();
                  break;
                }
              }
            }
          }
          if (pair.baseline_conflicts) {
            analysis.baseline_pair_conflicts.Set(ta, tb);
            analysis.baseline_pair_conflicts.Set(tb, ta);
          }
          if (pair.conflicts) {
            analysis.pair_conflicts.Set(ta, tb);
            analysis.pair_conflicts.Set(tb, ta);
          }
          analysis.op_pairs.push_back(std::move(pair));
        }
      }
    }
  }
  for (size_t ta = 0; ta < set.size(); ++ta) {
    for (size_t tb = ta; tb < set.size(); ++tb) {
      if (analysis.pair_conflicts.Test(ta, tb)) ++analysis.conflicting_pairs;
      if (analysis.baseline_pair_conflicts.Test(ta, tb)) {
        ++analysis.baseline_conflicting_pairs;
      }
    }
  }
  return analysis;
}

}  // namespace mvrob
