#ifndef MVROB_TEMPLATES_PROMOTE_H_
#define MVROB_TEMPLATES_PROMOTE_H_

#include <vector>

#include "promote/optimizer.h"
#include "templates/robustness.h"

namespace mvrob {

/// A promoted template read: op `op` of template `tmpl` becomes
/// SELECT ... FOR UPDATE in *every* instance — the granularity at which
/// an application can actually change a prepared statement. Predicate
/// reads promote every expanded point read (a FOR UPDATE scan locks each
/// matching row).
struct TemplatePromotion {
  size_t tmpl = 0;
  int op = 0;

  friend bool operator==(const TemplatePromotion&,
                         const TemplatePromotion&) = default;
};

/// Verdict of the template-granularity promotion search.
struct TemplatePromotionPlan {
  std::vector<TemplatePromotion> promotions;
  /// Optimal per-template allocations before/after promoting, quantified
  /// over every function world.
  TemplateAllocation before_levels;
  TemplateAllocation after_levels;
  /// Costs at template granularity under the PromoteOptions weights.
  AllocationCost before_cost;
  AllocationCost after_cost;
  bool improved = false;
  uint64_t allocations_computed = 0;
  size_t worlds = 1;
};

/// Greedy witness-guided promotion at template granularity, threading the
/// instance-level machinery of src/promote through the template layer:
/// candidate template reads are harvested from the counterexample chains
/// that block each template's lowering (CandidatesFromChain, lifted from
/// instance OpRefs to template ops through the instantiation's op map),
/// each candidate is applied to every instance in every world
/// (ApplyPromotions) and scored by the lifted Algorithm 2, and the best
/// strictly-improving candidate is committed, up to
/// options.max_promotions rounds.
StatusOr<TemplatePromotionPlan> OptimizeTemplatePromotions(
    const TemplateSet& set, const PromoteOptions& options = {},
    const InstantiationOptions& instantiation = {});

/// "Deliver.op2" labels for reports.
std::string FormatTemplatePromotions(
    const TemplateSet& set, const std::vector<TemplatePromotion>& promotions);

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_PROMOTE_H_
