#ifndef MVROB_TEMPLATES_CONSTRAINT_H_
#define MVROB_TEMPLATES_CONSTRAINT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "templates/template.h"

namespace mvrob {

/// A concrete interpretation of every declared function symbol over the
/// canonical domains: tables[f][v] is the value index of f(v).
///
/// Functional dependencies constrain assignments *relative to an unknown
/// function*: "o = ord(c)" promises that o is determined by c, not which
/// table ord denotes. A template set is robust under its constraints iff
/// it is robust for every interpretation, so the template layer enumerates
/// all interpretations ("worlds") over the canonical domains — exact
/// relative to canonical instantiation — instead of guessing one.
struct FunctionWorld {
  std::map<std::string, std::vector<int>> tables;
  /// "ord={1,0}" label for witnesses; empty when no functions are declared.
  std::string name;

  int Apply(const std::string& func, int arg) const;
};

/// Enumerates every interpretation of the set's function symbols over the
/// canonical domain sizes (injective functions only range over injective
/// tables). A set without function symbols yields the single empty world.
/// ResourceExhausted when the interpretation space exceeds `max_worlds`
/// (shrink the canonical domains or drop function constraints).
StatusOr<std::vector<FunctionWorld>> EnumerateFunctionWorlds(
    const TemplateSet& set, int max_worlds = 64);

/// Compiled per-template constraints for fast admissibility tests during
/// instantiation and template-pair conflict analysis.
class ConstraintIndex {
 public:
  /// Compiles every constraint declared on `set`.
  explicit ConstraintIndex(const TemplateSet& set);
  /// Compiles only `active` (which must be valid constraints of `set`) —
  /// used to attribute which single constraint discharges a conflict.
  ConstraintIndex(const TemplateSet& set,
                  const std::vector<FunctionalConstraint>& active);

  /// True when `values` (one value index per parameter of template `tmpl`)
  /// satisfies every compiled constraint under `world`, plus the implicit
  /// distinct-same-domain rule when `distinct_same_domain` is set. Pairs
  /// related by an explicit equality constraint are exempt from the
  /// implicit rule.
  bool Admits(size_t tmpl, const std::vector<int>& values,
              const FunctionWorld& world, bool distinct_same_domain) const;

 private:
  struct Dep {
    int determined = 0;
    int arg = 0;
    std::string func;
  };
  struct PerTemplate {
    std::vector<std::pair<int, int>> equal;
    std::vector<std::pair<int, int>> distinct;
    std::vector<Dep> deps;
    /// Same-domain parameter pairs subject to the implicit rule (explicitly
    /// equated pairs removed).
    std::vector<std::pair<int, int>> implicit_distinct;
  };
  void Compile(const TemplateSet& set,
               const std::vector<FunctionalConstraint>& active);

  std::vector<PerTemplate> per_template_;
};

/// Enumerates the admissible parameter assignments of template `tmpl`
/// (value indices per parameter) under `index` and `world`, in odometer
/// order.
void ForEachAdmissibleAssignment(
    const TemplateSet& set, size_t tmpl, const ConstraintIndex& index,
    const FunctionWorld& world, bool distinct_same_domain,
    const std::function<void(const std::vector<int>&)>& visit);

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_CONSTRAINT_H_
