#include "templates/template.h"

#include <cctype>

#include "common/string_util.h"

namespace mvrob {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Extracts the parameter name starting at pattern[pos] (after the '$');
// parameter names are maximal runs of alphanumerics (no underscore, so
// patterns like "stock_$w_$i" parse as intended).
std::string ParamAt(const std::string& pattern, size_t pos) {
  size_t end = pos;
  while (end < pattern.size() &&
         std::isalnum(static_cast<unsigned char>(pattern[end]))) {
    ++end;
  }
  return pattern.substr(pos, end - pos);
}

}  // namespace

StatusOr<TransactionTemplate> TransactionTemplate::Create(
    std::string name, std::vector<ParamDecl> params,
    std::vector<TemplateOp> ops) {
  TransactionTemplate tmpl;
  tmpl.name_ = std::move(name);
  tmpl.params_ = std::move(params);
  tmpl.ops_ = std::move(ops);

  for (size_t i = 0; i < tmpl.params_.size(); ++i) {
    for (size_t j = i + 1; j < tmpl.params_.size(); ++j) {
      if (tmpl.params_[i].name == tmpl.params_[j].name) {
        return Status::InvalidArgument(
            StrCat(tmpl.name_, ": duplicate parameter ",
                   tmpl.params_[i].name));
      }
    }
  }
  for (const TemplateOp& op : tmpl.ops_) {
    if (op.type == OpType::kCommit) {
      return Status::InvalidArgument(
          StrCat(tmpl.name_, ": commits are implicit in templates"));
    }
    const std::string& pattern = op.object_pattern;
    if (pattern.empty()) {
      return Status::InvalidArgument(StrCat(tmpl.name_, ": empty pattern"));
    }
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i] != '$') {
        if (!IsIdentChar(pattern[i])) {
          return Status::InvalidArgument(
              StrCat(tmpl.name_, ": bad character in pattern ", pattern));
        }
        continue;
      }
      std::string param = ParamAt(pattern, i + 1);
      if (param.empty()) {
        return Status::InvalidArgument(
            StrCat(tmpl.name_, ": dangling $ in pattern ", pattern));
      }
      bool declared = false;
      for (const ParamDecl& decl : tmpl.params_) {
        if (decl.name == param) declared = true;
      }
      if (!declared) {
        return Status::InvalidArgument(
            StrCat(tmpl.name_, ": undeclared parameter $", param, " in ",
                   pattern));
      }
      i += param.size();
    }
  }
  return tmpl;
}

std::string TransactionTemplate::Substitute(
    const std::string& pattern,
    const std::map<std::string, std::string>& assignment) {
  std::string result;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] != '$') {
      result.push_back(pattern[i]);
      continue;
    }
    std::string param = ParamAt(pattern, i + 1);
    auto it = assignment.find(param);
    result += it == assignment.end() ? StrCat("$", param) : it->second;
    i += param.size();
  }
  return result;
}

std::string TransactionTemplate::ToString() const {
  std::vector<std::string> decls;
  for (const ParamDecl& param : params_) {
    decls.push_back(StrCat(param.name, ":", param.domain));
  }
  std::string out = StrCat(name_, "(", Join(decls, ", "), "):");
  for (const TemplateOp& op : ops_) {
    out += StrCat(" ", OpTypeToString(op.type), "[", op.object_pattern, "]");
  }
  return out;
}

void TemplateSet::DeclareDomain(const std::string& name, int size) {
  domains_[name] = size;
}

int TemplateSet::DomainSize(const std::string& name) const {
  auto it = domains_.find(name);
  return it == domains_.end() ? 0 : it->second;
}

Status TemplateSet::Add(TransactionTemplate tmpl) {
  if (FindTemplate(tmpl.name()) >= 0) {
    return Status::InvalidArgument(
        StrCat("duplicate template name ", tmpl.name()));
  }
  for (const ParamDecl& param : tmpl.params()) {
    if (DomainSize(param.domain) <= 0) {
      return Status::InvalidArgument(
          StrCat(tmpl.name(), ": undeclared domain ", param.domain));
    }
  }
  templates_.push_back(std::move(tmpl));
  return Status::Ok();
}

int TemplateSet::FindTemplate(const std::string& name) const {
  for (size_t i = 0; i < templates_.size(); ++i) {
    if (templates_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

std::string TemplateSet::ToString() const {
  std::string out;
  for (const auto& [name, size] : domains_) {
    out += StrCat("domain ", name, " ", size, "\n");
  }
  for (const TransactionTemplate& tmpl : templates_) {
    out += tmpl.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace mvrob
