#include "templates/template.h"

#include <cctype>

#include "common/string_util.h"

namespace mvrob {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Extracts the parameter (or domain) name starting at pattern[pos] (after
// the '$' or '*'); names are maximal runs of alphanumerics (no underscore,
// so patterns like "stock_$w_$i" parse as intended).
std::string NameAt(const std::string& pattern, size_t pos) {
  size_t end = pos;
  while (end < pattern.size() &&
         std::isalnum(static_cast<unsigned char>(pattern[end]))) {
    ++end;
  }
  return pattern.substr(pos, end - pos);
}

}  // namespace

bool TemplateOp::IsPredicate() const {
  for (const PatternSegment& seg : segments) {
    if (seg.kind == PatternSegment::Kind::kWildcard ||
        seg.kind == PatternSegment::Kind::kRange) {
      return true;
    }
  }
  return false;
}

std::string FunctionDecl::ToString() const {
  std::string out = StrCat("function ", name, " ", arg_domain, " ",
                           result_domain);
  if (injective) out += " injective";
  return out;
}

std::string FunctionalConstraint::ToString() const {
  switch (kind) {
    case Kind::kEquality:
      return StrCat("constraint ", tmpl, ": ", left, " == ", right);
    case Kind::kDisjointness:
      return StrCat("constraint ", tmpl, ": ", left, " != ", right);
    case Kind::kFunction:
      return StrCat("constraint ", tmpl, ": ", left, " = ", func, "(", right,
                    ")");
  }
  return "";
}

StatusOr<TransactionTemplate> TransactionTemplate::Create(
    std::string name, std::vector<ParamDecl> params,
    std::vector<TemplateOp> ops) {
  TransactionTemplate tmpl;
  tmpl.name_ = std::move(name);
  tmpl.params_ = std::move(params);
  tmpl.ops_ = std::move(ops);

  for (size_t i = 0; i < tmpl.params_.size(); ++i) {
    for (size_t j = i + 1; j < tmpl.params_.size(); ++j) {
      if (tmpl.params_[i].name == tmpl.params_[j].name) {
        return Status::InvalidArgument(
            StrCat(tmpl.name_, ": duplicate parameter ",
                   tmpl.params_[i].name));
      }
    }
  }
  for (TemplateOp& op : tmpl.ops_) {
    if (op.type == OpType::kCommit) {
      return Status::InvalidArgument(
          StrCat(tmpl.name_, ": commits are implicit in templates"));
    }
    const std::string& pattern = op.object_pattern;
    if (pattern.empty()) {
      return Status::InvalidArgument(StrCat(tmpl.name_, ": empty pattern"));
    }
    std::vector<PatternSegment> segments;
    std::string literal;
    auto flush = [&] {
      if (!literal.empty()) {
        segments.push_back({PatternSegment::Kind::kLiteral, literal, "", ""});
        literal.clear();
      }
    };
    auto find_param = [&](const std::string& p) -> const ParamDecl* {
      for (const ParamDecl& decl : tmpl.params_) {
        if (decl.name == p) return &decl;
      }
      return nullptr;
    };
    for (size_t i = 0; i < pattern.size(); ++i) {
      char c = pattern[i];
      if (c == '$') {
        std::string param = NameAt(pattern, i + 1);
        if (param.empty()) {
          return Status::InvalidArgument(
              StrCat(tmpl.name_, ": dangling $ in pattern ", pattern));
        }
        const ParamDecl* decl = find_param(param);
        if (decl == nullptr) {
          return Status::InvalidArgument(
              StrCat(tmpl.name_, ": undeclared parameter $", param, " in ",
                     pattern));
        }
        size_t after = i + 1 + param.size();
        if (pattern.compare(after, 2, "..") == 0) {
          // Range segment "$lo..$hi".
          if (after + 2 >= pattern.size() || pattern[after + 2] != '$') {
            return Status::InvalidArgument(
                StrCat(tmpl.name_, ": malformed range in pattern ", pattern,
                       " (expected $lo..$hi)"));
          }
          std::string hi = NameAt(pattern, after + 3);
          if (hi.empty()) {
            return Status::InvalidArgument(
                StrCat(tmpl.name_, ": malformed range in pattern ", pattern,
                       " (expected $lo..$hi)"));
          }
          const ParamDecl* hi_decl = find_param(hi);
          if (hi_decl == nullptr) {
            return Status::InvalidArgument(
                StrCat(tmpl.name_, ": undeclared parameter $", hi, " in ",
                       pattern));
          }
          if (decl->domain != hi_decl->domain) {
            return Status::InvalidArgument(
                StrCat(tmpl.name_, ": range bounds $", param, "..$", hi,
                       " must share a domain in ", pattern));
          }
          flush();
          segments.push_back(
              {PatternSegment::Kind::kRange, "", param, hi});
          i = after + 2 + hi.size();
        } else {
          flush();
          segments.push_back({PatternSegment::Kind::kParam, param, "", ""});
          i += param.size();
        }
        continue;
      }
      if (c == '*') {
        std::string domain = NameAt(pattern, i + 1);
        if (domain.empty()) {
          return Status::InvalidArgument(
              StrCat(tmpl.name_, ": dangling * in pattern ", pattern));
        }
        flush();
        segments.push_back({PatternSegment::Kind::kWildcard, domain, "", ""});
        i += domain.size();
        continue;
      }
      if (!IsIdentChar(c)) {
        return Status::InvalidArgument(
            StrCat(tmpl.name_, ": bad character in pattern ", pattern));
      }
      literal.push_back(c);
    }
    flush();
    op.segments = std::move(segments);
    if (op.type == OpType::kWrite && op.IsPredicate()) {
      return Status::InvalidArgument(
          StrCat(tmpl.name_, ": predicate writes are not supported (pattern ",
                 pattern, ")"));
    }
  }
  return tmpl;
}

int TransactionTemplate::FindParam(const std::string& name) const {
  for (size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool TransactionTemplate::HasPredicateReads() const {
  for (const TemplateOp& op : ops_) {
    if (op.IsPredicate()) return true;
  }
  return false;
}

std::string TransactionTemplate::Substitute(
    const std::string& pattern,
    const std::map<std::string, std::string>& assignment) {
  std::string result;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] != '$') {
      result.push_back(pattern[i]);
      continue;
    }
    std::string param = NameAt(pattern, i + 1);
    auto it = assignment.find(param);
    result += it == assignment.end() ? StrCat("$", param) : it->second;
    i += param.size();
  }
  return result;
}

std::string TransactionTemplate::ToString() const {
  std::vector<std::string> decls;
  for (const ParamDecl& param : params_) {
    decls.push_back(StrCat(param.name, ":", param.domain));
  }
  std::string out = StrCat(name_, "(", Join(decls, ", "), "):");
  for (const TemplateOp& op : ops_) {
    out += StrCat(" ", OpTypeToString(op.type), "[", op.object_pattern, "]");
  }
  return out;
}

void TemplateSet::DeclareDomain(const std::string& name, int size) {
  domains_[name] = size;
}

int TemplateSet::DomainSize(const std::string& name) const {
  auto it = domains_.find(name);
  return it == domains_.end() ? 0 : it->second;
}

Status TemplateSet::DeclareFunction(FunctionDecl decl) {
  if (DomainSize(decl.arg_domain) <= 0) {
    return Status::InvalidArgument(
        StrCat("function ", decl.name, ": undeclared domain ",
               decl.arg_domain));
  }
  if (DomainSize(decl.result_domain) <= 0) {
    return Status::InvalidArgument(
        StrCat("function ", decl.name, ": undeclared domain ",
               decl.result_domain));
  }
  int existing = FindFunction(decl.name);
  if (existing >= 0) {
    if (functions_[existing] == decl) return Status::Ok();
    return Status::InvalidArgument(
        StrCat("duplicate function ", decl.name,
               " with a different signature"));
  }
  if (decl.injective &&
      DomainSize(decl.result_domain) < DomainSize(decl.arg_domain)) {
    return Status::InvalidArgument(
        StrCat("injective function ", decl.name, " needs |",
               decl.result_domain, "| >= |", decl.arg_domain, "|"));
  }
  functions_.push_back(std::move(decl));
  return Status::Ok();
}

int TemplateSet::FindFunction(const std::string& name) const {
  for (size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status TemplateSet::Add(TransactionTemplate tmpl) {
  if (FindTemplate(tmpl.name()) >= 0) {
    return Status::InvalidArgument(
        StrCat("duplicate template name ", tmpl.name()));
  }
  for (const ParamDecl& param : tmpl.params()) {
    if (DomainSize(param.domain) <= 0) {
      return Status::InvalidArgument(
          StrCat(tmpl.name(), ": undeclared domain ", param.domain));
    }
  }
  for (const TemplateOp& op : tmpl.ops()) {
    for (const PatternSegment& seg : op.segments) {
      if (seg.kind == PatternSegment::Kind::kWildcard &&
          DomainSize(seg.text) <= 0) {
        return Status::InvalidArgument(
            StrCat(tmpl.name(), ": undeclared domain *", seg.text, " in ",
                   op.object_pattern));
      }
    }
  }
  templates_.push_back(std::move(tmpl));
  return Status::Ok();
}

Status TemplateSet::AddConstraint(FunctionalConstraint constraint) {
  int t = FindTemplate(constraint.tmpl);
  if (t < 0) {
    return Status::InvalidArgument(
        StrCat("constraint references unknown template ", constraint.tmpl));
  }
  const TransactionTemplate& tmpl = templates_[t];
  int left = tmpl.FindParam(constraint.left);
  if (left < 0) {
    return Status::InvalidArgument(
        StrCat("constraint on ", constraint.tmpl,
               " references unknown parameter ", constraint.left));
  }
  int right = tmpl.FindParam(constraint.right);
  if (right < 0) {
    return Status::InvalidArgument(
        StrCat("constraint on ", constraint.tmpl,
               " references unknown parameter ", constraint.right));
  }
  if (constraint.kind == FunctionalConstraint::Kind::kFunction) {
    if (left == right) {
      return Status::InvalidArgument(
          StrCat("function constraint on ", constraint.tmpl,
                 " must not determine parameter ", constraint.left,
                 " from itself"));
    }
    std::string arg_domain = tmpl.params()[right].domain;
    std::string result_domain = tmpl.params()[left].domain;
    int f = FindFunction(constraint.func);
    if (f < 0) {
      Status declared = DeclareFunction(
          FunctionDecl{constraint.func, arg_domain, result_domain, false});
      if (!declared.ok()) return declared;
    } else if (functions_[f].arg_domain != arg_domain ||
               functions_[f].result_domain != result_domain) {
      return Status::InvalidArgument(StrCat(
          "constraint on ", constraint.tmpl, ": function ", constraint.func,
          " is declared ", functions_[f].arg_domain, " -> ",
          functions_[f].result_domain, " but is used as ", arg_domain,
          " -> ", result_domain));
    }
  } else if (left == right) {
    return Status::InvalidArgument(
        StrCat("constraint on ", constraint.tmpl, " relates parameter ",
               constraint.left, " to itself"));
  }

  // Contradiction check: close the template's equalities (explicit ones
  // plus equalities forced by shared functional dependencies) under
  // union-find, then verify no disjointness connects one class.
  std::vector<FunctionalConstraint> all = ConstraintsFor(t);
  all.push_back(constraint);
  const size_t n = tmpl.params().size();
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto merge = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[a] = b;
    return true;
  };
  for (const FunctionalConstraint& c : all) {
    if (c.kind == FunctionalConstraint::Kind::kEquality) {
      merge(tmpl.FindParam(c.left), tmpl.FindParam(c.right));
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < all.size(); ++i) {
      if (all[i].kind != FunctionalConstraint::Kind::kFunction) continue;
      for (size_t j = i + 1; j < all.size(); ++j) {
        if (all[j].kind != FunctionalConstraint::Kind::kFunction) continue;
        if (all[i].func != all[j].func) continue;
        if (find(tmpl.FindParam(all[i].right)) !=
            find(tmpl.FindParam(all[j].right))) {
          continue;
        }
        changed |= merge(tmpl.FindParam(all[i].left),
                         tmpl.FindParam(all[j].left));
      }
    }
  }
  for (const FunctionalConstraint& c : all) {
    if (c.kind != FunctionalConstraint::Kind::kDisjointness) continue;
    if (find(tmpl.FindParam(c.left)) == find(tmpl.FindParam(c.right))) {
      return Status::InvalidArgument(
          StrCat("contradictory constraints on ", constraint.tmpl,
                 ": parameters ", c.left, " and ", c.right,
                 " are equated and required distinct"));
    }
  }
  constraints_.push_back(std::move(constraint));
  return Status::Ok();
}

std::vector<FunctionalConstraint> TemplateSet::ConstraintsFor(
    size_t index) const {
  std::vector<FunctionalConstraint> out;
  for (const FunctionalConstraint& c : constraints_) {
    if (c.tmpl == templates_[index].name()) out.push_back(c);
  }
  return out;
}

bool TemplateSet::UsesV2Features() const {
  if (!constraints_.empty() || !functions_.empty()) return true;
  for (const TransactionTemplate& tmpl : templates_) {
    if (tmpl.HasPredicateReads()) return true;
  }
  return false;
}

TemplateSet TemplateSet::WithoutConstraints() const {
  TemplateSet plain = *this;
  plain.functions_.clear();
  plain.constraints_.clear();
  return plain;
}

int TemplateSet::FindTemplate(const std::string& name) const {
  for (size_t i = 0; i < templates_.size(); ++i) {
    if (templates_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

std::string TemplateSet::ToString() const {
  std::string out;
  for (const auto& [name, size] : domains_) {
    out += StrCat("domain ", name, " ", size, "\n");
  }
  for (const FunctionDecl& func : functions_) {
    out += func.ToString();
    out += "\n";
  }
  for (const TransactionTemplate& tmpl : templates_) {
    out += tmpl.ToString();
    out += "\n";
  }
  for (const FunctionalConstraint& constraint : constraints_) {
    out += constraint.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace mvrob
