#include "templates/library.h"

#include <cassert>

#include "common/string_util.h"
#include "templates/parser.h"

namespace mvrob {
namespace {

TemplateSet MustParse(const std::string& text) {
  StatusOr<TemplateSet> set = ParseTemplateSet(text);
  assert(set.ok());
  return std::move(set).value();
}

}  // namespace

TemplateSet TpccTemplates(int warehouses, int districts, int customers,
                          int items, int orders) {
  return MustParse(StrCat(
      "domain W ", warehouses, "\n",
      "domain D ", districts, "\n",
      "domain C ", customers, "\n",
      "domain I ", items, "\n",
      "domain O ", orders, "\n",
      R"(
NewOrder(w:W, d:D, c:C, i:I, o:O): R[wtax_$w] R[dtax_$w_$d] R[dnext_$w_$d] W[dnext_$w_$d] R[cinfo_$w_$d_$c] R[item_$i] R[sqty_$w_$i] W[sqty_$w_$i] W[order_$w_$d_$o] W[neworder_$w_$d_$o] W[olines_$w_$d_$o]
Payment(w:W, d:D, c:C): R[wytd_$w] W[wytd_$w] R[dytd_$w_$d] W[dytd_$w_$d] R[cinfo_$w_$d_$c] R[cbal_$w_$d_$c] W[cbal_$w_$d_$c] W[hist_$w_$d_$c]
OrderStatus(w:W, d:D, c:C, o:O): R[cinfo_$w_$d_$c] R[cbal_$w_$d_$c] R[order_$w_$d_$o] R[olines_$w_$d_$o]
Delivery(w:W, d:D, c:C, o:O): R[neworder_$w_$d_$o] W[neworder_$w_$d_$o] R[order_$w_$d_$o] W[order_$w_$d_$o] R[olines_$w_$d_$o] W[olines_$w_$d_$o] R[cbal_$w_$d_$c] W[cbal_$w_$d_$c]
StockLevel(w:W, d:D, i:I): R[dnext_$w_$d] R[olines_$w_$d_0] R[sqty_$w_$i]
)"));
}

TemplateSet SmallBankTemplates(int customers) {
  return MustParse(StrCat("domain N ", customers, "\n", R"(
Balance(n:N): R[sav_$n] R[chk_$n]
DepositChecking(n:N): R[chk_$n] W[chk_$n]
TransactSavings(n:N): R[sav_$n] W[sav_$n]
Amalgamate(n1:N, n2:N): R[sav_$n1] W[sav_$n1] R[chk_$n1] W[chk_$n1] R[chk_$n2] W[chk_$n2]
WriteCheck(n:N): R[sav_$n] R[chk_$n] W[chk_$n]
)"));
}

TemplateSet AuctionTemplates(int items, int bidders) {
  return MustParse(StrCat(
      "domain I ", items, "\n", "domain B ", bidders, "\n", R"(
PlaceBid(i:I, b:B): R[status_$i] R[highbid_$i] W[highbid_$i] W[bid_$i_$b]
CloseAuction(i:I): R[highbid_$i] W[status_$i]
EditListing(i:I): R[listing_$i] W[listing_$i]
ViewItem(i:I): R[listing_$i] R[highbid_$i] R[status_$i]
GetHighBid(i:I): R[highbid_$i]
)"));
}

TemplateSet TpccScanTemplates(int items) {
  return MustParse(StrCat("domain I ", items, "\n", R"(
NewOrder(i:I): R[dnext] W[dnext] R[sqty_$i] W[sqty_$i]
StockScan(lo:I, hi:I): R[dnext] R[sqty_$lo..$hi]
Restock(i:I): R[sqty_$i] W[sqty_$i] W[slog_$i]
)"));
}

TemplateSet ConstraintShowcaseTemplates(bool constrained, int items) {
  std::string text = StrCat("domain D ", items, "\n", R"(
Audit(lo:D, hi:D): R[item_$lo..$hi]
Move(src:D, dst:D): R[item_$src] W[item_$dst]
)");
  if (constrained) text += "constraint Move: src == dst\n";
  return MustParse(text);
}

}  // namespace mvrob
