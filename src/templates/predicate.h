#ifndef MVROB_TEMPLATES_PREDICATE_H_
#define MVROB_TEMPLATES_PREDICATE_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "templates/instantiate.h"
#include "templates/template.h"

namespace mvrob {

/// Symbolic potential-overlap test (arXiv 2302.08789's predicate-conflict
/// test, adapted to string keys): can the two patterns ever denote the
/// same key, for ANY parameter values? Parameters, wildcards and ranges
/// all generate nonempty digit runs here, so this is a sound
/// over-approximation: false means the key spaces are disjoint for every
/// instantiation (e.g. "order_*O" never meets "cust_$c"). Decided by
/// reachability over the product of the two segment automata.
bool PatternsMayOverlap(const std::vector<PatternSegment>& a,
                        const std::vector<PatternSegment>& b);

/// The verdict for one ordered pair of template ops (at least one a
/// write): can instances of the two ops conflict, and why (not)?
struct TemplateOpPairConflict {
  size_t tmpl_a = 0;
  size_t tmpl_b = 0;
  int op_a = 0;
  int op_b = 0;
  /// "point-vs-point", "range-vs-point", "point-vs-range" or
  /// "range-vs-range" (predicate reads count as ranges).
  std::string kind;
  /// Conflict possible under the distinct-parameter rule alone.
  bool baseline_conflicts = false;
  /// Conflict possible under the declared constraints, in some world.
  bool conflicts = false;
  /// When !conflicts: the rule that discharged the pair — a constraint's
  /// ToString, "disjoint key patterns", or "distinct-parameter rule".
  std::string discharged_by;
  /// When conflicts: a witness collision "key via A(a=0), B(b=1)".
  std::string example;
};

/// The refined template-level potential-conflict relation: which template
/// pairs can have conflicting instances under the declared predicates and
/// constraints, quantified over every function world. The diagonal covers
/// two *distinct* instances of one template. Sound and exact relative to
/// canonical instantiation: pair_conflicts(a, b) is set iff some
/// admissible assignment pair collides in some world, so it
/// over-approximates the instance-level conflict relation of every
/// per-world instantiation and can prune the analyzer's pair scans
/// (core/conflict.h ConflictPruner).
struct TemplateConflictAnalysis {
  size_t num_templates = 0;
  BitMatrix pair_conflicts;
  /// The same relation under the distinct-parameter rule only — the
  /// comparison baseline the refinement is measured against.
  BitMatrix baseline_pair_conflicts;
  std::vector<TemplateOpPairConflict> op_pairs;
  int conflicting_pairs = 0;
  int baseline_conflicting_pairs = 0;
};

/// Computes the refined potential-conflict relation by exact enumeration
/// of admissible assignment pairs per world, with the symbolic
/// PatternsMayOverlap test as the fast path and for attribution.
/// ResourceExhausted when the enumeration would exceed the analysis
/// budget (shrink the canonical domains).
StatusOr<TemplateConflictAnalysis> AnalyzeTemplateConflicts(
    const TemplateSet& set, const InstantiationOptions& options = {});

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_PREDICATE_H_
