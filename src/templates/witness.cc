#include "templates/witness.h"

#include "common/json.h"
#include "common/string_util.h"

namespace mvrob {
namespace {

void EmitChain(JsonWriter& json, const TransactionSet& txns,
               const CounterexampleChain& chain, const std::string& world) {
  json.BeginObject();
  json.Key("t1");
  json.String(txns.txn(chain.t1).name());
  json.Key("t2");
  json.String(txns.txn(chain.t2).name());
  json.Key("tm");
  json.String(txns.txn(chain.tm).name());
  json.Key("chain");
  json.String(chain.ToString(txns));
  json.Key("world");
  json.String(world);
  json.EndObject();
}

void EmitLevels(JsonWriter& json, const TemplateSet& set,
                const TemplateAllocation& levels) {
  json.BeginArray();
  for (size_t t = 0; t < set.size() && t < levels.size(); ++t) {
    json.BeginObject();
    json.Key("template");
    json.String(set.tmpl(t).name());
    json.Key("level");
    json.String(IsolationLevelToString(levels[t]));
    json.EndObject();
  }
  json.EndArray();
}

}  // namespace

std::string TemplateWitnessJson(const TemplateSet& set,
                                const TemplateWitnessInputs& inputs) {
  JsonWriter json;
  json.BeginObject();
  json.Key("format");
  json.String("mvrob-template-witness-v1");
  json.Key("templates");
  json.BeginArray();
  for (size_t t = 0; t < set.size(); ++t) {
    json.String(set.tmpl(t).name());
  }
  json.EndArray();
  json.Key("worlds");
  json.Uint(inputs.worlds);
  json.Key("robustness_checks");
  json.Uint(inputs.robustness_checks);
  if (inputs.levels != nullptr) {
    json.Key("allocation");
    EmitLevels(json, set, *inputs.levels);
  }

  if (inputs.check != nullptr) {
    json.Key("check");
    json.BeginObject();
    json.Key("robust");
    json.Bool(inputs.check->robust);
    json.Key("worlds_checked");
    json.Uint(inputs.check->worlds_checked);
    if (!inputs.check->robust && inputs.check->counterexample.has_value()) {
      json.Key("counterexample");
      EmitChain(json, inputs.check->instantiation.txns,
                *inputs.check->counterexample, inputs.check->world);
    }
    json.EndObject();
  }

  if (inputs.conflicts != nullptr) {
    const TemplateConflictAnalysis& conflicts = *inputs.conflicts;
    json.Key("conflicts");
    json.BeginObject();
    json.Key("conflicting_pairs");
    json.Int(conflicts.conflicting_pairs);
    json.Key("baseline_conflicting_pairs");
    json.Int(conflicts.baseline_conflicting_pairs);
    json.Key("op_pairs");
    json.BeginArray();
    for (const TemplateOpPairConflict& pair : conflicts.op_pairs) {
      json.BeginObject();
      json.Key("a");
      json.String(set.tmpl(pair.tmpl_a).name());
      json.Key("op_a");
      json.Int(pair.op_a);
      json.Key("b");
      json.String(set.tmpl(pair.tmpl_b).name());
      json.Key("op_b");
      json.Int(pair.op_b);
      json.Key("kind");
      json.String(pair.kind);
      json.Key("baseline_conflicts");
      json.Bool(pair.baseline_conflicts);
      json.Key("conflicts");
      json.Bool(pair.conflicts);
      if (!pair.conflicts) {
        json.Key("discharged_by");
        json.String(pair.discharged_by);
      } else {
        json.Key("example");
        json.String(pair.example);
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  if (inputs.explanation != nullptr) {
    const TemplateExplanation& explanation = *inputs.explanation;
    json.Key("obstacles");
    json.BeginArray();
    for (const TemplateObstacle& entry : explanation.per_template) {
      json.BeginObject();
      json.Key("template");
      json.String(set.tmpl(entry.tmpl).name());
      json.Key("level");
      json.String(IsolationLevelToString(entry.assigned));
      json.Key("blocked");
      json.BeginArray();
      for (const TemplateObstacle::Entry& obstacle : entry.obstacles) {
        json.BeginObject();
        json.Key("attempted");
        json.String(IsolationLevelToString(obstacle.attempted));
        json.Key("witness");
        EmitChain(
            json,
            explanation.world_instantiations[obstacle.world_index].txns,
            obstacle.chain, obstacle.world);
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndArray();
  }

  if (inputs.promotion != nullptr) {
    const TemplatePromotionPlan& plan = *inputs.promotion;
    json.Key("promotion");
    json.BeginObject();
    json.Key("improved");
    json.Bool(plan.improved);
    json.Key("promotions");
    json.BeginArray();
    for (const TemplatePromotion& promotion : plan.promotions) {
      json.BeginObject();
      json.Key("template");
      json.String(set.tmpl(promotion.tmpl).name());
      json.Key("op");
      json.Int(promotion.op);
      json.Key("pattern");
      json.String(set.tmpl(promotion.tmpl).ops()[promotion.op].object_pattern);
      json.EndObject();
    }
    json.EndArray();
    json.Key("before");
    EmitLevels(json, set, plan.before_levels);
    json.Key("after");
    EmitLevels(json, set, plan.after_levels);
    json.Key("before_weighted");
    json.Int(plan.before_cost.weighted);
    json.Key("after_weighted");
    json.Int(plan.after_cost.weighted);
    json.EndObject();
  }

  json.EndObject();
  return json.str();
}

}  // namespace mvrob
