#include "templates/parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace mvrob {
namespace {

Status ParseDomainLine(std::string_view line, TemplateSet& set) {
  std::vector<std::string> parts = SplitAndTrim(line, ' ');
  if (parts.size() != 3) {
    return Status::InvalidArgument(
        StrCat("malformed domain declaration '", line,
               "', expected: domain NAME SIZE"));
  }
  int size = 0;
  for (char c : parts[2]) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          StrCat("domain size must be a number in '", line, "'"));
    }
    size = size * 10 + (c - '0');
  }
  if (size <= 0) {
    return Status::InvalidArgument(
        StrCat("domain size must be positive in '", line, "'"));
  }
  set.DeclareDomain(parts[1], size);
  return Status::Ok();
}

StatusOr<std::vector<ParamDecl>> ParseParams(std::string_view decl,
                                             std::string_view line) {
  std::vector<ParamDecl> params;
  for (const std::string& piece : SplitAndTrim(decl, ',')) {
    size_t colon = piece.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("malformed parameter '", piece, "' in '", line,
                 "', expected name:Domain"));
    }
    ParamDecl param;
    param.name = std::string(StripWhitespace(
        std::string_view(piece).substr(0, colon)));
    param.domain = std::string(StripWhitespace(
        std::string_view(piece).substr(colon + 1)));
    if (param.name.empty() || param.domain.empty()) {
      return Status::InvalidArgument(
          StrCat("malformed parameter '", piece, "' in '", line, "'"));
    }
    params.push_back(std::move(param));
  }
  return params;
}

StatusOr<std::vector<TemplateOp>> ParseBody(std::string_view body,
                                            std::string_view line) {
  std::vector<TemplateOp> ops;
  for (const std::string& token : SplitAndTrim(body, ' ')) {
    if (token == "C") continue;  // Tolerated, as in the transaction DSL.
    if (token.size() < 4 || (token[0] != 'R' && token[0] != 'W') ||
        token[1] != '[' || token.back() != ']') {
      return Status::InvalidArgument(
          StrCat("malformed operation '", token, "' in '", line, "'"));
    }
    TemplateOp op;
    op.type = token[0] == 'R' ? OpType::kRead : OpType::kWrite;
    op.object_pattern = token.substr(2, token.size() - 3);
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace

StatusOr<TemplateSet> ParseTemplateSet(std::string_view text) {
  TemplateSet set;
  for (const std::string& raw_line : SplitAndTrim(text, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    if (line.starts_with("domain ")) {
      Status status = ParseDomainLine(line, set);
      if (!status.ok()) return status;
      continue;
    }
    size_t open = line.find('(');
    size_t close = line.find(')');
    size_t colon = line.find(':', close == std::string_view::npos ? 0 : close);
    if (open == std::string_view::npos || close == std::string_view::npos ||
        colon == std::string_view::npos || open > close || close > colon) {
      return Status::InvalidArgument(
          StrCat("malformed template line '", line,
                 "', expected Name(params): ops"));
    }
    std::string name(StripWhitespace(line.substr(0, open)));
    StatusOr<std::vector<ParamDecl>> params =
        ParseParams(line.substr(open + 1, close - open - 1), line);
    if (!params.ok()) return params.status();
    StatusOr<std::vector<TemplateOp>> ops =
        ParseBody(line.substr(colon + 1), line);
    if (!ops.ok()) return ops.status();
    StatusOr<TransactionTemplate> tmpl = TransactionTemplate::Create(
        std::move(name), std::move(params).value(), std::move(ops).value());
    if (!tmpl.ok()) return tmpl.status();
    Status added = set.Add(std::move(tmpl).value());
    if (!added.ok()) return added;
  }
  return set;
}

}  // namespace mvrob
