#include "templates/parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace mvrob {
namespace {

Status ParseDomainLine(std::string_view line, TemplateSet& set) {
  std::vector<std::string> parts = SplitAndTrim(line, ' ');
  if (parts.size() != 3) {
    return Status::InvalidArgument(
        StrCat("malformed domain declaration '", line,
               "', expected: domain NAME SIZE"));
  }
  int size = 0;
  for (char c : parts[2]) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          StrCat("domain size must be a number in '", line, "'"));
    }
    size = size * 10 + (c - '0');
  }
  if (size <= 0) {
    return Status::InvalidArgument(
        StrCat("domain size must be positive in '", line, "'"));
  }
  set.DeclareDomain(parts[1], size);
  return Status::Ok();
}

StatusOr<std::vector<ParamDecl>> ParseParams(std::string_view decl,
                                             std::string_view line) {
  std::vector<ParamDecl> params;
  for (const std::string& piece : SplitAndTrim(decl, ',')) {
    size_t colon = piece.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("malformed parameter '", piece, "' in '", line,
                 "', expected name:Domain"));
    }
    ParamDecl param;
    param.name = std::string(StripWhitespace(
        std::string_view(piece).substr(0, colon)));
    param.domain = std::string(StripWhitespace(
        std::string_view(piece).substr(colon + 1)));
    if (param.name.empty() || param.domain.empty()) {
      return Status::InvalidArgument(
          StrCat("malformed parameter '", piece, "' in '", line, "'"));
    }
    params.push_back(std::move(param));
  }
  return params;
}

Status ParseVersionLine(std::string_view line) {
  std::vector<std::string> parts = SplitAndTrim(line, ' ');
  if (parts.size() != 2 || (parts[1] != "1" && parts[1] != "2")) {
    return Status::InvalidArgument(
        StrCat("unsupported template format version in '", line,
               "', expected: version 1|2"));
  }
  return Status::Ok();
}

Status ParseFunctionLine(std::string_view line, TemplateSet& set) {
  std::vector<std::string> parts = SplitAndTrim(line, ' ');
  bool injective = parts.size() == 5 && parts[4] == "injective";
  if (parts.size() != 4 && !injective) {
    return Status::InvalidArgument(
        StrCat("malformed function declaration '", line,
               "', expected: function NAME ARG_DOMAIN RESULT_DOMAIN "
               "[injective]"));
  }
  return set.DeclareFunction(
      FunctionDecl{parts[1], parts[2], parts[3], injective});
}

StatusOr<FunctionalConstraint> ParseConstraintLine(std::string_view line) {
  Status malformed = Status::InvalidArgument(
      StrCat("malformed constraint '", line,
             "', expected: constraint Template: a == b | a != b | "
             "b = f(a)"));
  std::string_view rest = line.substr(std::string_view("constraint").size());
  size_t colon = rest.find(':');
  if (colon == std::string_view::npos) return malformed;
  FunctionalConstraint constraint;
  constraint.tmpl = std::string(StripWhitespace(rest.substr(0, colon)));
  std::string_view expr = StripWhitespace(rest.substr(colon + 1));
  if (constraint.tmpl.empty() || expr.empty()) return malformed;
  size_t eq = expr.find("==");
  size_t neq = expr.find("!=");
  if (eq != std::string_view::npos) {
    constraint.kind = FunctionalConstraint::Kind::kEquality;
    constraint.left = std::string(StripWhitespace(expr.substr(0, eq)));
    constraint.right = std::string(StripWhitespace(expr.substr(eq + 2)));
  } else if (neq != std::string_view::npos) {
    constraint.kind = FunctionalConstraint::Kind::kDisjointness;
    constraint.left = std::string(StripWhitespace(expr.substr(0, neq)));
    constraint.right = std::string(StripWhitespace(expr.substr(neq + 2)));
  } else {
    size_t assign = expr.find('=');
    size_t open = expr.find('(');
    if (assign == std::string_view::npos || open == std::string_view::npos ||
        open < assign || expr.back() != ')') {
      return malformed;
    }
    constraint.kind = FunctionalConstraint::Kind::kFunction;
    constraint.left = std::string(StripWhitespace(expr.substr(0, assign)));
    constraint.func = std::string(
        StripWhitespace(expr.substr(assign + 1, open - assign - 1)));
    constraint.right = std::string(StripWhitespace(
        expr.substr(open + 1, expr.size() - open - 2)));
    if (constraint.func.empty()) return malformed;
  }
  if (constraint.left.empty() || constraint.right.empty()) return malformed;
  return constraint;
}

StatusOr<std::vector<TemplateOp>> ParseBody(std::string_view body,
                                            std::string_view line) {
  std::vector<TemplateOp> ops;
  for (const std::string& token : SplitAndTrim(body, ' ')) {
    if (token == "C") continue;  // Tolerated, as in the transaction DSL.
    if (token.size() < 4 || (token[0] != 'R' && token[0] != 'W') ||
        token[1] != '[' || token.back() != ']') {
      return Status::InvalidArgument(
          StrCat("malformed operation '", token, "' in '", line, "'"));
    }
    TemplateOp op;
    op.type = token[0] == 'R' ? OpType::kRead : OpType::kWrite;
    op.object_pattern = token.substr(2, token.size() - 3);
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace

StatusOr<TemplateSet> ParseTemplateSet(std::string_view text) {
  TemplateSet set;
  // Constraints may appear anywhere in the file; they are validated after
  // every template is known.
  std::vector<FunctionalConstraint> pending_constraints;
  for (const std::string& raw_line : SplitAndTrim(text, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    if (line.starts_with("domain ")) {
      Status status = ParseDomainLine(line, set);
      if (!status.ok()) return status;
      continue;
    }
    if (line.starts_with("version ")) {
      Status status = ParseVersionLine(line);
      if (!status.ok()) return status;
      continue;
    }
    if (line.starts_with("function ")) {
      Status status = ParseFunctionLine(line, set);
      if (!status.ok()) return status;
      continue;
    }
    if (line.starts_with("constraint ")) {
      StatusOr<FunctionalConstraint> constraint = ParseConstraintLine(line);
      if (!constraint.ok()) return constraint.status();
      pending_constraints.push_back(std::move(constraint).value());
      continue;
    }
    size_t open = line.find('(');
    size_t close = line.find(')');
    size_t colon = line.find(':', close == std::string_view::npos ? 0 : close);
    if (open == std::string_view::npos || close == std::string_view::npos ||
        colon == std::string_view::npos || open > close || close > colon) {
      return Status::InvalidArgument(
          StrCat("malformed template line '", line,
                 "', expected Name(params): ops"));
    }
    std::string name(StripWhitespace(line.substr(0, open)));
    StatusOr<std::vector<ParamDecl>> params =
        ParseParams(line.substr(open + 1, close - open - 1), line);
    if (!params.ok()) return params.status();
    StatusOr<std::vector<TemplateOp>> ops =
        ParseBody(line.substr(colon + 1), line);
    if (!ops.ok()) return ops.status();
    StatusOr<TransactionTemplate> tmpl = TransactionTemplate::Create(
        std::move(name), std::move(params).value(), std::move(ops).value());
    if (!tmpl.ok()) return tmpl.status();
    Status added = set.Add(std::move(tmpl).value());
    if (!added.ok()) return added;
  }
  for (FunctionalConstraint& constraint : pending_constraints) {
    Status added = set.AddConstraint(std::move(constraint));
    if (!added.ok()) return added;
  }
  return set;
}

}  // namespace mvrob
