#ifndef MVROB_TEMPLATES_INSTANTIATE_H_
#define MVROB_TEMPLATES_INSTANTIATE_H_

#include <vector>

#include "templates/constraint.h"
#include "templates/template.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// Controls canonical instantiation of a template set.
struct InstantiationOptions {
  /// Concrete transactions per parameter assignment. Two copies are the
  /// default: many counterexamples need two instances of the same program
  /// with identical parameters (e.g. two NewOrders on one district).
  int copies_per_assignment = 2;
  /// Skip assignments that bind two parameters of the same domain to the
  /// same value (the standard "distinct parameters" reading of templates
  /// like Amalgamate(n1, n2)). Explicit equality constraints override the
  /// rule for the equated pair; the richer inequality and functional
  /// dependencies of Vandevoort et al. ICDT'22 are the declared
  /// constraints of the template set.
  bool distinct_same_domain_params = true;
  /// Refuse instantiations larger than this many transactions.
  int max_instances = 4096;
  /// Refuse function-constraint interpretation spaces larger than this
  /// many worlds (see EnumerateFunctionWorlds).
  int max_worlds = 64;
};

/// A finite instantiation of a template set: the concrete transactions plus
/// the template each was instantiated from.
struct Instantiation {
  TransactionSet txns;
  std::vector<int> template_of_txn;
  /// For each transaction, the template-op index each instance operation
  /// (commit excluded) was expanded from. Predicate reads expand one
  /// template op into several point reads, so this is not the identity.
  std::vector<std::vector<int>> template_op_of_op;
  /// Label of the function world this instantiation was built under
  /// (empty without function constraints).
  std::string world;
};

/// Instantiates every template for every admissible parameter assignment
/// over the declared domains, `copies_per_assignment` times, under the
/// given function-world interpretation. Predicate reads expand into the
/// point reads of every matching key (sound and exact over the canonical
/// finite domains, since every write in the set names keys over the same
/// domains); duplicate reads arising from the expansion are emitted once.
///
/// Canonicity: robustness of the *template* set means robustness of every
/// set of transactions instantiable from it. Counterexamples (Definition
/// 3.1) use each transaction at most twice and touch a bounded number of
/// parameter values, so a sufficiently large finite instantiation is
/// exhaustive; the template property tests validate empirically that the
/// answer is stable when domains and copies grow.
StatusOr<Instantiation> InstantiateTemplates(
    const TemplateSet& set, const FunctionWorld& world,
    const InstantiationOptions& options = {});

/// The concrete keys one template op touches under an assignment (`values`
/// holds one value index per template parameter): one key for a point
/// pattern, one per matching key for a predicate read, none for an empty
/// range. Shared by instantiation and the template-pair conflict analysis
/// in predicate.h.
std::vector<std::string> ExpandTemplateOpObjects(
    const TemplateSet& set, const TransactionTemplate& tmpl,
    const TemplateOp& op, const std::vector<int>& values);

/// Single-world convenience overload: valid only when the set declares no
/// function symbols (InvalidArgument otherwise — enumerate the worlds).
StatusOr<Instantiation> InstantiateTemplates(
    const TemplateSet& set, const InstantiationOptions& options = {});

/// One instantiation per function world. Template-level verdicts quantify
/// over every world: the set is robust iff each world's instantiation is.
struct WorldInstantiation {
  FunctionWorld world;
  Instantiation instantiation;
};

StatusOr<std::vector<WorldInstantiation>> InstantiateAllWorlds(
    const TemplateSet& set, const InstantiationOptions& options = {});

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_INSTANTIATE_H_
