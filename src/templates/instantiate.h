#ifndef MVROB_TEMPLATES_INSTANTIATE_H_
#define MVROB_TEMPLATES_INSTANTIATE_H_

#include <vector>

#include "templates/template.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// Controls canonical instantiation of a template set.
struct InstantiationOptions {
  /// Concrete transactions per parameter assignment. Two copies are the
  /// default: many counterexamples need two instances of the same program
  /// with identical parameters (e.g. two NewOrders on one district).
  int copies_per_assignment = 2;
  /// Skip assignments that bind two parameters of the same domain to the
  /// same value (the standard "distinct parameters" reading of templates
  /// like Amalgamate(n1, n2); richer inequality constraints are the
  /// functional constraints of Vandevoort et al. ICDT'22 and out of
  /// scope).
  bool distinct_same_domain_params = true;
  /// Refuse instantiations larger than this many transactions.
  int max_instances = 4096;
};

/// A finite instantiation of a template set: the concrete transactions plus
/// the template each was instantiated from.
struct Instantiation {
  TransactionSet txns;
  std::vector<int> template_of_txn;
};

/// Instantiates every template for every admissible parameter assignment
/// over the declared domains, `copies_per_assignment` times.
///
/// Canonicity: robustness of the *template* set means robustness of every
/// set of transactions instantiable from it. Counterexamples (Definition
/// 3.1) use each transaction at most twice and touch a bounded number of
/// parameter values, so a sufficiently large finite instantiation is
/// exhaustive; the template property tests validate empirically that the
/// answer is stable when domains and copies grow.
StatusOr<Instantiation> InstantiateTemplates(
    const TemplateSet& set, const InstantiationOptions& options = {});

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_INSTANTIATE_H_
