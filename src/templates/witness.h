#ifndef MVROB_TEMPLATES_WITNESS_H_
#define MVROB_TEMPLATES_WITNESS_H_

#include <string>

#include "templates/predicate.h"
#include "templates/promote.h"
#include "templates/robustness.h"

namespace mvrob {

/// Everything `mvrob templates --witness-json` can embed. Only `levels`
/// is required; every other section is emitted iff its pointer is set.
/// All pointers are borrowed for the duration of the call.
struct TemplateWitnessInputs {
  const TemplateAllocation* levels = nullptr;
  size_t worlds = 1;
  uint64_t robustness_checks = 0;
  /// Refined template-pair conflict relation: one record per op pair with
  /// at least one write, naming the predicate kind (point-vs-point,
  /// range-vs-point, ...), whether the pair conflicts under the baseline
  /// distinct-parameter rule and under the declared constraints, and —
  /// when the constraints discharge a baseline conflict — which
  /// constraint did it ("discharged_by") plus a colliding example
  /// otherwise ("example").
  const TemplateConflictAnalysis* conflicts = nullptr;
  /// Per-template lowering obstacles (chains resolve against the
  /// explanation's world instantiations; each names its function world).
  const TemplateExplanation* explanation = nullptr;
  /// Template-granularity promotion plan.
  const TemplatePromotionPlan* promotion = nullptr;
  /// A failed fixed-allocation check (mutually exclusive with
  /// `explanation` in practice; both are emitted if both are set).
  const TemplateRobustnessResult* check = nullptr;
};

/// The template verdict as machine-readable JSON (format
/// "mvrob-template-witness-v1"). See docs/formats.md for the field
/// reference.
std::string TemplateWitnessJson(const TemplateSet& set,
                                const TemplateWitnessInputs& inputs);

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_WITNESS_H_
