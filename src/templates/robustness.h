#ifndef MVROB_TEMPLATES_ROBUSTNESS_H_
#define MVROB_TEMPLATES_ROBUSTNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/robustness.h"
#include "templates/instantiate.h"

namespace mvrob {

/// A per-template assignment of isolation levels: all instances of a
/// program run at its template's level — exactly the granularity at which
/// applications configure isolation (SET TRANSACTION ISOLATION LEVEL per
/// prepared statement / stored procedure).
using TemplateAllocation = std::vector<IsolationLevel>;

/// Result of a template-level robustness check.
struct TemplateRobustnessResult {
  bool robust = true;
  /// When not robust: the counterexample over the canonical instantiation
  /// (kept alongside so the chain's TxnIds resolve).
  std::optional<CounterexampleChain> counterexample;
  /// The failing world's instantiation, or the first world's when robust.
  Instantiation instantiation;
  /// Label of the function world the counterexample lives in (empty
  /// without function constraints).
  std::string world;
  /// Worlds examined (1 without function constraints). Robustness
  /// quantifies over every world: declared functional dependencies hold
  /// for *some unknown* function, so the set is robust iff every
  /// interpretation's instantiation is.
  size_t worlds_checked = 0;
};

/// Decides whether the canonical instantiation of `set` is robust when
/// every instance of template i runs at `levels[i]`, under the declared
/// predicates and functional constraints and quantified over every
/// function world. With default options the instantiation covers every
/// admissible assignment twice, which the template property tests
/// validate to be saturating (growing domains or copies does not change
/// the answer on the shipped workloads). The per-world analyzers are
/// pruned by the refined template-pair conflict relation (predicate.h).
StatusOr<TemplateRobustnessResult> CheckTemplateRobustness(
    const TemplateSet& set, const TemplateAllocation& levels,
    const InstantiationOptions& options = {});

/// Result of the template-level allocation computation.
struct TemplateAllocationResult {
  TemplateAllocation levels;
  uint64_t robustness_checks = 0;
  size_t worlds = 1;
};

/// Computes the optimal robust per-template allocation over {RC, SI, SSI}
/// by the Algorithm 2 schema lifted to template granularity: start from
/// all-SSI and lower each template to the least level that keeps every
/// world's instantiation robust.
///
/// Uniqueness carries over from Proposition 4.1(2): exchanging *all*
/// instances of one template between two robust allocations is a sequence
/// of single-transaction exchanges, each of which preserves robustness, so
/// the pointwise minimum is again robust and is the unique optimum; the
/// argument applies in each world separately.
StatusOr<TemplateAllocationResult> ComputeOptimalTemplateAllocation(
    const TemplateSet& set, const InstantiationOptions& options = {});

/// Result of the template-level {RC, SI} allocation problem — Section 5
/// lifted to program granularity (the Oracle setting).
struct RcSiTemplateAllocationResult {
  /// Per Proposition 5.4 lifted to templates: allocatable iff every
  /// world's instantiation is robust with every program at SI.
  bool allocatable = false;
  std::optional<TemplateAllocation> levels;
  /// When not allocatable: the counterexample over `instantiation`.
  std::optional<CounterexampleChain> counterexample;
  Instantiation instantiation;
  /// World of the counterexample (empty without function constraints).
  std::string world;
};

/// Decides whether the template set admits any robust per-program
/// {RC, SI} allocation and, if so, computes the optimal one (Theorem 5.5
/// at template granularity).
StatusOr<RcSiTemplateAllocationResult> ComputeOptimalRcSiTemplateAllocation(
    const TemplateSet& set, const InstantiationOptions& options = {});

/// Why each template cannot run lower: for every level below its assigned
/// one, a counterexample chain over some world's canonical instantiation
/// that the lowering would enable. Analogous to core/explain.h at program
/// granularity.
struct TemplateObstacle {
  size_t tmpl = 0;
  IsolationLevel assigned = IsolationLevel::kRC;
  struct Entry {
    IsolationLevel attempted = IsolationLevel::kRC;
    CounterexampleChain chain;  // Over world_instantiations[world_index].
    size_t world_index = 0;
    std::string world;  // Label (empty without function constraints).
  };
  std::vector<Entry> obstacles;
};

struct TemplateExplanation {
  TemplateAllocation levels;
  std::vector<TemplateObstacle> per_template;
  /// One instantiation per function world; obstacle chains resolve
  /// against their entry's world_index.
  std::vector<Instantiation> world_instantiations;
  /// The first world's instantiation (compatibility alias).
  Instantiation instantiation;

  /// Multi-line report naming the instance transactions involved.
  std::string ToString(const TemplateSet& set) const;
};

/// Explains a robust template allocation; FailedPrecondition if it is not
/// robust over the canonical instantiations.
StatusOr<TemplateExplanation> ExplainTemplateAllocation(
    const TemplateSet& set, const TemplateAllocation& levels,
    const InstantiationOptions& options = {});

/// Renders "NewOrder=SI Payment=SI ..." for reports.
std::string FormatTemplateAllocation(const TemplateSet& set,
                                     const TemplateAllocation& levels);

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_ROBUSTNESS_H_
