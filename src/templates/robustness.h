#ifndef MVROB_TEMPLATES_ROBUSTNESS_H_
#define MVROB_TEMPLATES_ROBUSTNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/robustness.h"
#include "templates/instantiate.h"

namespace mvrob {

/// A per-template assignment of isolation levels: all instances of a
/// program run at its template's level — exactly the granularity at which
/// applications configure isolation (SET TRANSACTION ISOLATION LEVEL per
/// prepared statement / stored procedure).
using TemplateAllocation = std::vector<IsolationLevel>;

/// Result of a template-level robustness check.
struct TemplateRobustnessResult {
  bool robust = true;
  /// When not robust: the counterexample over the canonical instantiation
  /// (kept alongside so the chain's TxnIds resolve).
  std::optional<CounterexampleChain> counterexample;
  Instantiation instantiation;
};

/// Decides whether the canonical instantiation of `set` is robust when
/// every instance of template i runs at `levels[i]`. With default options
/// the instantiation covers every assignment twice, which the template
/// property tests validate to be saturating (growing domains or copies
/// does not change the answer on the shipped workloads).
StatusOr<TemplateRobustnessResult> CheckTemplateRobustness(
    const TemplateSet& set, const TemplateAllocation& levels,
    const InstantiationOptions& options = {});

/// Result of the template-level allocation computation.
struct TemplateAllocationResult {
  TemplateAllocation levels;
  uint64_t robustness_checks = 0;
};

/// Computes the optimal robust per-template allocation over {RC, SI, SSI}
/// by the Algorithm 2 schema lifted to template granularity: start from
/// all-SSI and lower each template to the least level that keeps the
/// instantiation robust.
///
/// Uniqueness carries over from Proposition 4.1(2): exchanging *all*
/// instances of one template between two robust allocations is a sequence
/// of single-transaction exchanges, each of which preserves robustness, so
/// the pointwise minimum is again robust and is the unique optimum.
StatusOr<TemplateAllocationResult> ComputeOptimalTemplateAllocation(
    const TemplateSet& set, const InstantiationOptions& options = {});

/// Result of the template-level {RC, SI} allocation problem — Section 5
/// lifted to program granularity (the Oracle setting).
struct RcSiTemplateAllocationResult {
  /// Per Proposition 5.4 lifted to templates: allocatable iff the
  /// instantiation is robust with every program at SI.
  bool allocatable = false;
  std::optional<TemplateAllocation> levels;
  /// When not allocatable: the counterexample over the instantiation.
  std::optional<CounterexampleChain> counterexample;
  Instantiation instantiation;
};

/// Decides whether the template set admits any robust per-program
/// {RC, SI} allocation and, if so, computes the optimal one (Theorem 5.5
/// at template granularity).
StatusOr<RcSiTemplateAllocationResult> ComputeOptimalRcSiTemplateAllocation(
    const TemplateSet& set, const InstantiationOptions& options = {});

/// Why each template cannot run lower: for every level below its assigned
/// one, a counterexample chain over the canonical instantiation that the
/// lowering would enable. Analogous to core/explain.h at program
/// granularity.
struct TemplateObstacle {
  size_t tmpl = 0;
  IsolationLevel assigned = IsolationLevel::kRC;
  struct Entry {
    IsolationLevel attempted = IsolationLevel::kRC;
    CounterexampleChain chain;  // Over `instantiation`.
  };
  std::vector<Entry> obstacles;
};

struct TemplateExplanation {
  TemplateAllocation levels;
  std::vector<TemplateObstacle> per_template;
  Instantiation instantiation;

  /// Multi-line report naming the instance transactions involved.
  std::string ToString(const TemplateSet& set) const;
};

/// Explains a robust template allocation; FailedPrecondition if it is not
/// robust over the canonical instantiation.
StatusOr<TemplateExplanation> ExplainTemplateAllocation(
    const TemplateSet& set, const TemplateAllocation& levels,
    const InstantiationOptions& options = {});

/// Renders "NewOrder=SI Payment=SI ..." for reports.
std::string FormatTemplateAllocation(const TemplateSet& set,
                                     const TemplateAllocation& levels);

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_ROBUSTNESS_H_
