#include "templates/constraint.h"

#include <algorithm>

#include "common/string_util.h"

namespace mvrob {
namespace {

// All tables arg_size -> [0, result_size), optionally injective.
std::vector<std::vector<int>> EnumerateTables(int arg_size, int result_size,
                                              bool injective) {
  std::vector<std::vector<int>> tables;
  std::vector<int> table(arg_size, 0);
  while (true) {
    bool ok = true;
    if (injective) {
      for (int i = 0; i < arg_size && ok; ++i) {
        for (int j = i + 1; j < arg_size; ++j) {
          if (table[i] == table[j]) {
            ok = false;
            break;
          }
        }
      }
    }
    if (ok) tables.push_back(table);
    int k = 0;
    while (k < arg_size && ++table[k] == result_size) {
      table[k] = 0;
      ++k;
    }
    if (k == arg_size) break;
  }
  return tables;
}

std::string TableToString(const std::vector<int>& table) {
  std::vector<std::string> cells;
  for (int v : table) cells.push_back(StrCat(v));
  return StrCat("{", Join(cells, ","), "}");
}

}  // namespace

int FunctionWorld::Apply(const std::string& func, int arg) const {
  auto it = tables.find(func);
  if (it == tables.end() || arg < 0 ||
      arg >= static_cast<int>(it->second.size())) {
    return -1;
  }
  return it->second[arg];
}

StatusOr<std::vector<FunctionWorld>> EnumerateFunctionWorlds(
    const TemplateSet& set, int max_worlds) {
  std::vector<FunctionWorld> worlds = {FunctionWorld{}};
  for (const FunctionDecl& func : set.functions()) {
    std::vector<std::vector<int>> tables =
        EnumerateTables(set.DomainSize(func.arg_domain),
                        set.DomainSize(func.result_domain), func.injective);
    if (worlds.size() * tables.size() >
        static_cast<size_t>(std::max(max_worlds, 1))) {
      return Status::ResourceExhausted(StrCat(
          "functional-constraint interpretation space exceeds ", max_worlds,
          " worlds; shrink the canonical domains or drop function "
          "constraints"));
    }
    std::vector<FunctionWorld> next;
    next.reserve(worlds.size() * tables.size());
    for (const FunctionWorld& world : worlds) {
      for (const std::vector<int>& table : tables) {
        FunctionWorld extended = world;
        extended.tables[func.name] = table;
        extended.name = extended.name.empty()
                            ? StrCat(func.name, "=", TableToString(table))
                            : StrCat(extended.name, " ", func.name, "=",
                                     TableToString(table));
        next.push_back(std::move(extended));
      }
    }
    worlds = std::move(next);
  }
  return worlds;
}

ConstraintIndex::ConstraintIndex(const TemplateSet& set) {
  Compile(set, set.constraints());
}

ConstraintIndex::ConstraintIndex(
    const TemplateSet& set, const std::vector<FunctionalConstraint>& active) {
  Compile(set, active);
}

void ConstraintIndex::Compile(
    const TemplateSet& set, const std::vector<FunctionalConstraint>& active) {
  per_template_.resize(set.size());
  for (size_t t = 0; t < set.size(); ++t) {
    const TransactionTemplate& tmpl = set.tmpl(t);
    PerTemplate& compiled = per_template_[t];
    for (const FunctionalConstraint& c : active) {
      if (c.tmpl != tmpl.name()) continue;
      int left = tmpl.FindParam(c.left);
      int right = tmpl.FindParam(c.right);
      switch (c.kind) {
        case FunctionalConstraint::Kind::kEquality:
          compiled.equal.emplace_back(left, right);
          break;
        case FunctionalConstraint::Kind::kDisjointness:
          compiled.distinct.emplace_back(left, right);
          break;
        case FunctionalConstraint::Kind::kFunction:
          compiled.deps.push_back(Dep{left, right, c.func});
          break;
      }
    }
    // Same-domain pairs remain implicitly distinct unless explicitly
    // equated (directly or transitively).
    const std::vector<ParamDecl>& params = tmpl.params();
    std::vector<int> parent(params.size());
    for (size_t i = 0; i < params.size(); ++i) parent[i] = static_cast<int>(i);
    auto find = [&](int x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (const auto& [a, b] : compiled.equal) parent[find(a)] = find(b);
    for (size_t i = 0; i < params.size(); ++i) {
      for (size_t j = i + 1; j < params.size(); ++j) {
        if (params[i].domain != params[j].domain) continue;
        if (find(static_cast<int>(i)) == find(static_cast<int>(j))) continue;
        compiled.implicit_distinct.emplace_back(static_cast<int>(i),
                                                static_cast<int>(j));
      }
    }
  }
}

bool ConstraintIndex::Admits(size_t tmpl, const std::vector<int>& values,
                             const FunctionWorld& world,
                             bool distinct_same_domain) const {
  const PerTemplate& compiled = per_template_[tmpl];
  for (const auto& [a, b] : compiled.equal) {
    if (values[a] != values[b]) return false;
  }
  for (const auto& [a, b] : compiled.distinct) {
    if (values[a] == values[b]) return false;
  }
  for (const Dep& dep : compiled.deps) {
    if (values[dep.determined] != world.Apply(dep.func, values[dep.arg])) {
      return false;
    }
  }
  if (distinct_same_domain) {
    for (const auto& [a, b] : compiled.implicit_distinct) {
      if (values[a] == values[b]) return false;
    }
  }
  return true;
}

void ForEachAdmissibleAssignment(
    const TemplateSet& set, size_t tmpl, const ConstraintIndex& index,
    const FunctionWorld& world, bool distinct_same_domain,
    const std::function<void(const std::vector<int>&)>& visit) {
  const std::vector<ParamDecl>& params = set.tmpl(tmpl).params();
  std::vector<int> values(params.size(), 0);
  while (true) {
    if (index.Admits(tmpl, values, world, distinct_same_domain)) {
      visit(values);
    }
    size_t k = 0;
    while (k < params.size() &&
           ++values[k] == set.DomainSize(params[k].domain)) {
      values[k] = 0;
      ++k;
    }
    if (k == params.size()) break;
  }
}

}  // namespace mvrob
