#include "templates/promote.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "core/analyzer.h"
#include "promote/promotion.h"

namespace mvrob {
namespace {

// One function world's promoted workload: the rewrite (base instantiation
// -> promoted transactions) plus an analyzer over the promoted set. The
// analyzers run unpruned: promotion inserts writes, which can create
// conflicts between template pairs the refined relation cleared (a
// read-read overlap becomes write-read once one side is promoted), so the
// template-pair mask is not sound here.
struct WorldWorkload {
  const WorldInstantiation* base = nullptr;
  PromotionRewrite rewrite;
  std::unique_ptr<RobustnessAnalyzer> analyzer;
};

Allocation InstanceAllocation(const Instantiation& instantiation,
                              const TemplateAllocation& levels) {
  std::vector<IsolationLevel> instance_levels;
  instance_levels.reserve(instantiation.txns.size());
  for (int tmpl : instantiation.template_of_txn) {
    instance_levels.push_back(levels[tmpl]);
  }
  return Allocation(std::move(instance_levels));
}

// Applies the template-granularity promotions to every instance of every
// world: each promoted template op maps (through template_op_of_op) to the
// instance reads it expanded into, and every promotable one gets the
// inserted write. Instance reads that are not promotable — the instance
// already writes the object, so it already holds the write lock — are
// skipped, matching what FOR UPDATE does on a real engine.
StatusOr<std::vector<std::unique_ptr<WorldWorkload>>> BuildWorkloads(
    const std::vector<WorldInstantiation>& worlds,
    const std::vector<TemplatePromotion>& promotions) {
  std::vector<std::unique_ptr<WorldWorkload>> result;
  result.reserve(worlds.size());
  for (const WorldInstantiation& world : worlds) {
    const Instantiation& inst = world.instantiation;
    PromotionSet instance_promotions;
    for (TxnId i = 0; i < inst.txns.size(); ++i) {
      const int tmpl = inst.template_of_txn[i];
      const std::vector<int>& op_map = inst.template_op_of_op[i];
      for (const TemplatePromotion& promotion : promotions) {
        if (static_cast<int>(promotion.tmpl) != tmpl) continue;
        for (size_t k = 0; k < op_map.size(); ++k) {
          if (op_map[k] != promotion.op) continue;
          OpRef ref{i, static_cast<int32_t>(k)};
          if (IsPromotableRead(inst.txns, ref)) instance_promotions.Add(ref);
        }
      }
    }
    StatusOr<PromotionRewrite> rewrite =
        ApplyPromotions(inst.txns, instance_promotions);
    if (!rewrite.ok()) return rewrite.status();
    auto workload = std::make_unique<WorldWorkload>();
    workload->base = &world;
    workload->rewrite = std::move(rewrite).value();
    workload->analyzer = std::make_unique<RobustnessAnalyzer>(
        workload->rewrite.promoted, nullptr);
    result.push_back(std::move(workload));
  }
  return result;
}

// Lifted Algorithm 2 over the promoted worlds. While lowering, every
// blocking counterexample chain is mined for candidate promotions: the
// chain's promotable read legs (CandidatesFromChain, in promoted
// coordinates) are mapped back through the rewrite to base instance ops
// and lifted to (template, template op) pairs.
struct Evaluation {
  TemplateAllocation levels;
  std::set<std::pair<size_t, int>> frontier;
};

Evaluation Evaluate(const std::vector<std::unique_ptr<WorldWorkload>>& worlds,
                    size_t num_templates, uint64_t* robustness_checks) {
  Evaluation eval;
  eval.levels.assign(num_templates, IsolationLevel::kSSI);
  for (size_t t = 0; t < num_templates; ++t) {
    for (IsolationLevel level : {IsolationLevel::kRC, IsolationLevel::kSI}) {
      TemplateAllocation candidate = eval.levels;
      candidate[t] = level;
      bool robust = true;
      for (const std::unique_ptr<WorldWorkload>& world : worlds) {
        ++*robustness_checks;
        RobustnessResult result = world->analyzer->Check(
            InstanceAllocation(world->base->instantiation, candidate));
        if (result.robust) continue;
        robust = false;
        if (result.counterexample.has_value()) {
          const Instantiation& inst = world->base->instantiation;
          for (OpRef promoted_ref : CandidatesFromChain(
                   world->rewrite.promoted, *result.counterexample)) {
            std::optional<OpRef> base_ref =
                world->rewrite.OriginalRef(promoted_ref);
            if (!base_ref.has_value()) continue;
            const std::vector<int>& op_map =
                inst.template_op_of_op[base_ref->txn];
            if (base_ref->index < 0 ||
                static_cast<size_t>(base_ref->index) >= op_map.size()) {
              continue;
            }
            eval.frontier.insert(
                {static_cast<size_t>(inst.template_of_txn[base_ref->txn]),
                 op_map[base_ref->index]});
          }
        }
        break;
      }
      if (robust) {
        eval.levels = candidate;
        break;
      }
    }
  }
  return eval;
}

AllocationCost TemplateCost(const TemplateAllocation& levels,
                            const PromoteOptions& options) {
  return ComputeAllocationCost(Allocation(levels), options);
}

}  // namespace

StatusOr<TemplatePromotionPlan> OptimizeTemplatePromotions(
    const TemplateSet& set, const PromoteOptions& options,
    const InstantiationOptions& instantiation) {
  StatusOr<std::vector<WorldInstantiation>> worlds =
      InstantiateAllWorlds(set, instantiation);
  if (!worlds.ok()) return worlds.status();

  TemplatePromotionPlan plan;
  plan.worlds = worlds->size();

  StatusOr<std::vector<std::unique_ptr<WorldWorkload>>> base =
      BuildWorkloads(*worlds, {});
  if (!base.ok()) return base.status();
  uint64_t checks = 0;
  Evaluation current = Evaluate(*base, set.size(), &checks);
  ++plan.allocations_computed;
  plan.before_levels = current.levels;
  plan.before_cost = TemplateCost(current.levels, options);

  AllocationCost current_cost = plan.before_cost;
  while (static_cast<int>(plan.promotions.size()) < options.max_promotions &&
         current_cost.weighted > 0) {
    std::optional<TemplatePromotion> best;
    TemplateAllocation best_levels;
    std::set<std::pair<size_t, int>> best_frontier;
    AllocationCost best_cost = current_cost;
    size_t evaluated = 0;
    for (const std::pair<size_t, int>& candidate : current.frontier) {
      TemplatePromotion promotion{candidate.first, candidate.second};
      if (std::find(plan.promotions.begin(), plan.promotions.end(),
                    promotion) != plan.promotions.end()) {
        continue;
      }
      if (evaluated >= options.max_candidates_per_round) break;
      ++evaluated;
      std::vector<TemplatePromotion> attempt = plan.promotions;
      attempt.push_back(promotion);
      StatusOr<std::vector<std::unique_ptr<WorldWorkload>>> workloads =
          BuildWorkloads(*worlds, attempt);
      if (!workloads.ok()) return workloads.status();
      Evaluation eval = Evaluate(*workloads, set.size(), &checks);
      ++plan.allocations_computed;
      AllocationCost cost = TemplateCost(eval.levels, options);
      if (cost.weighted < best_cost.weighted) {
        best = promotion;
        best_levels = eval.levels;
        best_frontier = std::move(eval.frontier);
        best_cost = cost;
      }
    }
    if (!best.has_value()) break;
    plan.promotions.push_back(*best);
    current.levels = std::move(best_levels);
    current.frontier = std::move(best_frontier);
    current_cost = best_cost;
  }

  plan.after_levels = current.levels;
  plan.after_cost = current_cost;
  plan.improved = plan.after_cost.weighted < plan.before_cost.weighted;
  if (!plan.improved) {
    // A promotion set that does not pay for itself is dropped: the plan
    // reports the unpromoted optimum on both sides.
    plan.promotions.clear();
    plan.after_levels = plan.before_levels;
    plan.after_cost = plan.before_cost;
  }
  return plan;
}

std::string FormatTemplatePromotions(
    const TemplateSet& set, const std::vector<TemplatePromotion>& promotions) {
  std::vector<std::string> parts;
  for (const TemplatePromotion& promotion : promotions) {
    const TransactionTemplate& tmpl = set.tmpl(promotion.tmpl);
    std::string op = promotion.op >= 0 &&
                             promotion.op < static_cast<int>(tmpl.ops().size())
                         ? StrCat("op", promotion.op, " ",
                                  tmpl.ops()[promotion.op].object_pattern)
                         : StrCat("op", promotion.op);
    parts.push_back(StrCat(tmpl.name(), ".", op));
  }
  return Join(parts, ", ");
}

}  // namespace mvrob
