#ifndef MVROB_TEMPLATES_LIBRARY_H_
#define MVROB_TEMPLATES_LIBRARY_H_

#include "templates/template.h"

namespace mvrob {

/// TPC-C as transaction templates at column granularity (one order line per
/// NewOrder; see workloads/tpcc.h for the modeling rationale). Domain sizes
/// control the canonical instantiation.
TemplateSet TpccTemplates(int warehouses = 1, int districts = 2,
                          int customers = 2, int items = 2, int orders = 1);

/// SmallBank as templates over `customers` accounts.
TemplateSet SmallBankTemplates(int customers = 2);

/// The auction scenario as templates (see workloads/auction.h).
TemplateSet AuctionTemplates(int items = 1, int bidders = 2);

/// TPC-C's stock-level flavor with a real range read: StockScan reads the
/// stock quantities of an item range (the "last 20 orders" scan) instead
/// of a single point, next to NewOrder-style point RMWs on the same keys.
/// Exercises the v2 predicate-read path end to end.
TemplateSet TpccScanTemplates(int items = 3);

/// The documented "constraint buys a cheaper allocation" showcase
/// (docs/templates.md, docs/tutorial.md): a range-scanning Audit over
/// item_* plus a Move(src, dst) point RMW-shaped writer. Under the
/// distinct-parameter rule Move(src != dst) instances form pure write
/// skew and both templates need SSI; declaring `constraint Move: src ==
/// dst` turns every Move into a same-key RMW and the optimal allocation
/// drops to all-SI. With `constrained = false` the constraint line is
/// omitted (the baseline the docs compare against).
TemplateSet ConstraintShowcaseTemplates(bool constrained = true,
                                        int items = 3);

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_LIBRARY_H_
