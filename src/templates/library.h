#ifndef MVROB_TEMPLATES_LIBRARY_H_
#define MVROB_TEMPLATES_LIBRARY_H_

#include "templates/template.h"

namespace mvrob {

/// TPC-C as transaction templates at column granularity (one order line per
/// NewOrder; see workloads/tpcc.h for the modeling rationale). Domain sizes
/// control the canonical instantiation.
TemplateSet TpccTemplates(int warehouses = 1, int districts = 2,
                          int customers = 2, int items = 2, int orders = 1);

/// SmallBank as templates over `customers` accounts.
TemplateSet SmallBankTemplates(int customers = 2);

/// The auction scenario as templates (see workloads/auction.h).
TemplateSet AuctionTemplates(int items = 1, int bidders = 2);

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_LIBRARY_H_
