#include "templates/robustness.h"

#include "common/string_util.h"
#include "core/analyzer.h"

namespace mvrob {
namespace {

Allocation InstanceAllocation(const Instantiation& instantiation,
                              const TemplateAllocation& levels) {
  std::vector<IsolationLevel> instance_levels;
  instance_levels.reserve(instantiation.txns.size());
  for (int tmpl : instantiation.template_of_txn) {
    instance_levels.push_back(levels[tmpl]);
  }
  return Allocation(std::move(instance_levels));
}

}  // namespace

StatusOr<TemplateRobustnessResult> CheckTemplateRobustness(
    const TemplateSet& set, const TemplateAllocation& levels,
    const InstantiationOptions& options) {
  if (levels.size() != set.size()) {
    return Status::InvalidArgument(
        StrCat("allocation has ", levels.size(), " levels for ", set.size(),
               " templates"));
  }
  StatusOr<Instantiation> instantiation = InstantiateTemplates(set, options);
  if (!instantiation.ok()) return instantiation.status();

  TemplateRobustnessResult result;
  result.instantiation = std::move(instantiation).value();
  RobustnessResult robustness = CheckRobustness(
      result.instantiation.txns,
      InstanceAllocation(result.instantiation, levels));
  result.robust = robustness.robust;
  result.counterexample = std::move(robustness.counterexample);
  return result;
}

StatusOr<TemplateAllocationResult> ComputeOptimalTemplateAllocation(
    const TemplateSet& set, const InstantiationOptions& options) {
  StatusOr<Instantiation> instantiation = InstantiateTemplates(set, options);
  if (!instantiation.ok()) return instantiation.status();

  TemplateAllocationResult result;
  result.levels.assign(set.size(), IsolationLevel::kSSI);
  RobustnessAnalyzer analyzer(instantiation->txns);
  for (size_t t = 0; t < set.size(); ++t) {
    for (IsolationLevel level : {IsolationLevel::kRC, IsolationLevel::kSI}) {
      TemplateAllocation candidate = result.levels;
      candidate[t] = level;
      ++result.robustness_checks;
      if (analyzer.Check(InstanceAllocation(*instantiation, candidate))
              .robust) {
        result.levels = candidate;
        break;
      }
    }
  }
  return result;
}

StatusOr<RcSiTemplateAllocationResult> ComputeOptimalRcSiTemplateAllocation(
    const TemplateSet& set, const InstantiationOptions& options) {
  StatusOr<Instantiation> instantiation = InstantiateTemplates(set, options);
  if (!instantiation.ok()) return instantiation.status();

  RcSiTemplateAllocationResult result;
  result.instantiation = std::move(instantiation).value();
  RobustnessAnalyzer analyzer(result.instantiation.txns);

  TemplateAllocation all_si(set.size(), IsolationLevel::kSI);
  RobustnessResult at_si =
      analyzer.Check(InstanceAllocation(result.instantiation, all_si));
  if (!at_si.robust) {
    result.allocatable = false;
    result.counterexample = std::move(at_si.counterexample);
    return result;
  }
  result.allocatable = true;
  TemplateAllocation levels = all_si;
  for (size_t t = 0; t < set.size(); ++t) {
    TemplateAllocation candidate = levels;
    candidate[t] = IsolationLevel::kRC;
    if (analyzer.Check(InstanceAllocation(result.instantiation, candidate))
            .robust) {
      levels = candidate;
    }
  }
  result.levels = std::move(levels);
  return result;
}

std::string TemplateExplanation::ToString(const TemplateSet& set) const {
  std::string out;
  for (const TemplateObstacle& entry : per_template) {
    out += StrCat(set.tmpl(entry.tmpl).name(), " = ",
                  IsolationLevelToString(entry.assigned), "\n");
    if (entry.obstacles.empty() && entry.assigned != IsolationLevel::kRC) {
      out += "  (could be lowered: the allocation is not optimal)\n";
    }
    for (const TemplateObstacle::Entry& obstacle : entry.obstacles) {
      out += StrCat("  not ", IsolationLevelToString(obstacle.attempted),
                    ": ", obstacle.chain.ToString(instantiation.txns), "\n");
    }
  }
  return out;
}

StatusOr<TemplateExplanation> ExplainTemplateAllocation(
    const TemplateSet& set, const TemplateAllocation& levels,
    const InstantiationOptions& options) {
  if (levels.size() != set.size()) {
    return Status::InvalidArgument("allocation size mismatch");
  }
  StatusOr<Instantiation> instantiation = InstantiateTemplates(set, options);
  if (!instantiation.ok()) return instantiation.status();

  TemplateExplanation explanation;
  explanation.levels = levels;
  explanation.instantiation = std::move(instantiation).value();
  RobustnessAnalyzer analyzer(explanation.instantiation.txns);
  if (!analyzer
           .Check(InstanceAllocation(explanation.instantiation, levels))
           .robust) {
    return Status::FailedPrecondition(
        "the template allocation is not robust; nothing to explain");
  }
  for (size_t t = 0; t < set.size(); ++t) {
    TemplateObstacle entry;
    entry.tmpl = t;
    entry.assigned = levels[t];
    for (IsolationLevel lower : kAllIsolationLevels) {
      if (!(lower < entry.assigned)) continue;
      TemplateAllocation candidate = levels;
      candidate[t] = lower;
      RobustnessResult result = analyzer.Check(
          InstanceAllocation(explanation.instantiation, candidate));
      if (!result.robust) {
        entry.obstacles.push_back(
            TemplateObstacle::Entry{lower,
                                    std::move(*result.counterexample)});
      }
    }
    explanation.per_template.push_back(std::move(entry));
  }
  return explanation;
}

std::string FormatTemplateAllocation(const TemplateSet& set,
                                     const TemplateAllocation& levels) {
  std::vector<std::string> parts;
  for (size_t t = 0; t < set.size(); ++t) {
    parts.push_back(
        StrCat(set.tmpl(t).name(), "=", IsolationLevelToString(levels[t])));
  }
  return Join(parts, " ");
}

}  // namespace mvrob
