#include "templates/robustness.h"

#include <memory>

#include "common/string_util.h"
#include "core/analyzer.h"
#include "templates/predicate.h"

namespace mvrob {
namespace {

Allocation InstanceAllocation(const Instantiation& instantiation,
                              const TemplateAllocation& levels) {
  std::vector<IsolationLevel> instance_levels;
  instance_levels.reserve(instantiation.txns.size());
  for (int tmpl : instantiation.template_of_txn) {
    instance_levels.push_back(levels[tmpl]);
  }
  return Allocation(std::move(instance_levels));
}

// Everything the world-quantified checks share: the per-world
// instantiations, the refined template-pair conflict relation, and one
// pruned analyzer per world. This is where the template-level precision
// reaches the core kernels: the refined relation masks the analyzer's
// pair scans, and every mixed-iso-graph built during witness recovery
// shares the masked conflict matrix.
struct TemplateAnalysis {
  std::vector<WorldInstantiation> worlds;
  std::optional<TemplateConflictAnalysis> conflicts;
  std::vector<std::unique_ptr<RobustnessAnalyzer>> analyzers;
};

StatusOr<TemplateAnalysis> BuildTemplateAnalysis(
    const TemplateSet& set, const InstantiationOptions& options) {
  TemplateAnalysis analysis;
  StatusOr<std::vector<WorldInstantiation>> worlds =
      InstantiateAllWorlds(set, options);
  if (!worlds.ok()) return worlds.status();
  analysis.worlds = std::move(worlds).value();
  // The refined relation is a pure accelerator here; if its enumeration
  // budget is exceeded the analyzers simply run unpruned.
  StatusOr<TemplateConflictAnalysis> conflicts =
      AnalyzeTemplateConflicts(set, options);
  if (conflicts.ok()) analysis.conflicts = std::move(conflicts).value();
  for (const WorldInstantiation& world : analysis.worlds) {
    ConflictPruner pruner;
    if (analysis.conflicts.has_value()) {
      pruner.group_conflicts = &analysis.conflicts->pair_conflicts;
      pruner.group_of_txn = &world.instantiation.template_of_txn;
    }
    analysis.analyzers.push_back(std::make_unique<RobustnessAnalyzer>(
        world.instantiation.txns, pruner, nullptr));
  }
  return analysis;
}

// True when `levels` keeps every world robust; otherwise reports the
// first failing world.
bool RobustInAllWorlds(const TemplateAnalysis& analysis,
                       const TemplateAllocation& levels,
                       uint64_t* robustness_checks,
                       size_t* failing_world = nullptr,
                       std::optional<CounterexampleChain>* chain = nullptr) {
  for (size_t w = 0; w < analysis.worlds.size(); ++w) {
    if (robustness_checks != nullptr) ++*robustness_checks;
    RobustnessResult result = analysis.analyzers[w]->Check(
        InstanceAllocation(analysis.worlds[w].instantiation, levels));
    if (!result.robust) {
      if (failing_world != nullptr) *failing_world = w;
      if (chain != nullptr) *chain = std::move(result.counterexample);
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<TemplateRobustnessResult> CheckTemplateRobustness(
    const TemplateSet& set, const TemplateAllocation& levels,
    const InstantiationOptions& options) {
  if (levels.size() != set.size()) {
    return Status::InvalidArgument(
        StrCat("allocation has ", levels.size(), " levels for ", set.size(),
               " templates"));
  }
  StatusOr<TemplateAnalysis> analysis = BuildTemplateAnalysis(set, options);
  if (!analysis.ok()) return analysis.status();

  TemplateRobustnessResult result;
  result.worlds_checked = analysis->worlds.size();
  size_t failing_world = 0;
  std::optional<CounterexampleChain> chain;
  result.robust =
      RobustInAllWorlds(*analysis, levels, nullptr, &failing_world, &chain);
  if (result.robust) {
    result.instantiation = std::move(analysis->worlds.front().instantiation);
  } else {
    result.counterexample = std::move(chain);
    result.world = analysis->worlds[failing_world].world.name;
    result.instantiation =
        std::move(analysis->worlds[failing_world].instantiation);
  }
  return result;
}

StatusOr<TemplateAllocationResult> ComputeOptimalTemplateAllocation(
    const TemplateSet& set, const InstantiationOptions& options) {
  StatusOr<TemplateAnalysis> analysis = BuildTemplateAnalysis(set, options);
  if (!analysis.ok()) return analysis.status();

  TemplateAllocationResult result;
  result.worlds = analysis->worlds.size();
  result.levels.assign(set.size(), IsolationLevel::kSSI);
  for (size_t t = 0; t < set.size(); ++t) {
    for (IsolationLevel level : {IsolationLevel::kRC, IsolationLevel::kSI}) {
      TemplateAllocation candidate = result.levels;
      candidate[t] = level;
      if (RobustInAllWorlds(*analysis, candidate,
                            &result.robustness_checks)) {
        result.levels = candidate;
        break;
      }
    }
  }
  return result;
}

StatusOr<RcSiTemplateAllocationResult> ComputeOptimalRcSiTemplateAllocation(
    const TemplateSet& set, const InstantiationOptions& options) {
  StatusOr<TemplateAnalysis> analysis = BuildTemplateAnalysis(set, options);
  if (!analysis.ok()) return analysis.status();

  RcSiTemplateAllocationResult result;
  TemplateAllocation all_si(set.size(), IsolationLevel::kSI);
  size_t failing_world = 0;
  std::optional<CounterexampleChain> chain;
  if (!RobustInAllWorlds(*analysis, all_si, nullptr, &failing_world,
                         &chain)) {
    result.allocatable = false;
    result.counterexample = std::move(chain);
    result.world = analysis->worlds[failing_world].world.name;
    result.instantiation =
        std::move(analysis->worlds[failing_world].instantiation);
    return result;
  }
  result.allocatable = true;
  result.instantiation = analysis->worlds.front().instantiation;
  TemplateAllocation levels = all_si;
  for (size_t t = 0; t < set.size(); ++t) {
    TemplateAllocation candidate = levels;
    candidate[t] = IsolationLevel::kRC;
    if (RobustInAllWorlds(*analysis, candidate, nullptr)) {
      levels = candidate;
    }
  }
  result.levels = std::move(levels);
  return result;
}

std::string TemplateExplanation::ToString(const TemplateSet& set) const {
  std::string out;
  for (const TemplateObstacle& entry : per_template) {
    out += StrCat(set.tmpl(entry.tmpl).name(), " = ",
                  IsolationLevelToString(entry.assigned), "\n");
    if (entry.obstacles.empty() && entry.assigned != IsolationLevel::kRC) {
      out += "  (could be lowered: the allocation is not optimal)\n";
    }
    for (const TemplateObstacle::Entry& obstacle : entry.obstacles) {
      out += StrCat(
          "  not ", IsolationLevelToString(obstacle.attempted), ": ",
          obstacle.chain.ToString(
              world_instantiations[obstacle.world_index].txns));
      if (!obstacle.world.empty()) {
        out += StrCat(" [world ", obstacle.world, "]");
      }
      out += "\n";
    }
  }
  return out;
}

StatusOr<TemplateExplanation> ExplainTemplateAllocation(
    const TemplateSet& set, const TemplateAllocation& levels,
    const InstantiationOptions& options) {
  if (levels.size() != set.size()) {
    return Status::InvalidArgument("allocation size mismatch");
  }
  StatusOr<TemplateAnalysis> analysis = BuildTemplateAnalysis(set, options);
  if (!analysis.ok()) return analysis.status();

  TemplateExplanation explanation;
  explanation.levels = levels;
  if (!RobustInAllWorlds(*analysis, levels, nullptr)) {
    return Status::FailedPrecondition(
        "the template allocation is not robust; nothing to explain");
  }
  for (size_t t = 0; t < set.size(); ++t) {
    TemplateObstacle entry;
    entry.tmpl = t;
    entry.assigned = levels[t];
    for (IsolationLevel lower : kAllIsolationLevels) {
      if (!(lower < entry.assigned)) continue;
      TemplateAllocation candidate = levels;
      candidate[t] = lower;
      size_t failing_world = 0;
      std::optional<CounterexampleChain> chain;
      if (!RobustInAllWorlds(*analysis, candidate, nullptr, &failing_world,
                             &chain)) {
        entry.obstacles.push_back(TemplateObstacle::Entry{
            lower, std::move(*chain), failing_world,
            analysis->worlds[failing_world].world.name});
      }
    }
    explanation.per_template.push_back(std::move(entry));
  }
  for (WorldInstantiation& world : analysis->worlds) {
    explanation.world_instantiations.push_back(
        std::move(world.instantiation));
  }
  explanation.instantiation = explanation.world_instantiations.front();
  return explanation;
}

std::string FormatTemplateAllocation(const TemplateSet& set,
                                     const TemplateAllocation& levels) {
  std::vector<std::string> parts;
  for (size_t t = 0; t < set.size(); ++t) {
    parts.push_back(
        StrCat(set.tmpl(t).name(), "=", IsolationLevelToString(levels[t])));
  }
  return Join(parts, " ");
}

}  // namespace mvrob
