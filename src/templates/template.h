#ifndef MVROB_TEMPLATES_TEMPLATE_H_
#define MVROB_TEMPLATES_TEMPLATE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "txn/operation.h"

namespace mvrob {

/// A read/write step of a transaction template. The object is a *pattern*
/// over the template's parameters: "stock_$w_$i" names a different concrete
/// object for every assignment of $w and $i.
struct TemplateOp {
  OpType type = OpType::kRead;
  std::string object_pattern;

  friend bool operator==(const TemplateOp&, const TemplateOp&) = default;
};

/// A typed template parameter: `name` ranges over the domain `domain`.
struct ParamDecl {
  std::string name;
  std::string domain;

  friend bool operator==(const ParamDecl&, const ParamDecl&) = default;
};

/// A transaction template (Section 6.3.1 of the paper): a parameterized
/// transaction program from which infinitely many concrete transactions can
/// be instantiated — the form in which real workloads such as TPC-C are
/// specified. The paper's transaction-level results are the building block
/// for reasoning about templates; this subsystem closes the loop by
/// checking template robustness through canonical finite instantiations.
class TransactionTemplate {
 public:
  /// Validates that every $param used in an object pattern is declared.
  static StatusOr<TransactionTemplate> Create(std::string name,
                                              std::vector<ParamDecl> params,
                                              std::vector<TemplateOp> ops);

  const std::string& name() const { return name_; }
  const std::vector<ParamDecl>& params() const { return params_; }
  const std::vector<TemplateOp>& ops() const { return ops_; }

  /// Substitutes an assignment (parameter name -> value token) into a
  /// pattern: "stock_$w" with {w -> "1"} becomes "stock_1".
  static std::string Substitute(
      const std::string& pattern,
      const std::map<std::string, std::string>& assignment);

  /// "NewOrder(w:W, d:D): R[wtax_$w] W[dnext_$w_$d]".
  std::string ToString() const;

 private:
  TransactionTemplate() = default;

  std::string name_;
  std::vector<ParamDecl> params_;
  std::vector<TemplateOp> ops_;
};

/// A set of templates plus the domains their parameters range over. The
/// domain sizes recorded here bound *canonical* instantiation (see
/// instantiate.h); conceptually each domain is unbounded.
class TemplateSet {
 public:
  /// Declares (or resizes) a domain.
  void DeclareDomain(const std::string& name, int size);
  /// Size of a declared domain, or 0.
  int DomainSize(const std::string& name) const;
  const std::map<std::string, int>& domains() const { return domains_; }

  /// Adds a template; every parameter's domain must be declared and all
  /// template names must be unique.
  Status Add(TransactionTemplate tmpl);

  size_t size() const { return templates_.size(); }
  const TransactionTemplate& tmpl(size_t index) const {
    return templates_[index];
  }
  const std::vector<TransactionTemplate>& templates() const {
    return templates_;
  }

  /// Index of the template with the given name, or -1.
  int FindTemplate(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<TransactionTemplate> templates_;
  std::map<std::string, int> domains_;
};

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_TEMPLATE_H_
