#ifndef MVROB_TEMPLATES_TEMPLATE_H_
#define MVROB_TEMPLATES_TEMPLATE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "txn/operation.h"

namespace mvrob {

/// One piece of a parsed object pattern. A *point* pattern is a sequence of
/// literal and parameter segments ("stock_$w_$i"); *predicate reads*
/// (v2 of the DSL, after arXiv 2302.08789) additionally use
///  - wildcard segments "*D": every value of domain D (an attribute
///    predicate / secondary-index scan), and
///  - range segments "$lo..$hi": every value between two parameters of the
///    same domain, inclusive on both ends and empty when lo > hi
///    (a WHERE key BETWEEN lo AND hi scan).
struct PatternSegment {
  enum class Kind { kLiteral, kParam, kWildcard, kRange };
  Kind kind = Kind::kLiteral;
  /// Literal text (kLiteral), parameter name (kParam), or domain name
  /// (kWildcard).
  std::string text;
  /// Bound parameter names (kRange).
  std::string lo;
  std::string hi;

  friend bool operator==(const PatternSegment&, const PatternSegment&) =
      default;
};

/// A read/write step of a transaction template. The object is a *pattern*
/// over the template's parameters: "stock_$w_$i" names a different concrete
/// object for every assignment of $w and $i. Reads may carry predicate
/// segments (see PatternSegment); writes must be point patterns.
struct TemplateOp {
  OpType type = OpType::kRead;
  std::string object_pattern;
  /// Parsed form of object_pattern, filled by TransactionTemplate::Create.
  std::vector<PatternSegment> segments;

  /// True when the op is a predicate read (any wildcard/range segment).
  bool IsPredicate() const;

  friend bool operator==(const TemplateOp&, const TemplateOp&) = default;
};

/// A typed template parameter: `name` ranges over the domain `domain`.
struct ParamDecl {
  std::string name;
  std::string domain;

  friend bool operator==(const ParamDecl&, const ParamDecl&) = default;
};

/// A declared function symbol usable in functional constraints
/// (arXiv 2201.05021): a total function from `arg_domain` to
/// `result_domain`. When `injective`, canonical instantiation only
/// considers injective interpretations (the foreign-key reading: distinct
/// arguments map to distinct results).
struct FunctionDecl {
  std::string name;
  std::string arg_domain;
  std::string result_domain;
  bool injective = false;

  /// "function f A B injective".
  std::string ToString() const;

  friend bool operator==(const FunctionDecl&, const FunctionDecl&) = default;
};

/// A functional constraint on one template's parameters
/// (arXiv 2201.05021): an equality "a == b", a disjointness assertion
/// "a != b", or a functional dependency "b = f(a)". Constraints restrict
/// which parameter assignments are admissible and thereby prune
/// template-pair conflicts. An explicit equality overrides the implicit
/// distinct-same-domain rule for that pair.
struct FunctionalConstraint {
  enum class Kind { kEquality, kDisjointness, kFunction };
  Kind kind = Kind::kEquality;
  /// Name of the constrained template.
  std::string tmpl;
  /// Left parameter; for kFunction this is the *determined* parameter.
  std::string left;
  /// Right parameter; for kFunction this is the function argument.
  std::string right;
  /// Function symbol (kFunction only).
  std::string func;

  /// "constraint T: a == b" | "constraint T: a != b" |
  /// "constraint T: b = f(a)".
  std::string ToString() const;

  friend bool operator==(const FunctionalConstraint&,
                         const FunctionalConstraint&) = default;
};

/// A transaction template (Section 6.3.1 of the paper): a parameterized
/// transaction program from which infinitely many concrete transactions can
/// be instantiated — the form in which real workloads such as TPC-C are
/// specified. The paper's transaction-level results are the building block
/// for reasoning about templates; this subsystem closes the loop by
/// checking template robustness through canonical finite instantiations.
class TransactionTemplate {
 public:
  /// Validates that every $param used in an object pattern is declared,
  /// parses patterns into segments, and rejects predicate writes.
  static StatusOr<TransactionTemplate> Create(std::string name,
                                              std::vector<ParamDecl> params,
                                              std::vector<TemplateOp> ops);

  const std::string& name() const { return name_; }
  const std::vector<ParamDecl>& params() const { return params_; }
  const std::vector<TemplateOp>& ops() const { return ops_; }

  /// Index of the named parameter, or -1.
  int FindParam(const std::string& name) const;

  /// True when any op is a predicate read.
  bool HasPredicateReads() const;

  /// Substitutes an assignment (parameter name -> value token) into a
  /// pattern: "stock_$w" with {w -> "1"} becomes "stock_1".
  static std::string Substitute(
      const std::string& pattern,
      const std::map<std::string, std::string>& assignment);

  /// "NewOrder(w:W, d:D): R[wtax_$w] W[dnext_$w_$d]".
  std::string ToString() const;

 private:
  TransactionTemplate() = default;

  std::string name_;
  std::vector<ParamDecl> params_;
  std::vector<TemplateOp> ops_;
};

/// A set of templates plus the domains their parameters range over, the
/// function symbols usable in constraints, and the declared functional
/// constraints. The domain sizes recorded here bound *canonical*
/// instantiation (see instantiate.h); conceptually each domain is
/// unbounded.
class TemplateSet {
 public:
  /// Declares (or resizes) a domain.
  void DeclareDomain(const std::string& name, int size);
  /// Size of a declared domain, or 0.
  int DomainSize(const std::string& name) const;
  const std::map<std::string, int>& domains() const { return domains_; }

  /// Declares a function symbol. Both domains must be declared; injective
  /// functions need |result_domain| >= |arg_domain| over the canonical
  /// sizes.
  Status DeclareFunction(FunctionDecl decl);
  /// Index of the named function, or -1.
  int FindFunction(const std::string& name) const;
  const std::vector<FunctionDecl>& functions() const { return functions_; }

  /// Adds a template; every parameter's domain must be declared, every
  /// wildcard/range domain must be declared, and all template names must
  /// be unique.
  Status Add(TransactionTemplate tmpl);

  /// Adds a functional constraint. The template and its parameters must
  /// exist; function constraints auto-declare an (non-injective) function
  /// symbol on first use and must agree with the declared signature
  /// otherwise. Contradictory combinations (parameters both equated and
  /// required distinct, directly or through shared functional
  /// dependencies) are rejected here; deeper unsatisfiability surfaces as
  /// an empty instantiation.
  Status AddConstraint(FunctionalConstraint constraint);
  const std::vector<FunctionalConstraint>& constraints() const {
    return constraints_;
  }
  /// The constraints declared on template `index`.
  std::vector<FunctionalConstraint> ConstraintsFor(size_t index) const;

  /// True when any template has a predicate read or any constraint or
  /// function is declared (the v2 features of the text format).
  bool UsesV2Features() const;

  /// A copy of this set with every constraint and function dropped: the
  /// plain distinct-parameter-rule reading, used as the comparison
  /// baseline.
  TemplateSet WithoutConstraints() const;

  size_t size() const { return templates_.size(); }
  const TransactionTemplate& tmpl(size_t index) const {
    return templates_[index];
  }
  const std::vector<TransactionTemplate>& templates() const {
    return templates_;
  }

  /// Index of the template with the given name, or -1.
  int FindTemplate(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<TransactionTemplate> templates_;
  std::map<std::string, int> domains_;
  std::vector<FunctionDecl> functions_;
  std::vector<FunctionalConstraint> constraints_;
};

}  // namespace mvrob

#endif  // MVROB_TEMPLATES_TEMPLATE_H_
