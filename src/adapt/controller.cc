#include "adapt/controller.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/json.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "mvcc/txn_trace.h"

namespace mvrob {
namespace {

uint64_t WallClockMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// One level's scalar cost: windowed p95 commit latency inflated by the
/// abort ratio. max(p95, 1) keeps the ratio meaningful when latencies are
/// sub-microsecond.
double LevelScore(const LevelObservation& o) {
  const uint64_t attempts = o.commits + o.aborts;
  const double abort_ratio =
      attempts == 0 ? 0.0
                    : static_cast<double>(o.aborts) /
                          static_cast<double>(attempts);
  const double latency =
      static_cast<double>(std::max<uint64_t>(o.p95_latency_us, 1));
  return (1.0 + abort_ratio) * latency;
}

int ClampWeight(double ratio, int lo, int hi) {
  const long long rounded = std::llround(ratio);
  if (rounded < lo) return lo;
  if (rounded > hi) return hi;
  return static_cast<int>(rounded);
}

/// Writes the "allocation" / "allocation_text" / "levels" keys shared by
/// the adaptive and static /allocation payloads.
void WriteAllocationFields(const TransactionSet& txns, const Allocation& alloc,
                           JsonWriter& json) {
  json.Key("allocation");
  json.BeginObject();
  for (TxnId t = 0; t < static_cast<TxnId>(txns.size()); ++t) {
    json.Key(txns.txn(t).name());
    json.String(IsolationLevelToString(alloc.level(t)));
  }
  json.EndObject();
  json.Key("allocation_text");
  json.String(alloc.ToString(txns));
  json.Key("levels");
  json.BeginObject();
  for (IsolationLevel level : kAllIsolationLevels) {
    json.Key(IsolationLevelToString(level));
    json.Uint(alloc.CountAt(level));
  }
  json.EndObject();
}

void WriteDecision(const AdaptDecision& d, JsonWriter& json) {
  json.BeginObject();
  json.Key("id");
  json.Uint(d.id);
  json.Key("decided_at_us");
  json.Uint(d.decided_at_us);
  json.Key("weights");
  json.BeginObject();
  json.Key("si");
  json.Int(d.weights.si);
  json.Key("ssi");
  json.Int(d.weights.ssi);
  json.EndObject();
  json.Key("allocation");
  json.String(d.allocation_text);
  json.Key("promotions");
  json.BeginArray();
  for (const std::string& p : d.promotions) json.String(p);
  json.EndArray();
  json.Key("cost_weighted");
  json.Int(d.cost_weighted);
  json.Key("robustness_checks");
  json.Uint(d.robustness_checks);
  json.Key("robust");
  json.Bool(d.robust);
  json.Key("installed");
  json.Bool(d.installed);
  json.Key("generation");
  json.Uint(d.generation);
  json.Key("top_conflicts");
  json.BeginArray();
  for (const std::string& c : d.top_conflicts) json.String(c);
  json.EndArray();
  json.EndObject();
}

}  // namespace

ActiveAllocation::ActiveAllocation(TransactionSet txns, Allocation alloc)
    : txns_(std::move(txns)), alloc_(std::move(alloc)) {}

uint64_t ActiveAllocation::Snapshot(TransactionSet* txns,
                                    Allocation* alloc) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (txns != nullptr) *txns = txns_;
  if (alloc != nullptr) *alloc = alloc_;
  return generation_;
}

uint64_t ActiveAllocation::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

uint64_t ActiveAllocation::Install(TransactionSet txns, Allocation alloc) {
  std::lock_guard<std::mutex> lock(mu_);
  txns_ = std::move(txns);
  alloc_ = std::move(alloc);
  return ++generation_;
}

LevelObservations ObserveLevels(const LiveTelemetry& live,
                                std::chrono::steady_clock::time_point now) {
  LevelObservations obs;
  for (size_t i = 0; i < kAllIsolationLevels.size(); ++i) {
    const LiveTelemetry::PerLevel& in = live.per_level[i];
    LevelObservation& out = obs.per_level[i];
    if (in.commits != nullptr) out.commits = in.commits->WindowTotal(now);
    if (in.aborts_write_conflict != nullptr) {
      out.aborts += in.aborts_write_conflict->WindowTotal(now);
    }
    if (in.aborts_ssi != nullptr) out.aborts += in.aborts_ssi->WindowTotal(now);
    if (in.aborts_deadlock != nullptr) {
      out.aborts += in.aborts_deadlock->WindowTotal(now);
    }
    if (in.commit_latency_us != nullptr) {
      out.p95_latency_us = in.commit_latency_us->WindowStats(now).p95;
    }
  }
  return obs;
}

AdaptWeights DeriveWeights(const LevelObservations& obs) {
  AdaptWeights weights;
  const LevelObservation& rc =
      obs.per_level[static_cast<size_t>(IsolationLevel::kRC)];
  const LevelObservation& si =
      obs.per_level[static_cast<size_t>(IsolationLevel::kSI)];
  const LevelObservation& ssi =
      obs.per_level[static_cast<size_t>(IsolationLevel::kSSI)];
  const bool rc_seen = rc.commits + rc.aborts > 0;
  if (rc_seen && si.commits + si.aborts > 0) {
    weights.si = ClampWeight(LevelScore(si) / LevelScore(rc), 1, 64);
  }
  if (rc_seen && ssi.commits + ssi.aborts > 0) {
    weights.ssi =
        ClampWeight(LevelScore(ssi) / LevelScore(rc), weights.si, 128);
  }
  // Preserve the paper's preference order RC < SI < SSI even when SSI went
  // unobserved and kept its default.
  weights.ssi = std::max(weights.ssi, weights.si);
  return weights;
}

AdaptController::AdaptController(TransactionSet base, const LiveTelemetry* live,
                                 ActiveAllocation* active,
                                 AdaptControllerOptions options)
    : base_(std::move(base)),
      live_(live),
      active_(active),
      options_(std::move(options)) {
  active_->Snapshot(nullptr, &installed_alloc_);
}

bool AdaptController::DecideOnce(std::chrono::steady_clock::time_point now) {
  PhaseTimer timer(options_.metrics, "adapt.decide");
  const auto decide_start = std::chrono::steady_clock::now();

  const LevelObservations obs =
      live_ != nullptr ? ObserveLevels(*live_, now) : LevelObservations{};
  const AdaptWeights weights = DeriveWeights(obs);

  // Algorithm 2 on the base workload. Its optimum is unique and
  // weight-independent (Theorem 4.3), so the weights matter through the
  // promotion decision below: promoted workload + cheaper allocation vs
  // base workload + the optimum.
  const OptimalAllocationResult base_opt =
      ComputeOptimalAllocation(base_, options_.check);

  TransactionSet chosen_txns = base_;
  Allocation chosen_alloc = base_opt.allocation;
  std::vector<OpRef> promotions;
  uint64_t robustness_checks = base_opt.robustness_checks;

  if (options_.promotion_budget > 0) {
    PromoteOptions popt;
    popt.check = options_.check;
    popt.max_promotions = options_.promotion_budget;
    popt.weight_si = weights.si;
    popt.weight_ssi = weights.ssi;
    StatusOr<PromotionPlan> plan = OptimizePromotions(base_, popt);
    if (plan.ok()) {
      if (plan->cancelled) return false;
      robustness_checks += plan->robustness_checks;
      if (plan->improved) {
        chosen_txns = plan->promoted;
        chosen_alloc = plan->after_allocation;
        promotions = plan->promotions.reads();
      }
    }
  }

  // Final certification: a cancelled Algorithm 1 run carries no verdict
  // (robust stays true), and Algorithm 2 does not re-certify under
  // cancellation — so nothing is installed without a fresh, completed
  // certificate on exactly the pair that would go live.
  const RobustnessResult cert =
      CheckRobustness(chosen_txns, chosen_alloc, options_.check);
  if (cert.cancelled) return false;
  ++robustness_checks;

  PromoteOptions cost_options;
  cost_options.weight_si = weights.si;
  cost_options.weight_ssi = weights.ssi;

  AdaptDecision decision;
  decision.decided_at_us = WallClockMicros();
  decision.weights = weights;
  decision.allocation_text = chosen_alloc.ToString(chosen_txns);
  for (OpRef read : promotions) {
    decision.promotions.push_back(base_.FormatOp(read));
  }
  decision.cost_weighted =
      ComputeAllocationCost(chosen_alloc, cost_options).weighted;
  decision.robustness_checks = robustness_checks;
  decision.robust = cert.robust;
  if (options_.tracer != nullptr) {
    for (const TraceConflictRow& row :
         options_.tracer->TopConflicts(options_.top_conflicts)) {
      decision.top_conflicts.push_back(
          StrCat(row.victim, "->", row.conflicting, " ",
                 ConflictTypeToString(row.type), " ",
                 TraceAbortCauseToString(row.cause), " x", row.count));
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++decisions_;
    decision.id = decisions_;
    last_weights_ = weights;
    if (!cert.robust) {
      // Defensive: Algorithm 2 output always certifies; refusing here is
      // the invariant that keeps every installed pair robust.
      decision.installed = false;
      decision.generation = active_->generation();
    } else {
      const bool changed = !(chosen_alloc == installed_alloc_ &&
                             promotions == installed_promotions_);
      if (changed) {
        decision.generation =
            active_->Install(std::move(chosen_txns), chosen_alloc);
        installed_alloc_ = std::move(chosen_alloc);
        installed_promotions_ = promotions;
        ++swaps_;
        decision.installed = true;
      } else {
        decision.generation = active_->generation();
      }
    }
    history_.push_back(decision);
    while (history_.size() > options_.history_limit) history_.pop_front();

    if (options_.metrics != nullptr) {
      MetricsRegistry& m = *options_.metrics;
      m.counter("adapt.decisions").Increment();
      if (decision.installed) m.counter("adapt.swaps").Increment();
      if (!decision.robust) m.counter("adapt.rejected").Increment();
      m.gauge("adapt.weight{level=SI}").Set(weights.si);
      m.gauge("adapt.weight{level=SSI}").Set(weights.ssi);
      for (IsolationLevel level : kAllIsolationLevels) {
        m.gauge(StrCat("adapt.allocation{level=",
                       IsolationLevelToString(level), "}"))
            .Set(static_cast<int64_t>(installed_alloc_.CountAt(level)));
      }
      m.gauge("adapt.generation").Set(
          static_cast<int64_t>(decision.generation));
    }
  }

  if (options_.metrics != nullptr) {
    const auto decide_end = std::chrono::steady_clock::now();
    options_.metrics->windowed_histogram("adapt.decision_latency_us")
        .Observe(static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         decide_end - decide_start)
                         .count()),
                 decide_end);
  }

  std::string conflicts_text;
  for (const std::string& c : decision.top_conflicts) {
    if (!conflicts_text.empty()) conflicts_text += "; ";
    conflicts_text += c;
  }

  if (decision.installed) {
    GlobalLogger().Log(
        LogLevel::kInfo, "adapt.decision", "installed new allocation",
        {LogField("decision", decision.id),
         LogField("generation", decision.generation),
         LogField("weight_si", decision.weights.si),
         LogField("weight_ssi", decision.weights.ssi),
         LogField("allocation", decision.allocation_text),
         LogField("promotions",
                  static_cast<uint64_t>(decision.promotions.size())),
         LogField("cost_weighted", decision.cost_weighted),
         LogField("robustness_checks", decision.robustness_checks),
         LogField("conflicts", conflicts_text)});
  } else if (!decision.robust) {
    GlobalLogger().Log(
        LogLevel::kWarn, "adapt.decision",
        "candidate failed certification; keeping previous allocation",
        {LogField("decision", decision.id),
         LogField("allocation", decision.allocation_text),
         LogField("conflicts", conflicts_text)});
  }
  return true;
}

void AdaptController::Run(const std::atomic<bool>& stop, std::mutex& stop_mu,
                          std::condition_variable& stop_cv) {
  std::unique_lock<std::mutex> lock(stop_mu);
  while (!stop.load(std::memory_order_relaxed)) {
    lock.unlock();
    DecideOnce(std::chrono::steady_clock::now());
    lock.lock();
    stop_cv.wait_for(lock, std::chrono::seconds(options_.interval_s),
                     [&] { return stop.load(std::memory_order_relaxed); });
  }
}

uint64_t AdaptController::decisions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decisions_;
}

uint64_t AdaptController::swaps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swaps_;
}

std::string AdaptController::StatusJson() const {
  TransactionSet active_txns;
  Allocation active_alloc;
  const uint64_t generation = active_->Snapshot(&active_txns, &active_alloc);

  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Uint(1);
  json.Key("adapt");
  json.Bool(true);
  json.Key("generation");
  json.Uint(generation);
  {
    std::lock_guard<std::mutex> lock(mu_);
    json.Key("decisions");
    json.Uint(decisions_);
    json.Key("swaps");
    json.Uint(swaps_);
    WriteAllocationFields(active_txns, active_alloc, json);
    json.Key("weights");
    json.BeginObject();
    json.Key("si");
    json.Int(last_weights_.si);
    json.Key("ssi");
    json.Int(last_weights_.ssi);
    json.EndObject();
    json.Key("promotions");
    json.BeginArray();
    for (OpRef read : installed_promotions_) {
      json.String(base_.FormatOp(read));
    }
    json.EndArray();
    json.Key("history");
    json.BeginArray();
    for (const AdaptDecision& d : history_) WriteDecision(d, json);
    json.EndArray();
  }
  json.EndObject();
  return json.str();
}

std::string StaticAllocationJson(const ActiveAllocation& active) {
  TransactionSet txns;
  Allocation alloc;
  const uint64_t generation = active.Snapshot(&txns, &alloc);

  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Uint(1);
  json.Key("adapt");
  json.Bool(false);
  json.Key("generation");
  json.Uint(generation);
  json.Key("decisions");
  json.Uint(0);
  json.Key("swaps");
  json.Uint(0);
  WriteAllocationFields(txns, alloc, json);
  json.Key("weights");
  json.BeginObject();
  json.Key("si");
  json.Int(AdaptWeights{}.si);
  json.Key("ssi");
  json.Int(AdaptWeights{}.ssi);
  json.EndObject();
  json.Key("promotions");
  json.BeginArray();
  json.EndArray();
  json.Key("history");
  json.BeginArray();
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace mvrob
