#ifndef MVROB_ADAPT_CONTROLLER_H_
#define MVROB_ADAPT_CONTROLLER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/optimal_allocation.h"
#include "core/robustness.h"
#include "iso/allocation.h"
#include "mvcc/driver.h"
#include "promote/optimizer.h"
#include "txn/transaction_set.h"

namespace mvrob {

class MetricsRegistry;
class TxnTracer;

/// The adaptive-allocation layer behind `mvrob serve --adapt`: a controller
/// that closes the loop from the live per-level telemetry (PR 4) back into
/// the paper's allocation machinery. On a cadence it summarizes the
/// windowed per-level series into relative cost weights, re-runs
/// Algorithm 2 (and, with a promotion budget, the promotion optimizer
/// under those weights), certifies the winning (workload, allocation) pair
/// with Algorithm 1, and installs it into a generation-counted slot the
/// driver reads at every engine-epoch boundary. Serialized execution is
/// preserved by construction: nothing reaches the slot without a fresh
/// robustness certificate.

/// The mutex-guarded generation-counted slot holding the pair the driver
/// executes. The controller is the only writer; the driver and the witness
/// thread snapshot it at each epoch / check boundary. It holds a full
/// (TransactionSet, Allocation) pair — not just the allocation — because a
/// promotion decision changes the executed workload (promoted reads carry
/// an extra write). Promotion preserves object interning and transaction
/// names/ids, so ObjectIds and TxnIds mean the same thing across
/// generations.
class ActiveAllocation {
 public:
  ActiveAllocation(TransactionSet txns, Allocation alloc);

  /// Copies the current pair out; returns its generation.
  uint64_t Snapshot(TransactionSet* txns, Allocation* alloc) const;
  /// Copies only the allocation (cheap; for status endpoints).
  uint64_t SnapshotAllocation(TransactionSet* txns, Allocation* alloc) const {
    return Snapshot(txns, alloc);
  }

  uint64_t generation() const;

  /// Replaces the pair; returns the new generation. Takes effect at the
  /// driver's next epoch boundary (the driver snapshots per epoch).
  uint64_t Install(TransactionSet txns, Allocation alloc);

 private:
  mutable std::mutex mu_;
  TransactionSet txns_;
  Allocation alloc_;
  uint64_t generation_ = 0;
};

/// Windowed summary of one isolation level's live series at one instant.
struct LevelObservation {
  uint64_t commits = 0;
  /// Sum over the per-reason abort series (write conflict + SSI + deadlock).
  uint64_t aborts = 0;
  uint64_t p95_latency_us = 0;
};

/// All levels, indexed by static_cast<size_t>(IsolationLevel).
struct LevelObservations {
  LevelObservation per_level[kAllIsolationLevels.size()];
};

/// Reads every level's trailing-window totals from the live instruments at
/// `now` (explicit time point so tests can drive a fake clock; null
/// instrument pointers contribute zero).
LevelObservations ObserveLevels(const LiveTelemetry& live,
                                std::chrono::steady_clock::time_point now);

/// Integer cost weights for the allocation machinery (RC is always free).
struct AdaptWeights {
  int si = 1;
  int ssi = 2;

  friend bool operator==(const AdaptWeights&, const AdaptWeights&) = default;
};

/// Derives weights from the observation: each level's cost score is its
/// windowed p95 commit latency inflated by its abort ratio,
///
///   score(L) = (1 + aborts_L / (commits_L + aborts_L)) * max(p95_L, 1)
///
/// and the weight of SI/SSI is its score relative to RC, rounded to the
/// nearest integer and clamped (SI to [1, 64], SSI to [weight_si, 128] so
/// the preference order RC < SI < SSI survives noise). A level with no
/// traffic in the window — or an unobserved RC baseline — falls back to
/// the default weight for that slot (1 for SI, 2 for SSI). Deterministic:
/// fixed series in, fixed weights out.
AdaptWeights DeriveWeights(const LevelObservations& obs);

/// One controller decision, kept in a bounded history for /allocation.
struct AdaptDecision {
  uint64_t id = 0;
  uint64_t decided_at_us = 0;  // Wall clock.
  AdaptWeights weights;
  /// Chosen allocation, rendered against its workload ("T1=RC T2=SI ...").
  std::string allocation_text;
  /// Promoted reads in base coordinates ("R1[x]"); empty = base workload.
  std::vector<std::string> promotions;
  /// Weighted cost of the chosen allocation under `weights`.
  int64_t cost_weighted = 0;
  /// Algorithm 1 invocations spent on this decision (Algorithm 2 +
  /// optimizer + the final certification).
  uint64_t robustness_checks = 0;
  /// The final certificate's verdict. Always true for installed decisions.
  bool robust = false;
  /// Whether the decision changed the active pair (a swap).
  bool installed = false;
  /// Slot generation after the decision.
  uint64_t generation = 0;
  /// Top conflict pairs observed by the txn tracer at decision time
  /// ("T1->T2 ww first_updater_wins x12"); empty without a tracer. The
  /// live conflict evidence the decision's weights were derived under.
  std::vector<std::string> top_conflicts;
};

struct AdaptControllerOptions {
  /// Seconds between decisions.
  int interval_s = 30;
  /// Promotion budget per decision; 0 = allocation-only (never rewrites
  /// the workload).
  int promotion_budget = 0;
  /// Forwarded to every Algorithm 1/2 run; `check.cancel` should be the
  /// serve stop flag so shutdown never waits behind a scan.
  CheckOptions check;
  /// Optional sinks. The registry receives adapt.* counters and gauges,
  /// plus the adapt.decision_latency_us windowed histogram timing each
  /// full observe -> weigh -> allocate -> certify -> install cycle.
  MetricsRegistry* metrics = nullptr;
  /// Optional read-only txn tracer: each decision journals the tracer's
  /// top-k conflict pairs (AdaptDecision::top_conflicts and the
  /// adapt.decision log line), citing the live conflict evidence the
  /// decision was made under. Null leaves the journal empty.
  const TxnTracer* tracer = nullptr;
  /// Conflict pairs journaled per decision.
  size_t top_conflicts = 3;
  /// Decisions retained for the /allocation history (oldest dropped).
  size_t history_limit = 32;
};

/// The controller. Owns the decision loop; thread-safe status access for
/// the HTTP handler.
class AdaptController {
 public:
  /// `base` is the un-promoted workload every decision starts from.
  /// `live` may be null (weights stay at their defaults). `active` must
  /// outlive the controller.
  AdaptController(TransactionSet base, const LiveTelemetry* live,
                  ActiveAllocation* active, AdaptControllerOptions options);

  /// Runs one observe → weigh → allocate → certify → install cycle at
  /// `now`. Returns false iff the cycle was cancelled via
  /// options.check.cancel (no decision recorded); a completed cycle —
  /// including one whose candidate failed certification and was refused —
  /// returns true.
  bool DecideOnce(std::chrono::steady_clock::time_point now);

  /// Decision loop for the serve controller thread: decides immediately,
  /// then every options.interval_s seconds until `stop` is set (same
  /// stop/mutex/cv protocol as the witness thread).
  void Run(const std::atomic<bool>& stop, std::mutex& stop_mu,
           std::condition_variable& stop_cv);

  uint64_t decisions() const;
  uint64_t swaps() const;

  /// The full /allocation payload (schema v1, docs/formats.md): current
  /// allocation, weights, promotions, bounded decision history.
  std::string StatusJson() const;

 private:
  bool DecideLocked(std::chrono::steady_clock::time_point now);

  const TransactionSet base_;
  const LiveTelemetry* live_;
  ActiveAllocation* active_;
  const AdaptControllerOptions options_;

  mutable std::mutex mu_;
  uint64_t decisions_ = 0;
  uint64_t swaps_ = 0;
  AdaptWeights last_weights_;
  /// The controller's view of what it last installed (the slot's initial
  /// pair until the first swap). Tracked here so change detection never
  /// needs to compare TransactionSets.
  Allocation installed_alloc_;
  std::vector<OpRef> installed_promotions_;
  std::deque<AdaptDecision> history_;
};

/// The /allocation payload for a serve process without a controller
/// (--adapt off): same schema v1 with "adapt":false, empty weights
/// defaults, no history.
std::string StaticAllocationJson(const ActiveAllocation& active);

}  // namespace mvrob

#endif  // MVROB_ADAPT_CONTROLLER_H_
