#include "iso/materialize.h"

#include <algorithm>

namespace mvrob {

StatusOr<Schedule> MaterializeSchedule(const TransactionSet* txns,
                                       std::vector<OpRef> order,
                                       const Allocation& allocation) {
  // Positions in the tentative order (op_0 = -1).
  std::unordered_map<OpRef, int, OpRefHash> position;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i].IsOp0() || !txns->IsValidRef(order[i])) {
      return Status::InvalidArgument("invalid operation reference in order");
    }
    position[order[i]] = static_cast<int>(i);
  }

  auto commit_position = [&](TxnId t) {
    auto it = position.find(txns->txn(t).commit_ref());
    return it == position.end() ? -1 : it->second;
  };

  // Version order: per object, writes sorted by (writer commit position,
  // program-order index). With distinct commits per transaction this is the
  // commit order; within one transaction, program order.
  VersionOrder version_order;
  for (const OpRef& ref : order) {
    const Operation& op = txns->op(ref);
    if (op.IsWrite()) version_order[op.object].push_back(ref);
  }
  for (auto& [object, writes] : version_order) {
    std::sort(writes.begin(), writes.end(), [&](OpRef x, OpRef y) {
      int cx = commit_position(x.txn);
      int cy = commit_position(y.txn);
      if (cx != cy) return cx < cy;
      return x.index < y.index;
    });
  }

  // Version function: newest version whose writer committed before the
  // anchor (the read for RC, first(T) for SI/SSI); op_0 if none.
  VersionFunction versions;
  for (const OpRef& ref : order) {
    const Operation& op = txns->op(ref);
    if (!op.IsRead()) continue;
    int anchor_position;
    if (allocation.level(ref.txn) == IsolationLevel::kRC) {
      anchor_position = position[ref];
    } else {
      anchor_position = position[txns->txn(ref.txn).first_ref()];
    }
    OpRef observed = OpRef::Op0();
    // Read-your-own-writes: the latest preceding own write wins at every
    // level (the engine's buffered-value rule); only reads with no earlier
    // own write fall through to the committed-version rules.
    bool own_write = false;
    for (int i = 0; i < ref.index; ++i) {
      const Operation& earlier = txns->txn(ref.txn).op(i);
      if (earlier.IsWrite() && earlier.object == op.object) {
        observed = OpRef{ref.txn, i};
        own_write = true;
      }
    }
    if (!own_write) {
      // Writes are already in <<_s order; the last qualifying one wins.
      for (const OpRef& write : version_order[op.object]) {
        if (commit_position(write.txn) < anchor_position) observed = write;
      }
    }
    versions[ref] = observed;
  }
  return Schedule::Create(txns, std::move(order), std::move(versions),
                          std::move(version_order));
}

}  // namespace mvrob
