#include "iso/allowed.h"

#include <optional>

#include "common/string_util.h"
#include "iso/dangerous_structure.h"

namespace mvrob {

bool WriteRespectsCommitOrder(const Schedule& s, OpRef write) {
  const TransactionSet& txns = s.txns();
  const Operation& op = txns.op(write);
  OpRef my_commit = txns.txn(write.txn).commit_ref();
  for (const OpRef& other : s.VersionsOf(op.object)) {
    if (other.txn == write.txn) continue;
    OpRef other_commit = txns.txn(other.txn).commit_ref();
    bool version_before = s.VersionBefore(write, other);
    bool commit_before = s.Before(my_commit, other_commit);
    if (version_before != commit_before) return false;
  }
  return true;
}

namespace {

// Latest write of the read's own transaction on the same object preceding
// the read in program order, if any. Promoted reads (W[x] inserted right
// before R[x], src/promote/) and write-then-read programs make these
// reads observe the session's buffered version at every isolation level
// — the engine's (and Postgres's) read-your-own-writes rule.
std::optional<OpRef> LatestOwnWriteBefore(const TransactionSet& txns,
                                          OpRef read) {
  const Operation& op = txns.op(read);
  const Transaction& t = txns.txn(read.txn);
  std::optional<OpRef> latest;
  for (int i = 0; i < read.index; ++i) {
    const Operation& w = t.op(i);
    if (w.IsWrite() && w.object == op.object) latest = OpRef{read.txn, i};
  }
  return latest;
}

}  // namespace

bool ReadLastCommittedRelativeTo(const Schedule& s, OpRef read, OpRef anchor) {
  const TransactionSet& txns = s.txns();
  const Operation& op = txns.op(read);
  OpRef observed = s.VersionRead(read);

  // Read-your-own-writes: once the transaction has written the object, the
  // read must observe exactly the latest preceding own write — the
  // committed-version rules below only govern reads of foreign versions.
  if (std::optional<OpRef> own = LatestOwnWriteBefore(txns, read);
      own.has_value()) {
    return observed == *own;
  }

  // First condition: op_0, or a version committed before the anchor.
  if (!observed.IsOp0()) {
    OpRef writer_commit = txns.txn(observed.txn).commit_ref();
    if (!s.Before(writer_commit, anchor)) return false;
  }
  // Second condition: no version of the object committed before the anchor
  // is installed after the observed one.
  for (const OpRef& other : s.VersionsOf(op.object)) {
    OpRef other_commit = txns.txn(other.txn).commit_ref();
    if (s.Before(other_commit, anchor) && s.VersionBefore(observed, other)) {
      return false;
    }
  }
  return true;
}

namespace {

// Shared scan for concurrent/dirty writes: calls `predicate(b_i, a_j)` for
// every pair of writes on the same object with b_i <_s a_j, b_i in another
// transaction, a_j in `txn`; returns true if any call returns true.
template <typename Predicate>
bool AnyEarlierForeignWrite(const Schedule& s, TxnId txn,
                            Predicate predicate) {
  const TransactionSet& txns = s.txns();
  const Transaction& t = txns.txn(txn);
  for (int i = 0; i < t.num_ops(); ++i) {
    const Operation& op = t.op(i);
    if (!op.IsWrite()) continue;
    OpRef a{txn, i};
    for (const OpRef& b : s.VersionsOf(op.object)) {
      if (b.txn == txn || !s.Before(b, a)) continue;
      if (predicate(b, a)) return true;
    }
  }
  return false;
}

}  // namespace

bool ExhibitsConcurrentWrite(const Schedule& s, TxnId txn) {
  const TransactionSet& txns = s.txns();
  OpRef first = txns.txn(txn).first_ref();
  return AnyEarlierForeignWrite(s, txn, [&](OpRef b, OpRef) {
    OpRef other_commit = txns.txn(b.txn).commit_ref();
    return s.Before(first, other_commit);
  });
}

bool ExhibitsDirtyWrite(const Schedule& s, TxnId txn) {
  const TransactionSet& txns = s.txns();
  return AnyEarlierForeignWrite(s, txn, [&](OpRef b, OpRef a) {
    OpRef other_commit = txns.txn(b.txn).commit_ref();
    return s.Before(a, other_commit);
  });
}

namespace {

// Checks the RC or SI conditions for one transaction, appending diagnostics.
bool TxnAllowed(const Schedule& s, TxnId txn, bool snapshot_reads,
                std::vector<std::string>* violations) {
  const TransactionSet& txns = s.txns();
  const Transaction& t = txns.txn(txn);
  const char* level = snapshot_reads ? "SI" : "RC";
  bool ok = true;

  for (int i = 0; i < t.num_ops(); ++i) {
    OpRef ref{txn, i};
    const Operation& op = t.op(i);
    if (op.IsWrite() && !WriteRespectsCommitOrder(s, ref)) {
      ok = false;
      if (violations != nullptr) {
        violations->push_back(StrCat(txns.FormatOp(ref),
                                     " does not respect the commit order"));
      }
    }
    if (op.IsRead()) {
      OpRef anchor = snapshot_reads ? t.first_ref() : ref;
      if (!ReadLastCommittedRelativeTo(s, ref, anchor)) {
        ok = false;
        if (violations != nullptr) {
          violations->push_back(
              StrCat(txns.FormatOp(ref), " is not read-last-committed ",
                     snapshot_reads ? "relative to the transaction start"
                                    : "relative to itself"));
        }
      }
    }
  }
  if (snapshot_reads ? ExhibitsConcurrentWrite(s, txn)
                     : ExhibitsDirtyWrite(s, txn)) {
    ok = false;
    if (violations != nullptr) {
      violations->push_back(StrCat(t.name(), " exhibits a ",
                                   snapshot_reads ? "concurrent" : "dirty",
                                   " write, disallowed under ", level));
    }
  }
  return ok;
}

}  // namespace

bool TxnAllowedUnderRC(const Schedule& s, TxnId txn) {
  return TxnAllowed(s, txn, /*snapshot_reads=*/false, nullptr);
}

bool TxnAllowedUnderSI(const Schedule& s, TxnId txn) {
  return TxnAllowed(s, txn, /*snapshot_reads=*/true, nullptr);
}

AllowedCheckResult CheckAllowedUnder(const Schedule& s, const Allocation& a) {
  AllowedCheckResult result;
  const TransactionSet& txns = s.txns();
  std::vector<bool> is_ssi(txns.size(), false);
  for (TxnId t = 0; t < txns.size(); ++t) {
    bool snapshot_reads = a.level(t) != IsolationLevel::kRC;
    if (!TxnAllowed(s, t, snapshot_reads, &result.violations)) {
      result.allowed = false;
    }
    is_ssi[t] = a.level(t) == IsolationLevel::kSSI;
  }
  for (const DangerousStructure& d : FindDangerousStructures(s, is_ssi)) {
    result.allowed = false;
    result.violations.push_back(
        StrCat("dangerous structure among SSI transactions: ",
               FormatDangerousStructure(txns, d)));
  }
  return result;
}

bool AllowedUnder(const Schedule& s, const Allocation& a) {
  const TransactionSet& txns = s.txns();
  std::vector<bool> is_ssi(txns.size(), false);
  for (TxnId t = 0; t < txns.size(); ++t) {
    bool snapshot_reads = a.level(t) != IsolationLevel::kRC;
    if (!TxnAllowed(s, t, snapshot_reads, nullptr)) return false;
    is_ssi[t] = a.level(t) == IsolationLevel::kSSI;
  }
  return FindDangerousStructures(s, is_ssi).empty();
}

}  // namespace mvrob
