#include "iso/dangerous_structure.h"

#include "common/string_util.h"

namespace mvrob {

std::vector<DangerousStructure> FindDangerousStructures(const Schedule& s) {
  return FindDangerousStructures(
      s, std::vector<bool>(s.txns().size(), true));
}

std::vector<DangerousStructure> FindDangerousStructures(
    const Schedule& s, const std::vector<bool>& eligible) {
  const TransactionSet& txns = s.txns();
  // Collect rw-antidependencies between eligible transactions, keeping one
  // representative per (from, to) pair — the structure conditions only
  // depend on the transactions involved.
  std::vector<Dependency> antis;
  for (const Dependency& dep : ComputeDependencies(s)) {
    if (dep.kind != DependencyKind::kRwAnti) continue;
    if (!eligible[dep.from] || !eligible[dep.to]) continue;
    bool duplicate = false;
    for (const Dependency& seen : antis) {
      if (seen.from == dep.from && seen.to == dep.to) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) antis.push_back(dep);
  }

  std::vector<DangerousStructure> structures;
  for (const Dependency& in : antis) {
    for (const Dependency& out : antis) {
      if (in.to != out.from) continue;  // Must chain through the pivot T2.
      TxnId t1 = in.from;
      TxnId t2 = in.to;
      TxnId t3 = out.to;
      if (!s.Concurrent(t1, t2) || !s.Concurrent(t2, t3)) continue;
      OpRef c1 = txns.txn(t1).commit_ref();
      OpRef c2 = txns.txn(t2).commit_ref();
      OpRef c3 = txns.txn(t3).commit_ref();
      // C3 <=_s C1 (equality iff T3 = T1) and C3 <_s C2.
      bool c3_before_c1 = (t3 == t1) || s.Before(c3, c1);
      if (!c3_before_c1 || !s.Before(c3, c2)) continue;
      structures.push_back(DangerousStructure{t1, t2, t3, in, out});
    }
  }
  return structures;
}

std::string FormatDangerousStructure(const TransactionSet& txns,
                                     const DangerousStructure& d) {
  return StrCat(txns.txn(d.t1).name(), " ->rw ", txns.txn(d.t2).name(),
                " ->rw ", txns.txn(d.t3).name(), " via ",
                FormatDependency(txns, d.in), " and ",
                FormatDependency(txns, d.out));
}

}  // namespace mvrob
