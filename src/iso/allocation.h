#ifndef MVROB_ISO_ALLOCATION_H_
#define MVROB_ISO_ALLOCATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "iso/isolation_level.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// An allocation A (Section 2.3): a mapping from each transaction of a set
/// to an isolation level. Allocations are plain values; they reference
/// transactions positionally by TxnId.
class Allocation {
 public:
  Allocation() = default;

  /// Uniform allocation mapping all `n` transactions to `level`
  /// (A_RC, A_SI, A_SSI for the respective levels).
  Allocation(size_t n, IsolationLevel level) : levels_(n, level) {}
  explicit Allocation(std::vector<IsolationLevel> levels)
      : levels_(std::move(levels)) {}

  static Allocation AllRC(size_t n) { return {n, IsolationLevel::kRC}; }
  static Allocation AllSI(size_t n) { return {n, IsolationLevel::kSI}; }
  static Allocation AllSSI(size_t n) { return {n, IsolationLevel::kSSI}; }

  size_t size() const { return levels_.size(); }
  IsolationLevel level(TxnId txn) const { return levels_[txn]; }
  const std::vector<IsolationLevel>& levels() const { return levels_; }

  void set_level(TxnId txn, IsolationLevel level) { levels_[txn] = level; }

  /// A[T -> I]: a copy with `txn` reassigned to `level` (Section 4).
  Allocation With(TxnId txn, IsolationLevel level) const {
    Allocation copy = *this;
    copy.set_level(txn, level);
    return copy;
  }

  /// Pointwise preference order of Section 4: A <= A' iff A(T) <= A'(T) for
  /// all T; A < A' additionally requires strict inequality somewhere.
  bool LessEq(const Allocation& other) const;
  bool StrictlyLess(const Allocation& other) const;

  /// Number of transactions allocated to `level`.
  size_t CountAt(IsolationLevel level) const;

  /// "T1=RC T2=SI T3=SSI" using the set's transaction names.
  std::string ToString(const TransactionSet& txns) const;

  friend bool operator==(const Allocation&, const Allocation&) = default;

 private:
  std::vector<IsolationLevel> levels_;
};

/// Parses "T1=RC T2=SI" (whitespace- or comma-separated). Transactions not
/// mentioned default to `fallback`. Fails on unknown names or levels.
StatusOr<Allocation> ParseAllocation(const TransactionSet& txns,
                                     std::string_view text,
                                     IsolationLevel fallback);

}  // namespace mvrob

#endif  // MVROB_ISO_ALLOCATION_H_
