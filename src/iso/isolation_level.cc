#include "iso/isolation_level.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace mvrob {

const char* IsolationLevelToString(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kRC:
      return "RC";
    case IsolationLevel::kSI:
      return "SI";
    case IsolationLevel::kSSI:
      return "SSI";
  }
  return "?";
}

StatusOr<IsolationLevel> ParseIsolationLevel(std::string_view text) {
  std::string upper;
  upper.reserve(text.size());
  for (char c : text) {
    upper.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  if (upper == "RC") return IsolationLevel::kRC;
  if (upper == "SI") return IsolationLevel::kSI;
  if (upper == "SSI") return IsolationLevel::kSSI;
  return Status::InvalidArgument(
      StrCat("unknown isolation level '", text, "', expected RC, SI or SSI"));
}

}  // namespace mvrob
