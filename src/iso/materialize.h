#ifndef MVROB_ISO_MATERIALIZE_H_
#define MVROB_ISO_MATERIALIZE_H_

#include <vector>

#include "iso/allocation.h"
#include "schedule/schedule.h"

namespace mvrob {

/// Materializes the unique candidate schedule for an interleaving under an
/// allocation.
///
/// Every isolation level in {RC, SI, SSI} requires writes to respect the
/// commit order and reads to be read-last-committed (relative to the read
/// itself for RC, to the transaction start for SI and SSI). Consequently,
/// once the operation order <=_s is fixed, the version order <<_s and
/// version function v_s of any schedule allowed under A are *uniquely
/// determined*:
///  - <<_s orders versions by the writer's commit position (program order
///    breaking ties within a transaction), and
///  - v_s maps each read to the newest version committed before its anchor
///    — unless an earlier operation of the same transaction wrote the
///    object, in which case the read observes that own write
///    (read-your-own-writes, matching the engine's buffered-value rule).
///
/// Therefore: an interleaving admits an allowed schedule under A iff
/// AllowedUnder(Materialize(...), A) — the foundation of the exhaustive
/// oracle and of the split-schedule witness construction.
///
/// `order` must contain every operation of every transaction exactly once,
/// respecting program order (validated by Schedule::Create).
StatusOr<Schedule> MaterializeSchedule(const TransactionSet* txns,
                                       std::vector<OpRef> order,
                                       const Allocation& allocation);

}  // namespace mvrob

#endif  // MVROB_ISO_MATERIALIZE_H_
