#ifndef MVROB_ISO_ISOLATION_LEVEL_H_
#define MVROB_ISO_ISOLATION_LEVEL_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace mvrob {

/// The isolation levels considered by the paper: multiversion Read Committed
/// (RC), Snapshot Isolation (SI) and Serializable Snapshot Isolation (SSI) —
/// the levels available in Postgres ({RC, SI, SSI}) and Oracle ({RC, SI}).
///
/// The numeric order RC < SI < SSI encodes the paper's *preference* order of
/// Section 4 (lower levels are cheaper and preferred), not semantic
/// inclusion: Example 5.2 shows a schedule allowed under SI but not RC.
enum class IsolationLevel : uint8_t { kRC = 0, kSI = 1, kSSI = 2 };

inline constexpr std::array<IsolationLevel, 3> kAllIsolationLevels = {
    IsolationLevel::kRC, IsolationLevel::kSI, IsolationLevel::kSSI};

/// "RC", "SI" or "SSI".
const char* IsolationLevelToString(IsolationLevel level);

/// Parses "RC" / "SI" / "SSI" (case-insensitive).
StatusOr<IsolationLevel> ParseIsolationLevel(std::string_view text);

/// Preference comparison: RC < SI < SSI.
inline bool operator<(IsolationLevel a, IsolationLevel b) {
  return static_cast<uint8_t>(a) < static_cast<uint8_t>(b);
}
inline bool operator<=(IsolationLevel a, IsolationLevel b) {
  return static_cast<uint8_t>(a) <= static_cast<uint8_t>(b);
}

}  // namespace mvrob

#endif  // MVROB_ISO_ISOLATION_LEVEL_H_
