#ifndef MVROB_ISO_DANGEROUS_STRUCTURE_H_
#define MVROB_ISO_DANGEROUS_STRUCTURE_H_

#include <string>
#include <vector>

#include "schedule/dependency.h"

namespace mvrob {

/// A dangerous structure T1 -> T2 -> T3 (Section 2.3, extending Cahill et
/// al. [14] with the commit-order optimization of the full version [15] and
/// Postgres [23]):
///  - rw-antidependencies T1 -> T2 and T2 -> T3 in s,
///  - T1 and T2 concurrent, T2 and T3 concurrent,
///  - C3 <=_s C1 and C3 <_s C2.
/// T1 and T3 need not be distinct (a two-transaction cycle of
/// antidependencies forms one with T1 = T3).
struct DangerousStructure {
  TxnId t1 = kInvalidTxnId;
  TxnId t2 = kInvalidTxnId;
  TxnId t3 = kInvalidTxnId;
  Dependency in;   // rw-antidependency T1 -> T2.
  Dependency out;  // rw-antidependency T2 -> T3.
};

/// All dangerous structures of the schedule.
std::vector<DangerousStructure> FindDangerousStructures(const Schedule& s);

/// Dangerous structures whose three transactions all satisfy `eligible`
/// (used for the SSI condition of Definition 2.4, where only transactions
/// allocated SSI participate).
std::vector<DangerousStructure> FindDangerousStructures(
    const Schedule& s, const std::vector<bool>& eligible);

std::string FormatDangerousStructure(const TransactionSet& txns,
                                     const DangerousStructure& d);

}  // namespace mvrob

#endif  // MVROB_ISO_DANGEROUS_STRUCTURE_H_
