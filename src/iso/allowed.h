#ifndef MVROB_ISO_ALLOWED_H_
#define MVROB_ISO_ALLOWED_H_

#include <string>
#include <vector>

#include "iso/allocation.h"
#include "schedule/schedule.h"

namespace mvrob {

/// Building blocks of Definition 2.3.

/// True if the version written by `write` (= W_j[t] in T_j) is installed
/// after all versions of t installed by transactions committing before C_j
/// and before those committing after: for every write W_i[t] of a different
/// transaction, W_j[t] <<_s W_i[t] iff C_j <_s C_i.
bool WriteRespectsCommitOrder(const Schedule& s, OpRef write);

/// True if `read` (= R_j[t]) is read-last-committed in s relative to
/// `anchor` (an operation of the same transaction): it observes op_0 or a
/// version committed before `anchor`, and no other version of t was
/// committed before `anchor` and installed after the observed one.
/// Exception — read-your-own-writes: when an earlier operation of the same
/// transaction writes t (write-then-read programs, promoted reads), the
/// read conforms iff it observes exactly the latest preceding own write,
/// matching the engine's (and Postgres's) buffered-value rule at every
/// isolation level.
bool ReadLastCommittedRelativeTo(const Schedule& s, OpRef read, OpRef anchor);

/// True if `txn` writes to an object modified earlier by a concurrent
/// transaction: exist writes b_i in T_i != txn and a_j in txn on the same
/// object with b_i <_s a_j and first(txn) <_s C_i.
bool ExhibitsConcurrentWrite(const Schedule& s, TxnId txn);

/// True if `txn` writes to an object modified earlier by a transaction that
/// has not yet committed: b_i <_s a_j <_s C_i.
bool ExhibitsDirtyWrite(const Schedule& s, TxnId txn);

/// Definition 2.3: transaction-local conditions for RC and SI. SSI
/// transactions must satisfy the SI conditions (Definition 2.4); the extra
/// dangerous-structure condition is global and checked by
/// CheckAllowedUnder.
bool TxnAllowedUnderRC(const Schedule& s, TxnId txn);
bool TxnAllowedUnderSI(const Schedule& s, TxnId txn);

/// Result of checking Definition 2.4, with human-readable diagnostics for
/// every violated condition (empty iff allowed).
struct AllowedCheckResult {
  bool allowed = true;
  std::vector<std::string> violations;
};

/// Checks whether schedule s is allowed under allocation A (Definition
/// 2.4): RC transactions allowed under RC, SI/SSI transactions allowed
/// under SI, and no dangerous structure among the SSI-allocated
/// transactions.
AllowedCheckResult CheckAllowedUnder(const Schedule& s, const Allocation& a);

/// Convenience wrapper for CheckAllowedUnder(...).allowed.
bool AllowedUnder(const Schedule& s, const Allocation& a);

}  // namespace mvrob

#endif  // MVROB_ISO_ALLOWED_H_
