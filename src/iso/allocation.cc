#include "iso/allocation.h"

#include <algorithm>

#include "common/string_util.h"

namespace mvrob {

bool Allocation::LessEq(const Allocation& other) const {
  if (levels_.size() != other.levels_.size()) return false;
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (!(levels_[i] <= other.levels_[i])) return false;
  }
  return true;
}

bool Allocation::StrictlyLess(const Allocation& other) const {
  return LessEq(other) && levels_ != other.levels_;
}

size_t Allocation::CountAt(IsolationLevel level) const {
  return static_cast<size_t>(
      std::count(levels_.begin(), levels_.end(), level));
}

std::string Allocation::ToString(const TransactionSet& txns) const {
  std::vector<std::string> parts;
  parts.reserve(levels_.size());
  for (TxnId t = 0; t < levels_.size(); ++t) {
    parts.push_back(StrCat(txns.txn(t).name(), "=",
                           IsolationLevelToString(levels_[t])));
  }
  return Join(parts, " ");
}

StatusOr<Allocation> ParseAllocation(const TransactionSet& txns,
                                     std::string_view text,
                                     IsolationLevel fallback) {
  Allocation allocation(txns.size(), fallback);
  std::string normalized(text);
  std::replace(normalized.begin(), normalized.end(), ',', ' ');
  for (const std::string& token : SplitAndTrim(normalized, ' ')) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("malformed allocation entry '", token, "', expected T=LEVEL"));
    }
    std::string name(StripWhitespace(std::string_view(token).substr(0, eq)));
    TxnId txn = txns.FindTransaction(name);
    if (txn == kInvalidTxnId) {
      return Status::NotFound(StrCat("unknown transaction '", name, "'"));
    }
    StatusOr<IsolationLevel> level =
        ParseIsolationLevel(StripWhitespace(std::string_view(token).substr(eq + 1)));
    if (!level.ok()) return level.status();
    allocation.set_level(txn, *level);
  }
  return allocation;
}

}  // namespace mvrob
