#include "promote/optimizer.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/string_util.h"

namespace mvrob {

AllocationCost ComputeAllocationCost(const Allocation& alloc,
                                     const PromoteOptions& options) {
  AllocationCost cost;
  cost.rc = alloc.CountAt(IsolationLevel::kRC);
  cost.si = alloc.CountAt(IsolationLevel::kSI);
  cost.ssi = alloc.CountAt(IsolationLevel::kSSI);
  cost.weighted = static_cast<int64_t>(cost.si) * options.weight_si +
                  static_cast<int64_t>(cost.ssi) * options.weight_ssi;
  return cost;
}

namespace {

bool Cancelled(const PromoteOptions& options) {
  return options.check.cancel != nullptr &&
         options.check.cancel->load(std::memory_order_relaxed);
}

/// Levels strictly below `level`, cheapest first.
std::vector<IsolationLevel> LevelsBelow(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kSSI:
      return {IsolationLevel::kRC, IsolationLevel::kSI};
    case IsolationLevel::kSI:
      return {IsolationLevel::kRC};
    case IsolationLevel::kRC:
      return {};
  }
  return {};
}

/// Candidates (base coordinates) from the frontier of the current optimum:
/// for each transaction above RC, lower it and harvest the witness chains
/// that block the lowering — their rw read legs, mapped back through the
/// rewrite, are the only promotions that can change Algorithm 2's answer.
std::vector<OpRef> FrontierCandidates(const PromotionRewrite& rewrite,
                                      const Allocation& cur_alloc,
                                      const PromotionSet& chosen,
                                      const PromoteOptions& options,
                                      PromotionPlan& plan) {
  const TransactionSet& cur = rewrite.promoted;
  std::vector<OpRef> out;
  for (TxnId t = 0; t < cur.size(); ++t) {
    for (IsolationLevel lower : LevelsBelow(cur_alloc.level(t))) {
      if (Cancelled(options)) return out;
      std::vector<CounterexampleChain> chains = FindAllCounterexamples(
          cur, cur_alloc.With(t, lower), options.witnesses_per_round,
          options.check);
      ++plan.robustness_checks;
      for (const CounterexampleChain& chain : chains) {
        for (OpRef ref : CandidatesFromChain(cur, chain)) {
          std::optional<OpRef> base = rewrite.OriginalRef(ref);
          if (base.has_value() && !chosen.Contains(*base)) {
            out.push_back(*base);
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Algorithm 2 on `txns` with `set` applied; accumulates effort counters.
struct Evaluation {
  PromotionRewrite rewrite;
  Allocation allocation;
  AllocationCost cost;
};

StatusOr<Evaluation> Evaluate(const TransactionSet& txns,
                              const PromotionSet& set,
                              const PromoteOptions& options,
                              PromotionPlan& plan) {
  StatusOr<PromotionRewrite> rewrite = ApplyPromotions(txns, set);
  if (!rewrite.ok()) return rewrite.status();
  Evaluation eval;
  eval.rewrite = std::move(*rewrite);
  OptimalAllocationResult result =
      ComputeOptimalAllocation(eval.rewrite.promoted, options.check);
  ++plan.allocations_computed;
  plan.robustness_checks += result.robustness_checks;
  eval.allocation = std::move(result.allocation);
  eval.cost = ComputeAllocationCost(eval.allocation, options);
  return eval;
}

/// Exhaustive small-k fallback: tries subsets of `pool` (sizes 1..max_k,
/// ascending, lexicographic within a size) on top of `chosen`, bounded by
/// options.exhaustive_budget Algorithm 2 evaluations. Returns the best
/// strictly-improving evaluation and its subset, if any.
struct ExhaustiveHit {
  std::vector<OpRef> subset;
  Evaluation eval;
  size_t evaluated = 0;
};

std::optional<ExhaustiveHit> ExhaustiveSearch(const TransactionSet& txns,
                                              const PromotionSet& chosen,
                                              const std::vector<OpRef>& pool,
                                              size_t max_k,
                                              const AllocationCost& to_beat,
                                              const PromoteOptions& options,
                                              PromotionPlan& plan) {
  std::optional<ExhaustiveHit> best;
  size_t evaluated = 0;
  max_k = std::min(max_k, pool.size());
  for (size_t k = 1; k <= max_k; ++k) {
    std::vector<size_t> idx(k);
    for (size_t i = 0; i < k; ++i) idx[i] = i;
    while (true) {
      if (evaluated >= options.exhaustive_budget || Cancelled(options)) {
        if (best.has_value()) best->evaluated = evaluated;
        return best;
      }
      PromotionSet trial = chosen;
      for (size_t i : idx) trial.Add(pool[i]);
      StatusOr<Evaluation> eval = Evaluate(txns, trial, options, plan);
      ++evaluated;
      if (eval.ok() && !Cancelled(options)) {
        int64_t bar = best.has_value() ? best->eval.cost.weighted
                                       : to_beat.weighted;
        if (eval->cost.weighted < bar) {
          ExhaustiveHit hit;
          for (size_t i : idx) hit.subset.push_back(pool[i]);
          hit.eval = std::move(*eval);
          best = std::move(hit);
        }
      }
      // Next k-combination of pool indices.
      size_t pos = k;
      while (pos > 0 && idx[pos - 1] == pool.size() - (k - (pos - 1))) --pos;
      if (pos == 0) break;
      ++idx[pos - 1];
      for (size_t i = pos; i < k; ++i) idx[i] = idx[i - 1] + 1;
    }
    // A strictly-improving subset of size k is good enough: promotions
    // are a cost too, so do not look for bigger subsets once one works.
    if (best.has_value()) break;
  }
  if (best.has_value()) best->evaluated = evaluated;
  return best;
}

void FillPlanResult(PromotionPlan& plan, Evaluation&& eval) {
  plan.promoted = std::move(eval.rewrite.promoted);
  plan.after_allocation = std::move(eval.allocation);
  plan.after_cost = eval.cost;
  plan.improved = plan.after_cost.weighted < plan.before_cost.weighted;
}

}  // namespace

StatusOr<PromotionPlan> OptimizePromotions(const TransactionSet& txns,
                                           const PromoteOptions& options) {
  if (txns.size() == 0) {
    return Status::InvalidArgument("promotion needs at least one transaction");
  }
  if (options.max_promotions < 0) {
    return Status::InvalidArgument("max_promotions must be >= 0");
  }
  PromotionPlan plan;
  StatusOr<Evaluation> base = Evaluate(txns, plan.promotions, options, plan);
  if (!base.ok()) return base.status();
  plan.before_allocation = base->allocation;
  plan.before_cost = base->cost;
  Evaluation current = std::move(*base);
  std::vector<OpRef> pool;  // Every frontier candidate seen, base coords.

  while (static_cast<int>(plan.promotions.size()) < options.max_promotions) {
    if (Cancelled(options)) {
      plan.cancelled = true;
      break;
    }
    if (current.cost.weighted == 0) break;  // A_RC: nothing left to win.
    std::vector<OpRef> candidates = FrontierCandidates(
        current.rewrite, current.allocation, plan.promotions, options, plan);
    if (Cancelled(options)) {
      plan.cancelled = true;
      break;
    }
    pool.insert(pool.end(), candidates.begin(), candidates.end());
    if (candidates.size() > options.max_candidates_per_round) {
      candidates.resize(options.max_candidates_per_round);
    }
    std::optional<OpRef> best_read;
    std::optional<Evaluation> best_eval;
    size_t evaluated = 0;
    for (OpRef candidate : candidates) {
      if (Cancelled(options)) break;
      PromotionSet trial = plan.promotions;
      trial.Add(candidate);
      StatusOr<Evaluation> eval = Evaluate(txns, trial, options, plan);
      ++evaluated;
      if (!eval.ok() || Cancelled(options)) continue;
      int64_t bar = best_eval.has_value() ? best_eval->cost.weighted
                                          : current.cost.weighted;
      if (eval->cost.weighted < bar) {
        best_read = candidate;
        best_eval = std::move(*eval);
      }
    }
    if (Cancelled(options)) {
      plan.cancelled = true;
      break;
    }
    if (!best_read.has_value()) break;  // Greedy stalled.
    plan.promotions.Add(*best_read);
    plan.rounds.push_back(
        PromotionRound{*best_read, best_eval->cost, evaluated});
    current = std::move(*best_eval);
  }

  // Greedy stalled (or the budget is > 1 promotion wide): exhaustively try
  // small subsets of everything the witnesses ever pointed at.
  size_t remaining = options.max_promotions > 0
                         ? static_cast<size_t>(options.max_promotions) -
                               plan.promotions.size()
                         : 0;
  if (!plan.cancelled && options.exhaustive_fallback && remaining >= 2 &&
      current.cost.weighted > 0) {
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    std::erase_if(pool,
                  [&](OpRef r) { return plan.promotions.Contains(r); });
    std::optional<ExhaustiveHit> hit =
        ExhaustiveSearch(txns, plan.promotions, pool, remaining,
                         current.cost, options, plan);
    if (Cancelled(options)) plan.cancelled = true;
    if (hit.has_value()) {
      plan.used_exhaustive = true;
      for (OpRef read : hit->subset) {
        plan.promotions.Add(read);
        plan.rounds.push_back(
            PromotionRound{read, hit->eval.cost, hit->evaluated});
        hit->evaluated = 0;  // Attribute the effort to the first round.
      }
      current = std::move(hit->eval);
    }
  }

  FillPlanResult(plan, std::move(current));
  return plan;
}

StatusOr<PromotionPlan> PromoteForTarget(const TransactionSet& txns,
                                         const Allocation& target,
                                         const PromoteOptions& options) {
  if (target.size() != txns.size()) {
    return Status::InvalidArgument(
        StrCat("target allocation has ", target.size(), " levels for ",
               txns.size(), " transactions"));
  }
  PromotionPlan plan;
  plan.target_mode = true;
  plan.target = target;
  // Baseline and "before" framing: Algorithm 2 on the unpromoted workload.
  OptimalAllocationResult base = ComputeOptimalAllocation(txns, options.check);
  ++plan.allocations_computed;
  plan.robustness_checks += base.robustness_checks;
  plan.before_allocation = base.allocation;
  plan.before_cost = ComputeAllocationCost(base.allocation, options);

  StatusOr<PromotionRewrite> rewrite = ApplyPromotions(txns, plan.promotions);
  if (!rewrite.ok()) return rewrite.status();
  PromotionRewrite current = std::move(*rewrite);

  while (true) {
    if (Cancelled(options)) {
      plan.cancelled = true;
      break;
    }
    std::vector<CounterexampleChain> chains =
        FindAllCounterexamples(current.promoted, target,
                               options.witnesses_per_round, options.check);
    ++plan.robustness_checks;
    if (Cancelled(options)) {
      // An interrupted scan can return an empty chain list without the
      // workload being robust — never read it as success.
      plan.cancelled = true;
      break;
    }
    if (chains.empty()) {
      plan.target_met = true;
      break;
    }
    if (static_cast<int>(plan.promotions.size()) >= options.max_promotions) {
      return Status::FailedPrecondition(
          StrCat("promotion budget of ", options.max_promotions,
                 " exhausted with the workload still not robust under the "
                 "target allocation (",
                 chains.size(), " witness(es) remain)"));
    }
    // Greedy set cover: promote the read that kills the most witnesses.
    std::map<OpRef, size_t> hits;
    for (const CounterexampleChain& chain : chains) {
      for (OpRef ref : CandidatesFromChain(current.promoted, chain)) {
        std::optional<OpRef> base_ref = current.OriginalRef(ref);
        if (base_ref.has_value() && !plan.promotions.Contains(*base_ref)) {
          ++hits[*base_ref];
        }
      }
    }
    if (hits.empty()) {
      return Status::FailedPrecondition(
          "a witness against the target allocation carries no promotable "
          "read leg; read promotion alone cannot make this workload robust "
          "under the target");
    }
    OpRef best = hits.begin()->first;  // Ties break to the smallest ref.
    for (const auto& [ref, count] : hits) {
      if (count > hits[best]) best = ref;
    }
    plan.promotions.Add(best);
    StatusOr<PromotionRewrite> next = ApplyPromotions(txns, plan.promotions);
    if (!next.ok()) return next.status();
    current = std::move(*next);
    plan.rounds.push_back(PromotionRound{
        best, ComputeAllocationCost(target, options), hits.size()});
  }

  // Report the promoted workload's own optimum as the "after" allocation —
  // it is never above the target when the target was met.
  OptimalAllocationResult after =
      ComputeOptimalAllocation(current.promoted, options.check);
  ++plan.allocations_computed;
  plan.robustness_checks += after.robustness_checks;
  plan.promoted = std::move(current.promoted);
  plan.after_allocation = std::move(after.allocation);
  plan.after_cost = ComputeAllocationCost(plan.after_allocation, options);
  plan.improved = plan.after_cost.weighted < plan.before_cost.weighted;
  return plan;
}

}  // namespace mvrob
