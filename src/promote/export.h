#ifndef MVROB_PROMOTE_EXPORT_H_
#define MVROB_PROMOTE_EXPORT_H_

#include <string>
#include <string_view>

#include "promote/optimizer.h"

namespace mvrob {

/// `promote --promotion-json`: the full promotion plan as JSON —
/// {"version":1,"kind":"promotion_plan"} with the chosen promotions (each
/// read's transaction, program index, object, and rendered operation), the
/// before/after optimal allocations and their costs, the per-round search
/// trace, the rewritten workload text, and the search-effort counters.
/// When `validation_json` is non-empty it must be a complete rendered JSON
/// value (the round-trip certification summary built by the caller, which
/// owns the engine dependency) and is spliced in verbatim under
/// "validation". Schema in docs/formats.md, "Promotion plan".
std::string PromotionPlanJson(const TransactionSet& txns,
                              const PromotionPlan& plan,
                              const PromoteOptions& options,
                              std::string_view validation_json = {});

/// Human-readable rendering of the plan, used by `mvrob promote` stdout.
std::string PromotionPlanToString(const TransactionSet& txns,
                                  const PromotionPlan& plan);

}  // namespace mvrob

#endif  // MVROB_PROMOTE_EXPORT_H_
