#include "promote/export.h"

#include "common/json.h"
#include "common/string_util.h"
#include "iso/isolation_level.h"

namespace mvrob {

namespace {

void AllocationJson(const TransactionSet& txns, const Allocation& alloc,
                    JsonWriter& json) {
  json.BeginObject();
  for (TxnId t = 0; t < txns.size(); ++t) {
    json.Key(txns.txn(t).name());
    json.String(IsolationLevelToString(alloc.level(t)));
  }
  json.EndObject();
}

void CostJson(const AllocationCost& cost, JsonWriter& json) {
  json.BeginObject();
  json.Key("weighted");
  json.Int(cost.weighted);
  json.Key("rc");
  json.Uint(cost.rc);
  json.Key("si");
  json.Uint(cost.si);
  json.Key("ssi");
  json.Uint(cost.ssi);
  json.EndObject();
}

void PromotionJson(const TransactionSet& txns, OpRef read, JsonWriter& json) {
  json.BeginObject();
  json.Key("txn");
  json.String(txns.txn(read.txn).name());
  json.Key("op_index");
  json.Int(read.index);
  json.Key("object");
  json.String(txns.ObjectName(txns.op(read).object));
  json.Key("op");
  json.String(txns.FormatOp(read));
  json.EndObject();
}

std::string CostSummary(const AllocationCost& cost) {
  return StrCat(cost.ssi, " SSI + ", cost.si, " SI + ", cost.rc,
                " RC (weighted cost ", cost.weighted, ")");
}

}  // namespace

std::string PromotionPlanJson(const TransactionSet& txns,
                              const PromotionPlan& plan,
                              const PromoteOptions& options,
                              std::string_view validation_json) {
  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Uint(1);
  json.Key("kind");
  json.String("promotion_plan");
  json.Key("mode");
  json.String(plan.target_mode ? "target" : "budget");
  if (plan.target_mode && plan.target.has_value()) {
    json.Key("target");
    AllocationJson(txns, *plan.target, json);
    json.Key("target_met");
    json.Bool(plan.target_met);
  }
  json.Key("weights");
  json.BeginObject();
  json.Key("si");
  json.Int(options.weight_si);
  json.Key("ssi");
  json.Int(options.weight_ssi);
  json.EndObject();
  json.Key("promotions");
  json.BeginArray();
  for (OpRef read : plan.promotions.reads()) {
    PromotionJson(txns, read, json);
  }
  json.EndArray();
  json.Key("before");
  json.BeginObject();
  json.Key("allocation");
  AllocationJson(txns, plan.before_allocation, json);
  json.Key("cost");
  CostJson(plan.before_cost, json);
  json.EndObject();
  json.Key("after");
  json.BeginObject();
  json.Key("allocation");
  AllocationJson(txns, plan.after_allocation, json);
  json.Key("cost");
  CostJson(plan.after_cost, json);
  json.EndObject();
  json.Key("improved");
  json.Bool(plan.improved);
  json.Key("rounds");
  json.BeginArray();
  for (const PromotionRound& round : plan.rounds) {
    json.BeginObject();
    json.Key("promoted");
    PromotionJson(txns, round.promoted, json);
    json.Key("cost_after");
    CostJson(round.cost_after, json);
    json.Key("candidates_evaluated");
    json.Uint(round.candidates_evaluated);
    json.EndObject();
  }
  json.EndArray();
  json.Key("used_exhaustive");
  json.Bool(plan.used_exhaustive);
  json.Key("cancelled");
  json.Bool(plan.cancelled);
  json.Key("effort");
  json.BeginObject();
  json.Key("allocations_computed");
  json.Uint(plan.allocations_computed);
  json.Key("robustness_checks");
  json.Uint(plan.robustness_checks);
  json.EndObject();
  json.Key("promoted_workload");
  json.String(plan.promoted.ToString());
  if (!validation_json.empty()) {
    json.Key("validation");
    json.RawValue(validation_json);
  }
  json.EndObject();
  return json.str();
}

std::string PromotionPlanToString(const TransactionSet& txns,
                                  const PromotionPlan& plan) {
  std::string out;
  if (plan.target_mode && plan.target.has_value()) {
    out += StrCat("target allocation: ", plan.target->ToString(txns), "\n");
    out += StrCat("target met:        ", plan.target_met ? "yes" : "no", "\n");
  }
  if (plan.promotions.empty()) {
    out += "promotions: none\n";
  } else {
    out += StrCat("promotions (", plan.promotions.size(), "):\n");
    for (OpRef read : plan.promotions.reads()) {
      out += StrCat("  promote ", txns.FormatOp(read), " of ",
                    txns.txn(read.txn).name(), " (object ",
                    txns.ObjectName(txns.op(read).object),
                    " -> SELECT ... FOR UPDATE)\n");
    }
  }
  out += StrCat("before: ", plan.before_allocation.ToString(txns), "\n");
  out += StrCat("        ", CostSummary(plan.before_cost), "\n");
  out += StrCat("after:  ", plan.after_allocation.ToString(txns), "\n");
  out += StrCat("        ", CostSummary(plan.after_cost), "\n");
  out += StrCat("verdict: ",
                plan.improved
                    ? "strictly cheaper allocation after promotion"
                    : "no improvement found",
                plan.used_exhaustive ? " (exhaustive fallback used)" : "",
                plan.cancelled ? " (search cancelled; best-so-far)" : "",
                "\n");
  return out;
}

}  // namespace mvrob
