#ifndef MVROB_PROMOTE_OPTIMIZER_H_
#define MVROB_PROMOTE_OPTIMIZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/optimal_allocation.h"
#include "core/robustness.h"
#include "promote/promotion.h"

namespace mvrob {

/// Tuning knobs for the promotion search. `check` is forwarded to every
/// robustness check and Algorithm 2 run, so the search composes with the
/// parallel engine (num_threads), the observability layer (metrics) and
/// cooperative cancellation (cancel) exactly like the other subsystems.
struct PromoteOptions {
  CheckOptions check;
  /// Promotion budget: the plan never promotes more reads than this.
  /// Every promotion is an extra write, i.e. extra first-updater-wins
  /// aborts on the engine — the budget bounds that price.
  int max_promotions = 8;
  /// Counterexample chains gathered per non-robust probe (the candidate
  /// source); more chains = wider frontier per round.
  size_t witnesses_per_round = 16;
  /// Cap on distinct candidates evaluated per greedy round.
  size_t max_candidates_per_round = 32;
  /// When greedy stalls, exhaustively try subsets of the accumulated
  /// candidate pool (sizes up to the remaining budget)...
  bool exhaustive_fallback = true;
  /// ...bounded by this many Algorithm 2 evaluations.
  size_t exhaustive_budget = 256;
  /// Allocation cost weights (RC is always free). The defaults make one
  /// SSI slot as expensive as two SI slots.
  int weight_si = 1;
  int weight_ssi = 2;
};

/// Scalar cost of an allocation under the option weights, with the level
/// census alongside. "Strictly cheaper" always means strictly smaller
/// `weighted`.
struct AllocationCost {
  int64_t weighted = 0;
  size_t rc = 0;
  size_t si = 0;
  size_t ssi = 0;

  friend bool operator==(const AllocationCost&,
                         const AllocationCost&) = default;
};

AllocationCost ComputeAllocationCost(const Allocation& alloc,
                                     const PromoteOptions& options);

/// One committed greedy round.
struct PromotionRound {
  /// The read promoted this round, in base-workload coordinates.
  OpRef promoted;
  AllocationCost cost_after;
  size_t candidates_evaluated = 0;
};

/// The optimizer's verdict: which reads to promote, and what the optimal
/// allocation looks like before and after.
struct PromotionPlan {
  /// Chosen promotions, in base-workload coordinates.
  PromotionSet promotions;
  /// The promoted workload (empty promotions = the base workload).
  TransactionSet promoted;
  /// Algorithm 2 on the base and the promoted workload.
  Allocation before_allocation;
  Allocation after_allocation;
  AllocationCost before_cost;
  AllocationCost after_cost;
  /// after_cost.weighted < before_cost.weighted.
  bool improved = false;
  std::vector<PromotionRound> rounds;
  bool used_exhaustive = false;
  /// Search effort: Algorithm 2 runs and total Algorithm 1 invocations.
  uint64_t allocations_computed = 0;
  uint64_t robustness_checks = 0;
  /// True when CheckOptions::cancel interrupted the search; the plan is
  /// the best one found so far.
  bool cancelled = false;

  /// Target mode only (PromoteForTarget).
  bool target_mode = false;
  std::optional<Allocation> target;
  /// Whether the promoted workload is robust under `target`.
  bool target_met = false;
};

/// Budget mode: greedy witness-guided search for a promotion set of at
/// most `options.max_promotions` reads minimizing the cost of the optimal
/// allocation (Algorithm 2) of the promoted workload.
///
/// Each round probes the current optimum's frontier — for every
/// transaction above RC, the counterexample chains that appear when it is
/// lowered one step (the same obstacles ExplainAllocation reports) — and
/// collects the read legs of the rw-antidependency edges on those chains
/// as candidates; every candidate is scored by re-running Algorithm 2 on
/// the incremented promotion set, and the best strictly-improving one is
/// committed. When no single promotion improves, the exhaustive small-k
/// fallback tries subsets of the accumulated candidate pool.
StatusOr<PromotionPlan> OptimizePromotions(const TransactionSet& txns,
                                           const PromoteOptions& options = {});

/// Target mode: finds a small promotion set making `txns` robust under
/// the fixed `target` allocation. Greedy set cover over the witnesses:
/// each round gathers up to `witnesses_per_round` counterexample chains
/// against `target` and promotes the candidate read hitting the most
/// chains. Fails with FailedPrecondition if the budget is exhausted or a
/// witness carries no promotable read leg (the workload cannot be made
/// robust under `target` by read promotion alone).
StatusOr<PromotionPlan> PromoteForTarget(const TransactionSet& txns,
                                         const Allocation& target,
                                         const PromoteOptions& options = {});

}  // namespace mvrob

#endif  // MVROB_PROMOTE_OPTIMIZER_H_
