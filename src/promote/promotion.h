#ifndef MVROB_PROMOTE_PROMOTION_H_
#define MVROB_PROMOTE_PROMOTION_H_

#include <optional>
#include <string>
#include <vector>

#include "core/robustness.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// Read promotion (Vandevoort, Fekete, Ketsman, Neven — arXiv:2501.18377):
/// turning a read into a SELECT ... FOR UPDATE. In the formal model a
/// promoted read acquires the object's write lock at the read's program
/// point, which we encode by inserting a write on the same object
/// *immediately before* the read. The extra write creates ww-conflicts
/// with every other writer of the object, and a ww-conflict in
/// prefix_{b1}(T1) falsifies condition (2) of Definition 3.1 — the split
/// schedules that drive non-robustness die, and Algorithm 2 can return a
/// strictly cheaper allocation. Promotions never enable new behaviour:
/// they only add conflicts, so anomalies can only disappear (at the price
/// of first-updater-wins aborts on the engine).

/// A set of reads (of one fixed base TransactionSet) chosen for promotion.
/// Refs are kept sorted and unique; all refs are in *base* coordinates —
/// ApplyPromotions translates to and from the rewritten workload.
class PromotionSet {
 public:
  PromotionSet() = default;

  /// Adds `read`; returns false if it was already present.
  bool Add(OpRef read);
  bool Contains(OpRef read) const;

  size_t size() const { return reads_.size(); }
  bool empty() const { return reads_.empty(); }
  /// Sorted ascending by (txn, index).
  const std::vector<OpRef>& reads() const { return reads_; }

  /// "R1[x], R2[y]" against the base set.
  std::string ToString(const TransactionSet& txns) const;

 private:
  std::vector<OpRef> reads_;
};

/// True iff `ref` denotes a read of `txns` whose transaction does not
/// already write the object. A read of an object the transaction also
/// writes is not promotable: the transaction already takes the write
/// lock, and the inserted write would give it two writes on one object —
/// outside the engine's exportable regime.
bool IsPromotableRead(const TransactionSet& txns, OpRef ref);

/// The promoted workload plus the index maps between base and promoted
/// program orders (promotion inserts writes, shifting every later index).
struct PromotionRewrite {
  TransactionSet promoted;
  /// to_original[txn][promoted_index] = base index, or -1 for an inserted
  /// promotion write.
  std::vector<std::vector<int32_t>> to_original;
  /// from_original[txn][base_index] = promoted index.
  std::vector<std::vector<int32_t>> from_original;

  /// Base ref of a promoted-workload op; nullopt for an inserted write.
  std::optional<OpRef> OriginalRef(OpRef promoted_ref) const;
  /// Promoted-workload ref of a base op.
  OpRef PromotedRef(OpRef original_ref) const;
};

/// Rewrites `txns` with every read of `promotions` promoted: a write on
/// the read's object is inserted directly before it. Object interning and
/// transaction order/names are preserved, so TxnIds and ObjectIds mean
/// the same thing in both workloads. Fails if a ref is not a promotable
/// read of `txns`.
StatusOr<PromotionRewrite> ApplyPromotions(const TransactionSet& txns,
                                           const PromotionSet& promotions);

/// Every promotable read of the workload — the "promote everything"
/// baseline. After applying it, every read whose object the transaction
/// does not write carries a same-object write in its prefix, so no such
/// read can serve as the b1 leg of a Definition 3.1 chain (condition (2));
/// only reads-before-writes of the same object can still open a split.
PromotionSet AllPromotableReads(const TransactionSet& txns);

/// The read legs of the rw-antidependency edges of one counterexample
/// chain — exactly the candidate promotions that can kill this witness.
/// Edges are derived as in BuildWitnessReport: the opening (b1, a2) edge,
/// the conflicting pair linking each consecutive middle pair, and the
/// closing (bm, a1) edge when it is rw. Only promotable reads are
/// returned, ascending and unique.
std::vector<OpRef> CandidatesFromChain(const TransactionSet& txns,
                                       const CounterexampleChain& chain);

/// Union of CandidatesFromChain over `chains`, ascending and unique.
std::vector<OpRef> ExtractPromotionCandidates(
    const TransactionSet& txns,
    const std::vector<CounterexampleChain>& chains);

}  // namespace mvrob

#endif  // MVROB_PROMOTE_PROMOTION_H_
