#include "promote/promotion.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/conflict.h"
#include "txn/conflict.h"

namespace mvrob {

bool PromotionSet::Add(OpRef read) {
  auto it = std::lower_bound(reads_.begin(), reads_.end(), read);
  if (it != reads_.end() && *it == read) return false;
  reads_.insert(it, read);
  return true;
}

bool PromotionSet::Contains(OpRef read) const {
  return std::binary_search(reads_.begin(), reads_.end(), read);
}

std::string PromotionSet::ToString(const TransactionSet& txns) const {
  std::vector<std::string> parts;
  parts.reserve(reads_.size());
  for (OpRef ref : reads_) parts.push_back(txns.FormatOp(ref));
  return Join(parts, ", ");
}

bool IsPromotableRead(const TransactionSet& txns, OpRef ref) {
  if (ref.IsOp0() || !txns.IsValidRef(ref)) return false;
  const Operation& op = txns.op(ref);
  if (!op.IsRead()) return false;
  return !txns.txn(ref.txn).Writes(op.object);
}

std::optional<OpRef> PromotionRewrite::OriginalRef(OpRef promoted_ref) const {
  if (promoted_ref.IsOp0() ||
      promoted_ref.txn >= to_original.size() ||
      promoted_ref.index < 0 ||
      static_cast<size_t>(promoted_ref.index) >=
          to_original[promoted_ref.txn].size()) {
    return std::nullopt;
  }
  int32_t base = to_original[promoted_ref.txn][promoted_ref.index];
  if (base < 0) return std::nullopt;
  return OpRef{promoted_ref.txn, base};
}

OpRef PromotionRewrite::PromotedRef(OpRef original_ref) const {
  return OpRef{original_ref.txn,
               from_original[original_ref.txn][original_ref.index]};
}

StatusOr<PromotionRewrite> ApplyPromotions(const TransactionSet& txns,
                                           const PromotionSet& promotions) {
  for (OpRef ref : promotions.reads()) {
    if (!IsPromotableRead(txns, ref)) {
      return Status::InvalidArgument(
          StrCat("not a promotable read: txn ", ref.txn, " op ", ref.index));
    }
  }
  PromotionRewrite rewrite;
  // Preserve the object universe (names and ids) exactly.
  for (size_t o = 0; o < txns.num_objects(); ++o) {
    rewrite.promoted.InternObject(txns.ObjectName(static_cast<ObjectId>(o)));
  }
  rewrite.to_original.resize(txns.size());
  rewrite.from_original.resize(txns.size());
  for (TxnId t = 0; t < txns.size(); ++t) {
    const Transaction& txn = txns.txn(t);
    std::vector<Operation> ops;
    std::vector<int32_t>& to_base = rewrite.to_original[t];
    std::vector<int32_t>& from_base = rewrite.from_original[t];
    from_base.resize(txn.num_ops());
    // Walk the read/write prefix (the commit is re-appended by Create).
    for (int i = 0; i + 1 < txn.num_ops(); ++i) {
      if (promotions.Contains(OpRef{t, i})) {
        ops.push_back(Operation::Write(txn.op(i).object));
        to_base.push_back(-1);
      }
      from_base[i] = static_cast<int32_t>(ops.size());
      ops.push_back(txn.op(i));
      to_base.push_back(i);
    }
    from_base[txn.commit_index()] = static_cast<int32_t>(ops.size());
    to_base.push_back(txn.commit_index());
    StatusOr<TxnId> added =
        rewrite.promoted.AddTransaction(txn.name(), std::move(ops));
    if (!added.ok()) return added.status();
  }
  return rewrite;
}

PromotionSet AllPromotableReads(const TransactionSet& txns) {
  PromotionSet all;
  for (TxnId t = 0; t < txns.size(); ++t) {
    const Transaction& txn = txns.txn(t);
    for (int i = 0; i < txn.num_ops(); ++i) {
      OpRef ref{t, i};
      if (IsPromotableRead(txns, ref)) all.Add(ref);
    }
  }
  return all;
}

namespace {

void AddIfPromotable(const TransactionSet& txns, OpRef ref,
                     std::vector<OpRef>& out) {
  if (IsPromotableRead(txns, ref)) out.push_back(ref);
}

}  // namespace

std::vector<OpRef> CandidatesFromChain(const TransactionSet& txns,
                                       const CounterexampleChain& chain) {
  std::vector<OpRef> candidates;
  // Opening edge b1 -> a2 is rw by construction (Definition 3.1 (4)).
  AddIfPromotable(txns, chain.b1, candidates);
  // Middle edges: the deterministic conflicting pair linking consecutive
  // chain members, when it happens to be an rw-antidependency.
  std::vector<TxnId> middle{chain.t2};
  middle.insert(middle.end(), chain.inner.begin(), chain.inner.end());
  if (chain.tm != chain.t2) middle.push_back(chain.tm);
  for (size_t i = 0; i + 1 < middle.size(); ++i) {
    auto pair = FindConflictingPair(txns, middle[i], middle[i + 1]);
    if (pair.has_value() &&
        RwConflicting(txns.op(pair->first), txns.op(pair->second))) {
      AddIfPromotable(txns, pair->first, candidates);
    }
  }
  // Closing edge bm -> a1, when rw (the alternative is the RC split case).
  if (RwConflicting(txns.op(chain.bm), txns.op(chain.a1))) {
    AddIfPromotable(txns, chain.bm, candidates);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

std::vector<OpRef> ExtractPromotionCandidates(
    const TransactionSet& txns,
    const std::vector<CounterexampleChain>& chains) {
  std::vector<OpRef> all;
  for (const CounterexampleChain& chain : chains) {
    std::vector<OpRef> one = CandidatesFromChain(txns, chain);
    all.insert(all.end(), one.begin(), one.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace mvrob
