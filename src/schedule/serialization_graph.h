#ifndef MVROB_SCHEDULE_SERIALIZATION_GRAPH_H_
#define MVROB_SCHEDULE_SERIALIZATION_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "schedule/dependency.h"

namespace mvrob {

/// The serialization graph SeG(s) of Section 2.2: nodes are transactions,
/// and each dependency b_i ->_s a_j contributes a labeled edge quadruple
/// (T_i, b_i, a_j, T_j).
class SerializationGraph {
 public:
  static SerializationGraph Build(const Schedule& s);

  size_t num_txns() const { return adjacency_.size(); }
  const std::vector<Dependency>& edges() const { return edges_; }

  /// Transaction-level successors of `txn` (deduplicated, ascending).
  const std::vector<TxnId>& SuccessorsOf(TxnId txn) const {
    return adjacency_[txn];
  }

  /// True if some dependency goes from `from` to `to`.
  bool HasEdge(TxnId from, TxnId to) const;

  /// All quadruples from `from` to `to`.
  std::vector<Dependency> EdgesBetween(TxnId from, TxnId to) const;

  bool IsAcyclic() const;

  /// A simple cycle as a sequence of edge quadruples
  /// (T_1,b_1,a_2,T_2)...(T_n,b_n,a_1,T_1), or nullopt if acyclic. Every
  /// transaction appears exactly twice, as in the paper's cycle definition.
  std::optional<std::vector<Dependency>> FindCycle() const;

  /// A topological order of the transactions, or nullopt if cyclic. This is
  /// a serialization order: executing the transactions serially in this
  /// order is conflict equivalent to the original schedule (Theorem 2.2).
  std::optional<std::vector<TxnId>> TopologicalOrder() const;

  /// Multi-line rendering "T1 -> T2 [rw: R1[t] -> W2[t]] ...".
  std::string ToString(const TransactionSet& txns) const;

 private:
  std::vector<Dependency> edges_;
  std::vector<std::vector<TxnId>> adjacency_;
};

}  // namespace mvrob

#endif  // MVROB_SCHEDULE_SERIALIZATION_GRAPH_H_
