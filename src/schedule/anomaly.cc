#include "schedule/anomaly.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/string_util.h"

namespace mvrob {

const char* AnomalyKindToString(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kLostUpdate:
      return "lost update";
    case AnomalyKind::kWriteSkew:
      return "write skew";
    case AnomalyKind::kReadSkew:
      return "read skew";
    case AnomalyKind::kGeneralCycle:
      return "general cycle";
  }
  return "?";
}

std::string AnomalyReport::ToString(const TransactionSet& txns) const {
  std::vector<std::string> names;
  for (const Dependency& edge : cycle) {
    names.push_back(txns.txn(edge.from).name());
  }
  return StrCat(AnomalyKindToString(kind), ": ", Join(names, " -> "), " -> ",
                names.empty() ? "" : names.front());
}

AnomalyKind ClassifyCycle(const SerializationGraph& graph,
                          const std::vector<Dependency>& cycle) {
  // Per consecutive pair, which dependency kinds exist at all.
  size_t pairs_with_rw = 0;
  bool any_ww = false;
  for (const Dependency& edge : cycle) {
    bool has_rw = false;
    for (const Dependency& option : graph.EdgesBetween(edge.from, edge.to)) {
      if (option.kind == DependencyKind::kRwAnti) has_rw = true;
      if (option.kind == DependencyKind::kWw) any_ww = true;
    }
    if (has_rw) ++pairs_with_rw;
  }
  if (cycle.size() == 2 && any_ww) return AnomalyKind::kLostUpdate;
  if (pairs_with_rw == cycle.size() && !any_ww) {
    return AnomalyKind::kWriteSkew;
  }
  if (pairs_with_rw == 1) return AnomalyKind::kReadSkew;
  return AnomalyKind::kGeneralCycle;
}

namespace {

// Kosaraju strongly connected components over the transaction-level graph.
std::vector<std::vector<TxnId>> StronglyConnectedComponents(
    const SerializationGraph& graph) {
  const size_t n = graph.num_txns();
  std::vector<std::vector<TxnId>> reverse(n);
  for (TxnId from = 0; from < n; ++from) {
    for (TxnId to : graph.SuccessorsOf(from)) {
      reverse[to].push_back(from);
    }
  }
  // First pass: finish order.
  std::vector<bool> visited(n, false);
  std::vector<TxnId> order;
  for (TxnId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    std::vector<std::pair<TxnId, size_t>> stack{{root, 0}};
    visited[root] = true;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const std::vector<TxnId>& successors = graph.SuccessorsOf(node);
      if (next < successors.size()) {
        TxnId successor = successors[next++];
        if (!visited[successor]) {
          visited[successor] = true;
          stack.emplace_back(successor, 0);
        }
      } else {
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  // Second pass on the reverse graph.
  std::vector<std::vector<TxnId>> components;
  std::vector<bool> assigned(n, false);
  for (size_t i = order.size(); i-- > 0;) {
    TxnId root = order[i];
    if (assigned[root]) continue;
    components.emplace_back();
    std::deque<TxnId> queue{root};
    assigned[root] = true;
    while (!queue.empty()) {
      TxnId node = queue.front();
      queue.pop_front();
      components.back().push_back(node);
      for (TxnId prev : reverse[node]) {
        if (!assigned[prev]) {
          assigned[prev] = true;
          queue.push_back(prev);
        }
      }
    }
  }
  return components;
}

// Shortest cycle through `start` staying inside `members`.
std::vector<Dependency> ShortestCycleThrough(
    const SerializationGraph& graph, TxnId start,
    const std::set<TxnId>& members) {
  std::vector<int> parent(graph.num_txns(), -2);
  std::deque<TxnId> queue{start};
  parent[start] = -1;
  while (!queue.empty()) {
    TxnId node = queue.front();
    queue.pop_front();
    for (TxnId successor : graph.SuccessorsOf(node)) {
      if (!members.contains(successor)) continue;
      if (successor == start) {
        // Close the cycle node -> start; unwind.
        std::vector<TxnId> path{node};
        for (TxnId walk = node; parent[walk] >= 0;
             walk = static_cast<TxnId>(parent[walk])) {
          path.push_back(static_cast<TxnId>(parent[walk]));
        }
        std::reverse(path.begin(), path.end());
        path.push_back(start);  // start ... node start.
        std::vector<Dependency> cycle;
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          cycle.push_back(graph.EdgesBetween(path[i], path[i + 1]).front());
        }
        return cycle;
      }
      if (parent[successor] == -2) {
        parent[successor] = static_cast<int>(node);
        queue.push_back(successor);
      }
    }
  }
  return {};
}

}  // namespace

std::vector<AnomalyReport> FindAnomalies(const Schedule& s) {
  SerializationGraph graph = SerializationGraph::Build(s);
  std::vector<AnomalyReport> reports;
  for (const std::vector<TxnId>& component :
       StronglyConnectedComponents(graph)) {
    if (component.size() < 2) continue;  // No self-loops in SeG.
    std::set<TxnId> members(component.begin(), component.end());
    AnomalyReport report;
    report.cycle = ShortestCycleThrough(graph, component.front(), members);
    if (report.cycle.empty()) continue;  // Defensive; SCC >= 2 has a cycle.
    report.kind = ClassifyCycle(graph, report.cycle);
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace mvrob
