#include "schedule/dependency.h"

#include <algorithm>

#include "common/string_util.h"
#include "txn/conflict.h"

namespace mvrob {

const char* DependencyKindToString(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kWw:
      return "ww";
    case DependencyKind::kWr:
      return "wr";
    case DependencyKind::kRwAnti:
      return "rw";
  }
  return "?";
}

std::optional<DependencyKind> DependencyBetween(const Schedule& s, OpRef b,
                                                OpRef a) {
  if (b.IsOp0() || a.IsOp0() || b.txn == a.txn) return std::nullopt;
  const TransactionSet& txns = s.txns();
  const Operation& op_b = txns.op(b);
  const Operation& op_a = txns.op(a);
  if (WwConflicting(op_b, op_a) && s.VersionBefore(b, a)) {
    return DependencyKind::kWw;
  }
  if (WrConflicting(op_b, op_a)) {
    OpRef version = s.VersionRead(a);
    if (b == version || s.VersionBefore(b, version)) {
      return DependencyKind::kWr;
    }
  }
  if (RwConflicting(op_b, op_a) && s.VersionBefore(s.VersionRead(b), a)) {
    return DependencyKind::kRwAnti;
  }
  return std::nullopt;
}

std::vector<Dependency> ComputeDependencies(const Schedule& s) {
  const TransactionSet& txns = s.txns();
  std::vector<Dependency> deps;
  // Group operations per object so only same-object pairs are inspected.
  std::map<ObjectId, std::vector<OpRef>> by_object;
  for (const OpRef& ref : s.order()) {
    const Operation& op = txns.op(ref);
    if (!op.IsCommit()) by_object[op.object].push_back(ref);
  }
  for (const auto& [object, refs] : by_object) {
    for (const OpRef& b : refs) {
      for (const OpRef& a : refs) {
        std::optional<DependencyKind> kind = DependencyBetween(s, b, a);
        if (kind.has_value()) {
          deps.push_back(Dependency{b.txn, b, a, a.txn, *kind});
        }
      }
    }
  }
  std::sort(deps.begin(), deps.end(),
            [](const Dependency& x, const Dependency& y) {
              return std::tie(x.from, x.b, x.a, x.to) <
                     std::tie(y.from, y.b, y.a, y.to);
            });
  return deps;
}

std::string FormatDependency(const TransactionSet& txns, const Dependency& d) {
  return StrCat(txns.FormatOp(d.b), " ->", DependencyKindToString(d.kind), " ",
                txns.FormatOp(d.a), " (", txns.txn(d.from).name(), " -> ",
                txns.txn(d.to).name(), ")");
}

}  // namespace mvrob
