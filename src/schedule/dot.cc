#include "schedule/dot.h"

#include <map>

#include "common/string_util.h"

namespace mvrob {

std::string DotGraph::Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string DotGraph::Render() const {
  std::string out = StrCat("digraph ", name_, " {\n");
  for (const std::string& attribute : attributes_) {
    out += StrCat("  ", attribute, ";\n");
  }
  for (const Node& node : nodes_) {
    out += StrCat("  ", node.id, " [label=\"", Escape(node.label),
                  "\", shape=", node.shape);
    if (!node.extra.empty()) out += StrCat(", ", node.extra);
    out += "];\n";
  }
  for (const Edge& edge : edges_) {
    out += StrCat("  ", edge.from, " -> ", edge.to, " [label=\"",
                  Escape(edge.label), "\"", edge.dashed ? ", style=dashed" : "",
                  "];\n");
  }
  out += "}\n";
  return out;
}

std::string SerializationGraphToDot(const TransactionSet& txns,
                                    const SerializationGraph& graph) {
  DotGraph dot("SeG");
  dot.AddAttribute("rankdir=LR");
  for (TxnId t = 0; t < txns.size(); ++t) {
    dot.AddNode({StrCat("n", t), txns.txn(t).name()});
  }
  // Merge quadruples per transaction pair into a single labeled edge.
  std::map<std::pair<TxnId, TxnId>, std::vector<std::string>> labels;
  std::map<std::pair<TxnId, TxnId>, bool> all_anti;
  for (const Dependency& edge : graph.edges()) {
    auto key = std::make_pair(edge.from, edge.to);
    labels[key].push_back(StrCat(txns.FormatOp(edge.b), "->",
                                 txns.FormatOp(edge.a), " (",
                                 DependencyKindToString(edge.kind), ")"));
    auto [it, inserted] = all_anti.try_emplace(key, true);
    it->second = it->second && edge.kind == DependencyKind::kRwAnti;
  }
  for (const auto& [key, parts] : labels) {
    dot.AddEdge({StrCat("n", key.first), StrCat("n", key.second),
                 Join(parts, "\n"), all_anti[key]});
  }
  return dot.Render();
}

std::string ScheduleTimeline(const Schedule& s) {
  const TransactionSet& txns = s.txns();
  // Column widths: each position takes max(token length)+1.
  std::vector<std::string> tokens;
  tokens.reserve(s.num_ops());
  for (const OpRef& ref : s.order()) {
    tokens.push_back(txns.FormatOp(ref));
  }
  size_t name_width = 0;
  for (const Transaction& txn : txns.txns()) {
    name_width = std::max(name_width, txn.name().size());
  }
  std::string out;
  for (TxnId t = 0; t < txns.size(); ++t) {
    std::string row = txns.txn(t).name();
    row.resize(name_width, ' ');
    row += " | ";
    for (size_t pos = 0; pos < tokens.size(); ++pos) {
      std::string cell =
          s.order()[pos].txn == t ? tokens[pos] : std::string();
      cell.resize(tokens[pos].size() + 1, ' ');
      row += cell;
    }
    while (!row.empty() && row.back() == ' ') row.pop_back();
    out += row;
    out += "\n";
  }
  return out;
}

}  // namespace mvrob
