#include "schedule/schedule.h"

#include <algorithm>

#include "common/string_util.h"

namespace mvrob {

namespace {
const std::vector<OpRef> kEmptyVersions;
}  // namespace

StatusOr<Schedule> Schedule::Create(const TransactionSet* txns,
                                    std::vector<OpRef> order,
                                    VersionFunction versions,
                                    VersionOrder version_order) {
  Schedule schedule;
  schedule.txns_ = txns;
  schedule.order_ = std::move(order);
  schedule.versions_ = std::move(versions);
  schedule.version_order_ = std::move(version_order);
  schedule.IndexPositions();
  Status status = schedule.Validate();
  if (!status.ok()) return status;
  return schedule;
}

StatusOr<Schedule> Schedule::SingleVersion(const TransactionSet* txns,
                                           std::vector<OpRef> order) {
  VersionFunction versions;
  VersionOrder version_order;
  // last_write[obj] = most recent write so far (op_0 if none).
  std::unordered_map<ObjectId, OpRef> last_write;
  for (const OpRef& ref : order) {
    if (ref.IsOp0() || !txns->IsValidRef(ref)) {
      return Status::InvalidArgument("invalid operation reference in order");
    }
    const Operation& op = txns->op(ref);
    if (op.IsWrite()) {
      version_order[op.object].push_back(ref);
      last_write[op.object] = ref;
    } else if (op.IsRead()) {
      auto it = last_write.find(op.object);
      versions[ref] = it == last_write.end() ? OpRef::Op0() : it->second;
    }
  }
  return Create(txns, std::move(order), std::move(versions),
                std::move(version_order));
}

StatusOr<Schedule> Schedule::SingleVersionSerial(
    const TransactionSet* txns, const std::vector<TxnId>& txn_order) {
  std::vector<OpRef> order;
  order.reserve(txns->TotalOps());
  for (TxnId id : txn_order) {
    if (id >= txns->size()) {
      return Status::InvalidArgument(StrCat("unknown transaction id ", id));
    }
    const Transaction& txn = txns->txn(id);
    for (int i = 0; i < txn.num_ops(); ++i) order.push_back(OpRef{id, i});
  }
  return SingleVersion(txns, std::move(order));
}

void Schedule::IndexPositions() {
  positions_.assign(txns_->size(), {});
  for (TxnId t = 0; t < txns_->size(); ++t) {
    positions_[t].assign(txns_->txn(t).num_ops(), -2);
  }
  for (size_t pos = 0; pos < order_.size(); ++pos) {
    const OpRef& ref = order_[pos];
    if (!ref.IsOp0() && txns_->IsValidRef(ref)) {
      positions_[ref.txn][ref.index] = static_cast<int>(pos);
    }
  }
  version_rank_.clear();
  for (const auto& [object, writes] : version_order_) {
    for (size_t rank = 0; rank < writes.size(); ++rank) {
      version_rank_[writes[rank]] = static_cast<int>(rank);
    }
  }
}

Status Schedule::Validate() const {
  // Every operation of every transaction appears exactly once, in program
  // order (a <_T b implies a <_s b).
  if (order_.size() != static_cast<size_t>(txns_->TotalOps())) {
    return Status::InvalidArgument(
        StrCat("order has ", order_.size(), " operations, expected ",
               txns_->TotalOps()));
  }
  for (const OpRef& ref : order_) {
    if (ref.IsOp0() || !txns_->IsValidRef(ref)) {
      return Status::InvalidArgument("order contains an invalid reference");
    }
  }
  for (TxnId t = 0; t < txns_->size(); ++t) {
    int previous = -1;
    for (int i = 0; i < txns_->txn(t).num_ops(); ++i) {
      int pos = positions_[t][i];
      if (pos < 0) {
        return Status::InvalidArgument(
            StrCat("operation ", txns_->FormatOp(OpRef{t, i}),
                   " missing from order"));
      }
      if (pos <= previous) {
        return Status::InvalidArgument(
            StrCat("program order of ", txns_->txn(t).name(),
                   " violated at ", txns_->FormatOp(OpRef{t, i})));
      }
      previous = pos;
    }
  }

  // Version order lists exactly the writes per object.
  std::map<ObjectId, size_t> write_counts;
  for (const OpRef& ref : order_) {
    const Operation& op = txns_->op(ref);
    if (op.IsWrite()) ++write_counts[op.object];
  }
  for (const auto& [object, writes] : version_order_) {
    if (writes.size() != write_counts[object]) {
      return Status::InvalidArgument(
          StrCat("version order for object ", txns_->ObjectName(object),
                 " lists ", writes.size(), " writes, expected ",
                 write_counts[object]));
    }
    for (const OpRef& w : writes) {
      if (w.IsOp0() || !txns_->IsValidRef(w) || !txns_->op(w).IsWrite() ||
          txns_->op(w).object != object) {
        return Status::InvalidArgument(
            StrCat("version order for object ", txns_->ObjectName(object),
                   " contains a non-write or mismatched operation"));
      }
    }
  }
  for (const auto& [object, count] : write_counts) {
    if (count > 0 && !version_order_.contains(object)) {
      return Status::InvalidArgument(
          StrCat("version order missing for object ",
                 txns_->ObjectName(object)));
    }
  }

  // Version function: defined exactly on reads; v_s(a) <_s a; same object.
  size_t read_count = 0;
  for (const OpRef& ref : order_) {
    const Operation& op = txns_->op(ref);
    if (!op.IsRead()) continue;
    ++read_count;
    auto it = versions_.find(ref);
    if (it == versions_.end()) {
      return Status::InvalidArgument(
          StrCat("version function undefined for ", txns_->FormatOp(ref)));
    }
    const OpRef& writer = it->second;
    if (writer.IsOp0()) continue;
    if (!txns_->IsValidRef(writer) || !txns_->op(writer).IsWrite() ||
        txns_->op(writer).object != op.object) {
      return Status::InvalidArgument(
          StrCat("version function maps ", txns_->FormatOp(ref),
                 " to a non-write or different object"));
    }
    if (!Before(writer, ref)) {
      return Status::InvalidArgument(
          StrCat("version function maps ", txns_->FormatOp(ref),
                 " to a write that does not precede it"));
    }
  }
  if (versions_.size() != read_count) {
    return Status::InvalidArgument(
        "version function defined for a non-read operation");
  }
  return Status::Ok();
}

int Schedule::PositionOf(OpRef ref) const {
  if (ref.IsOp0()) return -1;
  return positions_[ref.txn][ref.index];
}

OpRef Schedule::VersionRead(OpRef read) const {
  auto it = versions_.find(read);
  return it == versions_.end() ? OpRef::Op0() : it->second;
}

const std::vector<OpRef>& Schedule::VersionsOf(ObjectId object) const {
  auto it = version_order_.find(object);
  return it == version_order_.end() ? kEmptyVersions : it->second;
}

bool Schedule::VersionBefore(OpRef a, OpRef b) const {
  if (a == b) return false;
  if (a.IsOp0()) return true;   // op_0 precedes every write.
  if (b.IsOp0()) return false;
  auto rank_a = version_rank_.find(a);
  auto rank_b = version_rank_.find(b);
  if (rank_a == version_rank_.end() || rank_b == version_rank_.end()) {
    return false;
  }
  return rank_a->second < rank_b->second;
}

bool Schedule::Concurrent(TxnId a, TxnId b) const {
  if (a == b) return false;
  const Transaction& ta = txns_->txn(a);
  const Transaction& tb = txns_->txn(b);
  return Before(ta.first_ref(), tb.commit_ref()) &&
         Before(tb.first_ref(), ta.commit_ref());
}

bool Schedule::IsSingleVersion() const {
  // <<_s compatible with <=_s per object.
  for (const auto& [object, writes] : version_order_) {
    for (size_t i = 1; i < writes.size(); ++i) {
      if (!Before(writes[i - 1], writes[i])) return false;
    }
  }
  // Every read observes the last written version: no write on the same
  // object strictly between v_s(a) and a.
  for (const auto& [read, writer] : versions_) {
    ObjectId object = txns_->op(read).object;
    for (const OpRef& w : VersionsOf(object)) {
      if (Before(writer, w) && Before(w, read)) return false;
    }
  }
  return true;
}

bool Schedule::IsSerial() const {
  // Transactions are contiguous iff the owning transaction changes at most
  // once per transaction along the order.
  std::vector<bool> seen(txns_->size(), false);
  TxnId current = kInvalidTxnId;
  for (const OpRef& ref : order_) {
    if (ref.txn != current) {
      if (ref.txn < seen.size() && seen[ref.txn]) return false;
      if (current != kInvalidTxnId) seen[current] = true;
      current = ref.txn;
    }
  }
  return true;
}

std::string Schedule::ToString(bool with_versions) const {
  std::vector<std::string> parts;
  parts.reserve(order_.size());
  for (const OpRef& ref : order_) {
    std::string token = txns_->FormatOp(ref);
    if (with_versions && txns_->op(ref).IsRead()) {
      token += StrCat("{v=", txns_->FormatOp(VersionRead(ref)), "}");
    }
    parts.push_back(std::move(token));
  }
  return Join(parts, " ");
}

}  // namespace mvrob
