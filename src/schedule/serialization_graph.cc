#include "schedule/serialization_graph.h"

#include <algorithm>

#include "common/string_util.h"

namespace mvrob {

SerializationGraph SerializationGraph::Build(const Schedule& s) {
  SerializationGraph graph;
  graph.edges_ = ComputeDependencies(s);
  graph.adjacency_.assign(s.txns().size(), {});
  for (const Dependency& edge : graph.edges_) {
    graph.adjacency_[edge.from].push_back(edge.to);
  }
  for (std::vector<TxnId>& successors : graph.adjacency_) {
    std::sort(successors.begin(), successors.end());
    successors.erase(std::unique(successors.begin(), successors.end()),
                     successors.end());
  }
  return graph;
}

bool SerializationGraph::HasEdge(TxnId from, TxnId to) const {
  const std::vector<TxnId>& successors = adjacency_[from];
  return std::binary_search(successors.begin(), successors.end(), to);
}

std::vector<Dependency> SerializationGraph::EdgesBetween(TxnId from,
                                                         TxnId to) const {
  std::vector<Dependency> result;
  for (const Dependency& edge : edges_) {
    if (edge.from == from && edge.to == to) result.push_back(edge);
  }
  return result;
}

bool SerializationGraph::IsAcyclic() const { return !FindCycle().has_value(); }

namespace {

// Iterative DFS cycle search returning the node cycle (t_0, ..., t_k-1) such
// that t_i -> t_(i+1 mod k) for all i, or nullopt.
std::optional<std::vector<TxnId>> FindNodeCycle(
    const std::vector<std::vector<TxnId>>& adjacency) {
  enum class Color : uint8_t { kWhite, kGray, kBlack };
  const size_t n = adjacency.size();
  std::vector<Color> color(n, Color::kWhite);
  std::vector<TxnId> parent(n, kInvalidTxnId);

  for (TxnId root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    // Stack holds (node, next-successor-index).
    std::vector<std::pair<TxnId, size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < adjacency[node].size()) {
        TxnId successor = adjacency[node][next++];
        if (color[successor] == Color::kGray) {
          // Found a back edge node -> successor; unwind the gray path.
          std::vector<TxnId> cycle;
          cycle.push_back(successor);
          for (TxnId walk = node; walk != successor; walk = parent[walk]) {
            cycle.push_back(walk);
          }
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
        if (color[successor] == Color::kWhite) {
          color[successor] = Color::kGray;
          parent[successor] = node;
          stack.emplace_back(successor, 0);
        }
      } else {
        color[node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<Dependency>> SerializationGraph::FindCycle() const {
  std::optional<std::vector<TxnId>> nodes = FindNodeCycle(adjacency_);
  if (!nodes.has_value()) return std::nullopt;
  std::vector<Dependency> cycle;
  for (size_t i = 0; i < nodes->size(); ++i) {
    TxnId from = (*nodes)[i];
    TxnId to = (*nodes)[(i + 1) % nodes->size()];
    std::vector<Dependency> candidates = EdgesBetween(from, to);
    // An adjacency edge always has at least one witnessing quadruple.
    cycle.push_back(candidates.front());
  }
  return cycle;
}

std::optional<std::vector<TxnId>> SerializationGraph::TopologicalOrder()
    const {
  const size_t n = adjacency_.size();
  std::vector<int> indegree(n, 0);
  for (TxnId from = 0; from < n; ++from) {
    for (TxnId to : adjacency_[from]) ++indegree[to];
  }
  std::vector<TxnId> ready;
  for (TxnId t = 0; t < n; ++t) {
    if (indegree[t] == 0) ready.push_back(t);
  }
  std::vector<TxnId> order;
  while (!ready.empty()) {
    // Pop the smallest id for deterministic output.
    auto it = std::min_element(ready.begin(), ready.end());
    TxnId node = *it;
    ready.erase(it);
    order.push_back(node);
    for (TxnId to : adjacency_[node]) {
      if (--indegree[to] == 0) ready.push_back(to);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

std::string SerializationGraph::ToString(const TransactionSet& txns) const {
  std::string out;
  for (const Dependency& edge : edges_) {
    out += FormatDependency(txns, edge);
    out += "\n";
  }
  return out;
}

}  // namespace mvrob
