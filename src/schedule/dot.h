#ifndef MVROB_SCHEDULE_DOT_H_
#define MVROB_SCHEDULE_DOT_H_

#include <string>
#include <vector>

#include "schedule/serialization_graph.h"

namespace mvrob {

/// A small Graphviz DOT builder shared by every renderer that draws
/// transaction-level graphs (SeG(s), counterexample chains, allocation
/// obstacles). Node and edge labels are escaped; rw-antidependency edges
/// follow the SI-literature convention of dashing.
class DotGraph {
 public:
  explicit DotGraph(std::string name) : name_(std::move(name)) {}

  struct Node {
    std::string id;
    std::string label;
    std::string shape = "circle";
    /// Extra attributes, rendered verbatim (e.g. "style=filled,
    /// fillcolor=lightgrey").
    std::string extra;
  };
  struct Edge {
    std::string from;
    std::string to;
    std::string label;
    bool dashed = false;
  };

  void AddNode(Node node) { nodes_.push_back(std::move(node)); }
  void AddEdge(Edge edge) { edges_.push_back(std::move(edge)); }
  /// Free-form graph-level attribute line, e.g. "rankdir=LR".
  void AddAttribute(std::string attribute) {
    attributes_.push_back(std::move(attribute));
  }

  /// Renders the graph as a `digraph` document.
  std::string Render() const;

  /// Escapes a string for use inside a double-quoted DOT attribute.
  static std::string Escape(std::string_view text);

 private:
  std::string name_;
  std::vector<std::string> attributes_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

/// Renders SeG(s) in Graphviz DOT format: one node per transaction, one
/// edge per transaction pair with the witnessing operation pairs as the
/// edge label; rw-antidependencies are dashed (the convention of the SI
/// literature). Paste into `dot -Tsvg` to draw the paper's Figure 3.
std::string SerializationGraphToDot(const TransactionSet& txns,
                                    const SerializationGraph& graph);

/// Renders the schedule as a per-transaction timeline (rows = transactions,
/// columns = positions in <=_s), the plain-text analogue of the paper's
/// Figure 2:
///
///   T1 |                          R[t]           C
///   T2 | W[t]            R[v]          C
///   ...
std::string ScheduleTimeline(const Schedule& s);

}  // namespace mvrob

#endif  // MVROB_SCHEDULE_DOT_H_
