#ifndef MVROB_SCHEDULE_DOT_H_
#define MVROB_SCHEDULE_DOT_H_

#include <string>

#include "schedule/serialization_graph.h"

namespace mvrob {

/// Renders SeG(s) in Graphviz DOT format: one node per transaction, one
/// edge per transaction pair with the witnessing operation pairs as the
/// edge label; rw-antidependencies are dashed (the convention of the SI
/// literature). Paste into `dot -Tsvg` to draw the paper's Figure 3.
std::string SerializationGraphToDot(const TransactionSet& txns,
                                    const SerializationGraph& graph);

/// Renders the schedule as a per-transaction timeline (rows = transactions,
/// columns = positions in <=_s), the plain-text analogue of the paper's
/// Figure 2:
///
///   T1 |                          R[t]           C
///   T2 | W[t]            R[v]          C
///   ...
std::string ScheduleTimeline(const Schedule& s);

}  // namespace mvrob

#endif  // MVROB_SCHEDULE_DOT_H_
