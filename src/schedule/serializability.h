#ifndef MVROB_SCHEDULE_SERIALIZABILITY_H_
#define MVROB_SCHEDULE_SERIALIZABILITY_H_

#include <optional>
#include <vector>

#include "schedule/serialization_graph.h"

namespace mvrob {

/// True if the two schedules are conflict equivalent (Section 2.2): same
/// transaction set and identical dependency relations between conflicting
/// operations.
bool ConflictEquivalent(const Schedule& s1, const Schedule& s2);

/// Conflict serializability via Theorem 2.2: s is conflict serializable iff
/// SeG(s) is acyclic.
bool IsConflictSerializable(const Schedule& s);

/// When serializable, returns a transaction order whose single version
/// serial schedule is conflict equivalent to `s`; nullopt otherwise.
std::optional<std::vector<TxnId>> SerializationWitness(const Schedule& s);

}  // namespace mvrob

#endif  // MVROB_SCHEDULE_SERIALIZABILITY_H_
