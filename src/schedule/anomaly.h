#ifndef MVROB_SCHEDULE_ANOMALY_H_
#define MVROB_SCHEDULE_ANOMALY_H_

#include <string>
#include <vector>

#include "schedule/serialization_graph.h"

namespace mvrob {

/// Classification of a serialization-graph cycle into the folklore anomaly
/// taxonomy. The classes mirror the literature (Berenson et al. SIGMOD'95,
/// Fekete et al. TODS'05): the edge *kinds* around the cycle determine
/// what a practitioner would call the misbehavior.
enum class AnomalyKind : uint8_t {
  /// Two transactions, both cycles edges ww/rw on the same object: one
  /// update overwrites the other based on a stale read.
  kLostUpdate,
  /// All cycle edges are rw-antidependencies (>= 2 transactions): disjoint
  /// writes based on mutually stale reads — the classic SI anomaly.
  kWriteSkew,
  /// Exactly one rw-antidependency in the cycle: a reader observed an
  /// inconsistent mix of old and new versions (read skew / fuzzy read).
  kReadSkew,
  /// Anything larger/mixed: a multi-transaction serialization failure.
  kGeneralCycle,
};

const char* AnomalyKindToString(AnomalyKind kind);

/// A classified cycle.
struct AnomalyReport {
  AnomalyKind kind = AnomalyKind::kGeneralCycle;
  std::vector<Dependency> cycle;

  std::string ToString(const TransactionSet& txns) const;
};

/// Classifies one cycle (as returned by SerializationGraph::FindCycle).
/// Classification considers *all* dependencies between consecutive cycle
/// transactions, not just the representative edges: a two-transaction
/// cycle whose pair also carries a ww dependency is a lost update even if
/// the chosen representatives are antidependencies.
AnomalyKind ClassifyCycle(const SerializationGraph& graph,
                          const std::vector<Dependency>& cycle);

/// Finds a cycle in SeG(s) and classifies it; empty when serializable.
std::vector<AnomalyReport> FindAnomalies(const Schedule& s);

}  // namespace mvrob

#endif  // MVROB_SCHEDULE_ANOMALY_H_
