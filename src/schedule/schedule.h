#ifndef MVROB_SCHEDULE_SCHEDULE_H_
#define MVROB_SCHEDULE_SCHEDULE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// Version function v_s: maps every read operation to the write operation
/// (or op_0) whose version it observes.
using VersionFunction = std::unordered_map<OpRef, OpRef, OpRefHash>;

/// Version order <<_s: for each object, the total order in which versions
/// are installed. op_0 is implicit and precedes every listed write.
using VersionOrder = std::map<ObjectId, std::vector<OpRef>>;

/// A multiversion schedule s = (O_s, <=_s, <<_s, v_s) over a set of
/// transactions (Section 2.1).
///
/// - `order` lists every operation of every transaction exactly once; op_0
///   is implicit before position 0.
/// - `versions` maps each read to op_0 or to an earlier write on the same
///   object.
/// - `version_order` lists, per object, all writes on it; op_0 precedes all.
///
/// A Schedule does not own its TransactionSet; the set must outlive it.
class Schedule {
 public:
  /// Validates all well-formedness conditions of Definition "multiversion
  /// schedule": program order embedded in <=_s, version function targets,
  /// version order coverage. Returns InvalidArgument with a diagnostic
  /// otherwise.
  static StatusOr<Schedule> Create(const TransactionSet* txns,
                                   std::vector<OpRef> order,
                                   VersionFunction versions,
                                   VersionOrder version_order);

  /// Builds the *single version* schedule induced by `order`: the version
  /// order coincides with <=_s and every read observes the most recent
  /// preceding write (op_0 if none). Useful for serial baselines and for
  /// Theorem 2.2 round-trips.
  static StatusOr<Schedule> SingleVersion(const TransactionSet* txns,
                                          std::vector<OpRef> order);

  /// Builds the single version serial schedule executing whole transactions
  /// in the given order (every transaction exactly once).
  static StatusOr<Schedule> SingleVersionSerial(
      const TransactionSet* txns, const std::vector<TxnId>& txn_order);

  const TransactionSet& txns() const { return *txns_; }
  const std::vector<OpRef>& order() const { return order_; }
  size_t num_ops() const { return order_.size(); }

  /// Position of `ref` in <=_s; op_0 has position -1.
  int PositionOf(OpRef ref) const;
  /// a <_s b. op_0 precedes every other operation.
  bool Before(OpRef a, OpRef b) const {
    return PositionOf(a) < PositionOf(b);
  }

  /// v_s(read): the write (or op_0) whose version `read` observes.
  OpRef VersionRead(OpRef read) const;

  /// All writes on `object` in <<_s order (op_0 implicit first). Objects
  /// that are never written yield an empty list.
  const std::vector<OpRef>& VersionsOf(ObjectId object) const;

  /// a <<_s b for two version-producing operations on the same object
  /// (op_0 allowed on either side). op_0 <<_s w for every write w.
  bool VersionBefore(OpRef a, OpRef b) const;

  /// True if transactions `a` and `b` overlap: first(T_a) <_s C_b and
  /// first(T_b) <_s C_a (Section 2.3).
  bool Concurrent(TxnId a, TxnId b) const;

  /// True if <<_s is compatible with <=_s and every read observes the last
  /// written (not merely last committed) version — the paper's single
  /// version condition.
  bool IsSingleVersion() const;

  /// True if additionally no transaction's operations interleave with
  /// another's.
  bool IsSerial() const;

  /// One-line rendering of the operation order, e.g.
  /// "W2[t] R4[t] W3[v] C3 ... C1". Version reads are appended in
  /// brackets when `with_versions` is set.
  std::string ToString(bool with_versions = false) const;

 private:
  Schedule() = default;

  Status Validate() const;
  void IndexPositions();

  const TransactionSet* txns_ = nullptr;
  std::vector<OpRef> order_;
  VersionFunction versions_;
  VersionOrder version_order_;

  // positions_[txn][index] = position in order_, for O(1) PositionOf.
  std::vector<std::vector<int>> positions_;
  // Rank of each write within its object's version list, for O(1)
  // VersionBefore.
  std::unordered_map<OpRef, int, OpRefHash> version_rank_;
};

}  // namespace mvrob

#endif  // MVROB_SCHEDULE_SCHEDULE_H_
