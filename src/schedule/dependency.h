#ifndef MVROB_SCHEDULE_DEPENDENCY_H_
#define MVROB_SCHEDULE_DEPENDENCY_H_

#include <optional>
#include <string>
#include <vector>

#include "schedule/schedule.h"

namespace mvrob {

/// The three dependency kinds of Section 2.2.
enum class DependencyKind : uint8_t { kWw, kWr, kRwAnti };

const char* DependencyKindToString(DependencyKind kind);

/// A dependency b_i ->_s a_j between operations of different transactions;
/// also the edge representation (T_i, b_i, a_j, T_j) used for SeG(s).
struct Dependency {
  TxnId from = kInvalidTxnId;
  OpRef b;  // The operation depended upon (in `from`).
  OpRef a;  // The depending operation (in `to`).
  TxnId to = kInvalidTxnId;
  DependencyKind kind = DependencyKind::kWw;

  friend bool operator==(const Dependency&, const Dependency&) = default;
};

/// Returns the kind of dependency b ->_s a, if operations b and a (of
/// different transactions, on the same object) are dependent in `s`
/// per Section 2.2:
///  - ww-dependency:      b, a writes and b <<_s a;
///  - wr-dependency:      b write, a read and b = v_s(a) or b <<_s v_s(a);
///  - rw-antidependency:  b read, a write and v_s(b) <<_s a.
std::optional<DependencyKind> DependencyBetween(const Schedule& s, OpRef b,
                                                OpRef a);

/// All dependencies of the schedule — the edge set of SeG(s) in quadruple
/// form, ordered deterministically (by from, b, a).
std::vector<Dependency> ComputeDependencies(const Schedule& s);

/// Pretty form "W2[t] ->ww W4[t] (T2 -> T4)".
std::string FormatDependency(const TransactionSet& txns, const Dependency& d);

}  // namespace mvrob

#endif  // MVROB_SCHEDULE_DEPENDENCY_H_
