#include "schedule/serializability.h"

namespace mvrob {

bool ConflictEquivalent(const Schedule& s1, const Schedule& s2) {
  if (&s1.txns() != &s2.txns()) return false;
  return ComputeDependencies(s1) == ComputeDependencies(s2);
}

bool IsConflictSerializable(const Schedule& s) {
  return SerializationGraph::Build(s).IsAcyclic();
}

std::optional<std::vector<TxnId>> SerializationWitness(const Schedule& s) {
  return SerializationGraph::Build(s).TopologicalOrder();
}

}  // namespace mvrob
