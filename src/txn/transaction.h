#ifndef MVROB_TXN_TRANSACTION_H_
#define MVROB_TXN_TRANSACTION_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "txn/operation.h"

namespace mvrob {

/// A transaction (Section 2.1): a sequence of read and write operations
/// followed by exactly one commit operation, modeled as the linear order
/// (T, <=_T) with program-order indices 0..num_ops()-1.
///
/// The paper assumes at most one read and at most one write per object per
/// transaction and notes that all results carry over to the general setting;
/// this class accepts the general form and exposes
/// HasAtMostOneAccessPerObject() so callers can opt into the restricted
/// regime (the workload generators and paper fixtures use it).
class Transaction {
 public:
  /// Builds a transaction from its read/write prefix. A commit operation is
  /// appended automatically. Fails if `rw_ops` contains a commit.
  static StatusOr<Transaction> Create(TxnId id, std::string name,
                                      std::vector<Operation> rw_ops);

  TxnId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// All operations in program order, the commit last.
  const std::vector<Operation>& ops() const { return ops_; }
  int num_ops() const { return static_cast<int>(ops_.size()); }
  const Operation& op(int index) const { return ops_[index]; }

  /// Index of the commit operation (always the last one).
  int commit_index() const { return num_ops() - 1; }
  /// OpRef of this transaction's commit.
  OpRef commit_ref() const { return OpRef{id_, commit_index()}; }
  /// OpRef of first(T), the first operation of the transaction.
  OpRef first_ref() const { return OpRef{id_, 0}; }

  /// True if some read (respectively write) operation touches `object`.
  bool Reads(ObjectId object) const;
  bool Writes(ObjectId object) const;

  /// Program-order index of the first read (write) on `object`, if any.
  /// O(log |read_set|) via the precomputed per-object first-index tables.
  std::optional<int> FirstReadIndex(ObjectId object) const;
  std::optional<int> FirstWriteIndex(ObjectId object) const;

  /// Distinct objects read (written) by this transaction, ascending.
  const std::vector<ObjectId>& read_set() const { return read_set_; }
  const std::vector<ObjectId>& write_set() const { return write_set_; }

  /// True if the transaction satisfies the paper's simplifying assumption of
  /// at most one read and one write operation per object.
  bool HasAtMostOneAccessPerObject() const { return at_most_one_access_; }

 private:
  Transaction() = default;

  TxnId id_ = kInvalidTxnId;
  std::string name_;
  std::vector<Operation> ops_;
  std::vector<ObjectId> read_set_;
  std::vector<ObjectId> write_set_;
  // First program-order index of a read (write) on read_set_[i]
  // (write_set_[i]); aligned with the sorted object sets.
  std::vector<int> first_read_idx_;
  std::vector<int> first_write_idx_;
  bool at_most_one_access_ = true;
};

}  // namespace mvrob

#endif  // MVROB_TXN_TRANSACTION_H_
