#ifndef MVROB_TXN_CONFLICT_H_
#define MVROB_TXN_CONFLICT_H_

#include "txn/operation.h"

namespace mvrob {

/// Conflict predicates of Section 2.2, as type/object tests on operation
/// values. Callers must ensure the two operations belong to *different*
/// transactions — the paper only defines conflicts across transactions.
/// Commit operations (and op_0) never conflict.

/// b is ww-conflicting with a: both write the same object.
inline bool WwConflicting(const Operation& b, const Operation& a) {
  return b.IsWrite() && a.IsWrite() && b.object == a.object;
}

/// b is wr-conflicting with a: b writes the object a reads.
inline bool WrConflicting(const Operation& b, const Operation& a) {
  return b.IsWrite() && a.IsRead() && b.object == a.object;
}

/// b is rw-conflicting with a: b reads the object a writes.
inline bool RwConflicting(const Operation& b, const Operation& a) {
  return b.IsRead() && a.IsWrite() && b.object == a.object;
}

/// b conflicts with a in any of the three modes.
inline bool Conflicting(const Operation& b, const Operation& a) {
  if (b.IsCommit() || a.IsCommit()) return false;
  return b.object == a.object && (b.IsWrite() || a.IsWrite());
}

}  // namespace mvrob

#endif  // MVROB_TXN_CONFLICT_H_
