#include "txn/transaction.h"

#include <algorithm>

#include "common/string_util.h"

namespace mvrob {
namespace {

// Deduplicates and sorts `ids` in place.
void SortUnique(std::vector<ObjectId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

StatusOr<Transaction> Transaction::Create(TxnId id, std::string name,
                                          std::vector<Operation> rw_ops) {
  Transaction txn;
  txn.id_ = id;
  txn.name_ = std::move(name);

  std::vector<ObjectId> reads;
  std::vector<ObjectId> writes;
  for (const Operation& op : rw_ops) {
    if (op.IsCommit()) {
      return Status::InvalidArgument(
          StrCat("transaction ", txn.name_,
                 ": explicit commit operations are not allowed; the commit "
                 "is appended automatically"));
    }
    if (op.object == kInvalidObjectId) {
      return Status::InvalidArgument(
          StrCat("transaction ", txn.name_, ": read/write without an object"));
    }
    (op.IsRead() ? reads : writes).push_back(op.object);
  }

  txn.at_most_one_access_ = true;
  for (auto* accesses : {&reads, &writes}) {
    std::vector<ObjectId> sorted = *accesses;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      txn.at_most_one_access_ = false;
    }
  }

  txn.ops_ = std::move(rw_ops);
  txn.ops_.push_back(Operation::Commit());
  txn.read_set_ = std::move(reads);
  txn.write_set_ = std::move(writes);
  SortUnique(txn.read_set_);
  SortUnique(txn.write_set_);

  // Per-object first-index tables, aligned with the sorted sets.
  txn.first_read_idx_.assign(txn.read_set_.size(), -1);
  txn.first_write_idx_.assign(txn.write_set_.size(), -1);
  for (int i = 0; i < txn.num_ops(); ++i) {
    const Operation& op = txn.ops_[i];
    if (op.IsCommit()) continue;
    const std::vector<ObjectId>& set =
        op.IsRead() ? txn.read_set_ : txn.write_set_;
    std::vector<int>& first =
        op.IsRead() ? txn.first_read_idx_ : txn.first_write_idx_;
    size_t pos = static_cast<size_t>(
        std::lower_bound(set.begin(), set.end(), op.object) - set.begin());
    if (first[pos] < 0) first[pos] = i;
  }
  return txn;
}

bool Transaction::Reads(ObjectId object) const {
  return std::binary_search(read_set_.begin(), read_set_.end(), object);
}

bool Transaction::Writes(ObjectId object) const {
  return std::binary_search(write_set_.begin(), write_set_.end(), object);
}

std::optional<int> Transaction::FirstReadIndex(ObjectId object) const {
  auto it = std::lower_bound(read_set_.begin(), read_set_.end(), object);
  if (it == read_set_.end() || *it != object) return std::nullopt;
  return first_read_idx_[static_cast<size_t>(it - read_set_.begin())];
}

std::optional<int> Transaction::FirstWriteIndex(ObjectId object) const {
  auto it = std::lower_bound(write_set_.begin(), write_set_.end(), object);
  if (it == write_set_.end() || *it != object) return std::nullopt;
  return first_write_idx_[static_cast<size_t>(it - write_set_.begin())];
}

}  // namespace mvrob
