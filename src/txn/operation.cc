#include "txn/operation.h"

namespace mvrob {

const char* OpTypeToString(OpType type) {
  switch (type) {
    case OpType::kRead:
      return "R";
    case OpType::kWrite:
      return "W";
    case OpType::kCommit:
      return "C";
  }
  return "?";
}

}  // namespace mvrob
