#ifndef MVROB_TXN_PARSER_H_
#define MVROB_TXN_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// Parses a transaction set from a compact text form, one transaction per
/// line:
///
///   T1: R[t] W[x]
///   T2: W[t] R[v]
///
/// Object names are arbitrary identifiers. The commit is implicit; a
/// trailing "C" token is accepted and ignored. Blank lines and lines starting
/// with '#' are skipped. Transaction labels become names; ids are assigned
/// in order of appearance.
StatusOr<TransactionSet> ParseTransactionSet(std::string_view text);

/// Parses a schedule's operation order over an existing transaction set,
/// using the paper's subscripted notation:
///
///   "W2[t] R4[t] W3[v] C3 R2[v] R1[t] C2 R4[v] W4[t] C4 C1"
///
/// The subscript k refers to the transaction named "T<k>" (falling back to
/// the 1-based position if no such name exists). When a transaction performs
/// several identical operations (general setting), tokens bind to the
/// earliest not-yet-used matching operation. Fails unless every operation of
/// every transaction appears exactly once and in program order.
StatusOr<std::vector<OpRef>> ParseScheduleOrder(const TransactionSet& txns,
                                                std::string_view text);

}  // namespace mvrob

#endif  // MVROB_TXN_PARSER_H_
