#include "txn/parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace mvrob {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Parses "R[t]" / "W[obj_name]" / "C" tokens of a transaction body.
Status ParseBodyToken(std::string_view token, TransactionSet& set,
                      std::vector<Operation>& ops, bool& saw_commit) {
  if (token == "C") {
    saw_commit = true;
    return Status::Ok();
  }
  if (saw_commit) {
    return Status::InvalidArgument(
        StrCat("operation ", token, " after commit"));
  }
  if (token.size() < 4 || (token[0] != 'R' && token[0] != 'W') ||
      token[1] != '[' || token.back() != ']') {
    return Status::InvalidArgument(StrCat("malformed operation '", token,
                                          "', expected R[obj], W[obj] or C"));
  }
  std::string_view name = token.substr(2, token.size() - 3);
  if (name.empty() ||
      !std::all_of(name.begin(), name.end(), IsIdentChar)) {
    return Status::InvalidArgument(
        StrCat("malformed object name in '", token, "'"));
  }
  ObjectId object = set.InternObject(name);
  ops.push_back(token[0] == 'R' ? Operation::Read(object)
                                : Operation::Write(object));
  return Status::Ok();
}

}  // namespace

StatusOr<TransactionSet> ParseTransactionSet(std::string_view text) {
  TransactionSet set;
  for (const std::string& raw_line : SplitAndTrim(text, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument(
          StrCat("missing ':' in line '", line, "'"));
    }
    std::string name(StripWhitespace(line.substr(0, colon)));
    if (name.empty()) {
      return Status::InvalidArgument(
          StrCat("empty transaction label in '", line, "'"));
    }
    std::vector<Operation> ops;
    bool saw_commit = false;
    for (const std::string& token :
         SplitAndTrim(line.substr(colon + 1), ' ')) {
      Status status = ParseBodyToken(token, set, ops, saw_commit);
      if (!status.ok()) {
        return Status::InvalidArgument(
            StrCat(name, ": ", status.message()));
      }
    }
    StatusOr<TxnId> id = set.AddTransaction(std::move(name), std::move(ops));
    if (!id.ok()) return id.status();
  }
  return set;
}

namespace {

// Resolves a schedule-token subscript such as "2" to a transaction id.
StatusOr<TxnId> ResolveTxn(const TransactionSet& txns,
                           std::string_view subscript) {
  TxnId by_name = txns.FindTransaction(StrCat("T", subscript));
  if (by_name != kInvalidTxnId) return by_name;
  // Fall back to the 1-based position for sets with custom names.
  int position = 0;
  for (char c : subscript) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::NotFound(StrCat("no transaction T", subscript));
    }
    position = position * 10 + (c - '0');
  }
  if (position < 1 || static_cast<size_t>(position) > txns.size()) {
    return Status::NotFound(StrCat("no transaction with index ", subscript));
  }
  return static_cast<TxnId>(position - 1);
}

}  // namespace

StatusOr<std::vector<OpRef>> ParseScheduleOrder(const TransactionSet& txns,
                                                std::string_view text) {
  // next_index[t] = first program-order index of transaction t that has not
  // yet been bound to a token; enforces program order as a side effect.
  std::vector<int> next_index(txns.size(), 0);
  std::vector<OpRef> order;

  for (const std::string& token : SplitAndTrim(text, ' ')) {
    if (token.size() < 2) {
      return Status::InvalidArgument(StrCat("malformed token '", token, "'"));
    }
    char kind = token[0];
    if (kind != 'R' && kind != 'W' && kind != 'C') {
      return Status::InvalidArgument(StrCat("malformed token '", token, "'"));
    }
    size_t bracket = token.find('[');
    std::string_view subscript;
    std::string_view object_name;
    if (kind == 'C') {
      subscript = std::string_view(token).substr(1);
    } else {
      if (bracket == std::string_view::npos || token.back() != ']') {
        return Status::InvalidArgument(
            StrCat("malformed token '", token, "'"));
      }
      subscript = std::string_view(token).substr(1, bracket - 1);
      object_name =
          std::string_view(token).substr(bracket + 1,
                                         token.size() - bracket - 2);
    }
    StatusOr<TxnId> txn_id = ResolveTxn(txns, subscript);
    if (!txn_id.ok()) return txn_id.status();
    const Transaction& txn = txns.txn(*txn_id);

    Operation expected;
    if (kind == 'C') {
      expected = Operation::Commit();
    } else {
      ObjectId object = txns.FindObject(object_name);
      if (object == kInvalidObjectId) {
        return Status::NotFound(
            StrCat("unknown object '", object_name, "' in '", token, "'"));
      }
      expected = kind == 'R' ? Operation::Read(object)
                             : Operation::Write(object);
    }

    int index = next_index[*txn_id];
    if (index >= txn.num_ops() || !(txn.op(index) == expected)) {
      return Status::InvalidArgument(
          StrCat("token '", token, "' does not match the next operation of ",
                 txn.name(), " in program order"));
    }
    next_index[*txn_id] = index + 1;
    order.push_back(OpRef{*txn_id, index});
  }

  for (TxnId t = 0; t < txns.size(); ++t) {
    if (next_index[t] != txns.txn(t).num_ops()) {
      return Status::InvalidArgument(
          StrCat("schedule is missing operations of ", txns.txn(t).name()));
    }
  }
  return order;
}

}  // namespace mvrob
