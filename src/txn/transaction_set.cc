#include "txn/transaction_set.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace mvrob {

ObjectId TransactionSet::InternObject(std::string_view name) {
  auto it = object_ids_.find(std::string(name));
  if (it != object_ids_.end()) return it->second;
  ObjectId id = static_cast<ObjectId>(object_names_.size());
  object_names_.emplace_back(name);
  object_ids_.emplace(std::string(name), id);
  return id;
}

ObjectId TransactionSet::FindObject(std::string_view name) const {
  auto it = object_ids_.find(std::string(name));
  return it == object_ids_.end() ? kInvalidObjectId : it->second;
}

const std::string& TransactionSet::ObjectName(ObjectId object) const {
  return object_names_[object];
}

StatusOr<TxnId> TransactionSet::AddTransaction(std::string name,
                                               std::vector<Operation> rw_ops) {
  TxnId id = static_cast<TxnId>(txns_.size());
  if (name.empty()) name = StrCat("T", id + 1);
  if (txn_ids_.contains(name)) {
    return Status::InvalidArgument(StrCat("duplicate transaction name ", name));
  }
  StatusOr<Transaction> txn = Transaction::Create(id, name, std::move(rw_ops));
  if (!txn.ok()) return txn.status();
  txn_ids_.emplace(txn->name(), id);
  txns_.push_back(std::move(txn).value());
  return id;
}

TxnId TransactionSet::FindTransaction(std::string_view name) const {
  auto it = txn_ids_.find(std::string(name));
  return it == txn_ids_.end() ? kInvalidTxnId : it->second;
}

bool TransactionSet::IsValidRef(OpRef ref) const {
  if (ref.IsOp0()) return true;
  return ref.txn < txns_.size() && ref.index >= 0 &&
         ref.index < txns_[ref.txn].num_ops();
}

int TransactionSet::TotalOps() const {
  int total = 0;
  for (const Transaction& txn : txns_) total += txn.num_ops();
  return total;
}

int TransactionSet::MaxOpsPerTxn() const {
  int max_ops = 0;
  for (const Transaction& txn : txns_) {
    max_ops = std::max(max_ops, txn.num_ops());
  }
  return max_ops;
}

bool TransactionSet::HasAtMostOneAccessPerObject() const {
  return std::all_of(txns_.begin(), txns_.end(), [](const Transaction& txn) {
    return txn.HasAtMostOneAccessPerObject();
  });
}

namespace {

// Transactions named "T<digits>" print with the paper's subscript style
// (R1[t]); anything else prints as R[t]@name.
bool IsPaperStyleName(const std::string& name) {
  if (name.size() < 2 || name[0] != 'T') return false;
  return std::all_of(name.begin() + 1, name.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

}  // namespace

std::string TransactionSet::FormatOp(OpRef ref) const {
  if (ref.IsOp0()) return "op0";
  const Transaction& txn = txns_[ref.txn];
  const Operation& op = txn.op(ref.index);
  std::string subscript;
  std::string suffix;
  if (IsPaperStyleName(txn.name())) {
    subscript = txn.name().substr(1);
  } else {
    suffix = StrCat("@", txn.name());
  }
  if (op.IsCommit()) return StrCat("C", subscript, suffix);
  return StrCat(OpTypeToString(op.type), subscript, "[",
                ObjectName(op.object), "]", suffix);
}

std::string TransactionSet::ToString() const {
  std::string out;
  for (const Transaction& txn : txns_) {
    out += txn.name();
    out += ":";
    for (int i = 0; i < txn.num_ops(); ++i) {
      const Operation& op = txn.op(i);
      out += " ";
      out += OpTypeToString(op.type);
      if (!op.IsCommit()) {
        out += "[";
        out += ObjectName(op.object);
        out += "]";
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace mvrob
