#ifndef MVROB_TXN_OPERATION_H_
#define MVROB_TXN_OPERATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace mvrob {

/// Identifies a transaction within a TransactionSet (dense, 0-based).
using TxnId = uint32_t;
/// Identifies a database object (the paper's set Obj), interned per
/// TransactionSet (dense, 0-based).
using ObjectId = uint32_t;

inline constexpr TxnId kInvalidTxnId = std::numeric_limits<TxnId>::max();
inline constexpr ObjectId kInvalidObjectId =
    std::numeric_limits<ObjectId>::max();

/// The three operation kinds of the paper's model (Section 2.1): reads R[t],
/// writes W[t] and the final commit C of each transaction.
enum class OpType : uint8_t { kRead, kWrite, kCommit };

const char* OpTypeToString(OpType type);

/// One operation of a transaction. Commit operations carry no object
/// (object == kInvalidObjectId).
struct Operation {
  OpType type = OpType::kCommit;
  ObjectId object = kInvalidObjectId;

  static Operation Read(ObjectId object) {
    return Operation{OpType::kRead, object};
  }
  static Operation Write(ObjectId object) {
    return Operation{OpType::kWrite, object};
  }
  static Operation Commit() {
    return Operation{OpType::kCommit, kInvalidObjectId};
  }

  bool IsRead() const { return type == OpType::kRead; }
  bool IsWrite() const { return type == OpType::kWrite; }
  bool IsCommit() const { return type == OpType::kCommit; }

  friend bool operator==(const Operation&, const Operation&) = default;
};

/// A reference to a concrete operation: the owning transaction and the
/// operation's index in that transaction's program order.
///
/// The special operation op_0 — conceptually writing the initial version of
/// every object before the schedule starts (Section 2.1) — is represented by
/// OpRef::Op0().
struct OpRef {
  TxnId txn = kInvalidTxnId;
  int32_t index = -1;

  static constexpr OpRef Op0() { return OpRef{kInvalidTxnId, -1}; }
  bool IsOp0() const { return txn == kInvalidTxnId; }

  friend bool operator==(const OpRef&, const OpRef&) = default;
  friend auto operator<=>(const OpRef&, const OpRef&) = default;
};

struct OpRefHash {
  size_t operator()(const OpRef& ref) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(ref.txn) << 32) ^
                                 static_cast<uint32_t>(ref.index));
  }
};

}  // namespace mvrob

#endif  // MVROB_TXN_OPERATION_H_
