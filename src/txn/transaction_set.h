#ifndef MVROB_TXN_TRANSACTION_SET_H_
#define MVROB_TXN_TRANSACTION_SET_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "txn/transaction.h"

namespace mvrob {

/// A finite set of transactions T over a shared object universe — the input
/// to every robustness and allocation question in the paper.
///
/// Objects are interned: workloads refer to objects by name ("t", "stock_5")
/// and receive dense ObjectIds. Transaction ids are dense 0..size()-1 in
/// insertion order.
class TransactionSet {
 public:
  TransactionSet() = default;

  /// Interns `name`, returning the existing id if already present.
  ObjectId InternObject(std::string_view name);
  /// Id of `name`, or kInvalidObjectId if it was never interned.
  ObjectId FindObject(std::string_view name) const;
  const std::string& ObjectName(ObjectId object) const;
  size_t num_objects() const { return object_names_.size(); }

  /// Appends a transaction built from `rw_ops` (commit appended
  /// automatically; see Transaction::Create). If `name` is empty, a default
  /// name "T<id+1>" is used, matching the paper's 1-based convention.
  StatusOr<TxnId> AddTransaction(std::string name,
                                 std::vector<Operation> rw_ops);

  size_t size() const { return txns_.size(); }
  bool empty() const { return txns_.empty(); }
  const Transaction& txn(TxnId id) const { return txns_[id]; }
  const std::vector<Transaction>& txns() const { return txns_; }

  /// Id of the transaction with the given name, or kInvalidTxnId.
  TxnId FindTransaction(std::string_view name) const;

  /// Resolves an OpRef (must not be op_0) to its operation.
  const Operation& op(OpRef ref) const { return txns_[ref.txn].op(ref.index); }

  /// True if `ref` denotes an existing operation of this set (op_0 counts).
  bool IsValidRef(OpRef ref) const;

  /// Total number of operations k over all transactions (commits included),
  /// as used in the complexity bound of Theorem 3.3.
  int TotalOps() const;
  /// Maximum number of operations in a single transaction (the paper's l).
  int MaxOpsPerTxn() const;

  /// True if every transaction satisfies the paper's at-most-one-read/write
  /// per object assumption.
  bool HasAtMostOneAccessPerObject() const;

  /// "R1[t]", "W2[x]", "C3" for operations of this set; "op0" for op_0.
  /// Transactions named "T<k>" render with the bare subscript k (paper
  /// style); other names render as "R[t]@name".
  std::string FormatOp(OpRef ref) const;

  /// Multi-line listing, one transaction per line: "T1: R[t] W[x] C".
  std::string ToString() const;

 private:
  std::vector<Transaction> txns_;
  std::vector<std::string> object_names_;
  std::unordered_map<std::string, ObjectId> object_ids_;
  std::unordered_map<std::string, TxnId> txn_ids_;
};

}  // namespace mvrob

#endif  // MVROB_TXN_TRANSACTION_SET_H_
