#ifndef MVROB_WORKLOADS_VOTER_H_
#define MVROB_WORKLOADS_VOTER_H_

#include "workloads/workload.h"

namespace mvrob {

/// Parameters for a Voter-style workload (modeled on the H-Store/VoltDB
/// "Voter" benchmark): phone-in votes increment per-contestant counters
/// under a per-caller vote limit, while leaderboard queries scan totals.
struct VoterParams {
  int contestants = 2;
  int callers = 2;
  /// Vote instances per (caller, contestant) pair.
  int votes = 1;
  bool with_leaderboard = true;
};

/// Programs:
///  - Vote(caller, contestant): R[limit(caller)] W[limit(caller)]
///        R[total(contestant)] W[total(contestant)]
///  - Leaderboard: R[total(c)] for every contestant   (read-only)
///
/// All contention is read-modify-write on counters (the lost-update
/// pattern): the optimum places every Vote at SI — and the read-only
/// Leaderboard must also stay at SI because an RC scan across several
/// counters can observe a non-serializable mix.
Workload MakeVoter(const VoterParams& params);

}  // namespace mvrob

#endif  // MVROB_WORKLOADS_VOTER_H_
