#include "workloads/registry.h"

#include <limits>
#include <map>

#include "common/string_util.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/synthetic.h"
#include "workloads/tpcc.h"
#include "workloads/voter.h"
#include "workloads/ycsb.h"

namespace mvrob {
namespace {

// "k=v" pairs after the colon; bare tokens (like the ycsb mix letter) map
// to themselves with an empty value.
struct Spec {
  std::string name;
  std::vector<std::string> bare;
  std::map<std::string, int> values;
};

StatusOr<Spec> ParseSpec(std::string_view text) {
  Spec spec;
  size_t colon = text.find(':');
  spec.name = std::string(StripWhitespace(text.substr(0, colon)));
  if (colon == std::string_view::npos) return spec;
  for (const std::string& token : SplitAndTrim(text.substr(colon + 1), ',')) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      spec.bare.push_back(token);
      continue;
    }
    std::string key(StripWhitespace(std::string_view(token).substr(0, eq)));
    std::string_view value =
        StripWhitespace(std::string_view(token).substr(eq + 1));
    StatusOr<int> number =
        ParseInt(value, 0, std::numeric_limits<int>::max());
    if (!number.ok()) {
      return Status::InvalidArgument(
          StrCat("invalid value in '", token, "': ", number.status().message()));
    }
    spec.values[key] = *number;
  }
  return spec;
}

// Fetches spec.values[key] or `fallback`; records the key as consumed.
class SpecReader {
 public:
  explicit SpecReader(const Spec& spec) : spec_(spec) {}

  int Get(const std::string& key, int fallback) {
    consumed_.push_back(key);
    auto it = spec_.values.find(key);
    return it == spec_.values.end() ? fallback : it->second;
  }

  /// InvalidArgument if the spec named a key this workload does not have.
  Status CheckNoLeftovers() const {
    for (const auto& [key, value] : spec_.values) {
      bool known = false;
      for (const std::string& name : consumed_) {
        if (name == key) known = true;
      }
      if (!known) {
        return Status::InvalidArgument(
            StrCat("unknown parameter '", key, "' for workload ",
                   spec_.name, " (known: ", Join(consumed_, ", "), ")"));
      }
    }
    return Status::Ok();
  }

 private:
  const Spec& spec_;
  std::vector<std::string> consumed_;
};

}  // namespace

StatusOr<Workload> MakeNamedWorkload(std::string_view text) {
  StatusOr<Spec> spec = ParseSpec(text);
  if (!spec.ok()) return spec.status();
  SpecReader reader(*spec);

  if (spec->name == "tpcc") {
    TpccParams params;
    params.warehouses = reader.Get("w", params.warehouses);
    params.districts_per_warehouse =
        reader.Get("d", params.districts_per_warehouse);
    params.customers_per_district =
        reader.Get("c", params.customers_per_district);
    params.items = reader.Get("i", params.items);
    params.rounds = reader.Get("r", params.rounds);
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeTpcc(params);
  }
  if (spec->name == "smallbank") {
    SmallBankParams params;
    params.customers = reader.Get("c", params.customers);
    params.rounds = reader.Get("r", params.rounds);
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeSmallBank(params);
  }
  if (spec->name == "auction") {
    AuctionParams params;
    params.items = reader.Get("i", params.items);
    params.bidders = reader.Get("b", params.bidders);
    params.edits = reader.Get("e", params.edits);
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeAuction(params);
  }
  if (spec->name == "ycsb") {
    YcsbParams params = YcsbParams::MixA();
    for (const std::string& mix : spec->bare) {
      if (mix == "a") {
        params = YcsbParams::MixA();
      } else if (mix == "b") {
        params = YcsbParams::MixB();
      } else if (mix == "c") {
        params = YcsbParams::MixC();
      } else if (mix == "f") {
        params = YcsbParams::MixF();
      } else {
        return Status::InvalidArgument(
            StrCat("unknown ycsb mix '", mix, "' (a, b, c or f)"));
      }
    }
    params.num_txns = reader.Get("n", params.num_txns);
    params.num_keys = reader.Get("k", params.num_keys);
    params.seed = static_cast<uint64_t>(reader.Get("seed", 0));
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeYcsb(params);
  }
  if (spec->name == "voter") {
    VoterParams params;
    params.contestants = reader.Get("c", params.contestants);
    params.callers = reader.Get("p", params.callers);
    params.votes = reader.Get("v", params.votes);
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeVoter(params);
  }
  if (spec->name == "synthetic") {
    SyntheticParams params;
    params.num_txns = reader.Get("n", params.num_txns);
    params.num_objects = reader.Get("o", params.num_objects);
    params.max_ops = reader.Get("ops", params.max_ops);
    params.write_fraction = reader.Get("w", 40) / 100.0;
    params.hotspot_fraction = reader.Get("h", 0) / 100.0;
    params.num_hotspots = reader.Get("hot", 2);
    params.seed = static_cast<uint64_t>(reader.Get("seed", 0));
    params.reads_precede_writes = true;
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    Workload workload;
    workload.name = "synthetic";
    workload.description = std::string(text);
    workload.txns = GenerateSynthetic(params);
    return workload;
  }
  return Status::NotFound(
      StrCat("unknown workload '", spec->name,
             "'; available: ", Join(ListWorkloadNames(), ", ")));
}

std::vector<std::string> ListWorkloadNames() {
  return {"tpcc", "smallbank", "auction", "ycsb", "voter", "synthetic"};
}

}  // namespace mvrob
