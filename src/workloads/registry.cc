#include "workloads/registry.h"

#include <limits>
#include <map>

#include "common/string_util.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/synthetic.h"
#include "workloads/tpcc.h"
#include "workloads/voter.h"
#include "workloads/ycsb.h"

namespace mvrob {
namespace {

// "k=v" pairs after the colon; bare tokens (like the ycsb mix letter) map
// to themselves with an empty value. Values stay raw strings so each
// workload can parse them at the right type (int counts, double skews).
struct Spec {
  std::string name;
  std::vector<std::string> bare;
  std::map<std::string, std::string> values;
};

StatusOr<Spec> ParseSpec(std::string_view text) {
  Spec spec;
  size_t colon = text.find(':');
  spec.name = std::string(StripWhitespace(text.substr(0, colon)));
  if (colon == std::string_view::npos) return spec;
  for (const std::string& token : SplitAndTrim(text.substr(colon + 1), ',')) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      spec.bare.push_back(token);
      continue;
    }
    std::string key(StripWhitespace(std::string_view(token).substr(0, eq)));
    std::string_view value =
        StripWhitespace(std::string_view(token).substr(eq + 1));
    if (value.empty()) {
      return Status::InvalidArgument(
          StrCat("invalid value in '", token, "': empty"));
    }
    spec.values[key] = std::string(value);
  }
  return spec;
}

// Fetches spec.values[key] or `fallback`, strictly parsed at the
// requested type; records the key as consumed. The first malformed value
// sticks as an error returned by CheckNoLeftovers.
class SpecReader {
 public:
  explicit SpecReader(const Spec& spec) : spec_(spec) {}

  int Get(const std::string& key, int fallback) {
    const std::string* raw = Consume(key);
    if (raw == nullptr) return fallback;
    StatusOr<int> number =
        ParseInt(*raw, 0, std::numeric_limits<int>::max());
    if (!number.ok()) {
      NoteError(key, *raw, number.status());
      return fallback;
    }
    return *number;
  }

  double GetDouble(const std::string& key, double fallback) {
    const std::string* raw = Consume(key);
    if (raw == nullptr) return fallback;
    StatusOr<double> number = ParseDouble(*raw, 0.0, 1e6);
    if (!number.ok()) {
      NoteError(key, *raw, number.status());
      return fallback;
    }
    return *number;
  }

  /// InvalidArgument if a consumed value was malformed or the spec named a
  /// key this workload does not have.
  Status CheckNoLeftovers() const {
    if (!error_.ok()) return error_;
    for (const auto& [key, value] : spec_.values) {
      bool known = false;
      for (const std::string& name : consumed_) {
        if (name == key) known = true;
      }
      if (!known) {
        return Status::InvalidArgument(
            StrCat("unknown parameter '", key, "' for workload ",
                   spec_.name, " (known: ", Join(consumed_, ", "), ")"));
      }
    }
    return Status::Ok();
  }

 private:
  const std::string* Consume(const std::string& key) {
    consumed_.push_back(key);
    auto it = spec_.values.find(key);
    return it == spec_.values.end() ? nullptr : &it->second;
  }

  void NoteError(const std::string& key, const std::string& raw,
                 const Status& status) {
    if (error_.ok()) {
      error_ = Status::InvalidArgument(
          StrCat("invalid value in '", key, "=", raw, "': ",
                 status.message()));
    }
  }

  const Spec& spec_;
  std::vector<std::string> consumed_;
  Status error_ = Status::Ok();
};

}  // namespace

StatusOr<Workload> MakeNamedWorkload(std::string_view text) {
  StatusOr<Spec> spec = ParseSpec(text);
  if (!spec.ok()) return spec.status();
  SpecReader reader(*spec);

  if (spec->name == "tpcc") {
    TpccParams params;
    params.warehouses = reader.Get("w", params.warehouses);
    params.districts_per_warehouse =
        reader.Get("d", params.districts_per_warehouse);
    params.customers_per_district =
        reader.Get("c", params.customers_per_district);
    params.items = reader.Get("i", params.items);
    params.rounds = reader.Get("r", params.rounds);
    params.stock_level_scan = reader.Get("sl", params.stock_level_scan);
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeTpcc(params);
  }
  if (spec->name == "smallbank") {
    SmallBankParams params;
    params.customers = reader.Get("c", params.customers);
    params.rounds = reader.Get("r", params.rounds);
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeSmallBank(params);
  }
  if (spec->name == "auction") {
    AuctionParams params;
    params.items = reader.Get("i", params.items);
    params.bidders = reader.Get("b", params.bidders);
    params.edits = reader.Get("e", params.edits);
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeAuction(params);
  }
  if (spec->name == "ycsb") {
    YcsbParams params = YcsbParams::MixA();
    for (const std::string& mix : spec->bare) {
      if (mix == "a") {
        params = YcsbParams::MixA();
      } else if (mix == "b") {
        params = YcsbParams::MixB();
      } else if (mix == "c") {
        params = YcsbParams::MixC();
      } else if (mix == "e") {
        params = YcsbParams::MixE();
      } else if (mix == "f") {
        params = YcsbParams::MixF();
      } else {
        return Status::InvalidArgument(
            StrCat("unknown ycsb mix '", mix, "' (a, b, c, e or f)"));
      }
    }
    params.num_txns = reader.Get("n", params.num_txns);
    params.num_keys = reader.Get("k", params.num_keys);
    params.keys_per_txn = reader.Get("kpt", params.keys_per_txn);
    params.zipf_theta = reader.GetDouble("theta", params.zipf_theta);
    params.scan_fraction = reader.GetDouble("scan", params.scan_fraction);
    params.scan_length = reader.Get("slen", params.scan_length);
    params.seed = static_cast<uint64_t>(reader.Get("seed", 0));
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeYcsb(params);
  }
  if (spec->name == "voter") {
    VoterParams params;
    params.contestants = reader.Get("c", params.contestants);
    params.callers = reader.Get("p", params.callers);
    params.votes = reader.Get("v", params.votes);
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    return MakeVoter(params);
  }
  if (spec->name == "synthetic") {
    SyntheticParams params;
    params.num_txns = reader.Get("n", params.num_txns);
    params.num_objects = reader.Get("o", params.num_objects);
    params.max_ops = reader.Get("ops", params.max_ops);
    params.write_fraction = reader.Get("w", 40) / 100.0;
    params.hotspot_fraction = reader.Get("h", 0) / 100.0;
    params.num_hotspots = reader.Get("hot", 2);
    params.seed = static_cast<uint64_t>(reader.Get("seed", 0));
    params.reads_precede_writes = true;
    Status leftovers = reader.CheckNoLeftovers();
    if (!leftovers.ok()) return leftovers;
    Workload workload;
    workload.name = "synthetic";
    workload.description = std::string(text);
    workload.txns = GenerateSynthetic(params);
    return workload;
  }
  return Status::NotFound(
      StrCat("unknown workload '", spec->name,
             "'; available: ", Join(ListWorkloadNames(), ", ")));
}

std::vector<std::string> ListWorkloadNames() {
  return {"tpcc", "smallbank", "auction", "ycsb", "voter", "synthetic"};
}

}  // namespace mvrob
