#include "workloads/stats.h"

#include <map>

#include "common/string_util.h"
#include "core/conflict.h"

namespace mvrob {

std::string WorkloadStats::ToString() const {
  return StrCat(num_txns, " txns (", read_only_txns, " read-only), ",
                num_objects, " objects, ", total_ops, " ops (", reads, "R/",
                writes, "W); conflicting pairs: ", conflicting_pairs,
                " (vulnerable: ", vulnerable_pairs,
                "); hottest object: ", hottest_object, " (",
                hottest_object_touches, " txns)");
}

WorkloadStats ComputeWorkloadStats(const TransactionSet& txns) {
  WorkloadStats stats;
  stats.num_txns = txns.size();
  stats.num_objects = txns.num_objects();
  stats.total_ops = txns.TotalOps();

  std::map<ObjectId, size_t> touches;
  for (const Transaction& txn : txns.txns()) {
    bool read_only = txn.write_set().empty();
    if (read_only) ++stats.read_only_txns;
    for (const Operation& op : txn.ops()) {
      if (op.IsRead()) ++stats.reads;
      if (op.IsWrite()) ++stats.writes;
    }
    for (ObjectId object : txn.read_set()) ++touches[object];
    for (ObjectId object : txn.write_set()) {
      if (!txn.Reads(object)) ++touches[object];
    }
  }
  for (const auto& [object, count] : touches) {
    if (count > stats.hottest_object_touches) {
      stats.hottest_object_touches = count;
      stats.hottest_object = txns.ObjectName(object);
    }
  }

  for (TxnId i = 0; i < txns.size(); ++i) {
    for (TxnId j = static_cast<TxnId>(i + 1); j < txns.size(); ++j) {
      if (!TxnsConflict(txns, i, j)) continue;
      ++stats.conflicting_pairs;
      // Vulnerable in either direction: an rw conflict with disjoint
      // write sets — the edges split schedules are built from.
      bool rw_ij = false;
      bool rw_ji = false;
      for (ObjectId object : txns.txn(i).read_set()) {
        if (txns.txn(j).Writes(object)) rw_ij = true;
      }
      for (ObjectId object : txns.txn(j).read_set()) {
        if (txns.txn(i).Writes(object)) rw_ji = true;
      }
      if ((rw_ij || rw_ji) && WwConflictFreeTxns(txns, i, j)) {
        ++stats.vulnerable_pairs;
      }
    }
  }
  return stats;
}

}  // namespace mvrob
