#ifndef MVROB_WORKLOADS_SYNTHETIC_H_
#define MVROB_WORKLOADS_SYNTHETIC_H_

#include <cstdint>

#include "txn/transaction_set.h"

namespace mvrob {

/// Parameters of the synthetic workload generator. The generator drives the
/// property tests (small, adversarial sets) and the scaling benchmarks
/// (hundreds of transactions with tunable contention).
struct SyntheticParams {
  int num_txns = 4;
  int num_objects = 6;
  /// Read/write operations per transaction, uniform in [min_ops, max_ops]
  /// (the commit is added on top).
  int min_ops = 1;
  int max_ops = 4;
  /// Probability that a generated operation is a write.
  double write_fraction = 0.4;
  /// Probability that an operation targets the hotspot set (the first
  /// `num_hotspots` objects) rather than a uniform object — the contention
  /// knob.
  double hotspot_fraction = 0.0;
  int num_hotspots = 1;
  /// Enforce the paper's at-most-one-read-and-one-write-per-object
  /// assumption (operations that would repeat an access are dropped).
  bool at_most_one_access = true;
  /// Emit each transaction's reads before its writes. The MVCC conformance
  /// tests need this: the formal model has no read-your-own-writes, so a
  /// faithful engine trace requires programs that never read an object
  /// they have already written.
  bool reads_precede_writes = false;
  uint64_t seed = 0;
};

/// Generates a pseudo-random transaction set. Deterministic in `params`
/// (including the seed). Every transaction has at least one operation.
TransactionSet GenerateSynthetic(const SyntheticParams& params);

}  // namespace mvrob

#endif  // MVROB_WORKLOADS_SYNTHETIC_H_
