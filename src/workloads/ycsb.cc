#include "workloads/ycsb.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"

namespace mvrob {
namespace {

// Samples from Zipf(theta) over [0, n) via the inverse-CDF on precomputed
// cumulative weights — exact and fast enough at workload-generation sizes.
class ZipfSampler {
 public:
  ZipfSampler(int n, double theta) : cumulative_(static_cast<size_t>(n)) {
    double total = 0;
    for (int i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cumulative_[static_cast<size_t>(i)] = total;
    }
    for (double& c : cumulative_) c /= total;
  }

  int Sample(Rng& rng) const {
    double u = rng.NextDouble();
    // Binary search for the first cumulative weight >= u.
    size_t lo = 0;
    size_t hi = cumulative_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(lo);
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

Workload MakeYcsb(const YcsbParams& params) {
  Workload workload;
  workload.name = "ycsb";
  workload.description =
      StrCat("YCSB-style: ", params.num_txns, " txns over ", params.num_keys,
             " keys, ", static_cast<int>(params.read_only_fraction * 100),
             "% read-only, theta=", params.zipf_theta);
  if (params.scan_fraction > 0) {
    workload.description +=
        StrCat(", ", static_cast<int>(params.scan_fraction * 100),
               "% scans of length ", params.scan_length);
  }
  TransactionSet& set = workload.txns;

  std::vector<ObjectId> keys;
  keys.reserve(static_cast<size_t>(params.num_keys));
  for (int k = 0; k < params.num_keys; ++k) {
    keys.push_back(set.InternObject(StrCat("key", k)));
  }

  Rng rng(params.seed);
  ZipfSampler sampler(params.num_keys, params.zipf_theta);
  int keys_per_txn = std::min(params.keys_per_txn, params.num_keys);

  int scan_length = std::min(std::max(params.scan_length, 1),
                             params.num_keys);

  for (int t = 0; t < params.num_txns; ++t) {
    bool read_only = rng.Bernoulli(params.read_only_fraction);
    bool scan = rng.Bernoulli(params.scan_fraction);
    std::vector<Operation> ops;
    std::string kind;
    if (scan) {
      // Workload E: read `scan_length` consecutive keys from a sampled
      // start, clamped so the scan stays inside the keyspace.
      int start = std::min(sampler.Sample(rng), params.num_keys - scan_length);
      for (int k = start; k < start + scan_length; ++k) {
        ops.push_back(Operation::Read(keys[static_cast<size_t>(k)]));
      }
      if (!read_only) {
        ops.push_back(Operation::Write(keys[static_cast<size_t>(start)]));
      }
      kind = read_only ? "Scan" : "ScanUpdate";
    } else {
      std::set<int> chosen;
      while (static_cast<int>(chosen.size()) < keys_per_txn) {
        chosen.insert(sampler.Sample(rng));
      }
      for (int k : chosen) {
        ops.push_back(Operation::Read(keys[static_cast<size_t>(k)]));
      }
      if (!read_only) {
        for (int k : chosen) {
          ops.push_back(Operation::Write(keys[static_cast<size_t>(k)]));
        }
      }
      kind = read_only ? "Read" : "Update";
    }
    StatusOr<TxnId> id =
        set.AddTransaction(StrCat(kind, "_", t), std::move(ops));
    (void)id;
  }
  return workload;
}

}  // namespace mvrob
