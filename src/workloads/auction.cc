#include "workloads/auction.h"

#include <vector>

#include "common/string_util.h"

namespace mvrob {

Workload MakeAuction(const AuctionParams& params) {
  Workload workload;
  workload.name = "auction";
  workload.description =
      StrCat("auction house with ", params.items, " items, ", params.bidders,
             " bidders and ", params.edits, " listing edits per item");
  TransactionSet& set = workload.txns;

  auto emit = [&set](const std::string& name, std::vector<Operation> ops) {
    StatusOr<TxnId> id = set.AddTransaction(name, std::move(ops));
    (void)id;
  };

  for (int i = 0; i < params.items; ++i) {
    ObjectId status = set.InternObject(StrCat("status_", i));
    ObjectId high_bid = set.InternObject(StrCat("high_bid_", i));
    ObjectId listing = set.InternObject(StrCat("listing_", i));

    for (int b = 0; b < params.bidders; ++b) {
      ObjectId bid_row = set.InternObject(StrCat("bid_", i, "_", b));
      emit(StrCat("PlaceBid_", i, "_", b),
           {Operation::Read(status), Operation::Read(high_bid),
            Operation::Write(high_bid), Operation::Write(bid_row)});
    }
    emit(StrCat("CloseAuction_", i),
         {Operation::Read(high_bid), Operation::Write(status)});
    for (int e = 0; e < params.edits; ++e) {
      emit(StrCat("EditListing_", i, "_", e),
           {Operation::Read(listing), Operation::Write(listing)});
    }
    if (params.with_viewers) {
      emit(StrCat("ViewItem_", i),
           {Operation::Read(listing), Operation::Read(high_bid),
            Operation::Read(status)});
      emit(StrCat("GetHighBid_", i), {Operation::Read(high_bid)});
    }
  }
  return workload;
}

}  // namespace mvrob
