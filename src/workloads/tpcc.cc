#include "workloads/tpcc.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace mvrob {
namespace {

// Helper assembling one transaction; AddTransaction cannot fail here since
// names are unique by construction.
void Emit(TransactionSet& set, const std::string& name,
          std::vector<Operation> ops) {
  StatusOr<TxnId> id = set.AddTransaction(name, std::move(ops));
  (void)id;
}

}  // namespace

Workload MakeTpcc(const TpccParams& params) {
  Workload workload;
  workload.name = "tpcc";
  workload.description =
      StrCat("TPC-C at column granularity: ", params.warehouses, " wh x ",
             params.districts_per_warehouse, " districts x ", params.rounds,
             " rounds");
  TransactionSet& set = workload.txns;

  // Items within one order must be distinct (the paper's
  // one-access-per-object regime).
  TpccParams p = params;
  if (p.items_per_order > p.items) p.items_per_order = p.items;

  auto obj = [&set](const std::string& name) {
    return set.InternObject(name);
  };

  for (int w = 0; w < p.warehouses; ++w) {
    for (int d = 0; d < p.districts_per_warehouse; ++d) {
      for (int r = 0; r < p.rounds; ++r) {
        int c = r % p.customers_per_district;
        std::string wd = StrCat(w, "_", d);
        std::string wdc = StrCat(wd, "_", c);
        std::string order_id = StrCat(wd, "_", r);

        ObjectId w_tax = obj(StrCat("w_tax_", w));
        ObjectId w_ytd = obj(StrCat("w_ytd_", w));
        ObjectId d_tax = obj(StrCat("d_tax_", wd));
        ObjectId d_next = obj(StrCat("d_next_o_id_", wd));
        ObjectId d_ytd = obj(StrCat("d_ytd_", wd));
        ObjectId c_info = obj(StrCat("c_info_", wdc));
        ObjectId c_balance = obj(StrCat("c_balance_", wdc));
        ObjectId order = obj(StrCat("order_", order_id));
        ObjectId new_order = obj(StrCat("new_order_", order_id));
        ObjectId order_lines = obj(StrCat("order_lines_", order_id));
        ObjectId history = obj(StrCat("history_", wdc, "_", r));

        // NewOrder: reads tax rates and customer info, increments the
        // district's next-order id, orders items_per_order distinct items
        // (read item, read-modify-write stock quantity), creates the order.
        {
          std::vector<Operation> ops{
              Operation::Read(w_tax),  Operation::Read(d_tax),
              Operation::Read(d_next), Operation::Write(d_next),
              Operation::Read(c_info),
          };
          for (int k = 0; k < p.items_per_order; ++k) {
            int item = (d + r + k) % p.items;
            ObjectId item_info = obj(StrCat("item_", item));
            ObjectId s_qty = obj(StrCat("s_qty_", w, "_", item));
            ops.push_back(Operation::Read(item_info));
            ops.push_back(Operation::Read(s_qty));
            ops.push_back(Operation::Write(s_qty));
          }
          ops.push_back(Operation::Write(order));
          ops.push_back(Operation::Write(new_order));
          ops.push_back(Operation::Write(order_lines));
          Emit(set, StrCat("NewOrder_", wd, "_r", r), std::move(ops));
        }

        // Payment: updates warehouse/district YTD and customer balance,
        // appends a fresh history row.
        Emit(set, StrCat("Payment_", wdc, "_r", r),
             {Operation::Read(w_ytd), Operation::Write(w_ytd),
              Operation::Read(d_ytd), Operation::Write(d_ytd),
              Operation::Read(c_info), Operation::Read(c_balance),
              Operation::Write(c_balance), Operation::Write(history)});

        // OrderStatus: read-only inspection of the customer and the order
        // created in this round.
        Emit(set, StrCat("OrderStatus_", wdc, "_r", r),
             {Operation::Read(c_info), Operation::Read(c_balance),
              Operation::Read(order), Operation::Read(order_lines)});

        // Delivery: consumes the round's new_order, updates the order and
        // order lines, credits the customer's balance.
        Emit(set, StrCat("Delivery_", wd, "_r", r),
             {Operation::Read(new_order), Operation::Write(new_order),
              Operation::Read(order), Operation::Write(order),
              Operation::Read(order_lines), Operation::Write(order_lines),
              Operation::Read(c_balance), Operation::Write(c_balance)});

        // StockLevel: read-only scan of recently ordered items' stock —
        // or, with stock_level_scan > 0, a range scan over the first
        // stock_level_scan item keys (every order's items fall in range,
        // so the scan rw-conflicts with every same-warehouse NewOrder).
        {
          std::vector<Operation> ops{Operation::Read(d_next),
                                     Operation::Read(order_lines)};
          if (p.stock_level_scan > 0) {
            int scan = std::min(p.stock_level_scan, p.items);
            for (int item = 0; item < scan; ++item) {
              ops.push_back(
                  Operation::Read(obj(StrCat("s_qty_", w, "_", item))));
            }
          } else {
            for (int k = 0; k < p.items_per_order; ++k) {
              int item = (d + r + k) % p.items;
              ops.push_back(
                  Operation::Read(obj(StrCat("s_qty_", w, "_", item))));
            }
          }
          Emit(set, StrCat("StockLevel_", wd, "_r", r), std::move(ops));
        }
      }
    }
  }
  return workload;
}

}  // namespace mvrob
