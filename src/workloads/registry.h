#ifndef MVROB_WORKLOADS_REGISTRY_H_
#define MVROB_WORKLOADS_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "workloads/workload.h"

namespace mvrob {

/// Builds a built-in workload from a textual spec:
///
///   tpcc                       defaults
///   tpcc:w=2,d=3,c=2,i=3,r=2   warehouses/districts/customers/items/rounds
///   tpcc:sl=3                  StockLevel range-scans the first 3 items
///   smallbank:c=4,r=2          customers/rounds
///   auction:i=2,b=3,e=2        items/bidders/edits
///   ycsb:a  ycsb:b  ycsb:c  ycsb:e  ycsb:f   the standard mixes
///   voter:c=3,p=2,v=1          contestants/callers/votes
///   ycsb:a,n=40,k=32,seed=7    mix plus overrides (txns/keys/seed)
///   ycsb:e,scan=0.9,slen=4     scan fraction / scan length (range reads)
///   synthetic:n=10,o=8,ops=4,w=40,h=30,seed=3
///       txns/objects/max-ops/write-%/hotspot-%/seed
///
/// Unknown names or keys fail with InvalidArgument listing the options.
StatusOr<Workload> MakeNamedWorkload(std::string_view spec);

/// The spec names understood by MakeNamedWorkload, for help text.
std::vector<std::string> ListWorkloadNames();

}  // namespace mvrob

#endif  // MVROB_WORKLOADS_REGISTRY_H_
