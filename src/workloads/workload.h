#ifndef MVROB_WORKLOADS_WORKLOAD_H_
#define MVROB_WORKLOADS_WORKLOAD_H_

#include <string>

#include "txn/transaction_set.h"

namespace mvrob {

/// A named transaction workload used by the examples, tests and benchmark
/// harness.
struct Workload {
  std::string name;
  std::string description;
  TransactionSet txns;
};

}  // namespace mvrob

#endif  // MVROB_WORKLOADS_WORKLOAD_H_
