#ifndef MVROB_WORKLOADS_STATS_H_
#define MVROB_WORKLOADS_STATS_H_

#include <string>
#include <vector>

#include "txn/transaction_set.h"

namespace mvrob {

/// Structural statistics of a workload — the quantities that drive
/// robustness in practice: how many transactions touch each object, how
/// dense the conflict graph is, and how much of it is vulnerable
/// (rw without ww).
struct WorkloadStats {
  size_t num_txns = 0;
  size_t num_objects = 0;
  int total_ops = 0;
  int reads = 0;
  int writes = 0;
  size_t read_only_txns = 0;
  /// Pairs (unordered) with at least one conflict, and how many of those
  /// have a vulnerable rw edge in some direction (rw-conflicting with
  /// disjoint write sets) — the raw material of split schedules.
  size_t conflicting_pairs = 0;
  size_t vulnerable_pairs = 0;
  /// The most-touched object and how many transactions touch it.
  std::string hottest_object;
  size_t hottest_object_touches = 0;

  double ConflictDensity() const {
    size_t pairs = num_txns * (num_txns - 1) / 2;
    return pairs == 0 ? 0
                      : static_cast<double>(conflicting_pairs) / pairs;
  }

  std::string ToString() const;
};

/// Computes the statistics in one pass over the set.
WorkloadStats ComputeWorkloadStats(const TransactionSet& txns);

}  // namespace mvrob

#endif  // MVROB_WORKLOADS_STATS_H_
