#ifndef MVROB_WORKLOADS_TPCC_H_
#define MVROB_WORKLOADS_TPCC_H_

#include <cstdint>

#include "workloads/workload.h"

namespace mvrob {

/// Parameters instantiating concrete transactions from the five TPC-C
/// transaction programs (Section 6.3.1 of the paper: a workload of
/// transaction *templates* like TPC-C is analyzed through finite
/// instantiations; this is the canonical instantiation used in the
/// robustness literature).
struct TpccParams {
  int warehouses = 1;
  int districts_per_warehouse = 2;
  int customers_per_district = 2;
  int items = 3;
  /// Items ordered by each NewOrder instance.
  int items_per_order = 2;
  /// How many instances of each program to emit per district.
  int rounds = 1;
  /// When > 0, StockLevel performs a genuine range read: it scans the
  /// stock quantities of this many *consecutive* items starting at item 0
  /// (clamped to `items`) — the "all items under the threshold" secondary-
  /// index scan of the real benchmark — instead of only the items the
  /// round's NewOrder touched. Mirrors the template DSL's predicate read
  /// R[sqty_$lo..$hi] (templates/library.h TpccScanTemplates).
  int stock_level_scan = 0;
  uint64_t seed = 42;
};

/// Builds a TPC-C transaction set at *column granularity*: following the
/// classic SI analysis of Fekete et al. (TODS'05), objects are the
/// individually accessed column groups (w_tax vs w_ytd, d_tax vs
/// d_next_o_id vs d_ytd, c_info vs c_balance, s_quantity, order rows, ...),
/// not whole rows. At this granularity the famous folklore result is
/// reproducible: the workload is robust against A_SI but, due to the
/// read-then-increment of d_next_o_id in NewOrder, not against A_RC.
///
/// Programs modeled:
///  - NewOrder(w,d,c; items):  R[w_tax] R[d_tax] R[d_next_o_id]
///        W[d_next_o_id] R[c_info] { R[item_i] R[s_qty(w,i)] W[s_qty(w,i)] }*
///        W[order(w,d,o)] W[new_order(w,d,o)] W[order_lines(w,d,o)]
///  - Payment(w,d,c):  R[w_ytd] W[w_ytd] R[d_ytd] W[d_ytd] R[c_info]
///        R[c_balance] W[c_balance] W[history(fresh)]
///  - OrderStatus(w,d,c):  R[c_info] R[c_balance] R[order] R[order_lines]
///  - Delivery(w,d):  R[new_order] W[new_order] R[order] W[order]
///        R[order_lines] W[order_lines] R[c_balance] W[c_balance]
///  - StockLevel(w,d):  R[d_next_o_id] R[order_lines] { R[s_qty(w,i)] }*
///
/// Delivery processes the order created by the same-district NewOrder
/// instance of the same round; OrderStatus inspects it as well.
Workload MakeTpcc(const TpccParams& params);

}  // namespace mvrob

#endif  // MVROB_WORKLOADS_TPCC_H_
