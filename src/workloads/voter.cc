#include "workloads/voter.h"

#include <vector>

#include "common/string_util.h"

namespace mvrob {

Workload MakeVoter(const VoterParams& params) {
  Workload workload;
  workload.name = "voter";
  workload.description =
      StrCat("Voter with ", params.contestants, " contestants x ",
             params.callers, " callers x ", params.votes, " votes");
  TransactionSet& set = workload.txns;

  auto total = [&set](int c) {
    return set.InternObject(StrCat("total_", c));
  };
  auto limit = [&set](int caller) {
    return set.InternObject(StrCat("limit_", caller));
  };

  for (int caller = 0; caller < params.callers; ++caller) {
    for (int c = 0; c < params.contestants; ++c) {
      for (int v = 0; v < params.votes; ++v) {
        StatusOr<TxnId> id = set.AddTransaction(
            StrCat("Vote_", caller, "_", c, "_", v),
            {Operation::Read(limit(caller)), Operation::Write(limit(caller)),
             Operation::Read(total(c)), Operation::Write(total(c))});
        (void)id;
      }
    }
  }
  if (params.with_leaderboard) {
    std::vector<Operation> scan;
    for (int c = 0; c < params.contestants; ++c) {
      scan.push_back(Operation::Read(total(c)));
    }
    StatusOr<TxnId> id = set.AddTransaction("Leaderboard", std::move(scan));
    (void)id;
  }
  return workload;
}

}  // namespace mvrob
