#ifndef MVROB_WORKLOADS_YCSB_H_
#define MVROB_WORKLOADS_YCSB_H_

#include <cstdint>

#include "workloads/workload.h"

namespace mvrob {

/// Parameters for a YCSB-style key-value workload at transaction level.
/// Standard mixes:
///   A: 50% reads / 50% read-modify-writes (update heavy)
///   B: 95% reads / 5% read-modify-writes (read heavy)
///   C: 100% reads
///   E: short range scans / inserts-modeled-as-RMW (scan heavy)
///   F: read-modify-write dominated
struct YcsbParams {
  int num_txns = 20;
  int num_keys = 16;
  /// Keys touched per transaction.
  int keys_per_txn = 2;
  /// Fraction of transactions that are read-only; the rest read-modify-
  /// write each touched key.
  double read_only_fraction = 0.5;
  /// Zipfian skew exponent: 0 = uniform, ~0.99 = classic YCSB hotspots.
  double zipf_theta = 0.99;
  /// Fraction of transactions that range-scan: read `scan_length`
  /// consecutive keys from a Zipf-sampled start (clamped at the keyspace
  /// end) — workload E's SCAN operation. Scanners that are not read-only
  /// additionally read-modify-write the start key.
  double scan_fraction = 0.0;
  int scan_length = 4;
  uint64_t seed = 0;

  static YcsbParams MixA() { return YcsbParams{}; }
  static YcsbParams MixB() {
    YcsbParams params;
    params.read_only_fraction = 0.95;
    return params;
  }
  static YcsbParams MixC() {
    YcsbParams params;
    params.read_only_fraction = 1.0;
    return params;
  }
  static YcsbParams MixE() {
    YcsbParams params;
    params.read_only_fraction = 0.95;
    params.scan_fraction = 0.95;
    return params;
  }
  static YcsbParams MixF() {
    YcsbParams params;
    params.read_only_fraction = 0.2;
    return params;
  }
};

/// Builds a YCSB-style transaction set: read-only transactions read their
/// keys; updaters read then write each key (the paper's one-R-one-W
/// regime). Keys are drawn from a Zipfian distribution so low key ids are
/// hot.
Workload MakeYcsb(const YcsbParams& params);

}  // namespace mvrob

#endif  // MVROB_WORKLOADS_YCSB_H_
