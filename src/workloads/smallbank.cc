#include "workloads/smallbank.h"

#include <vector>

#include "common/string_util.h"

namespace mvrob {

Workload MakeSmallBank(const SmallBankParams& params) {
  Workload workload;
  workload.name = "smallbank";
  workload.description = StrCat("SmallBank with ", params.customers,
                                " customers x ", params.rounds, " rounds");
  TransactionSet& set = workload.txns;

  auto sav = [&set](int n) { return set.InternObject(StrCat("sav_", n)); };
  auto chk = [&set](int n) { return set.InternObject(StrCat("chk_", n)); };
  auto emit = [&set](const std::string& name, std::vector<Operation> ops) {
    StatusOr<TxnId> id = set.AddTransaction(name, std::move(ops));
    (void)id;
  };

  for (int r = 0; r < params.rounds; ++r) {
    for (int n = 0; n < params.customers; ++n) {
      int partner = (n + 1) % params.customers;
      emit(StrCat("Balance_", n, "_r", r),
           {Operation::Read(sav(n)), Operation::Read(chk(n))});
      emit(StrCat("DepositChecking_", n, "_r", r),
           {Operation::Read(chk(n)), Operation::Write(chk(n))});
      emit(StrCat("TransactSavings_", n, "_r", r),
           {Operation::Read(sav(n)), Operation::Write(sav(n))});
      if (partner != n) {
        emit(StrCat("Amalgamate_", n, "_", partner, "_r", r),
             {Operation::Read(sav(n)), Operation::Write(sav(n)),
              Operation::Read(chk(n)), Operation::Write(chk(n)),
              Operation::Read(chk(partner)), Operation::Write(chk(partner))});
      }
      emit(StrCat("WriteCheck_", n, "_r", r),
           {Operation::Read(sav(n)), Operation::Read(chk(n)),
            Operation::Write(chk(n))});
    }
  }
  return workload;
}

}  // namespace mvrob
