#include "workloads/synthetic.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"

namespace mvrob {

TransactionSet GenerateSynthetic(const SyntheticParams& params) {
  Rng rng(params.seed);
  TransactionSet set;
  std::vector<ObjectId> objects;
  objects.reserve(static_cast<size_t>(params.num_objects));
  for (int i = 0; i < params.num_objects; ++i) {
    objects.push_back(set.InternObject(StrCat("x", i)));
  }
  int hotspots = std::min(params.num_hotspots, params.num_objects);

  for (int t = 0; t < params.num_txns; ++t) {
    int target_ops = static_cast<int>(rng.Uniform(
        static_cast<uint64_t>(params.min_ops),
        static_cast<uint64_t>(params.max_ops)));
    std::vector<Operation> ops;
    // (object, is_write) accesses already used, for the restricted regime.
    std::set<std::pair<ObjectId, bool>> used;
    int attempts = 0;
    while (static_cast<int>(ops.size()) < target_ops &&
           attempts < target_ops * 8) {
      ++attempts;
      ObjectId object;
      if (hotspots > 0 && rng.Bernoulli(params.hotspot_fraction)) {
        object = objects[rng.Index(static_cast<size_t>(hotspots))];
      } else {
        object = objects[rng.Index(objects.size())];
      }
      bool is_write = rng.Bernoulli(params.write_fraction);
      if (params.at_most_one_access &&
          !used.insert({object, is_write}).second) {
        continue;
      }
      ops.push_back(is_write ? Operation::Write(object)
                             : Operation::Read(object));
    }
    if (ops.empty()) {
      // Guarantee a non-empty transaction.
      ops.push_back(Operation::Read(objects[rng.Index(objects.size())]));
    }
    if (params.reads_precede_writes) {
      std::stable_sort(ops.begin(), ops.end(),
                       [](const Operation& a, const Operation& b) {
                         return a.IsRead() && !b.IsRead();
                       });
    }
    StatusOr<TxnId> id = set.AddTransaction("", std::move(ops));
    (void)id;  // Names are fresh by construction; cannot fail.
  }
  return set;
}

}  // namespace mvrob
