#ifndef MVROB_WORKLOADS_SMALLBANK_H_
#define MVROB_WORKLOADS_SMALLBANK_H_

#include "workloads/workload.h"

namespace mvrob {

/// Parameters for the SmallBank benchmark (Alomari et al., ICDE'08 — the
/// workload built specifically to exhibit snapshot-isolation write skew).
struct SmallBankParams {
  int customers = 2;
  /// Instances of each program per customer.
  int rounds = 1;
};

/// Builds a SmallBank transaction set. Each customer has a checking and a
/// savings account. Programs:
///  - Balance(N):          R[sav(N)] R[chk(N)]                (read-only)
///  - DepositChecking(N):  R[chk(N)] W[chk(N)]
///  - TransactSavings(N):  R[sav(N)] W[sav(N)]
///  - Amalgamate(N1,N2):   R[sav(N1)] W[sav(N1)] R[chk(N1)] W[chk(N1)]
///                         R[chk(N2)] W[chk(N2)]
///  - WriteCheck(N):       R[sav(N)] R[chk(N)] W[chk(N)]
///
/// WriteCheck reads the savings balance without writing it, producing the
/// classic vulnerable structure: SmallBank is NOT robust against A_SI (nor
/// A_RC) — the optimal {RC,SI,SSI} allocation needs SSI, and no {RC,SI}
/// allocation is robust. Amalgamate pairs customer N with customer
/// (N+1) mod customers.
Workload MakeSmallBank(const SmallBankParams& params);

}  // namespace mvrob

#endif  // MVROB_WORKLOADS_SMALLBANK_H_
