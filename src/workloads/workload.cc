#include "workloads/workload.h"

// Workload is a plain aggregate; this file anchors the target.
