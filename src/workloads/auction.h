#ifndef MVROB_WORKLOADS_AUCTION_H_
#define MVROB_WORKLOADS_AUCTION_H_

#include "workloads/workload.h"

namespace mvrob {

/// Parameters for the auction-house scenario used by the examples.
struct AuctionParams {
  int items = 1;
  /// PlaceBid instances per item.
  int bidders = 2;
  /// Listing-edit instances per item.
  int edits = 2;
  bool with_viewers = true;
};

/// An auction workload crafted so the optimal {RC, SI, SSI} allocation
/// genuinely mixes all three levels:
///  - PlaceBid(i):     R[status(i)] R[high_bid(i)] W[high_bid(i)] W[bid row]
///  - CloseAuction(i): R[high_bid(i)] W[status(i)]
///  - EditListing(i):  R[listing(i)] W[listing(i)]
///  - ViewItem(i):     R[listing(i)] R[high_bid(i)] R[status(i)]
///  - GetHighBid(i):   R[high_bid(i)]
///
/// PlaceBid and CloseAuction form a write-skew pair (disjoint write sets,
/// crossing reads) — they need SSI. Two EditListing instances on the same
/// listing form a lost-update pair — safe under SI's first-committer-wins
/// but not under RC, so they land at SI, as does the multi-object reader
/// ViewItem (an RC reader spanning several writers can observe a
/// non-serializable mix). GetHighBid touches a single object and is the
/// transaction that genuinely runs at RC.
Workload MakeAuction(const AuctionParams& params);

}  // namespace mvrob

#endif  // MVROB_WORKLOADS_AUCTION_H_
