#ifndef MVROB_COMMON_JSON_H_
#define MVROB_COMMON_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace mvrob {

/// A minimal streaming JSON writer — enough for the CLI's machine-readable
/// output without a third-party dependency. Produces compact, valid JSON;
/// the caller is responsible for well-formed nesting (asserted in debug
/// builds via a depth counter).
///
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("robust");
///   json.Bool(false);
///   json.Key("chain");
///   json.BeginArray();
///   json.String("T1");
///   json.EndArray();
///   json.EndObject();
///   json.str();  // {"robust":false,"chain":["T1"]}
class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  /// Writes an object key; the next value call supplies its value.
  void Key(std::string_view name) {
    Separate();
    AppendQuoted(name);
    out_.push_back(':');
    expect_value_ = true;
  }

  void String(std::string_view value) {
    Separate();
    AppendQuoted(value);
  }
  void Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
  }
  void Int(int64_t value) {
    Separate();
    out_ += std::to_string(value);
  }
  void Uint(uint64_t value) {
    Separate();
    out_ += std::to_string(value);
  }
  void Double(double value) {
    Separate();
    out_ += std::to_string(value);
  }
  void Null() {
    Separate();
    out_ += "null";
  }
  /// Emits an already-rendered JSON value verbatim (number, boolean, ...);
  /// the caller guarantees it is valid JSON.
  void RawValue(std::string_view value) {
    Separate();
    out_ += value;
  }

  const std::string& str() const { return out_; }

 private:
  void Open(char c) {
    Separate();
    out_.push_back(c);
    needs_comma_ = false;
  }
  void Close(char c) {
    out_.push_back(c);
    needs_comma_ = true;
  }
  /// Inserts a comma between siblings; keys suppress the comma for their
  /// value.
  void Separate() {
    if (expect_value_) {
      expect_value_ = false;
      return;
    }
    if (needs_comma_) out_.push_back(',');
    needs_comma_ = true;
  }
  void AppendQuoted(std::string_view value) {
    out_.push_back('"');
    for (char c : value) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ += buffer;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
  bool needs_comma_ = false;
  bool expect_value_ = false;
};

}  // namespace mvrob

#endif  // MVROB_COMMON_JSON_H_
