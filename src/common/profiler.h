#ifndef MVROB_COMMON_PROFILER_H_
#define MVROB_COMMON_PROFILER_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mvrob {

class MetricsRegistry;

/// --- Thread role registry -------------------------------------------------
///
/// Every long-lived thread registers itself under a stable dotted role name
/// ("engine.worker.3", "analyzer.worker.0", "serve.driver", "http", ...).
/// Registration is what makes a thread visible to the sampling profiler,
/// the remote stack capture used by /debug/stacks, and the watchdog's
/// stall dumps. It is cheap (one mutex acquisition per thread lifetime,
/// nothing per operation) and installs no timers by itself, so registered
/// threads in a profiler-detached run behave bit-identically to an
/// unregistered build.
///
/// Scopes nest: an inner scope on an already-registered thread just
/// relabels the role for its lifetime (RunCli registers "main"; a worker
/// loop registering a more specific role wins while it is alive).
class ProfiledThreadScope {
 public:
  explicit ProfiledThreadScope(std::string_view role);
  ~ProfiledThreadScope();

  ProfiledThreadScope(const ProfiledThreadScope&) = delete;
  ProfiledThreadScope& operator=(const ProfiledThreadScope&) = delete;

 private:
  void* entry_ = nullptr;  // ThreadEntry* this scope claimed; null if nested.
  bool nested_ = false;
  char saved_role_[64] = {};
};

/// Role of the calling thread ("?" when unregistered). For log/crash context.
std::string CurrentThreadRole();

/// One captured stack: innermost frame first, signal/profiler frames
/// already trimmed.
struct ThreadStack {
  std::string role;
  pid_t tid = 0;
  std::vector<void*> frames;
};

/// Interrupts the target registered thread with SIGPROF and copies its
/// current stack. Returns false if the tid is not registered or the thread
/// did not respond within ~200ms. Safe to call whether or not the profiler
/// is running.
bool CaptureThreadStackByTid(pid_t tid, ThreadStack* out);

/// Captures every registered thread (skipping the caller's own profiler
/// internals). Order: registry slot order.
std::vector<ThreadStack> CaptureAllThreadStacks();

/// Best-effort symbol name for a program counter: demangled function name
/// via dladdr, falling back to "module+0xoff" / "0xaddr". Cached.
std::string SymbolizeFrame(void* pc);

/// Human-readable rendering of captured stacks (one block per thread) for
/// the /debug/stacks endpoint and watchdog dumps.
std::string RenderThreadStacksText(const std::vector<ThreadStack>& stacks);

/// Single line "outer;...;inner" rendering of one stack (watchdog logs).
std::string RenderStackFolded(const std::vector<void*>& frames);

/// Async-signal-safe: dumps the most recent ring samples of every
/// registered thread to `fd` using only write(2) and
/// backtrace_symbols_fd(3). Crash-handler use only; output is best-effort
/// (torn role strings under concurrency are acceptable).
void DumpRecentProfilerSamplesToFd(int fd);

/// --- Sampling profiler ----------------------------------------------------
///
/// A process-wide, dependency-free sampling CPU profiler. While running it
/// arms one POSIX interval timer per registered thread on that thread's
/// CPU clock; each expiry delivers SIGPROF to the owning thread, whose
/// handler captures a stack with backtrace(3) into a lock-free per-thread
/// ring (signal handler is the only producer, the collector thread the
/// only consumer). The collector drains rings every ~100ms, aggregates
/// samples into folded stacks keyed by thread role, and publishes
/// profile.* metrics. Symbolization is lazy: raw program counters are
/// stored until a snapshot is rendered.
///
/// When not started, nothing is armed and no signals fire: runs are
/// bit-identical with and without the profiler linked in, matching the
/// tracer/metrics null-pointer convention.
struct ProfilerOptions {
  /// Samples per second of *on-CPU time* per thread (1..1000).
  int hz = 97;
  /// Optional sink for profile.samples / profile.drops / profile.threads
  /// and top-symbol self-time share gauges. Null disables metric export
  /// (samples are still collected).
  MetricsRegistry* metrics = nullptr;
};

class Profiler {
 public:
  /// Folded-stack key ("role;outer;...;leaf") -> sample count.
  using Counts = std::map<std::string, uint64_t>;

  /// Starts the process-wide profiler. Fails if already running or if hz
  /// is out of range. Timer creation failures on individual threads are
  /// logged and skipped, not fatal.
  static Status Start(const ProfilerOptions& options);

  /// Stops sampling, joins the collector, and folds any residual ring
  /// contents into the aggregate. Counts remain readable after Stop.
  static void Stop();

  static bool active();

  /// Symbolized aggregate since the last Start (or across the whole run if
  /// stopped). Includes samples still sitting in rings.
  static Counts CountsSnapshot();

  /// Windowed view: after - before, dropping non-positive rows.
  static Counts DiffCounts(const Counts& after, const Counts& before);

  /// Renders counts in folded-stack text format, one "key count" per line,
  /// sorted by key (stable across runs for tooling).
  static std::string RenderFolded(const Counts& counts);

  /// Lifetime totals across all Start/Stop cycles.
  static uint64_t samples_total();
  static uint64_t drops_total();
};

}  // namespace mvrob

#endif  // MVROB_COMMON_PROFILER_H_
