#include "common/log.h"

#include <cctype>
#include <cstdlib>
#include <iostream>

#include "common/crash.h"
#include "common/json.h"
#include "common/string_util.h"

namespace mvrob {

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

StatusOr<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return Status::InvalidArgument(
      StrCat("unknown log level '", text,
             "' (expected debug|info|warn|error|off)"));
}

Logger::Logger(std::ostream* sink, Options options)
    : sink_(sink), options_(options), min_level_(options.min_level) {}

void Logger::Log(LogLevel level, std::string_view site,
                 std::string_view message,
                 std::initializer_list<LogField> fields) {
  LogAt(std::chrono::steady_clock::now(), level, site, message, fields);
}

void Logger::LogAt(std::chrono::steady_clock::time_point now, LogLevel level,
                   std::string_view site, std::string_view message,
                   std::initializer_list<LogField> fields) {
  if (sink_ == nullptr || !enabled(level)) return;

  const uint64_t ts_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t suppressed = 0;
  if (options_.burst > 0) {
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      it = sites_.emplace(std::string(site), SiteState{}).first;
      it->second.window_start = now;
    }
    SiteState& state = it->second;
    if (now - state.window_start >= options_.window) {
      state.window_start = now;
      state.in_window = 0;
    }
    if (state.in_window >= options_.burst) {
      ++state.suppressed;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++state.in_window;
    suppressed = state.suppressed;
    state.suppressed = 0;
  }

  // Render the record as one compact JSON line. Fields live in a nested
  // object so user keys can never collide with the reserved ones.
  JsonWriter json;
  json.BeginObject();
  json.Key("ts_us");
  json.Uint(ts_us);
  json.Key("level");
  json.String(LogLevelToString(level));
  json.Key("site");
  json.String(site);
  json.Key("msg");
  json.String(message);
  if (suppressed > 0) {
    json.Key("suppressed");
    json.Uint(suppressed);
  }
  if (fields.size() > 0) {
    json.Key("fields");
    json.BeginObject();
    for (const LogField& field : fields) {
      json.Key(field.key);
      if (field.quoted) {
        json.String(field.value);
      } else {
        json.RawValue(field.value);
      }
    }
    json.EndObject();
  }
  json.EndObject();
  // Mirror every emitted record into the crash flight recorder's in-memory
  // ring so postmortems carry the last few log lines.
  CrashLogRingAppend(json.str());
  *sink_ << json.str() << '\n';
  sink_->flush();
}

Logger& GlobalLogger() {
  static Logger* logger = [] {
    Logger::Options options;
    const char* env = std::getenv("MVROB_LOG_LEVEL");
    bool env_invalid = false;
    if (env != nullptr) {
      StatusOr<LogLevel> parsed = ParseLogLevel(env);
      if (parsed.ok()) {
        options.min_level = *parsed;
      } else {
        env_invalid = true;
      }
    }
    auto* instance = new Logger(&std::cerr, options);
    if (env_invalid) {
      instance->Log(LogLevel::kWarn, "log.env",
                    "ignoring invalid MVROB_LOG_LEVEL; using 'info'",
                    {{"value", env}});
    }
    return instance;
  }();
  return *logger;
}

}  // namespace mvrob
