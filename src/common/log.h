#ifndef MVROB_COMMON_LOG_H_
#define MVROB_COMMON_LOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mvrob {

/// Severity of a log record. The numeric order matters: a logger emits a
/// record iff its level is >= the configured minimum, and kOff silences
/// everything.
enum class LogLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug", "info", "warn", "error" or "off".
std::string_view LogLevelToString(LogLevel level);

/// Parses a level name (case-insensitive). "warning" is accepted as an
/// alias for "warn".
StatusOr<LogLevel> ParseLogLevel(std::string_view text);

/// One key/value pair attached to a log record. Values are rendered as
/// JSON strings unless constructed from a numeric or boolean type.
struct LogField {
  LogField(std::string_view k, std::string_view v)
      : key(k), value(v), quoted(true) {}
  LogField(std::string_view k, const char* v)
      : key(k), value(v), quoted(true) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), value(v), quoted(true) {}
  LogField(std::string_view k, int64_t v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  LogField(std::string_view k, uint64_t v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  LogField(std::string_view k, int v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false"), quoted(false) {}

  std::string key;
  std::string value;
  bool quoted;  // false: value is emitted verbatim (number/bool).
};

/// A leveled, thread-safe, JSON-lines structured logger with per-site rate
/// limiting. Every record is one line of JSON on the sink:
///
///   {"ts_us":1712345678901234,"level":"warn","site":"pool.workers",
///    "msg":"clamped worker count","fields":{"requested":99,"used":8}}
///
/// `site` is a stable dotted tag naming the emitting code location
/// (e.g. "pool.workers", "serve.listen"); the rate limiter operates per
/// site so one noisy loop cannot drown the log. When records were
/// suppressed, the site's next emitted record carries a top-level
/// `"suppressed":<n>` count. See docs/formats.md for the full schema.
class Logger {
 public:
  struct Options {
    LogLevel min_level = LogLevel::kInfo;
    /// Per-site rate limit: at most `burst` records per site within any
    /// `window`; the rest are dropped (and surfaced via "suppressed").
    /// burst <= 0 disables rate limiting.
    int burst = 20;
    std::chrono::steady_clock::duration window = std::chrono::seconds(60);
  };

  /// `sink` may be null (drops everything); not owned.
  explicit Logger(std::ostream* sink) : Logger(sink, Options()) {}
  Logger(std::ostream* sink, Options options);

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Cheap enough to guard call sites: one relaxed atomic load.
  bool enabled(LogLevel level) const {
    return level >= min_level_.load(std::memory_order_relaxed) &&
           level != LogLevel::kOff;
  }
  void set_min_level(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return min_level_.load(std::memory_order_relaxed);
  }

  void Log(LogLevel level, std::string_view site, std::string_view message,
           std::initializer_list<LogField> fields = {});

  /// Fake-clock variant for deterministic rate-limiter tests: `now` drives
  /// only the rate-limit window (the rendered ts_us is still wall time).
  void LogAt(std::chrono::steady_clock::time_point now, LogLevel level,
             std::string_view site, std::string_view message,
             std::initializer_list<LogField> fields = {});

  /// Total records dropped by the rate limiter so far.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct SiteState {
    std::chrono::steady_clock::time_point window_start{};
    int in_window = 0;
    uint64_t suppressed = 0;  // Dropped since the last emitted record.
  };

  std::ostream* const sink_;
  const Options options_;
  std::atomic<LogLevel> min_level_;
  std::atomic<uint64_t> dropped_{0};
  std::mutex mu_;  // Serializes sink writes and guards sites_.
  std::map<std::string, SiteState, std::less<>> sites_;
};

/// The process-wide logger: stderr sink, minimum level taken from the
/// MVROB_LOG_LEVEL environment variable at first use (default "info";
/// invalid values fall back to "info" with a warning record). The CLI's
/// --log-level flag overrides it via set_min_level.
Logger& GlobalLogger();

}  // namespace mvrob

#endif  // MVROB_COMMON_LOG_H_
