#include "common/version.h"

#include "common/json.h"
#include "common/string_util.h"
#include "common/version_info.h"

namespace mvrob {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {
      MVROB_GIT_DESCRIBE,
      "" __VERSION__,
      MVROB_BUILD_TYPE,
      MVROB_SANITIZE_MODE,
  };
  return info;
}

std::string BuildInfoText() {
  const BuildInfo& info = GetBuildInfo();
  return StrCat("mvrob ", info.git_describe, "\ncompiler: ", info.compiler,
                "\nbuild_type: ", info.build_type,
                "\nsanitizer: ", info.sanitizer, "\n");
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  JsonWriter json;
  json.BeginObject();
  json.Key("git_describe");
  json.String(info.git_describe);
  json.Key("compiler");
  json.String(info.compiler);
  json.Key("build_type");
  json.String(info.build_type);
  json.Key("sanitizer");
  json.String(info.sanitizer);
  json.EndObject();
  return json.str();
}

}  // namespace mvrob
