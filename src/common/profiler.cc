#include "common/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <string.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace mvrob {
namespace {

// ---------------------------------------------------------------------------
// Registry + per-thread sample rings.
//
// Fixed-size everything: the SIGPROF handler may only touch memory that
// exists for the whole process lifetime and may not allocate, so entries,
// rings and the remote-capture slot are static arrays addressed through a
// thread_local pointer.
// ---------------------------------------------------------------------------

constexpr size_t kMaxThreads = 128;
constexpr size_t kMaxFrames = 24;
constexpr size_t kRingSize = 256;  // Power of two; ~2.6s of 97hz samples.
constexpr size_t kCaptureFrames = 64;

struct Sample {
  uint32_t n = 0;
  void* pc[kMaxFrames];
};

struct ThreadEntry {
  std::atomic<bool> in_use{false};
  pid_t tid = 0;
  pthread_t handle{};
  char role[64] = {};
  bool sampleable = true;  // Profiler internals opt out of their own timer.
  // SPSC ring: the owning thread's signal handler produces, the collector
  // (or the owning thread's scope destructor) consumes.
  std::atomic<uint32_t> head{0};
  std::atomic<uint32_t> tail{0};
  std::atomic<uint64_t> drops{0};
  Sample ring[kRingSize];
  timer_t timer{};
  bool timer_armed = false;
};

ThreadEntry g_entries[kMaxThreads];
// Guards slot claim/release, role strings and timer arm/disarm.
std::mutex g_registry_mu;
thread_local ThreadEntry* tl_entry = nullptr;

// True while a Profiler session is sampling; read (relaxed) in the handler.
std::atomic<bool> g_sampling{false};

// Remote stack capture: one request at a time, guarded by g_capture_mu on
// the requester side. The handler on the target thread fills frames and
// flips done.
std::mutex g_capture_mu;
std::atomic<pid_t> g_capture_target{0};
std::atomic<bool> g_capture_done{false};
std::atomic<int> g_capture_n{0};
void* g_capture_frames[kCaptureFrames];

// Aggregate of drained samples: raw stacks keyed by (role, pcs) so the
// signal path never symbolizes. Guarded by g_agg_mu.
struct RawKey {
  std::string role;
  std::vector<void*> pcs;
  bool operator<(const RawKey& other) const {
    if (role != other.role) return role < other.role;
    return pcs < other.pcs;
  }
};
std::mutex g_agg_mu;
std::map<RawKey, uint64_t>& Aggregate() {
  static auto* agg = new std::map<RawKey, uint64_t>();
  return *agg;
}
std::atomic<uint64_t> g_samples_total{0};
std::atomic<uint64_t> g_drops_total{0};

void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ucontext*/) {
  const int saved_errno = errno;
  ThreadEntry* entry = tl_entry;
  // Remote capture request addressed to this thread takes precedence over
  // (and replaces) a sampling hit.
  if (entry != nullptr &&
      g_capture_target.load(std::memory_order_acquire) == entry->tid) {
    int n = backtrace(g_capture_frames, static_cast<int>(kCaptureFrames));
    g_capture_n.store(n > 0 ? n : 0, std::memory_order_release);
    g_capture_target.store(0, std::memory_order_release);
    g_capture_done.store(true, std::memory_order_release);
    errno = saved_errno;
    return;
  }
  if (entry == nullptr || !g_sampling.load(std::memory_order_relaxed)) {
    errno = saved_errno;
    return;
  }
  const uint32_t head = entry->head.load(std::memory_order_relaxed);
  const uint32_t tail = entry->tail.load(std::memory_order_acquire);
  if (head - tail >= kRingSize) {
    entry->drops.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  Sample& sample = entry->ring[head % kRingSize];
  int n = backtrace(sample.pc, static_cast<int>(kMaxFrames));
  sample.n = n > 0 ? static_cast<uint32_t>(n) : 0;
  entry->head.store(head + 1, std::memory_order_release);
  errno = saved_errno;
}

// One-time setup: warm backtrace (its first call may allocate / dlopen,
// which must not happen inside a signal handler) and install the SIGPROF
// handler. SA_RESTART keeps most blocking syscalls transparent; the HTTP
// poll loop additionally tolerates EINTR.
void EnsureProfilerInit() {
  static std::once_flag once;
  std::call_once(once, [] {
    void* warm[kMaxFrames];
    backtrace(warm, static_cast<int>(kMaxFrames));
    struct sigaction action;
    memset(&action, 0, sizeof(action));
    action.sa_sigaction = &SigprofHandler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    sigaction(SIGPROF, &action, nullptr);
  });
}

// Arms a per-thread CPU-clock timer delivering SIGPROF to exactly that
// thread. Caller holds g_registry_mu. Best-effort: failure leaves the
// thread unprofiled but the process healthy.
void ArmTimerLocked(ThreadEntry& entry, int hz) {
  if (entry.timer_armed || !entry.sampleable) return;
  clockid_t clock;
  if (pthread_getcpuclockid(entry.handle, &clock) != 0) return;
  struct sigevent event;
  memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_THREAD_ID;
  event.sigev_signo = SIGPROF;
  event._sigev_un._tid = entry.tid;
  timer_t timer;
  if (timer_create(clock, &event, &timer) != 0) return;
  const long interval_ns = 1'000'000'000L / std::max(1, hz);
  struct itimerspec spec;
  spec.it_interval.tv_sec = interval_ns / 1'000'000'000L;
  spec.it_interval.tv_nsec = interval_ns % 1'000'000'000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(timer, 0, &spec, nullptr) != 0) {
    timer_delete(timer);
    return;
  }
  entry.timer = timer;
  entry.timer_armed = true;
}

void DisarmTimerLocked(ThreadEntry& entry) {
  if (!entry.timer_armed) return;
  timer_delete(entry.timer);
  entry.timer_armed = false;
}

// Folds everything currently in an entry's ring into the aggregate.
// Consumer side of the SPSC ring; caller must be the sole consumer
// (collector thread, or the owning thread's destructor after disarming).
void DrainEntryRing(ThreadEntry& entry, const char* role) {
  const uint32_t head = entry.head.load(std::memory_order_acquire);
  uint32_t tail = entry.tail.load(std::memory_order_relaxed);
  if (tail == head) return;
  std::lock_guard<std::mutex> lock(g_agg_mu);
  auto& agg = Aggregate();
  for (; tail != head; ++tail) {
    const Sample& sample = entry.ring[tail % kRingSize];
    RawKey key;
    key.role = role;
    key.pcs.assign(sample.pc, sample.pc + sample.n);
    agg[key] += 1;
    g_samples_total.fetch_add(1, std::memory_order_relaxed);
  }
  entry.tail.store(tail, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Symbolization (never on the signal path).
// ---------------------------------------------------------------------------

std::mutex g_sym_mu;
std::unordered_map<void*, std::string>& SymbolCache() {
  static auto* cache = new std::unordered_map<void*, std::string>();
  return *cache;
}

std::string Demangle(const char* name) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status != 0 || demangled == nullptr) {
    free(demangled);
    return name;
  }
  std::string result(demangled);
  free(demangled);
  // Folded-stack keys want the function, not its argument list.
  size_t paren = result.find('(');
  if (paren != std::string::npos && paren > 0) result.resize(paren);
  return result;
}

std::string SymbolizeFrameUncached(void* pc) {
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    return Demangle(info.dli_sname);
  }
  char buf[64];
  if (dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    snprintf(buf, sizeof(buf), "%.32s+0x%zx", base,
             reinterpret_cast<size_t>(pc) -
                 reinterpret_cast<size_t>(info.dli_fbase));
    return buf;
  }
  snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<size_t>(pc));
  return buf;
}

// Drops the profiler's own frames (handler + signal trampoline + backtrace
// plumbing) from the innermost end of a captured stack. The handler has
// internal linkage, so dladdr cannot name it — recognize its frame by
// address range instead (the return address of the backtrace(3) call sits
// a few hundred bytes into the function) and drop the signal trampoline
// sitting right above it. Name matching stays as a fallback for stacks
// captured through other paths.
size_t SignalFramesToTrim(const std::vector<void*>& frames) {
  const size_t probe = std::min<size_t>(frames.size(), 5);
  const char* handler = reinterpret_cast<const char*>(&SigprofHandler);
  for (size_t i = 0; i < probe; ++i) {
    const char* pc = reinterpret_cast<const char*>(frames[i]);
    if (pc >= handler && pc < handler + 1024) {
      return std::min(i + 2, frames.size());
    }
    const std::string sym = SymbolizeFrame(frames[i]);
    if (sym.find("restore_rt") != std::string::npos ||
        sym.find("SigprofHandler") != std::string::npos ||
        sym.find("killpg") != std::string::npos) {
      return i + 1;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Collector.
// ---------------------------------------------------------------------------

struct Collector {
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  MetricsRegistry* metrics = nullptr;
  uint64_t published_samples = 0;
  uint64_t published_drops = 0;
};
Collector* g_collector = nullptr;  // Guarded by g_registry_mu for start/stop.

uint64_t RingDropsTotal() {
  uint64_t drops = g_drops_total.load(std::memory_order_relaxed);
  for (ThreadEntry& entry : g_entries) {
    if (entry.in_use.load(std::memory_order_acquire)) {
      drops += entry.drops.load(std::memory_order_relaxed);
    }
  }
  return drops;
}

void DrainAllRings() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  for (ThreadEntry& entry : g_entries) {
    if (entry.in_use.load(std::memory_order_acquire)) {
      DrainEntryRing(entry, entry.role);
    }
  }
}

// Sanitizes a symbol for use as a Prometheus label value embedded in the
// registry's "name{label=value}" convention: the renderer splits on commas
// and braces, so those (and quotes/spaces) must not appear.
std::string PromSafeSymbol(std::string_view symbol) {
  std::string out;
  out.reserve(std::min<size_t>(symbol.size(), 80));
  for (char c : symbol) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':' ||
                    c == '.';
    out.push_back(ok ? c : '_');
    if (out.size() >= 80) break;
  }
  return out;
}

void PublishMetrics(Collector& collector) {
  MetricsRegistry* metrics = collector.metrics;
  if (metrics == nullptr) return;
  const uint64_t samples = g_samples_total.load(std::memory_order_relaxed);
  const uint64_t drops = RingDropsTotal();
  if (samples > collector.published_samples) {
    metrics->counter("profile.samples")
        .Add(samples - collector.published_samples);
    collector.published_samples = samples;
  }
  if (drops > collector.published_drops) {
    metrics->counter("profile.drops").Add(drops - collector.published_drops);
    collector.published_drops = drops;
  }
  size_t threads = 0;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    for (ThreadEntry& entry : g_entries) {
      if (entry.in_use.load(std::memory_order_relaxed)) ++threads;
    }
  }
  metrics->gauge("profile.threads").Set(static_cast<int64_t>(threads));

  // Top leaf symbols by self time, as permille of all samples.
  std::unordered_map<std::string, uint64_t> self;
  uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(g_agg_mu);
    for (const auto& [key, count] : Aggregate()) {
      if (key.pcs.empty()) continue;
      const size_t trim = SignalFramesToTrim(key.pcs);
      if (trim >= key.pcs.size()) continue;
      self[SymbolizeFrame(key.pcs[trim])] += count;
      total += count;
    }
  }
  if (total == 0) return;
  std::vector<std::pair<std::string, uint64_t>> top(self.begin(), self.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top.size() > 8) top.resize(8);
  for (const auto& [symbol, count] : top) {
    metrics
        ->gauge(StrCat("profile.self_share_permille{symbol=",
                       PromSafeSymbol(symbol), "}"))
        .Set(static_cast<int64_t>(count * 1000 / total));
  }
}

void CollectorLoop(Collector* collector) {
  ProfiledThreadScope scope("profiler.collector");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(collector->mu);
      collector->cv.wait_for(lock, std::chrono::milliseconds(100),
                             [&] { return collector->stop; });
      if (collector->stop) break;
    }
    DrainAllRings();
    PublishMetrics(*collector);
  }
  DrainAllRings();
  PublishMetrics(*collector);
}

int g_active_hz = 0;  // Guarded by g_registry_mu; 0 = not sampling.

}  // namespace

// ---------------------------------------------------------------------------
// ProfiledThreadScope.
// ---------------------------------------------------------------------------

ProfiledThreadScope::ProfiledThreadScope(std::string_view role) {
  EnsureProfilerInit();
  if (tl_entry != nullptr) {
    // Nested scope: relabel the existing registration for our lifetime.
    nested_ = true;
    std::lock_guard<std::mutex> lock(g_registry_mu);
    memcpy(saved_role_, tl_entry->role, sizeof(saved_role_));
    strncpy(tl_entry->role, std::string(role).c_str(),
            sizeof(tl_entry->role) - 1);
    tl_entry->role[sizeof(tl_entry->role) - 1] = '\0';
    return;
  }
  std::lock_guard<std::mutex> lock(g_registry_mu);
  for (ThreadEntry& entry : g_entries) {
    if (entry.in_use.load(std::memory_order_relaxed)) continue;
    entry.tid = gettid();
    entry.handle = pthread_self();
    strncpy(entry.role, std::string(role).c_str(), sizeof(entry.role) - 1);
    entry.role[sizeof(entry.role) - 1] = '\0';
    entry.sampleable = role.rfind("profiler.", 0) != 0;
    entry.head.store(0, std::memory_order_relaxed);
    entry.tail.store(0, std::memory_order_relaxed);
    entry.drops.store(0, std::memory_order_relaxed);
    entry.timer_armed = false;
    entry.in_use.store(true, std::memory_order_release);
    entry_ = &entry;
    tl_entry = &entry;
    if (g_active_hz > 0) ArmTimerLocked(entry, g_active_hz);
    return;
  }
  // Registry full: thread stays unprofiled. Harmless, but worth a note.
  GlobalLogger().Log(LogLevel::kWarn, "profiler.registry",
                     "thread registry full; thread will not be profiled",
                     {{"role", std::string(role)}});
}

ProfiledThreadScope::~ProfiledThreadScope() {
  if (nested_) {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    if (tl_entry != nullptr) {
      memcpy(tl_entry->role, saved_role_, sizeof(tl_entry->role));
      tl_entry->role[sizeof(tl_entry->role) - 1] = '\0';
    }
    return;
  }
  if (entry_ == nullptr) return;
  auto* entry = static_cast<ThreadEntry*>(entry_);
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    DisarmTimerLocked(*entry);
  }
  // After disarming, no more signals hit this thread, so we can safely act
  // as the ring consumer and fold residual samples into the aggregate.
  tl_entry = nullptr;
  DrainEntryRing(*entry, entry->role);
  g_drops_total.fetch_add(entry->drops.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_registry_mu);
  entry->in_use.store(false, std::memory_order_release);
}

std::string CurrentThreadRole() {
  if (tl_entry == nullptr) return "?";
  std::lock_guard<std::mutex> lock(g_registry_mu);
  return tl_entry->role;
}

// ---------------------------------------------------------------------------
// Remote stack capture.
// ---------------------------------------------------------------------------

bool CaptureThreadStackByTid(pid_t tid, ThreadStack* out) {
  EnsureProfilerInit();
  pthread_t handle{};
  std::string role;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    bool found = false;
    for (ThreadEntry& entry : g_entries) {
      if (entry.in_use.load(std::memory_order_acquire) && entry.tid == tid) {
        handle = entry.handle;
        role = entry.role;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  std::lock_guard<std::mutex> lock(g_capture_mu);
  if (tl_entry != nullptr && tl_entry->tid == tid) {
    // Self-capture needs no signal round trip.
    std::vector<void*> frames(kCaptureFrames);
    int n = backtrace(frames.data(), static_cast<int>(kCaptureFrames));
    frames.resize(n > 0 ? static_cast<size_t>(n) : 0);
    out->role = role;
    out->tid = tid;
    out->frames = std::move(frames);
    return true;
  }
  g_capture_done.store(false, std::memory_order_relaxed);
  g_capture_n.store(0, std::memory_order_relaxed);
  g_capture_target.store(tid, std::memory_order_release);
  if (pthread_kill(handle, SIGPROF) != 0) {
    g_capture_target.store(0, std::memory_order_release);
    return false;
  }
  for (int spin = 0; spin < 2000; ++spin) {
    if (g_capture_done.load(std::memory_order_acquire)) break;
    struct timespec ts = {0, 100'000};  // 100us.
    nanosleep(&ts, nullptr);
  }
  if (!g_capture_done.load(std::memory_order_acquire)) {
    g_capture_target.store(0, std::memory_order_release);
    return false;
  }
  const int n = g_capture_n.load(std::memory_order_acquire);
  out->role = role;
  out->tid = tid;
  out->frames.assign(g_capture_frames, g_capture_frames + n);
  const size_t trim = SignalFramesToTrim(out->frames);
  out->frames.erase(out->frames.begin(),
                    out->frames.begin() + static_cast<long>(trim));
  return true;
}

std::vector<ThreadStack> CaptureAllThreadStacks() {
  std::vector<pid_t> tids;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    for (ThreadEntry& entry : g_entries) {
      if (entry.in_use.load(std::memory_order_acquire)) {
        tids.push_back(entry.tid);
      }
    }
  }
  std::vector<ThreadStack> stacks;
  for (pid_t tid : tids) {
    ThreadStack stack;
    if (CaptureThreadStackByTid(tid, &stack)) stacks.push_back(std::move(stack));
  }
  return stacks;
}

std::string SymbolizeFrame(void* pc) {
  std::lock_guard<std::mutex> lock(g_sym_mu);
  auto& cache = SymbolCache();
  auto it = cache.find(pc);
  if (it != cache.end()) return it->second;
  std::string sym = SymbolizeFrameUncached(pc);
  cache.emplace(pc, sym);
  return sym;
}

std::string RenderThreadStacksText(const std::vector<ThreadStack>& stacks) {
  std::string out;
  for (const ThreadStack& stack : stacks) {
    out += StrCat("thread tid=", stack.tid, " role=", stack.role, "\n");
    size_t depth = 0;
    for (void* pc : stack.frames) {
      out += StrCat("  #", depth++, " ", SymbolizeFrame(pc), "\n");
    }
    if (stack.frames.empty()) out += "  <no frames>\n";
    out += "\n";
  }
  return out;
}

void DumpRecentProfilerSamplesToFd(int fd) {
  // Async-signal-safe: no locks, no allocation; relaxed atomic reads of
  // live rings plus write(2)/backtrace_symbols_fd only.
  auto write_str = [fd](const char* s) {
    ssize_t ignored = write(fd, s, strlen(s));
    (void)ignored;
  };
  for (ThreadEntry& entry : g_entries) {
    if (!entry.in_use.load(std::memory_order_relaxed)) continue;
    const uint32_t head = entry.head.load(std::memory_order_relaxed);
    const uint32_t tail = entry.tail.load(std::memory_order_relaxed);
    if (head == tail) continue;
    write_str("role=");
    write_str(entry.role);
    write_str("\n");
    const uint32_t available = head - tail;
    const uint32_t dump = available < 4 ? available : 4;
    for (uint32_t i = 0; i < dump; ++i) {
      const Sample& sample = entry.ring[(head - 1 - i) % kRingSize];
      const uint32_t n = sample.n <= kMaxFrames ? sample.n : kMaxFrames;
      write_str("sample:\n");
      backtrace_symbols_fd(const_cast<void**>(sample.pc), static_cast<int>(n),
                           fd);
    }
  }
}

std::string RenderStackFolded(const std::vector<void*>& frames) {
  std::string out;
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (!out.empty()) out.push_back(';');
    out.append(SymbolizeFrame(*it));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Profiler.
// ---------------------------------------------------------------------------

Status Profiler::Start(const ProfilerOptions& options) {
  if (options.hz < 1 || options.hz > 1000) {
    return Status::InvalidArgument(
        StrCat("profile hz out of range [1,1000]: ", options.hz));
  }
  EnsureProfilerInit();
  std::lock_guard<std::mutex> lock(g_registry_mu);
  if (g_active_hz > 0) {
    return Status::InvalidArgument("profiler already running");
  }
  {
    std::lock_guard<std::mutex> agg_lock(g_agg_mu);
    Aggregate().clear();
  }
  g_active_hz = options.hz;
  g_sampling.store(true, std::memory_order_release);
  for (ThreadEntry& entry : g_entries) {
    if (entry.in_use.load(std::memory_order_acquire)) {
      ArmTimerLocked(entry, options.hz);
    }
  }
  g_collector = new Collector();
  g_collector->metrics = options.metrics;
  g_collector->published_samples =
      g_samples_total.load(std::memory_order_relaxed);
  g_collector->published_drops = RingDropsTotal();
  g_collector->thread = std::thread(CollectorLoop, g_collector);
  return Status::Ok();
}

void Profiler::Stop() {
  Collector* collector = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    if (g_active_hz == 0) return;
    g_active_hz = 0;
    g_sampling.store(false, std::memory_order_release);
    for (ThreadEntry& entry : g_entries) {
      if (entry.in_use.load(std::memory_order_acquire)) {
        DisarmTimerLocked(entry);
      }
    }
    collector = g_collector;
    g_collector = nullptr;
  }
  if (collector != nullptr) {
    {
      std::lock_guard<std::mutex> lock(collector->mu);
      collector->stop = true;
    }
    collector->cv.notify_all();
    collector->thread.join();
    delete collector;
  }
}

bool Profiler::active() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  return g_active_hz > 0;
}

Profiler::Counts Profiler::CountsSnapshot() {
  DrainAllRings();
  Counts counts;
  std::lock_guard<std::mutex> lock(g_agg_mu);
  for (const auto& [key, count] : Aggregate()) {
    const size_t trim = SignalFramesToTrim(key.pcs);
    std::string folded = key.role;
    for (size_t i = key.pcs.size(); i > trim; --i) {
      folded.push_back(';');
      folded.append(SymbolizeFrame(key.pcs[i - 1]));
    }
    counts[folded] += count;
  }
  return counts;
}

Profiler::Counts Profiler::DiffCounts(const Counts& after,
                                      const Counts& before) {
  Counts diff;
  for (const auto& [key, count] : after) {
    auto it = before.find(key);
    const uint64_t base = it != before.end() ? it->second : 0;
    if (count > base) diff[key] = count - base;
  }
  return diff;
}

std::string Profiler::RenderFolded(const Counts& counts) {
  std::string out;
  for (const auto& [key, count] : counts) {
    out += StrCat(key, " ", count, "\n");
  }
  return out;
}

uint64_t Profiler::samples_total() {
  return g_samples_total.load(std::memory_order_relaxed);
}

uint64_t Profiler::drops_total() { return RingDropsTotal(); }

}  // namespace mvrob
