#ifndef MVROB_COMMON_CRASH_H_
#define MVROB_COMMON_CRASH_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace mvrob {

/// --- Crash flight recorder ------------------------------------------------
///
/// A fatal-signal handler (SIGSEGV / SIGBUS / SIGABRT / SIGFPE / SIGILL)
/// that writes a postmortem file before the process dies:
///
///   mvrob.crash.<pid>.txt
///     === mvrob crash flight recorder ===   banner + signal + fault addr
///     --- faulting stack ---                backtrace_symbols_fd frames
///     --- recent profiler samples ---       last few stacks per thread ring
///     --- recent log events ---             last N structured log lines
///
/// The handler is strictly async-signal-safe: everything it emits goes
/// through write(2) on a file opened with open(2); the output path is
/// precomputed at install time; symbolization uses backtrace_symbols_fd
/// (no malloc). After dumping, the signal is re-raised with its default
/// disposition so exit status / core dumps behave exactly as without the
/// recorder. See docs/formats.md for the file schema.
struct CrashRecorderOptions {
  /// Directory for the crash file; empty means the current directory.
  std::string directory;
};

/// Installs the handler (idempotent; later calls just update the path).
Status InstallCrashRecorder(const CrashRecorderOptions& options = {});

/// True once InstallCrashRecorder succeeded.
bool CrashRecorderInstalled();

/// The precomputed path the handler will write ("" before install).
std::string CrashFilePath();

/// Appends one structured-log line to the in-memory ring the crash dump
/// drains. Fed by Logger on every emitted record; cheap (one memcpy into a
/// fixed slot), lock-free, and torn reads under concurrency are acceptable
/// — this is best-effort postmortem context, not a durable log.
void CrashLogRingAppend(std::string_view line);

/// Deliberately dereferences null. Exists so tests (and manual smoke runs)
/// can produce a real SIGSEGV whose faulting frame names this function.
[[gnu::noinline]] void CrashForTesting();

}  // namespace mvrob

#endif  // MVROB_COMMON_CRASH_H_
