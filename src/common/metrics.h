#ifndef MVROB_COMMON_METRICS_H_
#define MVROB_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mvrob {

/// A monotonically increasing event count. All mutators are lock-free and
/// safe to call from any thread.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable instantaneous value (queue depth, pool size).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A distribution with fixed log-spaced (power-of-two) buckets: bucket 0
/// holds the value 0, bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i - 1], and the last bucket absorbs everything larger.
/// Observe is lock-free; readers see a consistent-enough snapshot for
/// reporting (buckets/count/sum are independently relaxed).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 44;

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0, 1]) from the log-spaced buckets:
  /// linear interpolation within the bucket holding the target rank,
  /// clamped to the observed max. Exact for 0/1-valued data; within a 2x
  /// factor otherwise (bucket resolution). 0 when empty.
  uint64_t Quantile(double q) const;

  /// The same estimator over an externally assembled bucket array (used by
  /// the windowed histograms, which merge per-second slots first).
  static uint64_t QuantileFromBuckets(const uint64_t (&buckets)[kNumBuckets],
                                      uint64_t count, uint64_t max_value,
                                      double q);

  /// Smallest value that lands in bucket `i` (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }
  static size_t BucketIndex(uint64_t value);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// A counter that additionally tracks its recent activity in per-second
/// slots over a fixed trailing window, so a long-running process can
/// report *current* throughput next to the lifetime total. All methods are
/// thread-safe (one mutex; this is an aggregate instrument, not a
/// per-iteration hot-path counter).
///
/// Every mutator/reader takes an explicit steady_clock time point so tests
/// can drive a deterministic fake clock; the no-argument overloads read
/// the real clock.
class WindowedCounter {
 public:
  explicit WindowedCounter(uint32_t window_seconds = 60);

  void Increment() { Add(1); }
  void Add(uint64_t delta) { Add(delta, std::chrono::steady_clock::now()); }
  void Add(uint64_t delta, std::chrono::steady_clock::time_point now);

  uint64_t total() const;
  uint32_t window_seconds() const { return window_; }

  /// Sum of events in the trailing window ending at `now`.
  uint64_t WindowTotal(std::chrono::steady_clock::time_point now) const;

  /// WindowTotal divided by the window length — or by the instrument's
  /// age while it is younger than one window, so early rates are not
  /// diluted by empty future slots.
  double RatePerSecond(std::chrono::steady_clock::time_point now) const;

 private:
  int64_t SlotSecond(std::chrono::steady_clock::time_point now) const;

  const uint32_t window_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<uint64_t> slot_count_;  // window_ per-second slots.
  std::vector<int64_t> slot_sec_;     // Second owning each slot; -1 empty.
  uint64_t total_ = 0;
};

/// Point-in-time summary of a WindowedHistogram's trailing window.
struct WindowedHistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// A time-decaying distribution: observations land in per-second slots
/// (each a compact log-bucketed histogram) and anything older than the
/// window falls out of the reported quantiles. Thread-safe via one mutex;
/// the explicit-time overloads support deterministic fake-clock tests.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(uint32_t window_seconds = 60);

  void Observe(uint64_t value) {
    Observe(value, std::chrono::steady_clock::now());
  }
  void Observe(uint64_t value, std::chrono::steady_clock::time_point now);

  uint64_t total_count() const;
  /// Lifetime sum of all observed values (not just the trailing window);
  /// with total_count this backs the monotonic Prometheus _sum/_count
  /// companions that make PromQL rate()/mean queries possible.
  uint64_t total_sum() const;
  uint32_t window_seconds() const { return window_; }

  /// Merges the live slots and computes count/sum/max plus p50/p95/p99
  /// over the trailing window ending at `now`.
  WindowedHistogramStats WindowStats(
      std::chrono::steady_clock::time_point now) const;

 private:
  struct Slot {
    int64_t sec = -1;  // Second owning this slot; -1 empty.
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t buckets[Histogram::kNumBuckets] = {};
  };

  int64_t SlotSecond(std::chrono::steady_clock::time_point now) const;

  const uint32_t window_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;  // window_ per-second slots.
  uint64_t total_count_ = 0;
  uint64_t total_sum_ = 0;
};

/// One completed span for the Chrome trace_event export: a named interval
/// on one thread, microseconds relative to the registry's creation.
struct TraceEvent {
  std::string name;
  uint32_t tid = 0;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
};

/// Copies of every metric's state at one instant, in registry (map)
/// order. Produced by MetricsRegistry::Snapshot and consumed by both the
/// JSON exporter and the Prometheus text renderer (common/prom.h).
struct MetricsSnapshot {
  struct HistogramState {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    double mean = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    uint64_t buckets[Histogram::kNumBuckets] = {};
  };
  struct WindowedCounterState {
    uint64_t total = 0;
    uint64_t window_total = 0;
    double rate_per_second = 0;
    uint32_t window_seconds = 0;
  };
  struct WindowedHistogramState {
    uint64_t total_count = 0;
    uint64_t total_sum = 0;
    uint32_t window_seconds = 0;
    WindowedHistogramStats window;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramState>> histograms;
  std::vector<std::pair<std::string, WindowedCounterState>> windowed_counters;
  std::vector<std::pair<std::string, WindowedHistogramState>>
      windowed_histograms;
};

/// A lightweight, thread-safe metrics registry: named counters, gauges,
/// and histograms plus a span log for trace export. Instrumented code
/// holds a nullable `MetricsRegistry*` — a null pointer disables the
/// instrumentation site entirely (the differential tests assert that
/// enabling metrics never changes analysis results, and the benchmarks
/// that the disabled path costs nothing measurable).
///
/// Usage pattern for hot paths: resolve the metric once (`counter(name)`
/// returns a stable reference), accumulate locally, publish once per unit
/// of work. Name lookups take a mutex; metric mutations are lock-free.
///
/// Export formats:
///  - SnapshotJson(): flat JSON ({"version":1,"counters":{...},
///    "gauges":{...},"histograms":{...}}) for --stats-json;
///  - TraceJson(): a Chrome trace_event object ({"traceEvents":[...]})
///    loadable in chrome://tracing and Perfetto, for --trace-out.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Named metric accessors; created on first use, addresses stable for
  /// the registry's lifetime. Thread-safe.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Sliding-window instruments (serve mode / live telemetry). The first
  /// caller fixes the window length; later calls return the existing
  /// instrument regardless of `window_seconds`.
  WindowedCounter& windowed_counter(std::string_view name,
                                    uint32_t window_seconds = 60);
  WindowedHistogram& windowed_histogram(std::string_view name,
                                        uint32_t window_seconds = 60);

  /// Copies every metric's current state; windowed instruments are
  /// evaluated at `now` (injectable for deterministic tests).
  MetricsSnapshot Snapshot(std::chrono::steady_clock::time_point now =
                               std::chrono::steady_clock::now()) const;

  /// Records a completed span (trace event + a "phase.<name>_us"
  /// histogram observation). Thread-safe.
  void RecordSpan(std::string_view name,
                  std::chrono::steady_clock::time_point begin,
                  std::chrono::steady_clock::time_point end);

  std::string SnapshotJson() const;
  std::string TraceJson() const;
  /// Copy of the recorded spans (for callers composing a merged Chrome
  /// trace with events from other sources, e.g. the txn tracer).
  std::vector<TraceEvent> TraceEvents() const;

  /// A small dense id for the calling thread (1, 2, ...), used as the
  /// trace `tid` and for per-thread work accounting.
  static uint32_t CurrentThreadId();

 private:
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // Guards the metric maps (not the metrics).
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedCounter>> windowed_counters_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>>
      windowed_histograms_;

  mutable std::mutex trace_mu_;  // Guards events_.
  std::vector<TraceEvent> events_;
};

/// RAII phase timer: times a scope and records it as a span on the
/// registry. A null registry makes construction and destruction no-ops
/// (no clock read, no allocation).
class PhaseTimer {
 public:
  PhaseTimer(MetricsRegistry* registry, std::string_view name)
      : registry_(registry) {
    if (registry_ == nullptr) return;
    name_.assign(name);
    start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (registry_ == nullptr) return;
    registry_->RecordSpan(name_, start_, std::chrono::steady_clock::now());
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mvrob

#endif  // MVROB_COMMON_METRICS_H_
