#ifndef MVROB_COMMON_METRICS_H_
#define MVROB_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mvrob {

/// A monotonically increasing event count. All mutators are lock-free and
/// safe to call from any thread.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable instantaneous value (queue depth, pool size).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A distribution with fixed log-spaced (power-of-two) buckets: bucket 0
/// holds the value 0, bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i - 1], and the last bucket absorbs everything larger.
/// Observe is lock-free; readers see a consistent-enough snapshot for
/// reporting (buckets/count/sum are independently relaxed).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 44;

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0, 1]) from the log-spaced buckets:
  /// linear interpolation within the bucket holding the target rank,
  /// clamped to the observed max. Exact for 0/1-valued data; within a 2x
  /// factor otherwise (bucket resolution). 0 when empty.
  uint64_t Quantile(double q) const;

  /// Smallest value that lands in bucket `i` (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }
  static size_t BucketIndex(uint64_t value);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// One completed span for the Chrome trace_event export: a named interval
/// on one thread, microseconds relative to the registry's creation.
struct TraceEvent {
  std::string name;
  uint32_t tid = 0;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
};

/// A lightweight, thread-safe metrics registry: named counters, gauges,
/// and histograms plus a span log for trace export. Instrumented code
/// holds a nullable `MetricsRegistry*` — a null pointer disables the
/// instrumentation site entirely (the differential tests assert that
/// enabling metrics never changes analysis results, and the benchmarks
/// that the disabled path costs nothing measurable).
///
/// Usage pattern for hot paths: resolve the metric once (`counter(name)`
/// returns a stable reference), accumulate locally, publish once per unit
/// of work. Name lookups take a mutex; metric mutations are lock-free.
///
/// Export formats:
///  - SnapshotJson(): flat JSON ({"version":1,"counters":{...},
///    "gauges":{...},"histograms":{...}}) for --stats-json;
///  - TraceJson(): a Chrome trace_event object ({"traceEvents":[...]})
///    loadable in chrome://tracing and Perfetto, for --trace-out.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Named metric accessors; created on first use, addresses stable for
  /// the registry's lifetime. Thread-safe.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Records a completed span (trace event + a "phase.<name>_us"
  /// histogram observation). Thread-safe.
  void RecordSpan(std::string_view name,
                  std::chrono::steady_clock::time_point begin,
                  std::chrono::steady_clock::time_point end);

  std::string SnapshotJson() const;
  std::string TraceJson() const;

  /// A small dense id for the calling thread (1, 2, ...), used as the
  /// trace `tid` and for per-thread work accounting.
  static uint32_t CurrentThreadId();

 private:
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // Guards the three maps (not the metrics).
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;

  mutable std::mutex trace_mu_;  // Guards events_.
  std::vector<TraceEvent> events_;
};

/// RAII phase timer: times a scope and records it as a span on the
/// registry. A null registry makes construction and destruction no-ops
/// (no clock read, no allocation).
class PhaseTimer {
 public:
  PhaseTimer(MetricsRegistry* registry, std::string_view name)
      : registry_(registry) {
    if (registry_ == nullptr) return;
    name_.assign(name);
    start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (registry_ == nullptr) return;
    registry_->RecordSpan(name_, start_, std::chrono::steady_clock::now());
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mvrob

#endif  // MVROB_COMMON_METRICS_H_
