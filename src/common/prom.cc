#include "common/prom.h"

#include <cctype>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace mvrob {

PromSeriesName ParsePromSeriesName(std::string_view name) {
  PromSeriesName parsed;
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos || !name.ends_with('}')) {
    parsed.base.assign(name);
    return parsed;
  }
  parsed.base.assign(name.substr(0, brace));
  std::string_view body = name.substr(brace + 1, name.size() - brace - 2);
  for (const std::string& pair : SplitAndTrim(body, ',')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;  // Malformed pair: dropped.
    parsed.labels.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
  }
  return parsed;
}

std::string SanitizePromName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  if (std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string EscapePromLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

// Renders `{k="v",...}` from parsed labels plus optional extras; empty
// string when there are none.
std::string LabelBlock(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto* set : {&labels, &extra}) {
    for (const auto& [key, value] : *set) {
      if (!first) out.push_back(',');
      first = false;
      out += SanitizePromName(key);
      out += "=\"";
      out += EscapePromLabelValue(value);
      out += '"';
    }
  }
  out.push_back('}');
  return out;
}

// Emits one `# TYPE` header per family (first occurrence wins); families
// with labeled variants share the header.
class TypeHeaders {
 public:
  void Emit(std::ostream& out, const std::string& family,
            std::string_view type) {
    if (!seen_.insert(family).second) return;
    out << "# TYPE " << family << ' ' << type << '\n';
  }

 private:
  std::set<std::string> seen_;
};

std::string FamilyName(std::string_view ns, const std::string& base,
                       std::string_view suffix = "") {
  return SanitizePromName(StrCat(ns, "_", base, suffix));
}

// std::to_string on doubles prints fixed 6-decimal noise; use a terse
// round-trippable form instead.
std::string FormatDouble(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 std::string_view ns) {
  std::ostringstream out;
  TypeHeaders types;

  for (const auto& [name, value] : snapshot.counters) {
    PromSeriesName series = ParsePromSeriesName(name);
    const std::string family = FamilyName(ns, series.base, "_total");
    types.Emit(out, family, "counter");
    out << family << LabelBlock(series.labels) << ' ' << value << '\n';
  }

  for (const auto& [name, value] : snapshot.gauges) {
    PromSeriesName series = ParsePromSeriesName(name);
    const std::string family = FamilyName(ns, series.base);
    types.Emit(out, family, "gauge");
    out << family << LabelBlock(series.labels) << ' ' << value << '\n';
  }

  for (const auto& [name, state] : snapshot.histograms) {
    PromSeriesName series = ParsePromSeriesName(name);
    const std::string family = FamilyName(ns, series.base);
    types.Emit(out, family, "histogram");
    // Cumulative buckets up to the highest non-empty one, then +Inf.
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (state.buckets[i] != 0) last = i;
    }
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= last; ++i) {
      cumulative += state.buckets[i];
      // Bucket 0 holds {0}; bucket i holds [2^(i-1), 2^i - 1].
      const uint64_t upper = i == 0 ? 0 : (uint64_t{1} << i) - 1;
      out << family << "_bucket"
          << LabelBlock(series.labels, {{"le", StrCat(upper)}}) << ' '
          << cumulative << '\n';
    }
    out << family << "_bucket"
        << LabelBlock(series.labels, {{"le", "+Inf"}}) << ' ' << state.count
        << '\n';
    out << family << "_sum" << LabelBlock(series.labels) << ' ' << state.sum
        << '\n';
    out << family << "_count" << LabelBlock(series.labels) << ' '
        << state.count << '\n';
  }

  for (const auto& [name, state] : snapshot.windowed_counters) {
    PromSeriesName series = ParsePromSeriesName(name);
    const std::string total_family = FamilyName(ns, series.base, "_total");
    types.Emit(out, total_family, "counter");
    out << total_family << LabelBlock(series.labels) << ' ' << state.total
        << '\n';
    const std::string rate_family = FamilyName(ns, series.base, "_rate");
    types.Emit(out, rate_family, "gauge");
    out << rate_family
        << LabelBlock(series.labels,
                      {{"window", StrCat(state.window_seconds, "s")}})
        << ' ' << FormatDouble(state.rate_per_second) << '\n';
  }

  for (const auto& [name, state] : snapshot.windowed_histograms) {
    PromSeriesName series = ParsePromSeriesName(name);
    const std::string family = FamilyName(ns, series.base);
    types.Emit(out, family, "summary");
    const std::vector<std::pair<std::string_view, uint64_t>> quantiles = {
        {"0.5", state.window.p50},
        {"0.95", state.window.p95},
        {"0.99", state.window.p99},
    };
    for (const auto& [q, value] : quantiles) {
      out << family
          << LabelBlock(series.labels, {{"quantile", std::string(q)}}) << ' '
          << value << '\n';
    }
    // Lifetime (monotonic) companions, per the summary-type contract: a
    // windowed sum/count would go backwards as slots expire and break
    // PromQL rate()/mean. The windowed view stays available through the
    // quantile gauges above and /snapshot.
    out << family << "_sum" << LabelBlock(series.labels) << ' '
        << state.total_sum << '\n';
    out << family << "_count" << LabelBlock(series.labels) << ' '
        << state.total_count << '\n';
  }

  return out.str();
}

std::string RenderPrometheusText(const MetricsRegistry& registry,
                                 std::string_view ns) {
  return RenderPrometheusText(registry.Snapshot(), ns);
}

}  // namespace mvrob
