#ifndef MVROB_COMMON_HTTP_H_
#define MVROB_COMMON_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/status.h"

namespace mvrob {

struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string path;    // Decoded-free path, e.g. "/metrics".
  std::string query;   // Everything after '?', empty if none.
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A minimal, dependency-free, blocking HTTP/1.1 server — just enough to
/// expose telemetry endpoints (GET/HEAD, no request bodies, every response
/// `Connection: close`). Single-threaded poll loop over the listening
/// socket and a bounded set of client connections; not a general web
/// server and not meant to face the open internet.
///
/// Lifecycle: construct with a handler, Start() to bind/listen (port 0
/// picks an ephemeral port, readable via port()), then Serve() on the
/// thread that should run the loop. Shutdown() — async-signal-safe — wakes
/// the loop and makes Serve() return after closing every connection.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// Listen address: a numeric IPv4 address or a hostname ("localhost")
    /// resolved to one via getaddrinfo.
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral.
    /// Connections beyond this are accepted and immediately answered 503.
    int max_connections = 32;
    /// Connections idle longer than this are dropped.
    int idle_timeout_ms = 10'000;
    /// Request heads larger than this are answered 431 and dropped.
    size_t max_request_bytes = 16 * 1024;
  };

  explicit HttpServer(Handler handler)
      : HttpServer(std::move(handler), Options()) {}
  HttpServer(Handler handler, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and listens. After Ok, port() returns the bound port.
  Status Start();
  int port() const { return port_; }

  /// Runs the accept/serve loop on the calling thread until Shutdown().
  /// Returns Ok on a clean shutdown; FailedPrecondition without Start().
  Status Serve();

  /// Wakes Serve() and makes it return. Safe from any thread and from a
  /// signal handler (one relaxed store + one write(2) on a pipe).
  void Shutdown();

  /// True once Shutdown() was requested. Lets long-running handlers (e.g.
  /// a /debug/pprof?seconds=N window) bail out early instead of delaying
  /// the serve loop's exit.
  bool shutting_down() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void CloseAll();

  Handler handler_;
  Options options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> shutdown_{false};
};

/// A tiny blocking HTTP/1.1 GET client for tests and smoke checks:
/// connects to host:port, issues `GET path`, reads until EOF. Returns the
/// parsed status/content-type/body.
StatusOr<HttpResponse> HttpGet(const std::string& host, int port,
                               const std::string& path,
                               int timeout_ms = 5'000);

}  // namespace mvrob

#endif  // MVROB_COMMON_HTTP_H_
