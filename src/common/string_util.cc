#include "common/string_util.h"

#include <cctype>
#include <charconv>

namespace mvrob {

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

namespace {

// Shared strict-parse core: from_chars must consume the whole string.
template <typename T>
StatusOr<T> ParseWhole(std::string_view text, T min, T max) {
  if (text.empty()) {
    return Status::InvalidArgument("expected an integer, got an empty string");
  }
  T value{};
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument(
        StrCat("'", text, "' is out of range [", min, ", ", max, "]"));
  }
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument(
        StrCat("'", text, "' is not an integer"));
  }
  if (value < min || value > max) {
    return Status::InvalidArgument(
        StrCat("'", text, "' is out of range [", min, ", ", max, "]"));
  }
  return value;
}

}  // namespace

StatusOr<int64_t> ParseInt64(std::string_view text, int64_t min, int64_t max) {
  return ParseWhole<int64_t>(text, min, max);
}

StatusOr<uint64_t> ParseUint64(std::string_view text, uint64_t max) {
  return ParseWhole<uint64_t>(text, 0, max);
}

StatusOr<int> ParseInt(std::string_view text, int min, int max) {
  StatusOr<int64_t> parsed = ParseInt64(text, min, max);
  if (!parsed.ok()) return parsed.status();
  return static_cast<int>(*parsed);
}

StatusOr<double> ParseDouble(std::string_view text, double min, double max) {
  if (text.empty()) {
    return Status::InvalidArgument("expected a number, got an empty string");
  }
  double value{};
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value,
                                   std::chars_format::fixed);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument(
        StrCat("'", text, "' is out of range [", min, ", ", max, "]"));
  }
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument(StrCat("'", text, "' is not a number"));
  }
  if (!(value >= min && value <= max)) {
    return Status::InvalidArgument(
        StrCat("'", text, "' is out of range [", min, ", ", max, "]"));
  }
  return value;
}

std::vector<std::string> SplitAndTrim(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= input.size()) {
    size_t end = input.find(delimiter, start);
    if (end == std::string_view::npos) end = input.size();
    std::string_view piece = StripWhitespace(input.substr(start, end - start));
    if (!piece.empty()) pieces.emplace_back(piece);
    start = end + 1;
  }
  return pieces;
}

}  // namespace mvrob
