#include "common/string_util.h"

#include <cctype>

namespace mvrob {

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= input.size()) {
    size_t end = input.find(delimiter, start);
    if (end == std::string_view::npos) end = input.size();
    std::string_view piece = StripWhitespace(input.substr(start, end - start));
    if (!piece.empty()) pieces.emplace_back(piece);
    start = end + 1;
  }
  return pieces;
}

}  // namespace mvrob
