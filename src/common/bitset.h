#ifndef MVROB_COMMON_BITSET_H_
#define MVROB_COMMON_BITSET_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mvrob {

/// Dense word-packed bit kernels for the robustness hot path.
///
/// Algorithm 1 spends its time asking set-membership questions over
/// transaction ids ("which Tm ww-conflict with T1?", "do these two
/// component sets intersect?"). Packing those sets 64 ids per word turns
/// the inner candidate scans into a handful of AND/OR/ANDNOT word ops plus
/// a set-bit walk, and the sorted-vector intersections of the pivot cache
/// into word-wise intersection tests.
///
/// Three layers:
///  - ConstBitSpan / BitSpan: non-owning views (word pointer + bit count)
///    carrying the kernels, so rows of a matrix and standalone sets share
///    one implementation;
///  - DenseBitset: an owning, resizable bitset;
///  - BitMatrix: n x m bits in one contiguous allocation with a fixed
///    word stride, whose rows are spans.
///
/// Invariant everywhere: bits at positions >= size() in the last word are
/// zero, so Count/Any/Intersects never need tail masking.

inline constexpr size_t kBitsPerWord = 64;

inline size_t BitWords(size_t bits) {
  return (bits + kBitsPerWord - 1) / kBitsPerWord;
}

class ConstBitSpan {
 public:
  ConstBitSpan() = default;
  ConstBitSpan(const uint64_t* words, size_t bits)
      : words_(words), bits_(bits) {}

  size_t size() const { return bits_; }
  size_t num_words() const { return BitWords(bits_); }
  uint64_t word(size_t w) const { return words_[w]; }
  const uint64_t* data() const { return words_; }

  bool Test(size_t i) const {
    assert(i < bits_);
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
  }

  bool Any() const {
    for (size_t w = 0; w < num_words(); ++w) {
      if (words_[w]) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  size_t Count() const {
    size_t count = 0;
    for (size_t w = 0; w < num_words(); ++w) {
      count += static_cast<size_t>(std::popcount(words_[w]));
    }
    return count;
  }

  /// True if this span and `other` share a set bit (word-wise AND test).
  bool Intersects(ConstBitSpan other) const {
    assert(bits_ == other.bits_);
    for (size_t w = 0; w < num_words(); ++w) {
      if (words_[w] & other.words_[w]) return true;
    }
    return false;
  }

  /// Index of the lowest set bit, or size() if none.
  size_t FindFirst() const { return FindNext(0); }

  /// Index of the lowest set bit >= from, or size() if none. Enables
  /// breakable iteration: for (i = s.FindFirst(); i < s.size();
  /// i = s.FindNext(i + 1)).
  size_t FindNext(size_t from) const {
    if (from >= bits_) return bits_;
    size_t w = from / kBitsPerWord;
    uint64_t word = words_[w] & (~uint64_t{0} << (from % kBitsPerWord));
    while (true) {
      if (word) {
        return w * kBitsPerWord + static_cast<size_t>(std::countr_zero(word));
      }
      if (++w >= num_words()) return bits_;
      word = words_[w];
    }
  }

  /// Calls fn(i) for every set bit i in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < num_words(); ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        size_t i =
            w * kBitsPerWord + static_cast<size_t>(std::countr_zero(bits));
        fn(i);
        bits &= bits - 1;  // Clear the lowest set bit.
      }
    }
  }

 private:
  const uint64_t* words_ = nullptr;
  size_t bits_ = 0;
};

class BitSpan {
 public:
  BitSpan() = default;
  BitSpan(uint64_t* words, size_t bits) : words_(words), bits_(bits) {}

  operator ConstBitSpan() const { return ConstBitSpan(words_, bits_); }

  size_t size() const { return bits_; }
  size_t num_words() const { return BitWords(bits_); }
  uint64_t word(size_t w) const { return words_[w]; }
  uint64_t* data() const { return words_; }

  bool Test(size_t i) const { return ConstBitSpan(*this).Test(i); }
  bool Any() const { return ConstBitSpan(*this).Any(); }
  bool None() const { return ConstBitSpan(*this).None(); }
  size_t Count() const { return ConstBitSpan(*this).Count(); }
  bool Intersects(ConstBitSpan other) const {
    return ConstBitSpan(*this).Intersects(other);
  }
  size_t FindFirst() const { return ConstBitSpan(*this).FindFirst(); }
  size_t FindNext(size_t from) const {
    return ConstBitSpan(*this).FindNext(from);
  }
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    ConstBitSpan(*this).ForEachSetBit(static_cast<Fn&&>(fn));
  }

  void Set(size_t i) {
    assert(i < bits_);
    words_[i / kBitsPerWord] |= uint64_t{1} << (i % kBitsPerWord);
  }
  void Reset(size_t i) {
    assert(i < bits_);
    words_[i / kBitsPerWord] &= ~(uint64_t{1} << (i % kBitsPerWord));
  }
  void Assign(size_t i, bool value) { value ? Set(i) : Reset(i); }

  void ResetAll() {
    for (size_t w = 0; w < num_words(); ++w) words_[w] = 0;
  }
  void SetAll() {
    for (size_t w = 0; w < num_words(); ++w) words_[w] = ~uint64_t{0};
    ClearTail();
  }

  void CopyFrom(ConstBitSpan other) {
    assert(bits_ == other.size());
    for (size_t w = 0; w < num_words(); ++w) words_[w] = other.word(w);
  }
  /// this &= other.
  void AndWith(ConstBitSpan other) {
    assert(bits_ == other.size());
    for (size_t w = 0; w < num_words(); ++w) words_[w] &= other.word(w);
  }
  /// this |= other.
  void OrWith(ConstBitSpan other) {
    assert(bits_ == other.size());
    for (size_t w = 0; w < num_words(); ++w) words_[w] |= other.word(w);
  }
  /// this &= ~other.
  void AndNotWith(ConstBitSpan other) {
    assert(bits_ == other.size());
    for (size_t w = 0; w < num_words(); ++w) words_[w] &= ~other.word(w);
  }

 private:
  void ClearTail() {
    size_t tail = bits_ % kBitsPerWord;
    if (tail != 0 && num_words() > 0) {
      words_[num_words() - 1] &= (uint64_t{1} << tail) - 1;
    }
  }

  uint64_t* words_ = nullptr;
  size_t bits_ = 0;
};

/// An owning bitset over [0, size()).
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t bits, bool value = false) { Resize(bits, value); }

  void Resize(size_t bits, bool value = false) {
    bits_ = bits;
    words_.assign(BitWords(bits), value ? ~uint64_t{0} : 0);
    if (value) span().SetAll();  // Re-masks the tail.
  }

  size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }
  size_t num_words() const { return words_.size(); }

  BitSpan span() { return BitSpan(words_.data(), bits_); }
  ConstBitSpan span() const { return ConstBitSpan(words_.data(), bits_); }
  operator BitSpan() { return span(); }
  operator ConstBitSpan() const { return span(); }

  bool Test(size_t i) const { return span().Test(i); }
  void Set(size_t i) { span().Set(i); }
  void Reset(size_t i) { span().Reset(i); }
  void Assign(size_t i, bool value) { span().Assign(i, value); }
  void SetAll() { span().SetAll(); }
  void ResetAll() { span().ResetAll(); }
  bool Any() const { return span().Any(); }
  bool None() const { return span().None(); }
  size_t Count() const { return span().Count(); }
  bool Intersects(ConstBitSpan other) const {
    return span().Intersects(other);
  }
  size_t FindFirst() const { return span().FindFirst(); }
  size_t FindNext(size_t from) const { return span().FindNext(from); }
  void CopyFrom(ConstBitSpan other) { span().CopyFrom(other); }
  void AndWith(ConstBitSpan other) { span().AndWith(other); }
  void OrWith(ConstBitSpan other) { span().OrWith(other); }
  void AndNotWith(ConstBitSpan other) { span().AndNotWith(other); }
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    span().ForEachSetBit(static_cast<Fn&&>(fn));
  }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// rows() x cols() bits in one contiguous allocation; every row is a span
/// with a shared word stride, so row ops are cache-friendly and free of
/// per-row allocations.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), stride_(BitWords(cols)),
        words_(rows * stride_, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  BitSpan row(size_t r) {
    assert(r < rows_);
    return BitSpan(words_.data() + r * stride_, cols_);
  }
  ConstBitSpan row(size_t r) const {
    assert(r < rows_);
    return ConstBitSpan(words_.data() + r * stride_, cols_);
  }

  bool Test(size_t r, size_t c) const { return row(r).Test(c); }
  void Set(size_t r, size_t c) { row(r).Set(c); }
  void Reset(size_t r, size_t c) { row(r).Reset(c); }
  void Assign(size_t r, size_t c, bool value) { row(r).Assign(c, value); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mvrob

#endif  // MVROB_COMMON_BITSET_H_
