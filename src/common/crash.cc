#include "common/crash.h"

#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

#include "common/profiler.h"
#include "common/string_util.h"

namespace mvrob {
namespace {

// --- Structured-log ring (fed by Logger, drained by the handler) ----------

constexpr size_t kLogRingEntries = 32;
constexpr size_t kLogRingWidth = 240;

char g_log_ring[kLogRingEntries][kLogRingWidth];
std::atomic<uint64_t> g_log_ring_next{0};

// --- Handler state (all precomputed; the handler only reads) ---------------

std::atomic<bool> g_installed{false};
char g_crash_path[512] = {};
std::mutex g_install_mu;

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL};

const char* SignalName(int signo) {
  switch (signo) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGABRT:
      return "SIGABRT";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
  }
  return "SIG?";
}

// write(2)-only formatting helpers; all async-signal-safe.
void WriteStr(int fd, const char* s) {
  ssize_t ignored = write(fd, s, strlen(s));
  (void)ignored;
}

void WriteDec(int fd, uint64_t value) {
  char buf[24];
  size_t i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0 && i > 0);
  ssize_t ignored = write(fd, buf + i, sizeof(buf) - i);
  (void)ignored;
}

void WriteHex(int fd, uint64_t value) {
  char buf[18];
  size_t i = sizeof(buf);
  do {
    const uint64_t digit = value & 0xF;
    buf[--i] = static_cast<char>(digit < 10 ? '0' + digit : 'a' + digit - 10);
    value >>= 4;
  } while (value != 0 && i > 2);
  buf[--i] = 'x';
  buf[--i] = '0';
  ssize_t ignored = write(fd, buf + i, sizeof(buf) - i);
  (void)ignored;
}

void FatalSignalHandler(int signo, siginfo_t* info, void* /*ucontext*/) {
  // SA_RESETHAND already restored the default disposition; nothing here
  // may allocate, lock, or call into the C++ runtime.
  const int fd =
      open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd >= 0) {
    WriteStr(fd, "=== mvrob crash flight recorder ===\n");
    WriteStr(fd, "signal: ");
    WriteDec(fd, static_cast<uint64_t>(signo));
    WriteStr(fd, " (");
    WriteStr(fd, SignalName(signo));
    WriteStr(fd, ")\n");
    if (signo == SIGSEGV || signo == SIGBUS) {
      WriteStr(fd, "fault_addr: ");
      WriteHex(fd, reinterpret_cast<uint64_t>(info->si_addr));
      WriteStr(fd, "\n");
    }
    WriteStr(fd, "pid: ");
    WriteDec(fd, static_cast<uint64_t>(getpid()));
    WriteStr(fd, " tid: ");
    WriteDec(fd, static_cast<uint64_t>(gettid()));
    WriteStr(fd, "\n\n--- faulting stack ---\n");
    void* frames[64];
    const int n = backtrace(frames, 64);
    backtrace_symbols_fd(frames, n, fd);
    WriteStr(fd, "\n--- recent profiler samples ---\n");
    DumpRecentProfilerSamplesToFd(fd);
    WriteStr(fd, "\n--- recent log events ---\n");
    const uint64_t next = g_log_ring_next.load(std::memory_order_relaxed);
    const uint64_t first =
        next > kLogRingEntries ? next - kLogRingEntries : 0;
    for (uint64_t i = first; i < next; ++i) {
      char* line = g_log_ring[i % kLogRingEntries];
      line[kLogRingWidth - 1] = '\0';
      WriteStr(fd, line);
      WriteStr(fd, "\n");
    }
    WriteStr(fd, "=== end ===\n");
    close(fd);
  }
  raise(signo);
}

}  // namespace

Status InstallCrashRecorder(const CrashRecorderOptions& options) {
  std::lock_guard<std::mutex> lock(g_install_mu);
  std::string path = options.directory;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path += StrCat("mvrob.crash.", static_cast<uint64_t>(getpid()), ".txt");
  if (path.size() >= sizeof(g_crash_path)) {
    return Status::InvalidArgument(
        StrCat("crash file path too long: ", path));
  }
  strncpy(g_crash_path, path.c_str(), sizeof(g_crash_path) - 1);

  if (!g_installed.load(std::memory_order_relaxed)) {
    // Warm backtrace outside the handler (first call may allocate) and run
    // fatal handlers on an alternate stack so stack-overflow SIGSEGVs can
    // still be reported.
    void* warm[8];
    backtrace(warm, 8);
    // Fixed size: SIGSTKSZ is no longer a compile-time constant on modern
    // glibc.
    static char alt_stack[64 * 1024];
    stack_t ss;
    memset(&ss, 0, sizeof(ss));
    ss.ss_sp = alt_stack;
    ss.ss_size = sizeof(alt_stack);
    sigaltstack(&ss, nullptr);

    struct sigaction action;
    memset(&action, 0, sizeof(action));
    action.sa_sigaction = &FatalSignalHandler;
    action.sa_flags = SA_SIGINFO | SA_ONSTACK | SA_RESETHAND | SA_NODEFER;
    sigemptyset(&action.sa_mask);
    for (int signo : kFatalSignals) {
      if (sigaction(signo, &action, nullptr) != 0) {
        return Status::Internal(
            StrCat("sigaction failed for ", SignalName(signo)));
      }
    }
    g_installed.store(true, std::memory_order_release);
  }
  return Status::Ok();
}

bool CrashRecorderInstalled() {
  return g_installed.load(std::memory_order_acquire);
}

std::string CrashFilePath() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  return g_crash_path;
}

void CrashLogRingAppend(std::string_view line) {
  const uint64_t slot =
      g_log_ring_next.fetch_add(1, std::memory_order_relaxed);
  char* dst = g_log_ring[slot % kLogRingEntries];
  const size_t n = line.size() < kLogRingWidth - 1 ? line.size()
                                                   : kLogRingWidth - 1;
  memcpy(dst, line.data(), n);
  dst[n] = '\0';
}

void CrashForTesting() {
  // Volatile so the null dereference survives optimization.
  volatile int* null_pointer = nullptr;
  *null_pointer = 42;
}

}  // namespace mvrob
