#include "common/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

// All socket writes go through send(..., MSG_NOSIGNAL) so a peer that
// resets the connection mid-response yields EPIPE (handled as a drop)
// instead of a process-killing SIGPIPE. Platforms without the flag fall
// back to 0 and must ignore SIGPIPE themselves.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <list>
#include <vector>

#include "common/string_util.h"

namespace mvrob {
namespace {

using Clock = std::chrono::steady_clock;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string RenderResponse(const HttpResponse& response, bool head_only) {
  std::string out = StrCat("HTTP/1.1 ", response.status, " ",
                           ReasonPhrase(response.status), "\r\n");
  out += StrCat("Content-Type: ", response.content_type, "\r\n");
  out += StrCat("Content-Length: ", response.body.size(), "\r\n");
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  return out;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Resolves `host` to an IPv4 address: numeric addresses directly via
// inet_pton, anything else (e.g. "localhost") through getaddrinfo.
Status ResolveIPv4(const std::string& host, in_addr* out) {
  if (::inet_pton(AF_INET, host.c_str(), out) == 1) return Status::Ok();
  addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &results);
  if (rc != 0 || results == nullptr) {
    if (results != nullptr) ::freeaddrinfo(results);
    return Status::InvalidArgument(
        StrCat("cannot resolve '", host,
               "': ", rc != 0 ? gai_strerror(rc) : "no IPv4 address"));
  }
  *out = reinterpret_cast<sockaddr_in*>(results->ai_addr)->sin_addr;
  ::freeaddrinfo(results);
  return Status::Ok();
}

}  // namespace

struct HttpServer::Connection {
  int fd = -1;
  std::string in;        // Bytes read so far (request head).
  std::string out;       // Response bytes not yet written.
  size_t out_off = 0;
  bool responding = false;
  Clock::time_point last_activity;
};

HttpServer::HttpServer(Handler handler, Options options)
    : handler_(std::move(handler)), options_(std::move(options)) {}

HttpServer::~HttpServer() { CloseAll(); }

void HttpServer::CloseAll() {
  for (int* fd : {&listen_fd_, &wake_read_fd_, &wake_write_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

Status HttpServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal(StrCat("pipe: ", std::strerror(errno)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    Status status = Status::Internal(StrCat("socket: ", std::strerror(errno)));
    CloseAll();
    return status;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (Status resolved = ResolveIPv4(options_.host, &addr.sin_addr);
      !resolved.ok()) {
    CloseAll();
    return Status::InvalidArgument(
        StrCat("invalid listen address: ", resolved.message()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::Internal(
        StrCat("bind ", options_.host, ":", options_.port, ": ",
               std::strerror(errno)));
    CloseAll();
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status = Status::Internal(StrCat("listen: ", std::strerror(errno)));
    CloseAll();
    return status;
  }
  SetNonBlocking(listen_fd_);

  sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::Ok();
}

void HttpServer::Shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  if (wake_write_fd_ >= 0) {
    const char byte = 'x';
    // Best-effort wake; the loop also polls shutdown_ on every timeout.
    [[maybe_unused]] ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
  }
}

Status HttpServer::Serve() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("Serve() requires a successful Start()");
  }
  std::list<Connection> connections;

  while (!shutdown_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (Connection& conn : connections) {
      fds.push_back(
          {conn.fd, static_cast<short>(conn.responding ? POLLOUT : POLLIN),
           0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 1000);
    if (ready < 0) {
      if (errno == EINTR) continue;  // Signal: loop re-checks shutdown_.
      return Status::Internal(StrCat("poll: ", std::strerror(errno)));
    }
    const Clock::time_point now = Clock::now();

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) {
      while (true) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) break;
        SetNonBlocking(client);
        const int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Connection conn;
        conn.fd = client;
        conn.last_activity = now;
        if (connections.size() >=
            static_cast<size_t>(options_.max_connections)) {
          conn.out = RenderResponse(
              {503, "text/plain; charset=utf-8", "busy\n"}, false);
          conn.responding = true;
        }
        connections.push_back(std::move(conn));
      }
    }

    // fds[2..] line up with the connection list's iteration order.
    size_t fd_index = 2;
    for (auto it = connections.begin(); it != connections.end();) {
      Connection& conn = *it;
      const pollfd& pfd =
          fd_index < fds.size() ? fds[fd_index] : pollfd{-1, 0, 0};
      // New connections accepted this round have no pollfd yet.
      const bool polled = fd_index < fds.size() && pfd.fd == conn.fd;
      ++fd_index;
      bool drop = false;

      if (polled && (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          !conn.responding) {
        drop = true;
      } else if (!conn.responding && polled && (pfd.revents & POLLIN) != 0) {
        char buffer[4096];
        while (true) {
          const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
          if (n > 0) {
            conn.in.append(buffer, static_cast<size_t>(n));
            conn.last_activity = now;
            continue;
          }
          if (n == 0) drop = true;  // Peer closed before a full request.
          break;
        }
        if (conn.in.size() > options_.max_request_bytes) {
          conn.out = RenderResponse(
              {431, "text/plain; charset=utf-8", "request too large\n"},
              false);
          conn.responding = true;
          drop = false;
        } else if (const size_t head_end = conn.in.find("\r\n\r\n");
                   head_end != std::string::npos) {
          // Parse "<METHOD> <target> HTTP/1.1".
          const std::string_view head =
              std::string_view(conn.in).substr(0, head_end);
          const std::string_view line = head.substr(0, head.find("\r\n"));
          const std::vector<std::string> parts = SplitAndTrim(line, ' ');
          HttpResponse response;
          bool head_only = false;
          if (parts.size() < 3) {
            response = {400, "text/plain; charset=utf-8", "bad request\n"};
          } else if (parts[0] != "GET" && parts[0] != "HEAD") {
            response = {405, "text/plain; charset=utf-8",
                        "method not allowed\n"};
          } else {
            head_only = parts[0] == "HEAD";
            HttpRequest request;
            request.method = parts[0];
            const std::string& target = parts[1];
            const size_t question = target.find('?');
            request.path = target.substr(0, question);
            if (question != std::string::npos) {
              request.query = target.substr(question + 1);
            }
            response = handler_(request);
          }
          conn.out = RenderResponse(response, head_only);
          conn.responding = true;
          drop = false;
        }
      } else if (conn.responding) {
        while (conn.out_off < conn.out.size()) {
          // MSG_NOSIGNAL: a peer reset surfaces as EPIPE (drop below), not
          // as a SIGPIPE that would kill the whole serving process.
          const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                                   conn.out.size() - conn.out_off,
                                   MSG_NOSIGNAL);
          if (n > 0) {
            conn.out_off += static_cast<size_t>(n);
            conn.last_activity = now;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          drop = true;
          break;
        }
        if (conn.out_off >= conn.out.size()) drop = true;  // Done: close.
      }

      if (!drop && now - conn.last_activity >
                       std::chrono::milliseconds(options_.idle_timeout_ms)) {
        drop = true;
      }
      if (drop) {
        ::close(conn.fd);
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  }

  for (Connection& conn : connections) ::close(conn.fd);
  return Status::Ok();
}

StatusOr<HttpResponse> HttpGet(const std::string& host, int port,
                               const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  timeval timeout = {};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (Status resolved = ResolveIPv4(host, &addr.sin_addr); !resolved.ok()) {
    ::close(fd);
    return resolved;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal(
        StrCat("connect ", host, ":", port, ": ", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  const std::string request =
      StrCat("GET ", path, " HTTP/1.1\r\nHost: ", host,
             "\r\nConnection: close\r\n\r\n");
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return Status::Internal(StrCat("send: ", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      raw.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n < 0) {
      ::close(fd);
      return Status::Internal(StrCat("recv: ", std::strerror(errno)));
    }
    break;
  }
  ::close(fd);

  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || !raw.starts_with("HTTP/1.")) {
    return Status::Internal("malformed HTTP response");
  }
  HttpResponse response;
  const std::string_view head = std::string_view(raw).substr(0, head_end);
  const std::string_view status_line = head.substr(0, head.find("\r\n"));
  const std::vector<std::string> parts = SplitAndTrim(status_line, ' ');
  if (parts.size() < 2) return Status::Internal("malformed status line");
  StatusOr<int> code = ParseInt(parts[1], 100, 599);
  if (!code.ok()) return code.status();
  response.status = *code;
  constexpr std::string_view kContentType = "content-type:";
  size_t line_start = head.find("\r\n");
  while (line_start != std::string_view::npos && line_start < head.size()) {
    std::string_view line = head.substr(line_start + 2);
    const size_t line_end = line.find("\r\n");
    if (line_end != std::string_view::npos) line = line.substr(0, line_end);
    std::string lower;
    for (char c : line.substr(0, kContentType.size())) {
      lower.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower == kContentType) {
      response.content_type =
          std::string(StripWhitespace(line.substr(kContentType.size())));
    }
    line_start = head.find("\r\n", line_start + 2);
  }
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace mvrob
