#ifndef MVROB_COMMON_RNG_H_
#define MVROB_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace mvrob {

/// Deterministic pseudo-random generator used by the synthetic workload
/// generator and the property-test drivers.
///
/// A thin wrapper over std::mt19937_64 so call sites don't repeat
/// distribution boilerplate and all randomness flows through one seedable
/// source (reproducible test failures).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t Index(size_t n) { return static_cast<size_t>(Uniform(0, n - 1)); }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p < 0 ? 0 : (p > 1 ? 1 : p))(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mvrob

#endif  // MVROB_COMMON_RNG_H_
