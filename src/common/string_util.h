#ifndef MVROB_COMMON_STRING_UTIL_H_
#define MVROB_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mvrob {

/// Splits `input` on `delimiter`, dropping empty pieces. "a  b" -> {"a","b"}.
std::vector<std::string> SplitAndTrim(std::string_view input, char delimiter);

/// Removes leading and trailing whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Joins the elements of `parts` with `separator` using operator<<.
template <typename Container>
std::string Join(const Container& parts, std::string_view separator) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << separator;
    out << part;
    first = false;
  }
  return out.str();
}

/// printf-light concatenation: StrCat(1, " + ", 2.5) == "1 + 2.5".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  ((out << args), ...);
  return out.str();
}

}  // namespace mvrob

#endif  // MVROB_COMMON_STRING_UTIL_H_
