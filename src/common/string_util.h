#ifndef MVROB_COMMON_STRING_UTIL_H_
#define MVROB_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mvrob {

/// Splits `input` on `delimiter`, dropping empty pieces. "a  b" -> {"a","b"}.
std::vector<std::string> SplitAndTrim(std::string_view input, char delimiter);

/// Removes leading and trailing whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Strict base-10 integer parsing for untrusted input (CLI flags,
/// environment variables, workload specs). Unlike atoi/strtoull, these
/// reject the empty string, any leading or trailing junk ("12x", " 5",
/// "abc"), a bare sign, and values outside [min, max] — malformed input
/// yields InvalidArgument instead of a silently coerced number.
StatusOr<int64_t> ParseInt64(
    std::string_view text,
    int64_t min = std::numeric_limits<int64_t>::min(),
    int64_t max = std::numeric_limits<int64_t>::max());

/// Same, for unsigned values; a leading '-' is rejected (not wrapped).
StatusOr<uint64_t> ParseUint64(
    std::string_view text,
    uint64_t max = std::numeric_limits<uint64_t>::max());

/// Convenience wrapper for int-typed knobs.
StatusOr<int> ParseInt(std::string_view text,
                       int min = std::numeric_limits<int>::min(),
                       int max = std::numeric_limits<int>::max());

/// Strict decimal parsing for real-valued knobs (e.g. the YCSB Zipfian
/// theta). Accepts plain fixed-point notation ("0.99", "-1.5", "2"); the
/// whole string must parse, and NaN/inf and values outside [min, max] are
/// rejected.
StatusOr<double> ParseDouble(
    std::string_view text,
    double min = std::numeric_limits<double>::lowest(),
    double max = std::numeric_limits<double>::max());

/// Joins the elements of `parts` with `separator` using operator<<.
template <typename Container>
std::string Join(const Container& parts, std::string_view separator) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << separator;
    out << part;
    first = false;
  }
  return out.str();
}

/// printf-light concatenation: StrCat(1, " + ", 2.5) == "1 + 2.5".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  ((out << args), ...);
  return out.str();
}

}  // namespace mvrob

#endif  // MVROB_COMMON_STRING_UTIL_H_
