#ifndef MVROB_COMMON_PROM_H_
#define MVROB_COMMON_PROM_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace mvrob {

/// A registry metric name split into its base and labels. Registry names
/// may carry labels with the convention `base{key=value,key2=value2}`
/// (values raw, unquoted; no ',' or '}' inside); everything else is a
/// plain unlabeled series.
struct PromSeriesName {
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;
};

PromSeriesName ParsePromSeriesName(std::string_view name);

/// Maps an arbitrary registry name onto the Prometheus metric-name
/// alphabet [a-zA-Z0-9_:]: every other byte (dots included) becomes '_',
/// and a leading digit gains a '_' prefix.
std::string SanitizePromName(std::string_view name);

/// Escapes a label value for the text exposition format: backslash,
/// double-quote, and newline are escaped; everything else passes through.
std::string EscapePromLabelValue(std::string_view value);

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4), with every family prefixed by `<ns>_`:
///  - counters as `<ns>_<name>_total` (TYPE counter);
///  - gauges as `<ns>_<name>` (TYPE gauge);
///  - histograms as cumulative `_bucket{le=...}` + `_sum` + `_count`
///    (TYPE histogram) over the log-spaced buckets;
///  - windowed counters as a lifetime `<ns>_<name>_total` counter plus a
///    `<ns>_<name>_rate` gauge (events/s over the trailing window, with a
///    `window` label);
///  - windowed histograms as a summary: `{quantile="0.5|0.95|0.99"}`
///    series plus `_sum`/`_count`, all over the trailing window.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 std::string_view ns = "mvrob");

/// Convenience overload: snapshots `registry` now and renders it.
std::string RenderPrometheusText(const MetricsRegistry& registry,
                                 std::string_view ns = "mvrob");

}  // namespace mvrob

#endif  // MVROB_COMMON_PROM_H_
