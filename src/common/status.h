#ifndef MVROB_COMMON_STATUS_H_
#define MVROB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mvrob {

/// Error categories used across the library. The set is deliberately small:
/// the library is a static-analysis toolkit, so most failures are malformed
/// inputs rather than environmental errors.
enum class StatusCode {
  kOk = 0,
  /// The input violates a documented precondition (e.g. a schedule whose
  /// operation order contradicts a transaction's program order).
  kInvalidArgument,
  /// A referenced entity (transaction id, object, operation) does not exist.
  kNotFound,
  /// The requested computation would exceed a configured resource limit
  /// (used by the exhaustive oracle to refuse intractable instances).
  kResourceExhausted,
  /// The operation is not valid in the current state (e.g. reading from an
  /// MVCC transaction that already aborted).
  kFailedPrecondition,
  /// An environmental failure outside the caller's control (socket or
  /// other OS-level errors from the telemetry server).
  kInternal,
};

/// Returns a human-readable name such as "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
///
/// The library does not use exceptions (per the project style guide); every
/// fallible operation returns Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Holds either a value of type T or an error Status.
///
/// Accessing the value of a non-OK StatusOr is a programming error and
/// asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse,
  /// mirroring absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mvrob

#endif  // MVROB_COMMON_STATUS_H_
