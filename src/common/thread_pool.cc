#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/log.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/string_util.h"

namespace mvrob {
namespace {

// True while the current thread is executing a ParallelFor body; nested
// loops fall back to sequential execution instead of deadlocking on the
// pool.
thread_local bool t_in_parallel_for = false;

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(0, num_workers)));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] {
      // The shared pool's only data-parallel client is the robustness
      // analyzer, so profiles/stack dumps label these threads accordingly.
      ProfiledThreadScope profile_scope(StrCat("analyzer.worker.", i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Work(Job& job) {
  size_t i;
  while ((i = job.next.fetch_add(1, std::memory_order_relaxed)) < job.n) {
    (*job.body)(i);
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      std::lock_guard<std::mutex> lock(job.m);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(m_);
      wake_cv_.wait(lock, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      job = job_;
      if (job == nullptr) continue;  // Job finished before we woke.
      if (job->participants.fetch_add(1, std::memory_order_relaxed) >=
          job->max_participants - 1) {  // Caller occupies one slot.
        job->participants.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      // Register under m_ so the owner cannot retire the job before this
      // worker is accounted for.
      std::lock_guard<std::mutex> job_lock(job->m);
      ++job->active_workers;
    }
    t_in_parallel_for = true;
    Work(*job);
    t_in_parallel_for = false;
    {
      // Notify while holding the lock: the owner destroys the Job as soon
      // as its wait predicate holds, and the wait cannot return before we
      // release the mutex — notifying after unlock would touch a dead cv.
      std::lock_guard<std::mutex> job_lock(job->m);
      --job->active_workers;
      job->done_cv.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, int max_threads,
                             const std::function<void(size_t)>& body,
                             MetricsRegistry* metrics) {
  if (n == 0) return;
  if (metrics != nullptr) {
    metrics->counter("pool.jobs").Increment();
    metrics->counter("pool.iterations").Add(n);
  }
  if (n == 1 || max_threads <= 1 || workers_.empty() || t_in_parallel_for) {
    if (metrics != nullptr) {
      metrics->counter("pool.inline_jobs").Increment();
      metrics->histogram("pool.participants_per_job").Observe(1);
    }
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  Job job;
  job.n = n;
  job.body = &body;
  job.max_participants = std::min<int>(max_threads, max_parallelism());
  {
    std::lock_guard<std::mutex> lock(m_);
    job_ = &job;
    ++job_seq_;
  }
  wake_cv_.notify_all();

  t_in_parallel_for = true;
  Work(job);
  t_in_parallel_for = false;

  {
    std::unique_lock<std::mutex> lock(job.m);
    job.done_cv.wait(lock, [&] {
      return job.completed.load(std::memory_order_acquire) == job.n;
    });
  }
  // Retire the job before draining: workers that woke late see job_ ==
  // nullptr and never touch the (stack-allocated) job; already-registered
  // ones are waited out so the job outlives every reference to it.
  {
    std::lock_guard<std::mutex> lock(m_);
    if (job_ == &job) job_ = nullptr;  // Another caller may have posted.
  }
  {
    std::unique_lock<std::mutex> lock(job.m);
    job.done_cv.wait(lock, [&] { return job.active_workers == 0; });
  }
  if (metrics != nullptr) {
    // Workers that joined, plus the participating caller.
    metrics->histogram("pool.participants_per_job")
        .Observe(static_cast<uint64_t>(
                     job.participants.load(std::memory_order_relaxed)) +
                 1);
  }
}

int ThreadPool::WorkersFromEnv(const char* text, Logger& logger) {
  const int hardware =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int fallback = std::max(0, hardware - 1);
  if (text == nullptr) return fallback;
  StatusOr<int64_t> parsed = ParseInt64(text);
  if (!parsed.ok()) {
    logger.Log(LogLevel::kWarn, "pool.workers",
               "ignoring invalid MVROB_POOL_WORKERS",
               {LogField("value", text),
                LogField("error", parsed.status().message()),
                LogField("used", fallback)});
    return fallback;
  }
  const int clamped = static_cast<int>(
      std::clamp<int64_t>(*parsed, 1, hardware));
  if (clamped != *parsed) {
    logger.Log(LogLevel::kWarn, "pool.workers",
               "MVROB_POOL_WORKERS outside the hardware range; clamped",
               {LogField("requested", *parsed), LogField("min", 1),
                LogField("max", hardware), LogField("used", clamped)});
  }
  return clamped;
}

ThreadPool& ThreadPool::Shared() {
  // One background worker per hardware thread beyond the caller's.
  // MVROB_POOL_WORKERS overrides the count — used by the sanitizer CI to
  // force real concurrency on single-core machines, and available to cap
  // the pool in shared environments. Invalid values are rejected loudly
  // (falling back to the hardware default) instead of silently becoming 0.
  static ThreadPool pool(
      WorkersFromEnv(std::getenv("MVROB_POOL_WORKERS"), GlobalLogger()));
  return pool;
}

int ThreadPool::ResolveThreads(int requested) {
  if (requested > 0) return requested;
  return Shared().max_parallelism();
}

}  // namespace mvrob
