#include "common/watchdog.h"

#include <string.h>
#include <unistd.h>

#include <string>

#include "common/log.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/string_util.h"

namespace mvrob {

Watchdog::Watchdog(Options options) : options_(options) {
  monitor_ = std::thread([this] { MonitorLoop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

int64_t Watchdog::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Watchdog::Slot* Watchdog::Claim(std::string_view site,
                                std::chrono::milliseconds deadline) {
  for (Slot& slot : slots_) {
    bool expected = false;
    if (!slot.active.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      continue;
    }
    // Fill while logically invisible: the monitor skips slots whose
    // deadline_at_ms is 0.
    slot.deadline_at_ms.store(0, std::memory_order_relaxed);
    slot.flagged.store(false, std::memory_order_relaxed);
    slot.deadline_ms = deadline.count();
    strncpy(slot.site, std::string(site).c_str(), sizeof(slot.site) - 1);
    slot.site[sizeof(slot.site) - 1] = '\0';
    slot.tid = gettid();
    slot.deadline_at_ms.store(NowMs() + slot.deadline_ms,
                              std::memory_order_release);
    return &slot;
  }
  Logger& logger = options_.logger != nullptr ? *options_.logger
                                              : GlobalLogger();
  logger.Log(LogLevel::kWarn, "watchdog.slots",
             "watchdog slot table full; scope unmonitored",
             {{"site", std::string(site)}});
  return nullptr;
}

void Watchdog::Release(Slot* slot) {
  slot->deadline_at_ms.store(0, std::memory_order_release);
  slot->active.store(false, std::memory_order_release);
}

void Watchdog::FlagStall(Slot& slot, int64_t now_ms) {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  const std::string site(slot.site);
  if (options_.metrics != nullptr) {
    options_.metrics->counter(StrCat("watchdog.stalls{site=", site, "}"))
        .Add(1);
  }
  Logger& logger = options_.logger != nullptr ? *options_.logger
                                              : GlobalLogger();
  const int64_t deadline_at = slot.deadline_at_ms.load(std::memory_order_relaxed);
  const int64_t overdue_ms = deadline_at > 0 ? now_ms - deadline_at : 0;
  std::string stack = "<unavailable>";
  std::string role = "?";
  if (options_.capture_stacks) {
    ThreadStack captured;
    if (CaptureThreadStackByTid(slot.tid, &captured)) {
      stack = RenderStackFolded(captured.frames);
      role = captured.role;
    }
  }
  logger.Log(LogLevel::kError, "watchdog.stall",
             "monitored scope missed its deadline",
             {{"stall_site", site},
              {"tid", static_cast<int64_t>(slot.tid)},
              {"role", role},
              {"deadline_ms", slot.deadline_ms},
              {"overdue_ms", overdue_ms},
              {"stack", stack}});
}

void Watchdog::MonitorLoop() {
  ProfiledThreadScope thread_scope("watchdog.monitor");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, options_.poll_interval, [&] { return stop_; });
      if (stop_) return;
    }
    const int64_t now_ms = NowMs();
    for (Slot& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      const int64_t deadline_at =
          slot.deadline_at_ms.load(std::memory_order_acquire);
      if (deadline_at == 0 || now_ms <= deadline_at) continue;
      if (slot.flagged.exchange(true, std::memory_order_acq_rel)) continue;
      FlagStall(slot, now_ms);
    }
  }
}

WatchdogScope::WatchdogScope(Watchdog* dog, std::string_view site,
                             std::chrono::milliseconds deadline)
    : dog_(dog) {
  if (dog_ == nullptr) return;
  slot_ = dog_->Claim(site, deadline);
}

WatchdogScope::~WatchdogScope() {
  if (dog_ == nullptr || slot_ == nullptr) return;
  dog_->Release(slot_);
}

void WatchdogScope::Heartbeat() {
  if (dog_ == nullptr || slot_ == nullptr) return;
  slot_->deadline_at_ms.store(Watchdog::NowMs() + slot_->deadline_ms,
                              std::memory_order_release);
  slot_->flagged.store(false, std::memory_order_release);
}

}  // namespace mvrob
