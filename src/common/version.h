#ifndef MVROB_COMMON_VERSION_H_
#define MVROB_COMMON_VERSION_H_

#include <string>
#include <string_view>

namespace mvrob {

/// Build identity baked in at compile/configure time: the CMake-generated
/// version_info.h supplies `git describe` / build type / sanitizer mode,
/// and the compiler identifies itself via __VERSION__. One source feeds
/// `mvrob version`, the serve /healthz body, and crash/log banners.
struct BuildInfo {
  std::string_view git_describe;
  std::string_view compiler;
  std::string_view build_type;
  std::string_view sanitizer;  // "none", "thread" or "address".
};

const BuildInfo& GetBuildInfo();

/// Multi-line human rendering (the `mvrob version` output).
std::string BuildInfoText();

/// {"git_describe":...,"compiler":...,"build_type":...,"sanitizer":...}
std::string BuildInfoJson();

}  // namespace mvrob

#endif  // MVROB_COMMON_VERSION_H_
