#ifndef MVROB_COMMON_THREAD_POOL_H_
#define MVROB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <thread>
#include <vector>

namespace mvrob {

class Logger;
class MetricsRegistry;

/// A small shared worker pool for data-parallel loops.
///
/// The only entry point is ParallelFor, which runs body(i) for every
/// i in [0, n) and blocks until all iterations completed. Iterations are
/// handed out dynamically (one atomic fetch_add per iteration), the calling
/// thread participates, and at most `max_threads` threads work on one loop
/// — so a single process-wide pool sized to the hardware serves callers
/// that want any smaller degree of parallelism.
///
/// Guarantees relied on by the robustness engine:
///  - every iteration runs exactly once, on exactly one thread;
///  - ParallelFor returns only after the last iteration finished (its
///    writes happen-before the return, so callers may read results written
///    by the body without further synchronization);
///  - a ParallelFor issued from inside a body (nested use) degrades to a
///    sequential loop on the calling thread instead of deadlocking.
///
/// Which thread runs which iteration is NOT deterministic; callers needing
/// deterministic output must reduce per-iteration results themselves (see
/// RobustnessAnalyzer::Check for the lowest-witness-wins reduction).
class ThreadPool {
 public:
  /// Spawns `num_workers` background workers (0 is fine: ParallelFor then
  /// simply runs inline on the caller).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Background workers + the participating caller.
  int max_parallelism() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs body(i) for i in [0, n); at most max_threads threads participate
  /// (the caller always counts as one). Blocks until done.
  void ParallelFor(size_t n, int max_threads,
                   const std::function<void(size_t)>& body) {
    ParallelFor(n, max_threads, body, nullptr);
  }

  /// Same, recording pool counters (pool.jobs, pool.iterations,
  /// pool.inline_jobs) and a pool.participants_per_job histogram when
  /// `metrics` is non-null.
  void ParallelFor(size_t n, int max_threads,
                   const std::function<void(size_t)>& body,
                   MetricsRegistry* metrics);

  /// The process-wide pool, sized to the hardware on first use. The
  /// MVROB_POOL_WORKERS environment variable (read once) overrides the
  /// worker count.
  static ThreadPool& Shared();

  /// Resolves the MVROB_POOL_WORKERS override (`text` is the raw env
  /// value, nullptr when unset): invalid input emits a structured warn
  /// record (site "pool.workers") on `logger` and falls back to the
  /// hardware default; valid input is clamped to [1, hardware_concurrency]
  /// with a warning when clamping changed it. Exposed for tests.
  static int WorkersFromEnv(const char* text, Logger& logger);

  /// Resolves a user-facing thread-count knob: values <= 0 mean "use the
  /// hardware", anything else is taken as-is.
  static int ResolveThreads(int requested);

 private:
  struct Job {
    size_t n = 0;
    const std::function<void(size_t)>* body = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::atomic<int> participants{0};
    int max_participants = 1;
    // Workers currently inside Work(); the owner waits for 0 before the
    // stack-allocated Job may die.
    int active_workers = 0;
    std::mutex m;
    std::condition_variable done_cv;
  };

  void WorkerLoop();
  static void Work(Job& job);

  std::mutex m_;
  std::condition_variable wake_cv_;
  Job* job_ = nullptr;       // Guarded by m_.
  uint64_t job_seq_ = 0;     // Guarded by m_; bumped per ParallelFor.
  bool stop_ = false;        // Guarded by m_.
  std::vector<std::thread> workers_;
};

}  // namespace mvrob

#endif  // MVROB_COMMON_THREAD_POOL_H_
