#include "common/rng.h"

// Rng is header-only; this translation unit exists so the common library has
// a stable archive member for the target and future out-of-line additions.
