#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/json.h"
#include "common/string_util.h"

namespace mvrob {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // Values in [2^(i-1), 2^i - 1] have bit_width i and land in bucket i;
  // the last bucket absorbs the tail.
  return std::min<size_t>(std::bit_width(value), kNumBuckets - 1);
}

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::QuantileFromBuckets(
    const uint64_t (&buckets)[kNumBuckets], uint64_t count,
    uint64_t max_value, double q) {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based ceiling, so q=0.5 over 2
  // observations picks the first).
  uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (i == 0) return 0;
    // Interpolate the rank within [lower, upper] of this bucket, assuming
    // the bucket's observations are uniform over its range.
    uint64_t lower = BucketLowerBound(i);
    uint64_t upper = (uint64_t{1} << i) - 1;
    if (max_value != 0) upper = std::min(upper, max_value);
    if (upper <= lower) return lower;
    double within = static_cast<double>(rank - seen) /
                    static_cast<double>(in_bucket);
    return lower + static_cast<uint64_t>(
                       within * static_cast<double>(upper - lower));
  }
  return max_value;
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t buckets[kNumBuckets];
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] = bucket(i);
  return QuantileFromBuckets(buckets, count(), max(), q);
}

WindowedCounter::WindowedCounter(uint32_t window_seconds)
    : window_(std::max<uint32_t>(1, window_seconds)),
      epoch_(std::chrono::steady_clock::now()),
      slot_count_(window_, 0),
      slot_sec_(window_, -1) {}

int64_t WindowedCounter::SlotSecond(
    std::chrono::steady_clock::time_point now) const {
  auto elapsed = now - epoch_;
  if (elapsed.count() < 0) return 0;
  return std::chrono::duration_cast<std::chrono::seconds>(elapsed).count();
}

void WindowedCounter::Add(uint64_t delta,
                          std::chrono::steady_clock::time_point now) {
  const int64_t sec = SlotSecond(now);
  const size_t idx = static_cast<size_t>(sec) % window_;
  std::lock_guard<std::mutex> lock(mu_);
  if (slot_sec_[idx] != sec) {
    slot_sec_[idx] = sec;
    slot_count_[idx] = 0;
  }
  slot_count_[idx] += delta;
  total_ += delta;
}

uint64_t WindowedCounter::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t WindowedCounter::WindowTotal(
    std::chrono::steady_clock::time_point now) const {
  const int64_t sec = SlotSecond(now);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t sum = 0;
  for (size_t i = 0; i < window_; ++i) {
    if (slot_sec_[i] < 0) continue;
    if (slot_sec_[i] > sec || slot_sec_[i] <= sec - window_) continue;
    sum += slot_count_[i];
  }
  return sum;
}

double WindowedCounter::RatePerSecond(
    std::chrono::steady_clock::time_point now) const {
  const double effective = std::min<double>(
      window_, static_cast<double>(SlotSecond(now)) + 1.0);
  return static_cast<double>(WindowTotal(now)) / effective;
}

WindowedHistogram::WindowedHistogram(uint32_t window_seconds)
    : window_(std::max<uint32_t>(1, window_seconds)),
      epoch_(std::chrono::steady_clock::now()),
      slots_(window_) {}

int64_t WindowedHistogram::SlotSecond(
    std::chrono::steady_clock::time_point now) const {
  auto elapsed = now - epoch_;
  if (elapsed.count() < 0) return 0;
  return std::chrono::duration_cast<std::chrono::seconds>(elapsed).count();
}

void WindowedHistogram::Observe(uint64_t value,
                                std::chrono::steady_clock::time_point now) {
  const int64_t sec = SlotSecond(now);
  const size_t idx = static_cast<size_t>(sec) % window_;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[idx];
  if (slot.sec != sec) {
    slot = Slot{};
    slot.sec = sec;
  }
  slot.buckets[Histogram::BucketIndex(value)] += 1;
  slot.count += 1;
  slot.sum += value;
  slot.max = std::max(slot.max, value);
  total_count_ += 1;
  total_sum_ += value;
}

uint64_t WindowedHistogram::total_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_count_;
}

uint64_t WindowedHistogram::total_sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_sum_;
}

WindowedHistogramStats WindowedHistogram::WindowStats(
    std::chrono::steady_clock::time_point now) const {
  const int64_t sec = SlotSecond(now);
  uint64_t merged[Histogram::kNumBuckets] = {};
  WindowedHistogramStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slot& slot : slots_) {
      if (slot.sec < 0) continue;
      if (slot.sec > sec || slot.sec <= sec - window_) continue;
      for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
        merged[b] += slot.buckets[b];
      }
      stats.count += slot.count;
      stats.sum += slot.sum;
      stats.max = std::max(stats.max, slot.max);
    }
  }
  stats.p50 =
      Histogram::QuantileFromBuckets(merged, stats.count, stats.max, 0.50);
  stats.p95 =
      Histogram::QuantileFromBuckets(merged, stats.count, stats.max, 0.95);
  stats.p99 =
      Histogram::QuantileFromBuckets(merged, stats.count, stats.max, 0.99);
  return stats;
}

MetricsRegistry::MetricsRegistry() : epoch_(std::chrono::steady_clock::now()) {}

namespace {

template <typename Map>
auto& FindOrCreate(std::mutex& mu, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(std::string(name));
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return FindOrCreate(mu_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return FindOrCreate(mu_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return FindOrCreate(mu_, histograms_, name);
}

WindowedCounter& MetricsRegistry::windowed_counter(std::string_view name,
                                                   uint32_t window_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windowed_counters_.find(std::string(name));
  if (it == windowed_counters_.end()) {
    it = windowed_counters_
             .emplace(std::string(name),
                      std::make_unique<WindowedCounter>(window_seconds))
             .first;
  }
  return *it->second;
}

WindowedHistogram& MetricsRegistry::windowed_histogram(
    std::string_view name, uint32_t window_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windowed_histograms_.find(std::string(name));
  if (it == windowed_histograms_.end()) {
    it = windowed_histograms_
             .emplace(std::string(name),
                      std::make_unique<WindowedHistogram>(window_seconds))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot(
    std::chrono::steady_clock::time_point now) const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramState state;
    state.count = histogram->count();
    state.sum = histogram->sum();
    state.max = histogram->max();
    state.mean = histogram->Mean();
    state.p50 = histogram->Quantile(0.50);
    state.p95 = histogram->Quantile(0.95);
    state.p99 = histogram->Quantile(0.99);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      state.buckets[i] = histogram->bucket(i);
    }
    snapshot.histograms.emplace_back(name, state);
  }
  snapshot.windowed_counters.reserve(windowed_counters_.size());
  for (const auto& [name, counter] : windowed_counters_) {
    MetricsSnapshot::WindowedCounterState state;
    state.total = counter->total();
    state.window_total = counter->WindowTotal(now);
    state.rate_per_second = counter->RatePerSecond(now);
    state.window_seconds = counter->window_seconds();
    snapshot.windowed_counters.emplace_back(name, state);
  }
  snapshot.windowed_histograms.reserve(windowed_histograms_.size());
  for (const auto& [name, histogram] : windowed_histograms_) {
    MetricsSnapshot::WindowedHistogramState state;
    state.total_count = histogram->total_count();
    state.total_sum = histogram->total_sum();
    state.window_seconds = histogram->window_seconds();
    state.window = histogram->WindowStats(now);
    snapshot.windowed_histograms.emplace_back(name, state);
  }
  return snapshot;
}

void MetricsRegistry::RecordSpan(std::string_view name,
                                 std::chrono::steady_clock::time_point begin,
                                 std::chrono::steady_clock::time_point end) {
  using std::chrono::duration_cast;
  using std::chrono::microseconds;
  if (end < begin) end = begin;
  TraceEvent event;
  event.name.assign(name);
  event.tid = CurrentThreadId();
  event.start_us = static_cast<uint64_t>(
      duration_cast<microseconds>(begin - epoch_).count());
  event.dur_us =
      static_cast<uint64_t>(duration_cast<microseconds>(end - begin).count());
  histogram(StrCat("phase.", name, "_us")).Observe(event.dur_us);
  std::lock_guard<std::mutex> lock(trace_mu_);
  events_.push_back(std::move(event));
}

std::string MetricsRegistry::SnapshotJson() const {
  const MetricsSnapshot snapshot = Snapshot();
  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Uint(1);
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    json.Key(name);
    json.Uint(value);
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    json.Key(name);
    json.Int(value);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, state] : snapshot.histograms) {
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Uint(state.count);
    json.Key("sum");
    json.Uint(state.sum);
    json.Key("max");
    json.Uint(state.max);
    json.Key("mean");
    json.Double(state.mean);
    json.Key("p50");
    json.Uint(state.p50);
    json.Key("p95");
    json.Uint(state.p95);
    json.Key("p99");
    json.Uint(state.p99);
    // Sparse [bucket_lower_bound, count] pairs; empty buckets omitted.
    json.Key("buckets");
    json.BeginArray();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t count = state.buckets[i];
      if (count == 0) continue;
      json.BeginArray();
      json.Uint(Histogram::BucketLowerBound(i));
      json.Uint(count);
      json.EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.Key("windowed_counters");
  json.BeginObject();
  for (const auto& [name, state] : snapshot.windowed_counters) {
    json.Key(name);
    json.BeginObject();
    json.Key("total");
    json.Uint(state.total);
    json.Key("window_total");
    json.Uint(state.window_total);
    json.Key("rate_per_second");
    json.Double(state.rate_per_second);
    json.Key("window_seconds");
    json.Uint(state.window_seconds);
    json.EndObject();
  }
  json.EndObject();
  json.Key("windowed_histograms");
  json.BeginObject();
  for (const auto& [name, state] : snapshot.windowed_histograms) {
    json.Key(name);
    json.BeginObject();
    json.Key("total_count");
    json.Uint(state.total_count);
    json.Key("total_sum");
    json.Uint(state.total_sum);
    json.Key("window_seconds");
    json.Uint(state.window_seconds);
    json.Key("count");
    json.Uint(state.window.count);
    json.Key("sum");
    json.Uint(state.window.sum);
    json.Key("max");
    json.Uint(state.window.max);
    json.Key("p50");
    json.Uint(state.window.p50);
    json.Key("p95");
    json.Uint(state.window.p95);
    json.Key("p99");
    json.Uint(state.window.p99);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

std::string MetricsRegistry::TraceJson() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("traceEvents");
  json.BeginArray();
  for (const TraceEvent& event : events_) {
    json.BeginObject();
    json.Key("name");
    json.String(event.name);
    json.Key("cat");
    json.String("mvrob");
    json.Key("ph");
    json.String("X");
    json.Key("ts");
    json.Uint(event.start_us);
    json.Key("dur");
    json.Uint(event.dur_us);
    json.Key("pid");
    json.Uint(1);
    json.Key("tid");
    json.Uint(event.tid);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::vector<TraceEvent> MetricsRegistry::TraceEvents() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return events_;
}

uint32_t MetricsRegistry::CurrentThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace mvrob
