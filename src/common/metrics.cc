#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/json.h"
#include "common/string_util.h"

namespace mvrob {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // Values in [2^(i-1), 2^i - 1] have bit_width i and land in bucket i;
  // the last bucket absorbs the tail.
  return std::min<size_t>(std::bit_width(value), kNumBuckets - 1);
}

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based ceiling, so q=0.5 over 2
  // observations picks the first).
  uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (i == 0) return 0;
    // Interpolate the rank within [lower, upper] of this bucket, assuming
    // the bucket's observations are uniform over its range.
    uint64_t lower = BucketLowerBound(i);
    uint64_t upper = (uint64_t{1} << i) - 1;
    uint64_t capped_max = max();
    if (capped_max != 0) upper = std::min(upper, capped_max);
    if (upper <= lower) return lower;
    double within = static_cast<double>(rank - seen) /
                    static_cast<double>(in_bucket);
    return lower + static_cast<uint64_t>(
                       within * static_cast<double>(upper - lower));
  }
  return max();
}

MetricsRegistry::MetricsRegistry() : epoch_(std::chrono::steady_clock::now()) {}

namespace {

template <typename Map>
auto& FindOrCreate(std::mutex& mu, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(std::string(name));
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return FindOrCreate(mu_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return FindOrCreate(mu_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return FindOrCreate(mu_, histograms_, name);
}

void MetricsRegistry::RecordSpan(std::string_view name,
                                 std::chrono::steady_clock::time_point begin,
                                 std::chrono::steady_clock::time_point end) {
  using std::chrono::duration_cast;
  using std::chrono::microseconds;
  if (end < begin) end = begin;
  TraceEvent event;
  event.name.assign(name);
  event.tid = CurrentThreadId();
  event.start_us = static_cast<uint64_t>(
      duration_cast<microseconds>(begin - epoch_).count());
  event.dur_us =
      static_cast<uint64_t>(duration_cast<microseconds>(end - begin).count());
  histogram(StrCat("phase.", name, "_us")).Observe(event.dur_us);
  std::lock_guard<std::mutex> lock(trace_mu_);
  events_.push_back(std::move(event));
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Uint(1);
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name);
    json.Uint(counter->value());
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name);
    json.Int(gauge->value());
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Uint(histogram->count());
    json.Key("sum");
    json.Uint(histogram->sum());
    json.Key("max");
    json.Uint(histogram->max());
    json.Key("mean");
    json.Double(histogram->Mean());
    json.Key("p50");
    json.Uint(histogram->Quantile(0.50));
    json.Key("p95");
    json.Uint(histogram->Quantile(0.95));
    json.Key("p99");
    json.Uint(histogram->Quantile(0.99));
    // Sparse [bucket_lower_bound, count] pairs; empty buckets omitted.
    json.Key("buckets");
    json.BeginArray();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t count = histogram->bucket(i);
      if (count == 0) continue;
      json.BeginArray();
      json.Uint(Histogram::BucketLowerBound(i));
      json.Uint(count);
      json.EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

std::string MetricsRegistry::TraceJson() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("traceEvents");
  json.BeginArray();
  for (const TraceEvent& event : events_) {
    json.BeginObject();
    json.Key("name");
    json.String(event.name);
    json.Key("cat");
    json.String("mvrob");
    json.Key("ph");
    json.String("X");
    json.Key("ts");
    json.Uint(event.start_us);
    json.Key("dur");
    json.Uint(event.dur_us);
    json.Key("pid");
    json.Uint(1);
    json.Key("tid");
    json.Uint(event.tid);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

uint32_t MetricsRegistry::CurrentThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace mvrob
