#ifndef MVROB_COMMON_WATCHDOG_H_
#define MVROB_COMMON_WATCHDOG_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <thread>

namespace mvrob {

class Logger;
class MetricsRegistry;

/// A stall watchdog for long-running phases. Phases that can legitimately
/// take a while — robustness checks, engine epochs, GC sweeps, HTTP
/// handlers — wrap themselves in a WatchdogScope carrying a site name and
/// a deadline, and call Heartbeat() as they make progress. A monitor
/// thread polls all live scopes; when one goes past its deadline without a
/// heartbeat it is flagged exactly once per stall instance: the stalled
/// thread's stack is captured (via the profiler's remote capture) and
/// dumped to the structured log together with the site/role context, and
/// `watchdog.stalls{site=...}` is bumped (rendered to Prometheus as
/// mvrob_watchdog_stalls_total{site=...}). A heartbeat re-arms the scope,
/// so a phase that stalls, recovers and stalls again fires again.
///
/// Passing a null Watchdog* anywhere a scope is created disables the scope
/// entirely (same null-pointer convention as tracer/metrics).
class Watchdog {
 public:
  struct Options {
    std::chrono::milliseconds poll_interval{200};
    /// Sink for watchdog.stalls{site=...}; null disables counters.
    MetricsRegistry* metrics = nullptr;
    /// Structured log for stall dumps; null means GlobalLogger().
    Logger* logger = nullptr;
    /// Capture + symbolize the stalled thread's stack in the dump. Tests
    /// that only care about detection can turn this off.
    bool capture_stacks = true;
  };

  Watchdog() : Watchdog(Options()) {}
  explicit Watchdog(Options options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Total stall instances flagged so far.
  uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }

 private:
  friend class WatchdogScope;

  static constexpr size_t kMaxScopes = 64;
  static constexpr size_t kMaxSite = 48;

  struct Slot {
    std::atomic<bool> active{false};
    std::atomic<int64_t> deadline_at_ms{0};  // Steady-clock ms of expiry.
    std::atomic<bool> flagged{false};
    int64_t deadline_ms = 0;  // Scope deadline; re-armed by Heartbeat.
    char site[kMaxSite] = {};
    pid_t tid = 0;
  };

  Slot* Claim(std::string_view site, std::chrono::milliseconds deadline);
  void Release(Slot* slot);
  void MonitorLoop();
  void FlagStall(Slot& slot, int64_t now_ms);
  static int64_t NowMs();

  const Options options_;
  Slot slots_[kMaxScopes];
  std::atomic<uint64_t> stalls_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread monitor_;
};

/// RAII registration of one monitored phase on the current thread. Cheap:
/// slot claim on entry, atomic stores per heartbeat. Null `dog` makes the
/// whole scope (and Heartbeat) a no-op.
class WatchdogScope {
 public:
  WatchdogScope(Watchdog* dog, std::string_view site,
                std::chrono::milliseconds deadline);
  ~WatchdogScope();

  WatchdogScope(const WatchdogScope&) = delete;
  WatchdogScope& operator=(const WatchdogScope&) = delete;

  /// Progress signal: pushes the deadline out and clears any stall flag.
  /// Safe to call from threads other than the registering one (a parallel
  /// phase may heartbeat from its workers).
  void Heartbeat();

 private:
  Watchdog* dog_ = nullptr;
  Watchdog::Slot* slot_ = nullptr;
};

}  // namespace mvrob

#endif  // MVROB_COMMON_WATCHDOG_H_
