#include "core/explain.h"

#include "common/string_util.h"

namespace mvrob {

std::string AllocationExplanation::ToString(
    const TransactionSet& txns) const {
  std::string out;
  for (const AllocationObstacle& entry : per_txn) {
    out += StrCat(txns.txn(entry.txn).name(), " = ",
                  IsolationLevelToString(entry.assigned), "\n");
    if (entry.obstacles.empty() && entry.assigned != IsolationLevel::kRC) {
      out += "  (could be lowered: the allocation is not optimal)\n";
    }
    for (const AllocationObstacle::Obstacle& obstacle : entry.obstacles) {
      out += StrCat("  not ", IsolationLevelToString(obstacle.attempted),
                    ": ", obstacle.chain.ToString(txns), "\n");
    }
  }
  return out;
}

StatusOr<AllocationExplanation> ExplainAllocation(
    const TransactionSet& txns, const Allocation& allocation) {
  if (allocation.size() != txns.size()) {
    return Status::InvalidArgument("allocation size mismatch");
  }
  if (RobustnessResult base = CheckRobustness(txns, allocation);
      !base.robust) {
    const CounterexampleChain& chain = *base.counterexample;
    std::string members;
    for (TxnId t : chain.ChainTxns()) {
      if (!members.empty()) members += ", ";
      members += txns.txn(t).name();
    }
    return Status::FailedPrecondition(StrCat(
        "the allocation is not robust; nothing to explain. ",
        txns.txn(chain.t1).name(), " at ",
        IsolationLevelToString(allocation.level(chain.t1)),
        " splits the chain [", members, "]: ", chain.ToString(txns)));
  }
  AllocationExplanation explanation;
  explanation.allocation = allocation;
  for (TxnId t = 0; t < txns.size(); ++t) {
    AllocationObstacle entry;
    entry.txn = t;
    entry.assigned = allocation.level(t);
    for (IsolationLevel lower : kAllIsolationLevels) {
      if (!(lower < entry.assigned)) continue;
      RobustnessResult result =
          CheckRobustness(txns, allocation.With(t, lower));
      if (!result.robust) {
        entry.obstacles.push_back(
            AllocationObstacle::Obstacle{lower,
                                         std::move(*result.counterexample)});
      }
    }
    explanation.per_txn.push_back(std::move(entry));
  }
  return explanation;
}

}  // namespace mvrob
