#ifndef MVROB_CORE_WITNESS_H_
#define MVROB_CORE_WITNESS_H_

#include <string>
#include <vector>

#include "core/explain.h"
#include "core/robustness.h"

namespace mvrob {

/// Structured provenance for robustness verdicts: every counterexample
/// chain is decomposed into justified edges — the concrete conflicting
/// operation pair plus the Definition 3.1 condition the edge discharges —
/// and the full multiversion split schedule is rendered operation by
/// operation. This is the machine-readable form of the paper's
/// constructive witness (Definition 3.1 / Theorem 3.2), exported by the
/// CLI as `--witness-json` / `--witness-dot`.

/// One justified edge of a counterexample chain.
struct WitnessEdge {
  TxnId from = kInvalidTxnId;
  TxnId to = kInvalidTxnId;
  OpRef b;  // Operation in `from`...
  OpRef a;  // ...conflicting with this operation in `to`.
  /// Conflict mode of (b, a): "ww", "wr" or "rw".
  std::string conflict;
  /// The Definition 3.1 condition the edge discharges, e.g. "3.1(4)".
  std::string condition;
  /// Human-readable justification sentence.
  std::string detail;
};

/// One checked Definition 3.1 condition, with how it was discharged.
/// Conditions that do not apply to the chain's allocation are reported as
/// vacuous (holds = true) with the reason in `detail`.
struct WitnessCondition {
  std::string condition;  // "3.1(1)" ... "3.1(8)".
  bool holds = true;
  std::string detail;
};

/// Everything the checker knows about why one counterexample chain
/// witnesses non-robustness.
struct WitnessReport {
  CounterexampleChain chain;
  /// Chain transactions in split-schedule order with their levels.
  std::vector<TxnId> chain_txns;
  std::vector<WitnessEdge> edges;
  std::vector<WitnessCondition> conditions;
  /// The multiversion split schedule, operation by operation
  /// (prefix_{b1}(T1) . T2 ... Tm . postfix_{b1}(T1) . rest).
  std::vector<OpRef> split_order;
  /// Operations of the split order belonging to prefix_{b1}(T1).
  int prefix_len = 0;
  /// Outcome of VerifyCounterexample: the chain validated against
  /// Definition 3.1 and the materialized schedule was independently
  /// checked allowed + non-serializable.
  bool verified = false;
  std::string verify_error;  // Empty when verified.
};

/// Builds the provenance report for `chain` against (txns, alloc). Fails
/// only when the chain is structurally broken (references unknown
/// transactions/operations); a chain that fails the *semantic*
/// Definition 3.1 conditions still yields a report with verified = false.
StatusOr<WitnessReport> BuildWitnessReport(const TransactionSet& txns,
                                           const Allocation& alloc,
                                           const CounterexampleChain& chain);

/// `check --witness-json`: the full verdict as JSON. Robust results carry
/// {"robust":true,...}; non-robust results embed the witness report with
/// per-edge conflict type, operation pair and discharged condition.
std::string RobustnessWitnessJson(const TransactionSet& txns,
                                  const Allocation& alloc,
                                  const RobustnessResult& result);

/// `check --witness-dot`: the chain as a Graphviz digraph. T1 is drawn
/// split into its prefix and postfix halves; rw edges are dashed; every
/// edge label carries the operation pair and the discharged condition.
std::string RobustnessWitnessDot(const TransactionSet& txns,
                                 const Allocation& alloc,
                                 const RobustnessResult& result);

/// `allocate --witness-json`: per-transaction obstacles, each embedding the
/// witness report of the chain that appears when the transaction is lowered
/// (the chain is justified against the *lowered* allocation).
std::string AllocationExplanationJson(const TransactionSet& txns,
                                      const AllocationExplanation& explanation);

/// `allocate --witness-dot`: one cluster per (transaction, attempted lower
/// level) obstacle with the blocking chain's justified edges.
std::string AllocationExplanationDot(const TransactionSet& txns,
                                     const AllocationExplanation& explanation);

}  // namespace mvrob

#endif  // MVROB_CORE_WITNESS_H_
