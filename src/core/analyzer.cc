#include "core/analyzer.h"

#include <algorithm>
#include <array>
#include <memory>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/watchdog.h"
#include "core/mixed_iso_graph.h"
#include "txn/conflict.h"

namespace mvrob {

RobustnessAnalyzer::RobustnessAnalyzer(const TransactionSet& txns,
                                       MetricsRegistry* metrics)
    : RobustnessAnalyzer(txns, ConflictPruner{}, metrics) {}

RobustnessAnalyzer::RobustnessAnalyzer(const TransactionSet& txns,
                                       const ConflictPruner& pruner,
                                       MetricsRegistry* metrics)
    : txns_(txns), metrics_(metrics) {
  const size_t n = txns.size();
  conflict_ = BitMatrix(n, n);
  rw_ = BitMatrix(n, n);
  rw_into_ = BitMatrix(n, n);
  ww_never_ = BitMatrix(n, n);
  rw_before_ww_ = BitMatrix(n, n);
  si_candidates_ = BitMatrix(n, n);
  first_ww_idx_.assign(n * n, kNever);
  first_rw_idx_.assign(n * n, kNever);
  last_conflict_idx_.assign(n * n, -1);
  pivot_cache_.resize(n);
  rc_cache_.resize(n);

  {
    PhaseTimer matrix_timer(metrics_, "analyzer.build_conflict_matrix");
    for (TxnId i = 0; i < n; ++i) {
      const Transaction& ti = txns.txn(i);
      for (TxnId j = 0; j < n; ++j) {
        if (i == j) continue;
        // A sound pruner clearing the pair means no operation-level
        // conflict exists; the sentinel defaults already encode that.
        if (!pruner.MayConflict(i, j)) continue;
        const Transaction& tj = txns.txn(j);
        int& first_ww = first_ww_idx_[i * n + j];
        int& first_rw = first_rw_idx_[i * n + j];
        int& last_conflict = last_conflict_idx_[i * n + j];
        for (int k = 0; k < ti.num_ops(); ++k) {
          const Operation& op = ti.op(k);
          if (op.IsCommit()) continue;
          bool writes_j = tj.Writes(op.object);
          if (op.IsWrite()) {
            if (writes_j && first_ww == kNever) first_ww = k;
            if (writes_j || tj.Reads(op.object)) last_conflict = k;
          } else if (writes_j) {
            rw_.Set(i, j);
            if (first_rw == kNever) first_rw = k;
            last_conflict = k;
          }
        }
        if (rw_.Test(i, j) || first_ww != kNever || last_conflict >= 0) {
          conflict_.Set(i, j);
        }
      }
    }
  }
  // Close conflict_ under symmetry (the scan sees rw via Ti's reads only)
  // and derive the candidate rows.
  PhaseTimer masks_timer(metrics_, "analyzer.build_candidate_masks");
  for (TxnId i = 0; i < n; ++i) {
    for (TxnId j = i + 1; j < n; ++j) {
      if (conflict_.Test(i, j) || conflict_.Test(j, i)) {
        conflict_.Set(i, j);
        conflict_.Set(j, i);
      }
      if (rw_.Test(i, j)) rw_into_.Set(j, i);
      if (rw_.Test(j, i)) rw_into_.Set(i, j);
    }
  }
  for (TxnId i = 0; i < n; ++i) {
    for (TxnId j = 0; j < n; ++j) {
      int first_ww = first_ww_idx_[i * n + j];
      if (first_ww == kNever) ww_never_.Set(i, j);
      int first_rw = first_rw_idx_[i * n + j];
      if (first_rw != kNever && first_rw < first_ww) rw_before_ww_.Set(i, j);
    }
    BitSpan si = si_candidates_.row(i);
    si.CopyFrom(ww_never_.row(i));
    si.AndWith(rw_into_.row(i));
  }
}

const RobustnessAnalyzer::PivotCache& RobustnessAnalyzer::PivotFor(
    TxnId t1) const {
  std::optional<PivotCache>& slot = pivot_cache_[t1];
  if (slot.has_value()) return *slot;

  const size_t n = txns_.size();
  // Nodes: transactions not conflicting with t1 (conflict_ is symmetric,
  // so this is the complement of t1's row). Components via union-find,
  // edges walked word-wise over the conflict rows restricted to the node
  // set.
  DenseBitset node_mask(n);
  node_mask.SetAll();
  node_mask.AndNotWith(conflict_.row(t1));
  node_mask.Reset(t1);

  std::vector<int> comp_of(n, -1);
  std::vector<TxnId> nodes;
  node_mask.ForEachSetBit(
      [&](size_t x) { nodes.push_back(static_cast<TxnId>(x)); });
  std::vector<int> node_index(n, -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    node_index[nodes[i]] = static_cast<int>(i);
  }
  // Simple DSU.
  std::vector<size_t> parent(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  DenseBitset row_nodes(n);
  for (size_t i = 0; i < nodes.size(); ++i) {
    row_nodes.CopyFrom(conflict_.row(nodes[i]));
    row_nodes.AndWith(node_mask);
    row_nodes.ForEachSetBit([&](size_t y) {
      size_t j = static_cast<size_t>(node_index[y]);
      if (j > i) parent[find(i)] = find(j);
    });
  }
  // Dense component ids.
  std::vector<int> dense(nodes.size(), -1);
  int num_components = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    size_t root = find(i);
    if (dense[root] < 0) dense[root] = num_components++;
    comp_of[nodes[i]] = dense[root];
  }

  PivotCache cache;
  cache.comp_conf.assign(n, DenseBitset(static_cast<size_t>(num_components)));
  for (size_t i = 0; i < nodes.size(); ++i) {
    int c = comp_of[nodes[i]];
    // conflict_'s diagonal is clear, so x != nodes[i] throughout.
    conflict_.row(nodes[i]).ForEachSetBit(
        [&](size_t x) { cache.comp_conf[x].Set(static_cast<size_t>(c)); });
  }
  slot = std::move(cache);
  return *slot;
}

bool RobustnessAnalyzer::Reachable(TxnId t1, TxnId t2, TxnId tm) const {
  if (t2 == tm || conflict_.Test(t2, tm)) return true;
  const PivotCache& cache = PivotFor(t1);
  return cache.comp_conf[t2].Intersects(cache.comp_conf[tm]);
}

ConstBitSpan RobustnessAnalyzer::RcCandidatesFor(TxnId t1, int k) const {
  std::vector<std::pair<int, DenseBitset>>& slots = rc_cache_[t1];
  for (const std::pair<int, DenseBitset>& entry : slots) {
    if (entry.first == k) return entry.second.span();
  }
  const size_t n = txns_.size();
  DenseBitset mask(n);
  for (TxnId tm = 0; tm < n; ++tm) {
    if (tm == t1) continue;
    if (first_ww_idx(t1, tm) > k &&
        (rw_into_.Test(t1, tm) || last_conflict_idx(t1, tm) > k)) {
      mask.Set(tm);
    }
  }
  slots.emplace_back(k, std::move(mask));
  return slots.back().second.span();
}

std::optional<CounterexampleChain> RobustnessAnalyzer::CheckRow(
    const Allocation& alloc, ConstBitSpan ssi_mask, TxnId t1,
    const std::atomic<uint32_t>* best, const std::atomic<bool>* cancel,
    uint64_t* words_scanned) const {
  const size_t n = txns_.size();
  const uint64_t words_per_row = (n + 63) / 64;
  uint64_t mask_ops = 0;  // Word-wise row operations; flushed on return.
  bool t1_rc = alloc.level(t1) == IsolationLevel::kRC;
  bool s1 = ssi_mask.Test(t1);

  // T2 candidates: b1 exists (rw row), the T2-side ww constraint of
  // Definition 3.1 (2)/(3), and — under double SSI — condition (7).
  DenseBitset pair_mask(n);
  pair_mask.CopyFrom(rw_.row(t1));
  pair_mask.AndWith(t1_rc ? rw_before_ww_.row(t1) : ww_never_.row(t1));
  mask_ops += 2;
  DenseBitset ssi_rw_out(n);  // Condition (8)'s exclusion: SSI Tm read by T1.
  if (s1) {
    DenseBitset ssi_rw_in(n);
    ssi_rw_in.CopyFrom(ssi_mask);
    ssi_rw_in.AndWith(rw_into_.row(t1));
    pair_mask.AndNotWith(ssi_rw_in);
    ssi_rw_out.CopyFrom(ssi_mask);
    ssi_rw_out.AndWith(rw_.row(t1));
    mask_ops += 5;
  }

  DenseBitset tm_mask(n);
  for (size_t t2 = pair_mask.FindFirst(); t2 < n;
       t2 = pair_mask.FindNext(t2 + 1)) {
    if (best != nullptr && t1 >= best->load(std::memory_order_relaxed)) {
      if (words_scanned != nullptr) *words_scanned += mask_ops * words_per_row;
      return std::nullopt;  // A lower row already holds a witness.
    }
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      if (words_scanned != nullptr) *words_scanned += mask_ops * words_per_row;
      return std::nullopt;  // Caller marks the result cancelled.
    }
    // Tm candidates for this pair: allocation-independent base (ww
    // constraint towards Tm + condition (5)) minus the SSI exclusions
    // (6) and (8).
    if (t1_rc) {
      tm_mask.CopyFrom(RcCandidatesFor(t1, first_rw_idx(t1, t2)));
    } else {
      tm_mask.CopyFrom(si_candidates_.row(t1));
    }
    ++mask_ops;
    if (s1) {
      tm_mask.AndNotWith(ssi_rw_out);
      ++mask_ops;
      if (ssi_mask.Test(t2)) {
        tm_mask.AndNotWith(ssi_mask);
        ++mask_ops;
      }
    }
    for (size_t tm = tm_mask.FindFirst(); tm < n;
         tm = tm_mask.FindNext(tm + 1)) {
      if (!Reachable(t1, static_cast<TxnId>(t2), static_cast<TxnId>(tm))) {
        continue;
      }
      // Witness recovery with the reference operation search.
      CounterexampleChain chain;
      bool found = internal::FindChainOperations(
          txns_, alloc, t1, static_cast<TxnId>(t2), static_cast<TxnId>(tm),
          &chain);
      if (!found) continue;  // Defensive; the indices guarantee success.
      MixedIsoGraph graph(txns_, t1,
                          {static_cast<TxnId>(t2), static_cast<TxnId>(tm)},
                          &conflict_);
      std::optional<std::vector<TxnId>> inner = graph.FindInnerChain(
          static_cast<TxnId>(t2), static_cast<TxnId>(tm));
      if (!inner.has_value()) continue;
      chain.inner = std::move(inner).value();
      if (words_scanned != nullptr) *words_scanned += mask_ops * words_per_row;
      return chain;
    }
  }
  if (words_scanned != nullptr) *words_scanned += mask_ops * words_per_row;
  return std::nullopt;
}

RobustnessResult RobustnessAnalyzer::Check(const Allocation& alloc) const {
  return Check(alloc, CheckOptions{});
}

namespace {

void RecordCheckMetrics(MetricsRegistry* metrics,
                        const RobustnessResult& result, uint64_t words_scanned,
                        uint64_t rows_scanned) {
  metrics->counter("analyzer.checks").Increment();
  metrics->counter("analyzer.triples_examined").Add(result.triples_examined);
  metrics->counter("analyzer.bitset_words_scanned").Add(words_scanned);
  metrics->counter("analyzer.rows_scanned").Add(rows_scanned);
  if (result.cancelled) {
    metrics->counter("analyzer.checks_cancelled").Increment();
  } else if (!result.robust) {
    metrics->counter("analyzer.counterexamples_found").Increment();
  }
}

}  // namespace

RobustnessResult RobustnessAnalyzer::Check(const Allocation& alloc,
                                           const CheckOptions& options) const {
  MetricsRegistry* metrics =
      options.metrics != nullptr ? options.metrics : metrics_;
  RobustnessResult result;
  const size_t n = txns_.size();
  if (n < 2) {
    if (metrics != nullptr) metrics->counter("analyzer.checks").Increment();
    return result;
  }
  PhaseTimer scan_timer(metrics, "analyzer.triple_scan");
  // One heartbeat per completed row (from whichever thread finished it):
  // rows complete many times a second on any healthy check, so a silent
  // wedge inside the scan trips the deadline.
  WatchdogScope watch(options.watchdog, "analyzer.triple_scan",
                      std::chrono::seconds(30));

  DenseBitset ssi_mask(n);
  for (TxnId t = 0; t < n; ++t) {
    if (alloc.level(t) == IsolationLevel::kSSI) ssi_mask.Set(t);
  }

  uint64_t words_scanned = 0;
  uint64_t rows_scanned = 0;
  const std::atomic<bool>* cancel = options.cancel;
  auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  const int threads = ThreadPool::ResolveThreads(options.num_threads);
  if (threads <= 1) {
    for (TxnId t1 = 0; t1 < n && !cancelled(); ++t1) {
      std::optional<CounterexampleChain> chain = CheckRow(
          alloc, ssi_mask, t1, nullptr, cancel,
          metrics != nullptr ? &words_scanned : nullptr);
      ++rows_scanned;
      watch.Heartbeat();
      if (chain.has_value()) {
        result.robust = false;
        result.triples_examined = internal::TriplesUpToWitness(
            n, chain->t1, chain->t2, chain->tm);
        result.counterexample = std::move(chain);
        break;
      }
    }
    if (cancelled()) {
      // Partial scan: strip any verdict so nothing downstream trusts it.
      result = RobustnessResult{};
      result.cancelled = true;
    } else if (result.robust) {
      result.triples_examined = internal::TriplesWhenRobust(n);
    }
    if (metrics != nullptr) {
      metrics->histogram("analyzer.rows_per_thread").Observe(rows_scanned);
      RecordCheckMetrics(metrics, result, words_scanned, rows_scanned);
    }
    return result;
  }

  // Parallel rows with deterministic reduction: `best` tracks the lowest
  // t1 known to hold a witness (CAS-min). A row only abandons when a
  // strictly lower row has a witness, so every row below the final winner
  // completed a full, witness-free scan — making the winner exactly the
  // sequential answer and the closed-form triple count exact.
  //
  // Metrics accounting keeps off the shared cache lines the scan itself
  // uses: words scanned accumulate per row into one atomic, and per-thread
  // row counts go into 64 cache-line-padded slots keyed by the dense
  // thread id (observed as the rows_per_thread work-balance histogram).
  struct alignas(64) RowSlot {
    std::atomic<uint64_t> rows{0};
  };
  static_assert(sizeof(RowSlot) == 64);
  std::unique_ptr<std::array<RowSlot, 64>> slots;
  std::atomic<uint64_t> words_total{0};
  const bool instrumented = metrics != nullptr;
  if (instrumented) slots = std::make_unique<std::array<RowSlot, 64>>();

  std::atomic<uint32_t> best{static_cast<uint32_t>(n)};
  std::vector<std::optional<CounterexampleChain>> rows(n);
  ThreadPool::Shared().ParallelFor(
      n, threads,
      [&](size_t i) {
        if (i >= best.load(std::memory_order_acquire)) return;
        if (cancelled()) return;
        uint64_t row_words = 0;
        std::optional<CounterexampleChain> chain =
            CheckRow(alloc, ssi_mask, static_cast<TxnId>(i), &best, cancel,
                     instrumented ? &row_words : nullptr);
        watch.Heartbeat();
        if (instrumented) {
          words_total.fetch_add(row_words, std::memory_order_relaxed);
          (*slots)[MetricsRegistry::CurrentThreadId() % slots->size()]
              .rows.fetch_add(1, std::memory_order_relaxed);
        }
        if (!chain.has_value()) return;
        rows[i] = std::move(chain);
        uint32_t current = best.load(std::memory_order_acquire);
        while (i < current &&
               !best.compare_exchange_weak(current, static_cast<uint32_t>(i),
                                           std::memory_order_acq_rel)) {
        }
      },
      metrics);
  uint32_t winner = best.load(std::memory_order_acquire);
  if (cancelled()) {
    // Some rows were skipped or abandoned; any witness found is not
    // necessarily the deterministic lowest one, so drop the verdict.
    result.cancelled = true;
  } else if (winner < n) {
    std::optional<CounterexampleChain>& chain = rows[winner];
    result.robust = false;
    result.triples_examined =
        internal::TriplesUpToWitness(n, chain->t1, chain->t2, chain->tm);
    result.counterexample = std::move(chain);
  } else {
    result.triples_examined = internal::TriplesWhenRobust(n);
  }
  if (instrumented) {
    Histogram& balance = metrics->histogram("analyzer.rows_per_thread");
    for (const RowSlot& slot : *slots) {
      uint64_t per_thread = slot.rows.load(std::memory_order_relaxed);
      if (per_thread == 0) continue;
      balance.Observe(per_thread);
      rows_scanned += per_thread;
    }
    RecordCheckMetrics(metrics, result,
                       words_total.load(std::memory_order_relaxed),
                       rows_scanned);
  }
  return result;
}

}  // namespace mvrob
