#ifndef MVROB_CORE_EXPLAIN_H_
#define MVROB_CORE_EXPLAIN_H_

#include <optional>
#include <string>
#include <vector>

#include "core/robustness.h"

namespace mvrob {

/// Why one transaction of an allocation cannot be lowered: for each level
/// below the assigned one, the counterexample chain that would become
/// possible.
struct AllocationObstacle {
  TxnId txn = kInvalidTxnId;
  IsolationLevel assigned = IsolationLevel::kRC;
  /// One entry per level strictly below `assigned`, lowest first.
  struct Obstacle {
    IsolationLevel attempted = IsolationLevel::kRC;
    CounterexampleChain chain;
  };
  std::vector<Obstacle> obstacles;
};

/// Full explanation of an allocation: per transaction, the witnesses
/// blocking every cheaper level. For an *optimal* allocation every
/// transaction above RC has at least one obstacle per lower level
/// (Algorithm 2 guarantees it); for non-optimal allocations transactions
/// may have none.
struct AllocationExplanation {
  Allocation allocation;
  std::vector<AllocationObstacle> per_txn;

  /// Human-readable multi-line report.
  std::string ToString(const TransactionSet& txns) const;
};

/// Explains `allocation` for `txns`: for every transaction and every level
/// below its assigned one, records Algorithm 1's counterexample against
/// the lowered allocation (if any). The allocation must be robust.
StatusOr<AllocationExplanation> ExplainAllocation(
    const TransactionSet& txns, const Allocation& allocation);

}  // namespace mvrob

#endif  // MVROB_CORE_EXPLAIN_H_
