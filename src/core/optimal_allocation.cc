#include "core/optimal_allocation.h"

#include "common/metrics.h"
#include "core/analyzer.h"

namespace mvrob {

OptimalAllocationResult ComputeOptimalAllocation(const TransactionSet& txns,
                                                 const CheckOptions& options) {
  // All 2|T| robustness checks run over the same transaction set, so the
  // analyzer's conflict matrices and pivot components amortize fully.
  RobustnessAnalyzer analyzer(txns, options.metrics);
  return ComputeOptimalAllocation(analyzer, options);
}

OptimalAllocationResult ComputeOptimalAllocation(
    const RobustnessAnalyzer& analyzer, const CheckOptions& options) {
  PhaseTimer timer(options.metrics, "allocation.algorithm2");
  const TransactionSet& txns = analyzer.txns();
  OptimalAllocationResult result;
  result.allocation = Allocation::AllSSI(txns.size());
  uint64_t levels_tried = 0;
  for (TxnId t = 0; t < txns.size(); ++t) {
    for (IsolationLevel level :
         {IsolationLevel::kRC, IsolationLevel::kSI}) {
      Allocation candidate = result.allocation.With(t, level);
      ++result.robustness_checks;
      ++levels_tried;
      if (analyzer.Check(candidate, options).robust) {
        result.allocation = candidate;
        break;
      }
    }
  }
  if (options.metrics != nullptr) {
    options.metrics->counter("allocation.runs").Increment();
    options.metrics->counter("allocation.robustness_checks")
        .Add(result.robustness_checks);
    options.metrics->counter("allocation.lattice_levels_tried")
        .Add(levels_tried);
  }
  return result;
}

}  // namespace mvrob
