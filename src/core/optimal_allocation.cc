#include "core/optimal_allocation.h"

#include "core/analyzer.h"

namespace mvrob {

OptimalAllocationResult ComputeOptimalAllocation(const TransactionSet& txns,
                                                 const CheckOptions& options) {
  OptimalAllocationResult result;
  // All 2|T| robustness checks run over the same transaction set, so the
  // analyzer's conflict matrices and pivot components amortize fully.
  RobustnessAnalyzer analyzer(txns);
  result.allocation = Allocation::AllSSI(txns.size());
  for (TxnId t = 0; t < txns.size(); ++t) {
    for (IsolationLevel level :
         {IsolationLevel::kRC, IsolationLevel::kSI}) {
      Allocation candidate = result.allocation.With(t, level);
      ++result.robustness_checks;
      if (analyzer.Check(candidate, options).robust) {
        result.allocation = candidate;
        break;
      }
    }
  }
  return result;
}

}  // namespace mvrob
