#include "core/robustness.h"

#include <atomic>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/analyzer.h"

namespace mvrob {

std::vector<TxnId> CounterexampleChain::ChainTxns() const {
  std::vector<TxnId> chain{t1, t2};
  chain.insert(chain.end(), inner.begin(), inner.end());
  if (tm != t2) chain.push_back(tm);
  return chain;
}

std::string CounterexampleChain::ToString(const TransactionSet& txns) const {
  std::vector<std::string> names;
  for (TxnId t : ChainTxns()) names.push_back(txns.txn(t).name());
  return StrCat("split ", txns.txn(t1).name(), " after ", txns.FormatOp(b1),
                "; chain ", Join(names, " -> "), "; edges ",
                txns.FormatOp(b1), "->", txns.FormatOp(a2), " and ",
                txns.FormatOp(bm), "->", txns.FormatOp(a1));
}

namespace {

// Algorithm 1's ww-conflict-free(b1, T1, T2, Tm): no write of T1 that lies
// in prefix_{b1}(T1) — or anywhere in T1 when A(T1) is SI or SSI — is
// ww-conflicting with a write of T2 or Tm (Definition 3.1 (2) and (3)).
bool WwConflictFree(const TransactionSet& txns, const Allocation& alloc,
                    OpRef b1, TxnId t2, TxnId tm) {
  const Transaction& txn1 = txns.txn(b1.txn);
  bool whole_txn = alloc.level(b1.txn) != IsolationLevel::kRC;
  for (int i = 0; i < txn1.num_ops(); ++i) {
    const Operation& c1 = txn1.op(i);
    if (!c1.IsWrite()) continue;
    if (!whole_txn && i > b1.index) continue;
    if (txns.txn(t2).Writes(c1.object) || txns.txn(tm).Writes(c1.object)) {
      return false;
    }
  }
  return true;
}

}  // namespace

namespace internal {

bool FindChainOperations(const TransactionSet& txns, const Allocation& alloc,
                         TxnId t1, TxnId t2, TxnId tm,
                         CounterexampleChain* chain) {
  const Transaction& txn1 = txns.txn(t1);
  const Transaction& txn2 = txns.txn(t2);
  const Transaction& txnm = txns.txn(tm);
  bool t1_is_rc = alloc.level(t1) == IsolationLevel::kRC;

  for (int i1 = 0; i1 < txn1.num_ops(); ++i1) {
    const Operation& op_b1 = txn1.op(i1);
    // Definition 3.1 (4): b1 must be rw-conflicting with a write a2 of T2.
    if (!op_b1.IsRead() || !txn2.Writes(op_b1.object)) continue;
    OpRef b1{t1, i1};
    if (!WwConflictFree(txns, alloc, b1, t2, tm)) continue;
    OpRef a2{t2, *txn2.FirstWriteIndex(op_b1.object)};

    // Definition 3.1 (5): bm conflicts with a1, and either rw-conflicting
    // or (A(T1) = RC and b1 <_T1 a1).
    for (int j1 = 0; j1 < txn1.num_ops(); ++j1) {
      const Operation& op_a1 = txn1.op(j1);
      if (op_a1.IsCommit()) continue;
      for (int jm = 0; jm < txnm.num_ops(); ++jm) {
        const Operation& op_bm = txnm.op(jm);
        if (!Conflicting(op_bm, op_a1)) continue;
        bool rw = RwConflicting(op_bm, op_a1);
        bool rc_case = t1_is_rc && i1 < j1;
        if (!rw && !rc_case) continue;
        chain->t1 = t1;
        chain->t2 = t2;
        chain->tm = tm;
        chain->b1 = b1;
        chain->a1 = OpRef{t1, j1};
        chain->a2 = a2;
        chain->bm = OpRef{tm, jm};
        return true;
      }
    }
  }
  return false;
}

uint64_t TriplesWhenRobust(size_t n) {
  if (n < 2) return 0;
  const uint64_t m = static_cast<uint64_t>(n - 1);
  return static_cast<uint64_t>(n) * m * m;
}

uint64_t TriplesUpToWitness(size_t n, TxnId t1, TxnId t2, TxnId tm) {
  const uint64_t m = static_cast<uint64_t>(n - 1);
  // Fully scanned t1 rows before the witness row.
  uint64_t count = static_cast<uint64_t>(t1) * m * m;
  // Fully scanned (t1, t2') pairs with t2' < t2, t2' != t1.
  count += (static_cast<uint64_t>(t2) - (t1 < t2 ? 1 : 0)) * m;
  // Partial inner scan: tm' <= tm, tm' != t1.
  count += static_cast<uint64_t>(tm) + 1 - (t1 < tm ? 1 : 0);
  return count;
}

}  // namespace internal

namespace {

// The per-t1-row body shared by the sequential and parallel enumerators:
// collects up to `limit` chains of the row in ascending (t2, tm) order.
// All per-triple conditions are row-local, so rows can run on any thread
// with identical output.
void CollectRowCounterexamples(const TransactionSet& txns,
                               const Allocation& alloc,
                               const BitMatrix& conflict, TxnId t1,
                               size_t limit,
                               std::vector<CounterexampleChain>* chains) {
  const size_t n = txns.size();
  auto is_ssi = [&](TxnId t) {
    return alloc.level(t) == IsolationLevel::kSSI;
  };
  for (TxnId t2 = 0; t2 < n && chains->size() < limit; ++t2) {
    if (t2 == t1) continue;
    for (TxnId tm = 0; tm < n && chains->size() < limit; ++tm) {
      if (tm == t1) continue;
      if (is_ssi(t1) && is_ssi(t2) && is_ssi(tm)) continue;
      if (is_ssi(t1) && is_ssi(t2) && !WrConflictFreeTxns(txns, t1, t2)) {
        continue;
      }
      if (is_ssi(t1) && is_ssi(tm) && !WrConflictFreeTxns(txns, tm, t1)) {
        continue;
      }
      CounterexampleChain chain;
      if (!internal::FindChainOperations(txns, alloc, t1, t2, tm, &chain)) {
        continue;
      }
      MixedIsoGraph graph(txns, t1, {t2, tm}, &conflict);
      std::optional<std::vector<TxnId>> inner = graph.FindInnerChain(t2, tm);
      if (!inner.has_value()) continue;
      chain.inner = std::move(inner).value();
      chains->push_back(std::move(chain));
    }
  }
}

}  // namespace

std::vector<CounterexampleChain> FindAllCounterexamples(
    const TransactionSet& txns, const Allocation& alloc, size_t limit,
    const CheckOptions& options) {
  std::vector<CounterexampleChain> chains;
  if (limit == 0) return chains;
  const size_t n = txns.size();
  // One conflict matrix shared across every candidate triple's
  // mixed-iso-graph, instead of O(n^2) TxnsConflict recomputation each.
  const BitMatrix conflict = BuildConflictMatrix(txns);

  const int threads = ThreadPool::ResolveThreads(options.num_threads);
  if (threads <= 1 || n < 2) {
    for (TxnId t1 = 0; t1 < n && chains.size() < limit; ++t1) {
      std::vector<CounterexampleChain> row;
      CollectRowCounterexamples(txns, alloc, conflict, t1,
                                limit - chains.size(), &row);
      for (CounterexampleChain& chain : row) {
        chains.push_back(std::move(chain));
      }
    }
    return chains;
  }

  // Rows are independent; collect up to `limit` per row, then concatenate
  // in t1 order and truncate — byte-identical to the sequential scan.
  std::vector<std::vector<CounterexampleChain>> rows(n);
  ThreadPool::Shared().ParallelFor(n, threads, [&](size_t t1) {
    CollectRowCounterexamples(txns, alloc, conflict,
                              static_cast<TxnId>(t1), limit, &rows[t1]);
  });
  for (std::vector<CounterexampleChain>& row : rows) {
    for (CounterexampleChain& chain : row) {
      if (chains.size() >= limit) return chains;
      chains.push_back(std::move(chain));
    }
  }
  return chains;
}

RobustnessResult CheckRobustness(const TransactionSet& txns,
                                 const Allocation& alloc) {
  RobustnessResult result;
  const size_t n = txns.size();
  auto is_ssi = [&](TxnId t) {
    return alloc.level(t) == IsolationLevel::kSSI;
  };
  const BitMatrix conflict = BuildConflictMatrix(txns);

  for (TxnId t1 = 0; t1 < n; ++t1) {
    for (TxnId t2 = 0; t2 < n; ++t2) {
      if (t2 == t1) continue;
      for (TxnId tm = 0; tm < n; ++tm) {
        if (tm == t1) continue;
        // Definition 3.1 (6)-(8): the SSI side conditions.
        if (is_ssi(t1) && is_ssi(t2) && is_ssi(tm)) continue;
        if (is_ssi(t1) && is_ssi(t2) && !WrConflictFreeTxns(txns, t1, t2)) {
          continue;
        }
        if (is_ssi(t1) && is_ssi(tm) && !WrConflictFreeTxns(txns, tm, t1)) {
          continue;
        }
        CounterexampleChain chain;
        if (!internal::FindChainOperations(txns, alloc, t1, t2, tm,
                                           &chain)) {
          continue;
        }
        // reachable(T2, Tm, T1): T2 = Tm, a direct conflict, or a path
        // through mixed-iso-graph(T1, T \ {T1, T2, Tm}).
        MixedIsoGraph graph(txns, t1, {t2, tm}, &conflict);
        std::optional<std::vector<TxnId>> inner_chain =
            graph.FindInnerChain(t2, tm);
        if (!inner_chain.has_value()) continue;
        chain.inner = std::move(inner_chain).value();
        result.robust = false;
        result.counterexample = std::move(chain);
        result.triples_examined =
            internal::TriplesUpToWitness(n, t1, t2, tm);
        return result;
      }
    }
  }
  result.triples_examined = internal::TriplesWhenRobust(n);
  return result;
}

RobustnessResult CheckRobustness(const TransactionSet& txns,
                                 const Allocation& alloc,
                                 const CheckOptions& options) {
  // Pass the sink to the constructor too, so the one-shot entry point also
  // times the matrix-build phases.
  return RobustnessAnalyzer(txns, options.metrics).Check(alloc, options);
}

}  // namespace mvrob
