#include "core/robustness.h"

#include "common/string_util.h"

namespace mvrob {

std::vector<TxnId> CounterexampleChain::ChainTxns() const {
  std::vector<TxnId> chain{t1, t2};
  chain.insert(chain.end(), inner.begin(), inner.end());
  if (tm != t2) chain.push_back(tm);
  return chain;
}

std::string CounterexampleChain::ToString(const TransactionSet& txns) const {
  std::vector<std::string> names;
  for (TxnId t : ChainTxns()) names.push_back(txns.txn(t).name());
  return StrCat("split ", txns.txn(t1).name(), " after ", txns.FormatOp(b1),
                "; chain ", Join(names, " -> "), "; edges ",
                txns.FormatOp(b1), "->", txns.FormatOp(a2), " and ",
                txns.FormatOp(bm), "->", txns.FormatOp(a1));
}

namespace {

// Algorithm 1's ww-conflict-free(b1, T1, T2, Tm): no write of T1 that lies
// in prefix_{b1}(T1) — or anywhere in T1 when A(T1) is SI or SSI — is
// ww-conflicting with a write of T2 or Tm (Definition 3.1 (2) and (3)).
bool WwConflictFree(const TransactionSet& txns, const Allocation& alloc,
                    OpRef b1, TxnId t2, TxnId tm) {
  const Transaction& txn1 = txns.txn(b1.txn);
  bool whole_txn = alloc.level(b1.txn) != IsolationLevel::kRC;
  for (int i = 0; i < txn1.num_ops(); ++i) {
    const Operation& c1 = txn1.op(i);
    if (!c1.IsWrite()) continue;
    if (!whole_txn && i > b1.index) continue;
    if (txns.txn(t2).Writes(c1.object) || txns.txn(tm).Writes(c1.object)) {
      return false;
    }
  }
  return true;
}

}  // namespace

namespace internal {

bool FindChainOperations(const TransactionSet& txns, const Allocation& alloc,
                         TxnId t1, TxnId t2, TxnId tm,
                         CounterexampleChain* chain) {
  const Transaction& txn1 = txns.txn(t1);
  const Transaction& txn2 = txns.txn(t2);
  const Transaction& txnm = txns.txn(tm);
  bool t1_is_rc = alloc.level(t1) == IsolationLevel::kRC;

  for (int i1 = 0; i1 < txn1.num_ops(); ++i1) {
    const Operation& op_b1 = txn1.op(i1);
    // Definition 3.1 (4): b1 must be rw-conflicting with a write a2 of T2.
    if (!op_b1.IsRead() || !txn2.Writes(op_b1.object)) continue;
    OpRef b1{t1, i1};
    if (!WwConflictFree(txns, alloc, b1, t2, tm)) continue;
    OpRef a2{t2, *txn2.FirstWriteIndex(op_b1.object)};

    // Definition 3.1 (5): bm conflicts with a1, and either rw-conflicting
    // or (A(T1) = RC and b1 <_T1 a1).
    for (int j1 = 0; j1 < txn1.num_ops(); ++j1) {
      const Operation& op_a1 = txn1.op(j1);
      if (op_a1.IsCommit()) continue;
      for (int jm = 0; jm < txnm.num_ops(); ++jm) {
        const Operation& op_bm = txnm.op(jm);
        if (!Conflicting(op_bm, op_a1)) continue;
        bool rw = RwConflicting(op_bm, op_a1);
        bool rc_case = t1_is_rc && i1 < j1;
        if (!rw && !rc_case) continue;
        chain->t1 = t1;
        chain->t2 = t2;
        chain->tm = tm;
        chain->b1 = b1;
        chain->a1 = OpRef{t1, j1};
        chain->a2 = a2;
        chain->bm = OpRef{tm, jm};
        return true;
      }
    }
  }
  return false;
}

}  // namespace internal

std::vector<CounterexampleChain> FindAllCounterexamples(
    const TransactionSet& txns, const Allocation& alloc, size_t limit) {
  std::vector<CounterexampleChain> chains;
  const size_t n = txns.size();
  auto is_ssi = [&](TxnId t) {
    return alloc.level(t) == IsolationLevel::kSSI;
  };
  for (TxnId t1 = 0; t1 < n && chains.size() < limit; ++t1) {
    for (TxnId t2 = 0; t2 < n && chains.size() < limit; ++t2) {
      if (t2 == t1) continue;
      for (TxnId tm = 0; tm < n && chains.size() < limit; ++tm) {
        if (tm == t1) continue;
        if (is_ssi(t1) && is_ssi(t2) && is_ssi(tm)) continue;
        if (is_ssi(t1) && is_ssi(t2) && !WrConflictFreeTxns(txns, t1, t2)) {
          continue;
        }
        if (is_ssi(t1) && is_ssi(tm) && !WrConflictFreeTxns(txns, tm, t1)) {
          continue;
        }
        CounterexampleChain chain;
        if (!internal::FindChainOperations(txns, alloc, t1, t2, tm, &chain)) {
          continue;
        }
        MixedIsoGraph graph(txns, t1, {t2, tm});
        std::optional<std::vector<TxnId>> inner =
            graph.FindInnerChain(t2, tm);
        if (!inner.has_value()) continue;
        chain.inner = std::move(inner).value();
        chains.push_back(std::move(chain));
      }
    }
  }
  return chains;
}

RobustnessResult CheckRobustness(const TransactionSet& txns,
                                 const Allocation& alloc) {
  RobustnessResult result;
  const size_t n = txns.size();
  auto is_ssi = [&](TxnId t) {
    return alloc.level(t) == IsolationLevel::kSSI;
  };

  for (TxnId t1 = 0; t1 < n; ++t1) {
    for (TxnId t2 = 0; t2 < n; ++t2) {
      if (t2 == t1) continue;
      for (TxnId tm = 0; tm < n; ++tm) {
        if (tm == t1) continue;
        ++result.triples_examined;
        // Definition 3.1 (6)-(8): the SSI side conditions.
        if (is_ssi(t1) && is_ssi(t2) && is_ssi(tm)) continue;
        if (is_ssi(t1) && is_ssi(t2) && !WrConflictFreeTxns(txns, t1, t2)) {
          continue;
        }
        if (is_ssi(t1) && is_ssi(tm) && !WrConflictFreeTxns(txns, tm, t1)) {
          continue;
        }
        CounterexampleChain chain;
        if (!internal::FindChainOperations(txns, alloc, t1, t2, tm,
                                           &chain)) {
          continue;
        }
        // reachable(T2, Tm, T1): T2 = Tm, a direct conflict, or a path
        // through mixed-iso-graph(T1, T \ {T1, T2, Tm}).
        MixedIsoGraph graph(txns, t1, {t2, tm});
        std::optional<std::vector<TxnId>> inner_chain =
            graph.FindInnerChain(t2, tm);
        if (!inner_chain.has_value()) continue;
        chain.inner = std::move(inner_chain).value();
        result.robust = false;
        result.counterexample = std::move(chain);
        return result;
      }
    }
  }
  return result;
}

}  // namespace mvrob
