#include "core/constrained_allocation.h"

#include "common/string_util.h"
#include "core/analyzer.h"

namespace mvrob {

StatusOr<ConstrainedAllocationResult> ComputeConstrainedAllocation(
    const TransactionSet& txns, const AllocationBounds& bounds) {
  const size_t n = txns.size();
  if (bounds.min_level.size() != n || bounds.max_level.size() != n) {
    return Status::InvalidArgument("bounds size mismatch");
  }
  for (TxnId t = 0; t < n; ++t) {
    if (bounds.max_level[t] < bounds.min_level[t]) {
      return Status::InvalidArgument(
          StrCat("empty bounds for ", txns.txn(t).name(), ": min ",
                 IsolationLevelToString(bounds.min_level[t]), " > max ",
                 IsolationLevelToString(bounds.max_level[t])));
    }
  }

  ConstrainedAllocationResult result;
  RobustnessAnalyzer analyzer(txns);

  // Feasibility: by Proposition 4.1(1) the box contains a robust
  // allocation iff its top element does.
  Allocation top(bounds.max_level);
  ++result.robustness_checks;
  RobustnessResult at_top = analyzer.Check(top);
  if (!at_top.robust) {
    result.feasible = false;
    result.counterexample = std::move(at_top.counterexample);
    return result;
  }
  result.feasible = true;

  Allocation allocation = top;
  for (TxnId t = 0; t < n; ++t) {
    for (IsolationLevel level : {IsolationLevel::kRC, IsolationLevel::kSI}) {
      if (level < bounds.min_level[t]) continue;
      if (!(level < allocation.level(t))) break;  // Already at/below.
      Allocation candidate = allocation.With(t, level);
      ++result.robustness_checks;
      if (analyzer.Check(candidate).robust) {
        allocation = candidate;
        break;
      }
    }
  }
  result.allocation = std::move(allocation);
  return result;
}

}  // namespace mvrob
