#ifndef MVROB_CORE_CONSTRAINED_ALLOCATION_H_
#define MVROB_CORE_CONSTRAINED_ALLOCATION_H_

#include <optional>

#include "core/robustness.h"

namespace mvrob {

/// Per-transaction level bounds for the constrained allocation problem:
/// min <= A(T) <= max. Practical sources of constraints:
///  - legacy code paths that cannot tolerate serialization failures pin
///    max = RC or SI (no retry loops for aborts);
///  - compliance-critical transactions pin min = SSI;
///  - a DBMS without SSI (Oracle) pins max = SI globally (Section 5 is the
///    special case min = RC, max = SI).
struct AllocationBounds {
  std::vector<IsolationLevel> min_level;
  std::vector<IsolationLevel> max_level;

  /// Unconstrained bounds for n transactions.
  static AllocationBounds Free(size_t n) {
    return AllocationBounds{
        std::vector<IsolationLevel>(n, IsolationLevel::kRC),
        std::vector<IsolationLevel>(n, IsolationLevel::kSSI)};
  }
  /// Pins one transaction to exactly `level`.
  AllocationBounds& Pin(TxnId txn, IsolationLevel level) {
    min_level[txn] = level;
    max_level[txn] = level;
    return *this;
  }
  AllocationBounds& AtMost(TxnId txn, IsolationLevel level) {
    max_level[txn] = level;
    return *this;
  }
  AllocationBounds& AtLeast(TxnId txn, IsolationLevel level) {
    min_level[txn] = level;
    return *this;
  }
};

struct ConstrainedAllocationResult {
  /// Whether any robust allocation within the bounds exists. By upward
  /// monotonicity (Proposition 4.1(1)) this holds iff the all-max
  /// allocation is robust.
  bool feasible = false;
  /// The unique optimal robust allocation within the bounds, when
  /// feasible. Uniqueness follows from the exchange argument of
  /// Proposition 4.1(2) restricted to the box.
  std::optional<Allocation> allocation;
  /// When infeasible: the counterexample against the all-max allocation.
  std::optional<CounterexampleChain> counterexample;
  uint64_t robustness_checks = 0;
};

/// Computes the optimal robust allocation subject to the bounds
/// (Algorithm 2 over the box): start from max levels, lower each
/// transaction towards its min. Fails with InvalidArgument when bounds are
/// malformed (size mismatch or min > max somewhere).
StatusOr<ConstrainedAllocationResult> ComputeConstrainedAllocation(
    const TransactionSet& txns, const AllocationBounds& bounds);

}  // namespace mvrob

#endif  // MVROB_CORE_CONSTRAINED_ALLOCATION_H_
