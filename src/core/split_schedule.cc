#include "core/split_schedule.h"

#include <algorithm>

#include "common/string_util.h"
#include "iso/allowed.h"
#include "schedule/serializability.h"

namespace mvrob {
namespace {

// Checks the basic shape: valid refs, operation kinds, distinctness, and
// conflicts between consecutive chain members.
Status ValidateStructure(const TransactionSet& txns,
                         const CounterexampleChain& chain) {
  if (chain.t1 >= txns.size() || chain.t2 >= txns.size() ||
      chain.tm >= txns.size()) {
    return Status::InvalidArgument("chain references unknown transactions");
  }
  if (chain.t1 == chain.t2 || chain.t1 == chain.tm) {
    return Status::InvalidArgument("T1 must differ from T2 and Tm");
  }
  std::vector<TxnId> middle{chain.t2};
  middle.insert(middle.end(), chain.inner.begin(), chain.inner.end());
  if (chain.tm != chain.t2) middle.push_back(chain.tm);
  std::vector<TxnId> sorted = middle;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument(
        "chain transactions must be pairwise distinct");
  }
  if (chain.t2 == chain.tm && !chain.inner.empty()) {
    return Status::InvalidArgument(
        "inner transactions are not allowed when T2 = Tm");
  }
  for (TxnId t : chain.inner) {
    if (t >= txns.size() || t == chain.t1) {
      return Status::InvalidArgument("invalid inner transaction");
    }
  }
  // Designated operations live in their transactions and have the required
  // kinds (b1 read, a2 write, a1/bm non-commit).
  for (OpRef ref : {chain.b1, chain.a1, chain.a2, chain.bm}) {
    if (ref.IsOp0() || !txns.IsValidRef(ref)) {
      return Status::InvalidArgument("chain operation reference invalid");
    }
  }
  if (chain.b1.txn != chain.t1 || chain.a1.txn != chain.t1 ||
      chain.a2.txn != chain.t2 || chain.bm.txn != chain.tm) {
    return Status::InvalidArgument(
        "chain operations assigned to wrong transactions");
  }
  if (txns.op(chain.a1).IsCommit() || txns.op(chain.bm).IsCommit()) {
    return Status::InvalidArgument("conflicting operations cannot be commits");
  }
  // Consecutive middle transactions must admit conflicting quadruples.
  for (size_t i = 0; i + 1 < middle.size(); ++i) {
    if (!TxnsConflict(txns, middle[i], middle[i + 1])) {
      return Status::InvalidArgument(
          StrCat("chain neighbors ", txns.txn(middle[i]).name(), " and ",
                 txns.txn(middle[i + 1]).name(), " do not conflict"));
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateSplitChain(const TransactionSet& txns, const Allocation& alloc,
                          const CounterexampleChain& chain) {
  Status structure = ValidateStructure(txns, chain);
  if (!structure.ok()) return structure;

  const Transaction& txn1 = txns.txn(chain.t1);
  auto level = [&](TxnId t) { return alloc.level(t); };
  bool t1_snapshot = level(chain.t1) != IsolationLevel::kRC;

  // (1) No operation of T1 conflicts with an inner transaction.
  for (TxnId t : chain.inner) {
    if (TxnsConflict(txns, chain.t1, t)) {
      return Status::InvalidArgument(
          StrCat("T1 conflicts with inner transaction ", txns.txn(t).name()));
    }
  }
  // (2)+(3): writes of prefix (or all of T1 for SI/SSI) must not
  // ww-conflict with writes of T2 or Tm.
  for (int i = 0; i < txn1.num_ops(); ++i) {
    const Operation& c1 = txn1.op(i);
    if (!c1.IsWrite()) continue;
    if (!t1_snapshot && i > chain.b1.index) continue;
    if (txns.txn(chain.t2).Writes(c1.object) ||
        txns.txn(chain.tm).Writes(c1.object)) {
      return Status::InvalidArgument(
          StrCat(txns.FormatOp(OpRef{chain.t1, i}),
                 " ww-conflicts with T2 or Tm (Definition 3.1 (2)/(3))"));
    }
  }
  // (4) b1 rw-conflicting with a2.
  if (!RwConflicting(txns.op(chain.b1), txns.op(chain.a2))) {
    return Status::InvalidArgument("b1 is not rw-conflicting with a2");
  }
  // (5) bm conflicts with a1; rw-conflicting or the RC split case.
  if (!Conflicting(txns.op(chain.bm), txns.op(chain.a1))) {
    return Status::InvalidArgument("bm does not conflict with a1");
  }
  bool rw = RwConflicting(txns.op(chain.bm), txns.op(chain.a1));
  bool rc_case = level(chain.t1) == IsolationLevel::kRC &&
                 chain.b1.index < chain.a1.index;
  if (!rw && !rc_case) {
    return Status::InvalidArgument(
        "bm -> a1 is neither rw-conflicting nor the RC split case");
  }
  // (6)-(8) SSI side conditions.
  bool s1 = level(chain.t1) == IsolationLevel::kSSI;
  bool s2 = level(chain.t2) == IsolationLevel::kSSI;
  bool sm = level(chain.tm) == IsolationLevel::kSSI;
  if (s1 && s2 && sm) {
    return Status::InvalidArgument("T1, T2 and Tm are all SSI (cond. 6)");
  }
  if (s1 && s2 && !WrConflictFreeTxns(txns, chain.t1, chain.t2)) {
    return Status::InvalidArgument(
        "T1 wr-conflicts with T2 under SSI/SSI (cond. 7)");
  }
  if (s1 && sm && !WrConflictFreeTxns(txns, chain.tm, chain.t1)) {
    return Status::InvalidArgument(
        "T1 rw-conflicts with Tm under SSI/SSI (cond. 8)");
  }
  return Status::Ok();
}

std::vector<OpRef> BuildSplitOrder(const TransactionSet& txns,
                                   const CounterexampleChain& chain) {
  std::vector<OpRef> order;
  order.reserve(txns.TotalOps());
  auto append_whole = [&](TxnId t) {
    for (int i = 0; i < txns.txn(t).num_ops(); ++i) {
      order.push_back(OpRef{t, i});
    }
  };

  // prefix_{b1}(T1).
  for (int i = 0; i <= chain.b1.index; ++i) {
    order.push_back(OpRef{chain.t1, i});
  }
  // T2 . inner ... . Tm.
  std::vector<bool> in_chain(txns.size(), false);
  in_chain[chain.t1] = true;
  append_whole(chain.t2);
  in_chain[chain.t2] = true;
  for (TxnId t : chain.inner) {
    append_whole(t);
    in_chain[t] = true;
  }
  if (chain.tm != chain.t2) {
    append_whole(chain.tm);
    in_chain[chain.tm] = true;
  }
  // postfix_{b1}(T1), commit included.
  for (int i = chain.b1.index + 1; i < txns.txn(chain.t1).num_ops(); ++i) {
    order.push_back(OpRef{chain.t1, i});
  }
  // Remaining transactions, serially.
  for (TxnId t = 0; t < txns.size(); ++t) {
    if (!in_chain[t]) append_whole(t);
  }
  return order;
}

StatusOr<Schedule> BuildSplitSchedule(const TransactionSet& txns,
                                      const Allocation& alloc,
                                      const CounterexampleChain& chain) {
  return MaterializeSchedule(&txns, BuildSplitOrder(txns, chain), alloc);
}

Status VerifyCounterexample(const TransactionSet& txns,
                            const Allocation& alloc,
                            const CounterexampleChain& chain) {
  Status valid = ValidateSplitChain(txns, alloc, chain);
  if (!valid.ok()) return valid;
  StatusOr<Schedule> schedule = BuildSplitSchedule(txns, alloc, chain);
  if (!schedule.ok()) return schedule.status();
  AllowedCheckResult allowed = CheckAllowedUnder(*schedule, alloc);
  if (!allowed.allowed) {
    return Status::FailedPrecondition(
        StrCat("split schedule not allowed under the allocation: ",
               Join(allowed.violations, "; ")));
  }
  if (IsConflictSerializable(*schedule)) {
    return Status::FailedPrecondition(
        "split schedule is conflict serializable");
  }
  return Status::Ok();
}

}  // namespace mvrob
