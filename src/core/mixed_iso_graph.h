#ifndef MVROB_CORE_MIXED_ISO_GRAPH_H_
#define MVROB_CORE_MIXED_ISO_GRAPH_H_

#include <optional>
#include <vector>

#include "core/conflict.h"

namespace mvrob {

/// The auxiliary graph of Section 3: mixed-iso-graph(T1, T') contains as
/// nodes the transactions of T' that have *no* operation conflicting with an
/// operation of T1, with an (undirected, since conflict existence is
/// symmetric) edge between any two conflicting transactions.
///
/// Algorithm 1 uses reachability in this graph, with T' = T \ {T1, T2, Tm},
/// to witness a sequence of conflicting quadruples T2 -> T3 -> ... -> Tm
/// whose inner transactions do not conflict with T1 (Definition 3.1 (1)).
class MixedIsoGraph {
 public:
  /// Builds mixed-iso-graph(t1, T \ {t1} \ excluded). When `conflict` is
  /// non-null it must be the BuildConflictMatrix of `txns` (or the
  /// analyzer's equivalent); all pairwise conflict tests then become O(1)
  /// bit lookups instead of read/write-set intersections — the checkers
  /// build one matrix per transaction set and share it across every
  /// candidate counterexample.
  MixedIsoGraph(const TransactionSet& txns, TxnId t1,
                const std::vector<TxnId>& excluded,
                const BitMatrix* conflict = nullptr);

  bool Contains(TxnId txn) const { return node_index_[txn] >= 0; }
  const std::vector<TxnId>& nodes() const { return nodes_; }

  /// Neighbors of a node (must satisfy Contains).
  const std::vector<TxnId>& Neighbors(TxnId txn) const {
    return adjacency_[node_index_[txn]];
  }

  /// True if `from` and `to` are connected (reflexively) in the graph.
  bool Connected(TxnId from, TxnId to) const;

  /// The inner chain T3, ..., T_{m-1} of Definition 3.1 between `t2` and
  /// `tm` (both outside the graph): a — possibly empty — simple path of
  /// graph nodes such that t2 conflicts with the first, consecutive nodes
  /// conflict, and the last conflicts with tm. Returns:
  ///  - empty vector if t2 == tm or t2 conflicts with tm directly;
  ///  - the shortest inner path otherwise;
  ///  - nullopt if no chain exists.
  std::optional<std::vector<TxnId>> FindInnerChain(TxnId t2, TxnId tm) const;

 private:
  bool Conflicts(TxnId a, TxnId b) const {
    return conflict_ != nullptr ? conflict_->Test(a, b)
                                : TxnsConflict(txns_, a, b);
  }

  const TransactionSet& txns_;
  const BitMatrix* conflict_;         // Optional shared conflict matrix.
  std::vector<TxnId> nodes_;
  std::vector<int> node_index_;       // txn id -> dense node index or -1.
  std::vector<std::vector<TxnId>> adjacency_;  // By dense node index.
  std::vector<int> component_;        // By dense node index.
};

}  // namespace mvrob

#endif  // MVROB_CORE_MIXED_ISO_GRAPH_H_
