#include "core/rc_si_allocation.h"

#include "core/analyzer.h"

namespace mvrob {

RcSiAllocationResult ComputeOptimalRcSiAllocation(const TransactionSet& txns) {
  RcSiAllocationResult result;
  RobustnessAnalyzer analyzer(txns);
  RobustnessResult against_si =
      analyzer.Check(Allocation::AllSI(txns.size()));
  ++result.robustness_checks;
  if (!against_si.robust) {
    result.allocatable = false;
    result.counterexample = std::move(against_si.counterexample);
    return result;
  }
  result.allocatable = true;
  Allocation allocation = Allocation::AllSI(txns.size());
  for (TxnId t = 0; t < txns.size(); ++t) {
    Allocation candidate = allocation.With(t, IsolationLevel::kRC);
    ++result.robustness_checks;
    if (analyzer.Check(candidate).robust) {
      allocation = candidate;
    }
  }
  result.allocation = std::move(allocation);
  return result;
}

}  // namespace mvrob
