#ifndef MVROB_CORE_CONFLICT_H_
#define MVROB_CORE_CONFLICT_H_

#include <optional>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "txn/conflict.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// Transaction-level (static) conflict tests used throughout Section 3.
/// Unlike dependencies, these are properties of the transaction *programs*,
/// independent of any schedule.

/// True if some operation of `a` conflicts with some operation of `b`.
/// Symmetric. False when a == b (conflicts are across transactions).
bool TxnsConflict(const TransactionSet& txns, TxnId a, TxnId b);

/// True if no write of `a` ww-conflicts with a write of `b` (i.e. disjoint
/// write sets). Symmetric.
bool WwConflictFreeTxns(const TransactionSet& txns, TxnId a, TxnId b);

/// Algorithm 1's wr-conflict-free(T_i, T_j): no operation of `i` is
/// wr-conflicting with an operation of `j`, i.e. `i` writes nothing that
/// `j` reads. NOT symmetric.
bool WrConflictFreeTxns(const TransactionSet& txns, TxnId i, TxnId j);

/// A conflicting pair (b in `from`, a in `to`) with b conflicting with a,
/// if one exists. Deterministic: smallest program-order indices win (the
/// earliest conflicting operation of `from`, paired with the earliest
/// operation of `to` it conflicts with).
std::optional<std::pair<OpRef, OpRef>> FindConflictingPair(
    const TransactionSet& txns, TxnId from, TxnId to);

/// The full pairwise conflict relation as a symmetric bit matrix:
/// bit (i, j) set iff TxnsConflict(txns, i, j). Built once in O(|T|^2)
/// read/write-set intersections and shared across the O(|T|^3) triple
/// space (MixedIsoGraph accepts it to avoid recomputing TxnsConflict per
/// candidate counterexample).
BitMatrix BuildConflictMatrix(const TransactionSet& txns);

/// A sound group-level pruning hook for conflict-matrix construction:
/// transactions are partitioned into groups (template programs, in the
/// template layer) and `group_conflicts` over-approximates which group
/// pairs can have conflicting members — when it is clear for a pair, the
/// per-operation intersection test is skipped entirely. Produced by
/// templates/predicate.h (AnalyzeTemplateConflicts) and consumed by
/// BuildConflictMatrix and RobustnessAnalyzer; a default-constructed
/// pruner allows every pair. Soundness is the caller's contract: a
/// cleared group bit must mean *no* member pair conflicts, so the pruned
/// matrix equals the unpruned one (property-tested in the template
/// tests).
struct ConflictPruner {
  const BitMatrix* group_conflicts = nullptr;
  const std::vector<int>* group_of_txn = nullptr;

  bool MayConflict(TxnId i, TxnId j) const {
    if (group_conflicts == nullptr || group_of_txn == nullptr) return true;
    return group_conflicts->Test(
        static_cast<size_t>((*group_of_txn)[i]),
        static_cast<size_t>((*group_of_txn)[j]));
  }
};

/// BuildConflictMatrix with group-level pruning.
BitMatrix BuildConflictMatrix(const TransactionSet& txns,
                              const ConflictPruner& pruner);

}  // namespace mvrob

#endif  // MVROB_CORE_CONFLICT_H_
