#ifndef MVROB_CORE_ROBUSTNESS_H_
#define MVROB_CORE_ROBUSTNESS_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/mixed_iso_graph.h"
#include "iso/allocation.h"

namespace mvrob {

class MetricsRegistry;
class Watchdog;

/// The witness extracted by Algorithm 1 when a set of transactions is not
/// robust against an allocation: the skeleton of a multiversion split
/// schedule (Definition 3.1) based on the sequence of conflicting quadruples
///
///   (T1, b1, a2, T2), (T2, ., ., T3), ..., (T_{m-1}, ., ., Tm),
///   (Tm, bm, a1, T1)
///
/// with inner transactions T3..T_{m-1} (possibly none; t2 == tm is the
/// two-quadruple case). BuildSplitSchedule turns a chain into a concrete
/// counterexample schedule.
struct CounterexampleChain {
  TxnId t1 = kInvalidTxnId;
  TxnId t2 = kInvalidTxnId;
  TxnId tm = kInvalidTxnId;
  OpRef b1;  // Read in T1, rw-conflicting with a2; T1 is split after b1.
  OpRef a1;  // Operation of T1 that bm conflicts with.
  OpRef a2;  // Write in T2.
  OpRef bm;  // Operation of Tm conflicting with a1.
  std::vector<TxnId> inner;  // T3 ... T_{m-1}, in chain order.

  /// All transactions of the chain in split-schedule order:
  /// t1, t2, inner..., tm (tm omitted when equal to t2).
  std::vector<TxnId> ChainTxns() const;

  std::string ToString(const TransactionSet& txns) const;
};

/// Outcome of the robustness decision (Theorem 3.3).
struct RobustnessResult {
  bool robust = true;
  /// Present iff !robust.
  std::optional<CounterexampleChain> counterexample;
  /// Number of (T1, T2, Tm) triples examined — exposed for the complexity
  /// benchmarks. This is an *audited* counter with a fixed contract: it
  /// equals the number of triples (t2 != t1, tm != t1) that the canonical
  /// sequential scan order (t1 outer, t2 middle, tm inner, each ascending)
  /// visits up to and including the winning triple — or all n(n-1)^2 of
  /// them when robust. Every checker (reference, bitset analyzer,
  /// parallel) reports the identical value for the identical verdict; see
  /// internal::TriplesWhenRobust / internal::TriplesUpToWitness.
  uint64_t triples_examined = 0;
  /// True when CheckOptions::cancel was raised before the scan completed.
  /// A cancelled result carries no verdict: robust stays true,
  /// counterexample is empty, and triples_examined is 0 — callers must
  /// discard it.
  bool cancelled = false;
};

/// Tuning knobs threaded from the CLI/tools down to the checkers.
struct CheckOptions {
  /// Worker threads for the t1 outer loop. 1 = sequential (the default);
  /// values <= 0 mean "all hardware threads". Results are deterministic
  /// and identical for every thread count: the lowest (t1, t2, tm)
  /// counterexample wins, and triples_examined follows the audited
  /// contract above.
  int num_threads = 1;
  /// Optional observability sink (common/metrics.h): phase timers and
  /// work counters are recorded here. Null (the default) disables all
  /// instrumentation; collection never changes results — asserted by the
  /// parallel differential tests.
  MetricsRegistry* metrics = nullptr;
  /// Optional cooperative cancellation flag, polled inside the triple
  /// scan. When it becomes true mid-check, CheckRobustness(txns, alloc,
  /// options) / RobustnessAnalyzer::Check return promptly with
  /// RobustnessResult::cancelled set (and no verdict). Lets a long-running
  /// caller — e.g. `mvrob serve`'s periodic witness check — shut down
  /// without waiting for a full scan. Null (the default) disables polling.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional stall watchdog (common/watchdog.h): the triple scan runs
  /// under a monitored "analyzer.triple_scan" scope, heartbeating once per
  /// completed row, so a wedged check surfaces with a symbolized stack.
  /// Null (the default) disables monitoring; never changes results.
  Watchdog* watchdog = nullptr;
};

/// Algorithm 1: decides whether `txns` is robust against `alloc`, i.e.
/// whether every schedule over `txns` allowed under `alloc` is conflict
/// serializable (Definition 2.7). Runs in time polynomial in |T| per
/// Theorem 3.3. `alloc` must have one level per transaction.
///
/// This is the *reference* implementation: it re-derives operation-level
/// facts per triple and is deliberately close to the paper's pseudocode.
/// Production callers that check repeatedly or want parallelism should use
/// RobustnessAnalyzer (or the CheckOptions overload below, which builds
/// one internally).
RobustnessResult CheckRobustness(const TransactionSet& txns,
                                 const Allocation& alloc);

/// Production entry point: identical verdict, counterexample, and
/// triples_examined as the reference above, computed on the bitset
/// analyzer with `options.num_threads`-way parallelism.
RobustnessResult CheckRobustness(const TransactionSet& txns,
                                 const Allocation& alloc,
                                 const CheckOptions& options);

/// Enumerates counterexample chains — one per triple (T1, T2, Tm) that
/// witnesses non-robustness — up to `limit`, in ascending (t1, t2, tm)
/// order. Empty iff robust. Useful for diagnostics: a workload usually
/// breaks in several places at once, and fixing only the first reported
/// chain rarely suffices. With options.num_threads > 1 the t1 rows are
/// scanned in parallel; the returned chains (order included) are identical
/// to the sequential scan.
std::vector<CounterexampleChain> FindAllCounterexamples(
    const TransactionSet& txns, const Allocation& alloc, size_t limit = 32,
    const CheckOptions& options = {});

namespace internal {

/// Searches operations (b1, a1, a2, bm) satisfying the inner conditions of
/// Algorithm 1 for the fixed triple (t1, t2, tm); fills all fields of
/// `chain` except the inner path. Shared between the reference checker and
/// RobustnessAnalyzer's witness recovery.
bool FindChainOperations(const TransactionSet& txns, const Allocation& alloc,
                         TxnId t1, TxnId t2, TxnId tm,
                         CounterexampleChain* chain);

/// The audited triples_examined contract, in closed form (so sequential,
/// bitset-masked, and parallel scans all report the same number without
/// per-iteration bookkeeping):
///  - robust run: every triple with t2 != t1, tm != t1 → n(n-1)^2;
///  - witness at (t1, t2, tm): triples visited by the canonical ascending
///    scan up to and including the witness.
uint64_t TriplesWhenRobust(size_t n);
uint64_t TriplesUpToWitness(size_t n, TxnId t1, TxnId t2, TxnId tm);

}  // namespace internal

/// Convenience wrappers for the homogeneous allocations A_RC, A_SI, A_SSI.
inline RobustnessResult CheckRobustnessRC(const TransactionSet& txns) {
  return CheckRobustness(txns, Allocation::AllRC(txns.size()));
}
inline RobustnessResult CheckRobustnessSI(const TransactionSet& txns) {
  return CheckRobustness(txns, Allocation::AllSI(txns.size()));
}
inline RobustnessResult CheckRobustnessSSI(const TransactionSet& txns) {
  return CheckRobustness(txns, Allocation::AllSSI(txns.size()));
}

}  // namespace mvrob

#endif  // MVROB_CORE_ROBUSTNESS_H_
