#ifndef MVROB_CORE_INCREMENTAL_H_
#define MVROB_CORE_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "iso/allocation.h"

namespace mvrob {

/// Online allocation maintenance for an evolving workload: keeps a
/// transaction set and its optimal robust allocation, updating the
/// allocation as programs join or leave.
///
/// Key fact (provable from Definition 3.1 — counterexamples survive adding
/// transactions, which are simply appended to the split schedule): when a
/// transaction is ADDED, no existing transaction's optimal level can
/// decrease. The updater therefore warm-starts Algorithm 2 with the
/// previous levels as lower bounds, typically re-examining only the
/// transactions that actually interact with the newcomer. Removal can
/// lower levels anywhere and triggers a full recomputation.
///
/// The `checks_performed` counter versus Algorithm 2's 2·|T| baseline
/// quantifies the savings (see bench_allocation).
class IncrementalAllocator {
 public:
  IncrementalAllocator() = default;

  /// Adds a transaction (commit appended, as in
  /// TransactionSet::AddTransaction) and restores optimality.
  StatusOr<TxnId> AddTransaction(std::string name,
                                 std::vector<Operation> rw_ops);

  /// Removes a transaction by rebuilding the set without it (ids shift
  /// down) and recomputing the optimum from scratch.
  Status RemoveTransaction(TxnId txn);

  /// Interns an object name (forwarded to the underlying set).
  ObjectId InternObject(std::string_view name) {
    return txns_.InternObject(name);
  }

  const TransactionSet& txns() const { return txns_; }
  /// The optimal robust allocation for the current set.
  const Allocation& allocation() const { return allocation_; }

  /// Robustness checks spent so far (for the savings benchmark).
  uint64_t checks_performed() const { return checks_performed_; }

  /// Options forwarded to every robustness check (e.g. num_threads);
  /// the maintained allocation is identical for any setting.
  void set_check_options(const CheckOptions& options) { options_ = options; }
  const CheckOptions& check_options() const { return options_; }

 private:
  /// Recomputes optimality with per-transaction lower bounds.
  void Reoptimize(const std::vector<IsolationLevel>& lower_bounds);

  TransactionSet txns_;
  Allocation allocation_;
  CheckOptions options_;
  uint64_t checks_performed_ = 0;
};

}  // namespace mvrob

#endif  // MVROB_CORE_INCREMENTAL_H_
