#include "core/incremental.h"

namespace mvrob {

StatusOr<TxnId> IncrementalAllocator::AddTransaction(
    std::string name, std::vector<Operation> rw_ops) {
  StatusOr<TxnId> id = txns_.AddTransaction(std::move(name),
                                            std::move(rw_ops));
  if (!id.ok()) return id;

  // Previous levels are valid lower bounds (adding a transaction never
  // lowers anyone's optimal level); the newcomer starts unconstrained.
  std::vector<IsolationLevel> lower_bounds = allocation_.levels();
  lower_bounds.push_back(IsolationLevel::kRC);
  Reoptimize(lower_bounds);
  return id;
}

Status IncrementalAllocator::RemoveTransaction(TxnId txn) {
  if (txn >= txns_.size()) {
    return Status::NotFound("no such transaction");
  }
  TransactionSet rebuilt;
  for (size_t o = 0; o < txns_.num_objects(); ++o) {
    rebuilt.InternObject(txns_.ObjectName(static_cast<ObjectId>(o)));
  }
  for (TxnId t = 0; t < txns_.size(); ++t) {
    if (t == txn) continue;
    const Transaction& old = txns_.txn(t);
    std::vector<Operation> ops(old.ops().begin(),
                               old.ops().end() - 1);  // Drop the commit.
    StatusOr<TxnId> id = rebuilt.AddTransaction(old.name(), std::move(ops));
    if (!id.ok()) return id.status();
  }
  txns_ = std::move(rebuilt);
  // Removal can lower anyone: recompute without bounds.
  Reoptimize(std::vector<IsolationLevel>(txns_.size(), IsolationLevel::kRC));
  return Status::Ok();
}

void IncrementalAllocator::Reoptimize(
    const std::vector<IsolationLevel>& lower_bounds) {
  RobustnessAnalyzer analyzer(txns_);
  Allocation allocation = Allocation::AllSSI(txns_.size());
  for (TxnId t = 0; t < txns_.size(); ++t) {
    for (IsolationLevel level : {IsolationLevel::kRC, IsolationLevel::kSI}) {
      if (level < lower_bounds[t]) continue;  // Warm start.
      Allocation candidate = allocation.With(t, level);
      ++checks_performed_;
      if (analyzer.Check(candidate, options_).robust) {
        allocation = candidate;
        break;
      }
    }
  }
  allocation_ = std::move(allocation);
}

}  // namespace mvrob
