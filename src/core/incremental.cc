#include "core/incremental.h"

#include "common/metrics.h"

namespace mvrob {

StatusOr<TxnId> IncrementalAllocator::AddTransaction(
    std::string name, std::vector<Operation> rw_ops) {
  StatusOr<TxnId> id = txns_.AddTransaction(std::move(name),
                                            std::move(rw_ops));
  if (!id.ok()) return id;

  // Previous levels are valid lower bounds (adding a transaction never
  // lowers anyone's optimal level); the newcomer starts unconstrained.
  std::vector<IsolationLevel> lower_bounds = allocation_.levels();
  lower_bounds.push_back(IsolationLevel::kRC);
  Reoptimize(lower_bounds);
  return id;
}

Status IncrementalAllocator::RemoveTransaction(TxnId txn) {
  if (txn >= txns_.size()) {
    return Status::NotFound("no such transaction");
  }
  TransactionSet rebuilt;
  for (size_t o = 0; o < txns_.num_objects(); ++o) {
    rebuilt.InternObject(txns_.ObjectName(static_cast<ObjectId>(o)));
  }
  for (TxnId t = 0; t < txns_.size(); ++t) {
    if (t == txn) continue;
    const Transaction& old = txns_.txn(t);
    std::vector<Operation> ops(old.ops().begin(),
                               old.ops().end() - 1);  // Drop the commit.
    StatusOr<TxnId> id = rebuilt.AddTransaction(old.name(), std::move(ops));
    if (!id.ok()) return id.status();
  }
  txns_ = std::move(rebuilt);
  // Removal can lower anyone: recompute without bounds.
  Reoptimize(std::vector<IsolationLevel>(txns_.size(), IsolationLevel::kRC));
  return Status::Ok();
}

void IncrementalAllocator::Reoptimize(
    const std::vector<IsolationLevel>& lower_bounds) {
  PhaseTimer timer(options_.metrics, "incremental.reoptimize");
  RobustnessAnalyzer analyzer(txns_, options_.metrics);
  Allocation allocation = Allocation::AllSSI(txns_.size());
  uint64_t checks = 0;
  uint64_t warm_start_skips = 0;
  for (TxnId t = 0; t < txns_.size(); ++t) {
    for (IsolationLevel level : {IsolationLevel::kRC, IsolationLevel::kSI}) {
      if (level < lower_bounds[t]) {  // Warm start.
        ++warm_start_skips;
        continue;
      }
      Allocation candidate = allocation.With(t, level);
      ++checks_performed_;
      ++checks;
      if (analyzer.Check(candidate, options_).robust) {
        allocation = candidate;
        break;
      }
    }
  }
  allocation_ = std::move(allocation);
  if (options_.metrics != nullptr) {
    options_.metrics->counter("incremental.reoptimize_calls").Increment();
    options_.metrics->counter("incremental.checks_performed").Add(checks);
    options_.metrics->counter("incremental.warm_start_skips")
        .Add(warm_start_skips);
  }
}

}  // namespace mvrob
