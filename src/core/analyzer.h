#ifndef MVROB_CORE_ANALYZER_H_
#define MVROB_CORE_ANALYZER_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "core/conflict.h"
#include "core/robustness.h"

namespace mvrob {

/// Bitset-kernel implementation of Algorithm 1.
///
/// CheckRobustness (the reference implementation) re-derives conflict
/// information and rebuilds the mixed-iso-graph inside the triple loop;
/// this class precomputes, once per transaction set,
///  - pairwise conflict and rw matrices as dense bit rows,
///  - per-pair indices (first write of Ti ww-conflicting with Tj, first
///    read of Ti on an object Tj writes, last operation of Ti conflicting
///    with Tj), which turn the per-triple operation search into O(1)
///    lookups,
///  - derived candidate rows (ww_never, rw_before_ww, si_candidates =
///    ww_never & rw_into), so the inner Tm loop of Algorithm 1 collapses
///    into a word-wise AND of candidate masks followed by a set-bit walk
///    over the few survivors, and
///  - per-pivot connected components of the mixed-iso-graph (lazily, since
///    they are allocation-independent), which turn reachability into a
///    word-wise component-bitmask intersection.
///
/// The payoff is twofold: a single decision drops from the reference
/// checker's per-triple operation loops to a handful of word operations
/// per (T1, T2) pair, and Algorithm 2 (2·|T| robustness checks over the
/// *same* set) reuses every cache. Results — verdict, lowest
/// counterexample triple, and the audited triples_examined — are
/// bit-identical to CheckRobustness (property-tested).
///
/// Thread safety: Check(alloc, options) with options.num_threads != 1
/// partitions the t1 rows over a thread pool; the lazy per-t1 caches are
/// only ever touched by the thread owning that row, so concurrent rows
/// are race-free. Distinct Check calls must not run concurrently on the
/// same analyzer from user threads.
class RobustnessAnalyzer {
 public:
  /// `metrics` (nullable) records the matrix-build phase timers and, as a
  /// default sink, Check-time counters; per-call CheckOptions::metrics
  /// takes precedence for the latter. Collection never changes results.
  explicit RobustnessAnalyzer(const TransactionSet& txns,
                              MetricsRegistry* metrics = nullptr);

  /// Same, with a group-level ConflictPruner (core/conflict.h): pairs the
  /// pruner rules out skip the per-operation scans during matrix
  /// construction. The pruner must be sound (see ConflictPruner), in
  /// which case every matrix — and therefore every Check result — is
  /// identical to the unpruned analyzer's. The referenced pruner tables
  /// only need to outlive the constructor.
  RobustnessAnalyzer(const TransactionSet& txns, const ConflictPruner& pruner,
                     MetricsRegistry* metrics);

  /// Algorithm 1 for one allocation; equivalent to CheckRobustness.
  RobustnessResult Check(const Allocation& alloc) const;

  /// Same, with options.num_threads-way parallelism over the t1 outer
  /// loop. Deterministic: the lowest (t1, t2, tm) witness wins regardless
  /// of thread count, and triples_examined follows the audited contract
  /// of RobustnessResult.
  RobustnessResult Check(const Allocation& alloc,
                         const CheckOptions& options) const;

  const TransactionSet& txns() const { return txns_; }

  /// The pairwise conflict matrix (symmetric, zero diagonal); equals
  /// BuildConflictMatrix(txns()). Shared with MixedIsoGraph during
  /// witness recovery so conflict tests stay O(1).
  const BitMatrix& conflict_matrix() const { return conflict_; }

 private:
  static constexpr int kNever = std::numeric_limits<int>::max();

  // Conflicts between a pivot's component structure and other transactions.
  struct PivotCache {
    // For every transaction x: bitmask over the pivot-graph components
    // that contain a transaction conflicting with x. reachable(t2, tm)
    // through the graph iff the masks of t2 and tm intersect.
    std::vector<DenseBitset> comp_conf;
  };

  const PivotCache& PivotFor(TxnId t1) const;
  bool Reachable(TxnId t1, TxnId t2, TxnId tm) const;

  /// Tm candidates for an RC-allocated t1 and split threshold k (= the
  /// pair's first_rw index): first_ww_idx[t1][tm] > k and condition (5)
  /// holds (rw into t1, or a conflicting op of T1 after k). Allocation-
  /// independent given (t1, k), so cached across Algorithm 2's checks.
  ConstBitSpan RcCandidatesFor(TxnId t1, int k) const;

  /// Scans one t1 row: returns the lowest-(t2, tm) witness chain of the
  /// row, or nullopt. When `best` is non-null the scan abandons early
  /// once a lower t1 row is known to have a witness; when `cancel` is
  /// non-null and raised, the scan abandons at the next t2 boundary
  /// (Check maps this to a cancelled result). When `words_scanned` is
  /// non-null, the number of 64-bit words touched by the row's word-wise
  /// mask operations is accumulated into it.
  std::optional<CounterexampleChain> CheckRow(
      const Allocation& alloc, ConstBitSpan ssi_mask, TxnId t1,
      const std::atomic<uint32_t>* best, const std::atomic<bool>* cancel,
      uint64_t* words_scanned) const;

  int first_ww_idx(TxnId i, TxnId j) const {
    return first_ww_idx_[i * txns_.size() + j];
  }
  int first_rw_idx(TxnId i, TxnId j) const {
    return first_rw_idx_[i * txns_.size() + j];
  }
  int last_conflict_idx(TxnId i, TxnId j) const {
    return last_conflict_idx_[i * txns_.size() + j];
  }

  const TransactionSet& txns_;
  // Default observability sink for Check (overridden per call by
  // CheckOptions::metrics); also receives the build-phase timers.
  MetricsRegistry* metrics_ = nullptr;
  // conflict_ row i: transactions with an operation conflicting with Ti
  // (symmetric, diagonal clear).
  BitMatrix conflict_;
  // rw_ row i: {j : Ti reads an object Tj writes}.
  BitMatrix rw_;
  // rw_into_ row i: {j : Tj reads an object Ti writes} (transpose of rw_).
  BitMatrix rw_into_;
  // ww_never_ row i: {j : no write of Ti touches Tj's write set}.
  BitMatrix ww_never_;
  // rw_before_ww_ row i: {j : first_rw_idx[i][j] < first_ww_idx[i][j]},
  // with first_rw present. The T2-side pair condition for RC-allocated Ti.
  BitMatrix rw_before_ww_;
  // si_candidates_ row i = ww_never_ & rw_into_: the allocation-independent
  // Tm candidates when Ti is allocated SI/SSI.
  BitMatrix si_candidates_;
  // Flat n*n index tables (i * n + j); kNever / -1 sentinels as documented.
  std::vector<int> first_ww_idx_;
  std::vector<int> first_rw_idx_;
  std::vector<int> last_conflict_idx_;

  // Lazy per-t1 caches. Slot t1 is only touched by the (single) thread
  // scanning row t1, and pool joins order successive Check calls.
  mutable std::vector<std::optional<PivotCache>> pivot_cache_;
  mutable std::vector<std::vector<std::pair<int, DenseBitset>>> rc_cache_;
};

}  // namespace mvrob

#endif  // MVROB_CORE_ANALYZER_H_
