#ifndef MVROB_CORE_ANALYZER_H_
#define MVROB_CORE_ANALYZER_H_

#include <limits>
#include <optional>
#include <vector>

#include "core/robustness.h"

namespace mvrob {

/// Matrix-cached implementation of Algorithm 1.
///
/// CheckRobustness (the reference implementation) re-derives conflict
/// information and rebuilds the mixed-iso-graph inside the triple loop;
/// this class precomputes, once per transaction set,
///  - pairwise conflict and rw matrices,
///  - per-pair indices (first write of Ti ww-conflicting with Tj, first
///    read of Ti on an object Tj writes, last operation of Ti conflicting
///    with Tj), which turn the per-triple operation search into O(1)
///    lookups, and
///  - per-pivot connected components of the mixed-iso-graph (lazily, since
///    they are allocation-independent), which turn reachability into a
///    sorted-list intersection.
///
/// The payoff is twofold: a single decision drops from the reference
/// checker's per-triple operation loops to constant work, and Algorithm 2
/// (2·|T| robustness checks over the *same* set) reuses every cache.
/// Results are bit-identical to CheckRobustness (property-tested).
///
/// Not thread-safe (the pivot cache fills lazily).
class RobustnessAnalyzer {
 public:
  explicit RobustnessAnalyzer(const TransactionSet& txns);

  /// Algorithm 1 for one allocation; equivalent to CheckRobustness.
  RobustnessResult Check(const Allocation& alloc) const;

  const TransactionSet& txns() const { return txns_; }

 private:
  static constexpr int kNever = std::numeric_limits<int>::max();

  // Conflicts between a pivot's component structure and other transactions.
  struct PivotCache {
    // For every transaction x: sorted ids of the pivot-graph components
    // containing a transaction that conflicts with x.
    std::vector<std::vector<uint32_t>> comp_conf;
  };

  const PivotCache& PivotFor(TxnId t1) const;
  bool Reachable(TxnId t1, TxnId t2, TxnId tm) const;

  const TransactionSet& txns_;
  // conflict_[i][j]: some operation of Ti conflicts with some of Tj.
  std::vector<std::vector<bool>> conflict_;
  // rw_[i][j]: Ti reads an object Tj writes.
  std::vector<std::vector<bool>> rw_;
  // first_ww_idx_[i][j]: least program index of a write in Ti on an object
  // in Tj's write set; kNever if none.
  std::vector<std::vector<int>> first_ww_idx_;
  // first_rw_idx_[i][j]: least program index of a read in Ti on an object
  // in Tj's write set; kNever if none.
  std::vector<std::vector<int>> first_rw_idx_;
  // last_conflict_idx_[i][j]: greatest program index of a non-commit op of
  // Ti conflicting with Tj; -1 if none.
  std::vector<std::vector<int>> last_conflict_idx_;

  mutable std::vector<std::optional<PivotCache>> pivot_cache_;
};

}  // namespace mvrob

#endif  // MVROB_CORE_ANALYZER_H_
