#include "core/witness.h"

#include <utility>

#include "common/json.h"
#include "common/string_util.h"
#include "core/conflict.h"
#include "core/split_schedule.h"
#include "schedule/dot.h"
#include "txn/conflict.h"

namespace mvrob {
namespace {

// Conflict mode of the ordered pair (b, a), for edge labels.
std::string ConflictKind(const Operation& b, const Operation& a) {
  if (RwConflicting(b, a)) return "rw";
  if (WrConflicting(b, a)) return "wr";
  if (WwConflicting(b, a)) return "ww";
  return "none";
}

const char* OpTypeName(const Operation& op) {
  if (op.IsRead()) return "read";
  if (op.IsWrite()) return "write";
  return "commit";
}

// The middle section of the chain: T2, inner..., Tm (tm omitted when equal
// to t2).
std::vector<TxnId> MiddleTxns(const CounterexampleChain& chain) {
  std::vector<TxnId> middle{chain.t2};
  middle.insert(middle.end(), chain.inner.begin(), chain.inner.end());
  if (chain.tm != chain.t2) middle.push_back(chain.tm);
  return middle;
}

// Evaluates every Definition 3.1 condition for the chain, mirroring
// ValidateSplitChain but recording *how* each condition is discharged
// instead of failing on the first violation.
std::vector<WitnessCondition> EvaluateConditions(
    const TransactionSet& txns, const Allocation& alloc,
    const CounterexampleChain& chain) {
  std::vector<WitnessCondition> conditions;
  auto add = [&](std::string id, bool holds, std::string detail) {
    conditions.push_back({std::move(id), holds, std::move(detail)});
  };
  const Transaction& txn1 = txns.txn(chain.t1);
  auto name = [&](TxnId t) { return txns.txn(t).name(); };
  auto level = [&](TxnId t) { return alloc.level(t); };
  bool t1_snapshot = level(chain.t1) != IsolationLevel::kRC;

  // (1) T1 conflicts with no inner transaction.
  if (chain.inner.empty()) {
    add("3.1(1)", true, "vacuous: the chain has no inner transactions");
  } else {
    std::vector<std::string> bad;
    for (TxnId t : chain.inner) {
      if (TxnsConflict(txns, chain.t1, t)) bad.push_back(name(t));
    }
    add("3.1(1)", bad.empty(),
        bad.empty()
            ? StrCat(name(chain.t1), " conflicts with none of the ",
                     chain.inner.size(), " inner transaction(s)")
            : StrCat(name(chain.t1), " conflicts with inner transaction(s) ",
                     Join(bad, ", ")));
  }

  // (2)/(3) ww-conflict-freedom of prefix (RC) or the whole of T1 (SI/SSI)
  // against the write sets of T2 and Tm.
  std::vector<std::string> prefix_bad;
  std::vector<std::string> postfix_bad;
  for (int i = 0; i < txn1.num_ops(); ++i) {
    const Operation& c1 = txn1.op(i);
    if (!c1.IsWrite()) continue;
    if (!txns.txn(chain.t2).Writes(c1.object) &&
        !txns.txn(chain.tm).Writes(c1.object)) {
      continue;
    }
    (i <= chain.b1.index ? prefix_bad : postfix_bad)
        .push_back(txns.FormatOp(OpRef{chain.t1, i}));
  }
  add("3.1(2)", prefix_bad.empty(),
      prefix_bad.empty()
          ? StrCat("no write in prefix_", txns.FormatOp(chain.b1), "(",
                   name(chain.t1), ") ww-conflicts with a write of ",
                   name(chain.t2), " or ", name(chain.tm))
          : StrCat("prefix write(s) ", Join(prefix_bad, ", "),
                   " ww-conflict with ", name(chain.t2), " or ",
                   name(chain.tm)));
  if (!t1_snapshot) {
    add("3.1(3)", true,
        StrCat("vacuous: A(", name(chain.t1), ") = RC"));
  } else {
    add("3.1(3)", postfix_bad.empty(),
        postfix_bad.empty()
            ? StrCat("A(", name(chain.t1), ") = ",
                     IsolationLevelToString(level(chain.t1)),
                     ": the postfix of ", name(chain.t1),
                     " is also ww-conflict-free with ", name(chain.t2),
                     " and ", name(chain.tm))
            : StrCat("postfix write(s) ", Join(postfix_bad, ", "),
                     " ww-conflict with ", name(chain.t2), " or ",
                     name(chain.tm)));
  }

  // (4) b1 rw-conflicting with a2.
  bool cond4 = RwConflicting(txns.op(chain.b1), txns.op(chain.a2));
  add("3.1(4)", cond4,
      StrCat("b1 = ", txns.FormatOp(chain.b1),
             cond4 ? " is rw-conflicting with a2 = "
                   : " is NOT rw-conflicting with a2 = ",
             txns.FormatOp(chain.a2)));

  // (5) bm conflicts with a1: rw-antidependency or the RC split case.
  bool conflict5 = Conflicting(txns.op(chain.bm), txns.op(chain.a1));
  bool rw5 = RwConflicting(txns.op(chain.bm), txns.op(chain.a1));
  bool rc_case = level(chain.t1) == IsolationLevel::kRC &&
                 chain.b1.index < chain.a1.index;
  std::string detail5;
  if (rw5) {
    detail5 = StrCat("bm = ", txns.FormatOp(chain.bm),
                     " is rw-conflicting with a1 = ",
                     txns.FormatOp(chain.a1));
  } else if (conflict5 && rc_case) {
    detail5 = StrCat("bm = ", txns.FormatOp(chain.bm), " ",
                     ConflictKind(txns.op(chain.bm), txns.op(chain.a1)),
                     "-conflicts with a1 = ", txns.FormatOp(chain.a1),
                     " and the RC split case applies: A(", name(chain.t1),
                     ") = RC with b1 <_T1 a1");
  } else {
    detail5 = StrCat("bm = ", txns.FormatOp(chain.bm),
                     " -> a1 = ", txns.FormatOp(chain.a1),
                     " is neither rw-conflicting nor the RC split case");
  }
  add("3.1(5)", conflict5 && (rw5 || rc_case), std::move(detail5));

  // (6)-(8) the SSI side conditions.
  bool s1 = level(chain.t1) == IsolationLevel::kSSI;
  bool s2 = level(chain.t2) == IsolationLevel::kSSI;
  bool sm = level(chain.tm) == IsolationLevel::kSSI;
  add("3.1(6)", !(s1 && s2 && sm),
      !(s1 && s2 && sm)
          ? StrCat("not all of ", name(chain.t1), ", ", name(chain.t2),
                   ", ", name(chain.tm), " are SSI (",
                   IsolationLevelToString(level(chain.t1)), "/",
                   IsolationLevelToString(level(chain.t2)), "/",
                   IsolationLevelToString(level(chain.tm)), ")")
          : "T1, T2 and Tm are all SSI");
  if (s1 && s2) {
    bool ok = WrConflictFreeTxns(txns, chain.t1, chain.t2);
    add("3.1(7)", ok,
        StrCat(name(chain.t1), ok ? " is wr-conflict-free with "
                                  : " wr-conflicts with ",
               name(chain.t2), " (both SSI)"));
  } else {
    add("3.1(7)", true,
        StrCat("vacuous: A(", name(chain.t1), ") and A(", name(chain.t2),
               ") are not both SSI"));
  }
  if (s1 && sm) {
    bool ok = WrConflictFreeTxns(txns, chain.tm, chain.t1);
    add("3.1(8)", ok,
        StrCat(name(chain.tm), ok ? " is wr-conflict-free with "
                                  : " wr-conflicts with ",
               name(chain.t1), " (both SSI)"));
  } else {
    add("3.1(8)", true,
        StrCat("vacuous: A(", name(chain.t1), ") and A(", name(chain.tm),
               ") are not both SSI"));
  }
  return conditions;
}

// Emits one witness report as a JSON object (the value after a Key()).
void WitnessReportJson(const TransactionSet& txns, const Allocation& alloc,
                       const WitnessReport& report, JsonWriter& json) {
  json.BeginObject();
  json.Key("split_txn");
  json.String(txns.txn(report.chain.t1).name());
  json.Key("split_after");
  json.String(txns.FormatOp(report.chain.b1));
  json.Key("chain");
  json.BeginArray();
  for (TxnId t : report.chain_txns) {
    json.BeginObject();
    json.Key("txn");
    json.String(txns.txn(t).name());
    json.Key("level");
    json.String(IsolationLevelToString(alloc.level(t)));
    json.EndObject();
  }
  json.EndArray();
  json.Key("edges");
  json.BeginArray();
  for (const WitnessEdge& edge : report.edges) {
    json.BeginObject();
    json.Key("from");
    json.String(txns.txn(edge.from).name());
    json.Key("to");
    json.String(txns.txn(edge.to).name());
    json.Key("b");
    json.String(txns.FormatOp(edge.b));
    json.Key("a");
    json.String(txns.FormatOp(edge.a));
    json.Key("conflict");
    json.String(edge.conflict);
    json.Key("condition");
    json.String(edge.condition);
    json.Key("detail");
    json.String(edge.detail);
    json.EndObject();
  }
  json.EndArray();
  json.Key("conditions");
  json.BeginArray();
  for (const WitnessCondition& condition : report.conditions) {
    json.BeginObject();
    json.Key("condition");
    json.String(condition.condition);
    json.Key("holds");
    json.Bool(condition.holds);
    json.Key("detail");
    json.String(condition.detail);
    json.EndObject();
  }
  json.EndArray();
  json.Key("split_schedule");
  json.BeginObject();
  json.Key("prefix_len");
  json.Int(report.prefix_len);
  json.Key("order");
  json.BeginArray();
  for (const OpRef& ref : report.split_order) {
    const Operation& op = txns.op(ref);
    json.BeginObject();
    json.Key("op");
    json.String(txns.FormatOp(ref));
    json.Key("txn");
    json.String(txns.txn(ref.txn).name());
    json.Key("type");
    json.String(OpTypeName(op));
    if (!op.IsCommit()) {
      json.Key("object");
      json.String(txns.ObjectName(op.object));
    }
    json.EndObject();
  }
  json.EndArray();
  StatusOr<Schedule> schedule =
      BuildSplitSchedule(txns, alloc, report.chain);
  if (schedule.ok()) {
    json.Key("schedule");
    json.String(schedule->ToString(/*with_versions=*/true));
    json.Key("timeline");
    json.String(ScheduleTimeline(*schedule));
  }
  json.EndObject();
  json.Key("verified");
  json.Bool(report.verified);
  if (!report.verified) {
    json.Key("verify_error");
    json.String(report.verify_error);
  }
  json.EndObject();
}

void AllocationJson(const TransactionSet& txns, const Allocation& alloc,
                    JsonWriter& json) {
  json.BeginObject();
  for (TxnId t = 0; t < txns.size(); ++t) {
    json.Key(txns.txn(t).name());
    json.String(IsolationLevelToString(alloc.level(t)));
  }
  json.EndObject();
}

// Appends the chain of `report` to `dot`, with T1 drawn split into its
// prefix and postfix halves. `id_prefix` namespaces node ids so several
// chains can share one graph (the allocate obstacle view); `context` is
// appended to node labels when non-empty.
void AppendChainToDot(DotGraph& dot, const TransactionSet& txns,
                      const Allocation& alloc, const WitnessReport& report,
                      const std::string& id_prefix,
                      const std::string& context) {
  const CounterexampleChain& chain = report.chain;
  auto node_id = [&](TxnId t) { return StrCat(id_prefix, "n", t); };
  auto label = [&](TxnId t, std::string_view suffix) {
    std::string text = StrCat(txns.txn(t).name(), suffix, "\n",
                              IsolationLevelToString(alloc.level(t)));
    if (!context.empty()) text = StrCat(context, "\n", text);
    return text;
  };
  std::string t1_pre = StrCat(node_id(chain.t1), "_pre");
  std::string t1_post = StrCat(node_id(chain.t1), "_post");
  dot.AddNode({t1_pre,
               label(chain.t1,
                     StrCat(" prefix(", txns.FormatOp(chain.b1), ")")),
               "box", "style=filled, fillcolor=lightgrey"});
  dot.AddNode({t1_post, label(chain.t1, " postfix"), "box",
               "style=filled, fillcolor=lightgrey"});
  for (TxnId t : MiddleTxns(chain)) {
    dot.AddNode({node_id(t), label(t, ""), "box"});
  }
  // Program order within the split T1.
  dot.AddEdge({t1_pre, t1_post, "program order", /*dashed=*/true});
  for (const WitnessEdge& edge : report.edges) {
    std::string from = edge.from == chain.t1 ? t1_pre : node_id(edge.from);
    std::string to = node_id(edge.to);
    if (edge.to == chain.t1) {
      to = edge.a.index <= chain.b1.index ? t1_pre : t1_post;
    }
    dot.AddEdge({from, to,
                 StrCat(txns.FormatOp(edge.b), "->", txns.FormatOp(edge.a),
                        " (", edge.conflict, ", ", edge.condition, ")"),
                 edge.conflict == "rw"});
  }
}

}  // namespace

StatusOr<WitnessReport> BuildWitnessReport(const TransactionSet& txns,
                                           const Allocation& alloc,
                                           const CounterexampleChain& chain) {
  if (chain.t1 >= txns.size() || chain.t2 >= txns.size() ||
      chain.tm >= txns.size() || chain.t1 == chain.t2 ||
      chain.t1 == chain.tm) {
    return Status::InvalidArgument("chain references invalid transactions");
  }
  for (OpRef ref : {chain.b1, chain.a1, chain.a2, chain.bm}) {
    if (ref.IsOp0() || !txns.IsValidRef(ref)) {
      return Status::InvalidArgument("chain operation reference invalid");
    }
  }
  for (TxnId t : chain.inner) {
    if (t >= txns.size()) {
      return Status::InvalidArgument("invalid inner transaction");
    }
  }
  if (alloc.size() != txns.size()) {
    return Status::InvalidArgument("allocation size mismatch");
  }

  WitnessReport report;
  report.chain = chain;
  report.chain_txns = chain.ChainTxns();

  // Edge 1: b1 -> a2, the rw-antidependency that opens the split
  // (Definition 3.1 (4)).
  report.edges.push_back(WitnessEdge{
      chain.t1, chain.t2, chain.b1, chain.a2,
      ConflictKind(txns.op(chain.b1), txns.op(chain.a2)), "3.1(4)",
      StrCat(txns.FormatOp(chain.b1), " reads the object that ",
             txns.FormatOp(chain.a2), " writes; T1 is split after ",
             txns.FormatOp(chain.b1))});
  // Middle edges: consecutive chain members admit conflicting quadruples.
  std::vector<TxnId> middle = MiddleTxns(chain);
  for (size_t i = 0; i + 1 < middle.size(); ++i) {
    auto pair = FindConflictingPair(txns, middle[i], middle[i + 1]);
    if (pair.has_value()) {
      report.edges.push_back(WitnessEdge{
          middle[i], middle[i + 1], pair->first, pair->second,
          ConflictKind(txns.op(pair->first), txns.op(pair->second)),
          "3.1(chain)",
          StrCat("conflicting quadruple (", txns.txn(middle[i]).name(), ", ",
                 txns.FormatOp(pair->first), ", ",
                 txns.FormatOp(pair->second), ", ",
                 txns.txn(middle[i + 1]).name(), ") links the chain")});
    } else {
      report.edges.push_back(WitnessEdge{
          middle[i], middle[i + 1], OpRef::Op0(), OpRef::Op0(), "none",
          "3.1(chain)",
          StrCat("MISSING conflict between ", txns.txn(middle[i]).name(),
                 " and ", txns.txn(middle[i + 1]).name())});
    }
  }
  // Closing edge: bm -> a1 (Definition 3.1 (5)).
  bool rw5 = RwConflicting(txns.op(chain.bm), txns.op(chain.a1));
  report.edges.push_back(WitnessEdge{
      chain.tm, chain.t1, chain.bm, chain.a1,
      ConflictKind(txns.op(chain.bm), txns.op(chain.a1)),
      rw5 ? "3.1(5)" : "3.1(5)-rc",
      rw5 ? StrCat(txns.FormatOp(chain.bm),
                   " closes the cycle with an rw-antidependency into ",
                   txns.FormatOp(chain.a1))
          : StrCat(txns.FormatOp(chain.bm), " closes the cycle into ",
                   txns.FormatOp(chain.a1), " via the RC split case (A(",
                   txns.txn(chain.t1).name(), ") = RC, b1 <_T1 a1)")});

  report.conditions = EvaluateConditions(txns, alloc, chain);
  report.split_order = BuildSplitOrder(txns, chain);
  report.prefix_len = chain.b1.index + 1;
  Status verified = VerifyCounterexample(txns, alloc, chain);
  report.verified = verified.ok();
  if (!verified.ok()) report.verify_error = verified.ToString();
  return report;
}

std::string RobustnessWitnessJson(const TransactionSet& txns,
                                  const Allocation& alloc,
                                  const RobustnessResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Uint(1);
  json.Key("kind");
  json.String("robustness_witness");
  json.Key("robust");
  json.Bool(result.robust);
  json.Key("allocation");
  AllocationJson(txns, alloc, json);
  json.Key("triples_examined");
  json.Uint(result.triples_examined);
  if (!result.robust && result.counterexample.has_value()) {
    StatusOr<WitnessReport> report =
        BuildWitnessReport(txns, alloc, *result.counterexample);
    if (report.ok()) {
      json.Key("witness");
      WitnessReportJson(txns, alloc, *report, json);
    } else {
      json.Key("witness_error");
      json.String(report.status().ToString());
    }
  }
  json.EndObject();
  return json.str();
}

std::string RobustnessWitnessDot(const TransactionSet& txns,
                                 const Allocation& alloc,
                                 const RobustnessResult& result) {
  DotGraph dot("witness");
  dot.AddAttribute("rankdir=LR");
  dot.AddAttribute(StrCat("label=\"",
                          DotGraph::Escape(alloc.ToString(txns)), "\""));
  if (result.robust || !result.counterexample.has_value()) {
    dot.AddNode({"verdict", "robust: no counterexample chain exists",
                 "plaintext"});
    return dot.Render();
  }
  StatusOr<WitnessReport> report =
      BuildWitnessReport(txns, alloc, *result.counterexample);
  if (!report.ok()) {
    dot.AddNode({"verdict",
                 StrCat("witness error: ", report.status().ToString()),
                 "plaintext"});
    return dot.Render();
  }
  AppendChainToDot(dot, txns, alloc, *report, "", "");
  return dot.Render();
}

std::string AllocationExplanationJson(
    const TransactionSet& txns, const AllocationExplanation& explanation) {
  const Allocation& alloc = explanation.allocation;
  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Uint(1);
  json.Key("kind");
  json.String("allocation_witness");
  json.Key("allocation");
  AllocationJson(txns, alloc, json);
  json.Key("counts");
  json.BeginObject();
  for (IsolationLevel level : kAllIsolationLevels) {
    json.Key(IsolationLevelToString(level));
    json.Uint(alloc.CountAt(level));
  }
  json.EndObject();
  json.Key("per_txn");
  json.BeginArray();
  for (const AllocationObstacle& entry : explanation.per_txn) {
    json.BeginObject();
    json.Key("txn");
    json.String(txns.txn(entry.txn).name());
    json.Key("assigned");
    json.String(IsolationLevelToString(entry.assigned));
    json.Key("obstacles");
    json.BeginArray();
    for (const AllocationObstacle::Obstacle& obstacle : entry.obstacles) {
      json.BeginObject();
      json.Key("attempted");
      json.String(IsolationLevelToString(obstacle.attempted));
      // The chain witnesses non-robustness of the *lowered* allocation.
      Allocation lowered = alloc.With(entry.txn, obstacle.attempted);
      StatusOr<WitnessReport> report =
          BuildWitnessReport(txns, lowered, obstacle.chain);
      if (report.ok()) {
        json.Key("witness");
        WitnessReportJson(txns, lowered, *report, json);
      } else {
        json.Key("witness_error");
        json.String(report.status().ToString());
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string AllocationExplanationDot(
    const TransactionSet& txns, const AllocationExplanation& explanation) {
  const Allocation& alloc = explanation.allocation;
  DotGraph dot("obstacles");
  dot.AddAttribute("rankdir=LR");
  dot.AddAttribute(StrCat("label=\"optimal allocation ",
                          DotGraph::Escape(alloc.ToString(txns)), "\""));
  size_t cluster = 0;
  for (const AllocationObstacle& entry : explanation.per_txn) {
    for (const AllocationObstacle::Obstacle& obstacle : entry.obstacles) {
      Allocation lowered = alloc.With(entry.txn, obstacle.attempted);
      StatusOr<WitnessReport> report =
          BuildWitnessReport(txns, lowered, obstacle.chain);
      if (!report.ok()) continue;
      AppendChainToDot(dot, txns, lowered, *report,
                       StrCat("o", cluster, "_"),
                       StrCat(txns.txn(entry.txn).name(), "->",
                              IsolationLevelToString(obstacle.attempted),
                              " blocked by:"));
      ++cluster;
    }
  }
  if (cluster == 0) {
    dot.AddNode({"verdict", "no obstacles: every transaction is at RC",
                 "plaintext"});
  }
  return dot.Render();
}

}  // namespace mvrob
