#include "core/mixed_iso_graph.h"

#include <algorithm>
#include <deque>

namespace mvrob {

MixedIsoGraph::MixedIsoGraph(const TransactionSet& txns, TxnId t1,
                             const std::vector<TxnId>& excluded,
                             const BitMatrix* conflict)
    : txns_(txns), conflict_(conflict), node_index_(txns.size(), -1) {
  std::vector<bool> is_excluded(txns.size(), false);
  is_excluded[t1] = true;
  for (TxnId t : excluded) is_excluded[t] = true;

  for (TxnId t = 0; t < txns.size(); ++t) {
    if (is_excluded[t] || Conflicts(t, t1)) continue;
    node_index_[t] = static_cast<int>(nodes_.size());
    nodes_.push_back(t);
  }
  adjacency_.assign(nodes_.size(), {});
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t j = i + 1; j < nodes_.size(); ++j) {
      if (Conflicts(nodes_[i], nodes_[j])) {
        adjacency_[i].push_back(nodes_[j]);
        adjacency_[j].push_back(nodes_[i]);
      }
    }
  }
  // Connected components double as the reflexive-transitive closure, since
  // the conflict relation (and hence the edge relation) is symmetric.
  component_.assign(nodes_.size(), -1);
  int next_component = 0;
  for (size_t root = 0; root < nodes_.size(); ++root) {
    if (component_[root] >= 0) continue;
    std::deque<size_t> queue{root};
    component_[root] = next_component;
    while (!queue.empty()) {
      size_t node = queue.front();
      queue.pop_front();
      for (TxnId neighbor : adjacency_[node]) {
        size_t idx = static_cast<size_t>(node_index_[neighbor]);
        if (component_[idx] < 0) {
          component_[idx] = next_component;
          queue.push_back(idx);
        }
      }
    }
    ++next_component;
  }
}

bool MixedIsoGraph::Connected(TxnId from, TxnId to) const {
  if (!Contains(from) || !Contains(to)) return false;
  return component_[node_index_[from]] == component_[node_index_[to]];
}

std::optional<std::vector<TxnId>> MixedIsoGraph::FindInnerChain(
    TxnId t2, TxnId tm) const {
  if (t2 == tm || Conflicts(t2, tm)) return std::vector<TxnId>{};

  // BFS from every node conflicting with t2 towards any node conflicting
  // with tm, over graph nodes only.
  std::vector<int> parent(nodes_.size(), -2);  // -2 unvisited, -1 source.
  std::deque<size_t> queue;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (Conflicts(t2, nodes_[i])) {
      parent[i] = -1;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    size_t node = queue.front();
    queue.pop_front();
    if (Conflicts(nodes_[node], tm)) {
      std::vector<TxnId> chain;
      size_t walk = node;
      while (true) {
        chain.push_back(nodes_[walk]);
        if (parent[walk] == -1) break;
        walk = static_cast<size_t>(parent[walk]);
      }
      std::reverse(chain.begin(), chain.end());
      return chain;
    }
    for (TxnId neighbor : adjacency_[node]) {
      size_t idx = static_cast<size_t>(node_index_[neighbor]);
      if (parent[idx] == -2) {
        parent[idx] = static_cast<int>(node);
        queue.push_back(idx);
      }
    }
  }
  return std::nullopt;
}

}  // namespace mvrob
