#ifndef MVROB_CORE_SPLIT_SCHEDULE_H_
#define MVROB_CORE_SPLIT_SCHEDULE_H_

#include <vector>

#include "core/robustness.h"
#include "iso/materialize.h"

namespace mvrob {

/// Checks the full set of structural conditions of Definition 3.1
/// (multiversion split schedule) for a counterexample chain:
///   - the chain transactions are pairwise distinct (t2 == tm allowed),
///     consecutive chain members conflict, and the designated operations
///     have the required kinds;
///   - (1) T1 does not conflict with any inner transaction;
///   - (2) no write in prefix_{b1}(T1) ww-conflicts with a write of T2/Tm;
///   - (3) if A(T1) in {SI, SSI}, the same holds for postfix_{b1}(T1);
///   - (4) b1 is rw-conflicting with a2;
///   - (5) bm conflicts with a1, rw-conflicting or the RC split case;
///   - (6)-(8) the SSI side conditions.
/// Returns OK iff the chain describes a valid multiversion split schedule
/// for (txns, alloc).
Status ValidateSplitChain(const TransactionSet& txns, const Allocation& alloc,
                          const CounterexampleChain& chain);

/// The operation order of the multiversion split schedule based on `chain`:
///
///   prefix_{b1}(T1) . T2 . T3 ... Tm . postfix_{b1}(T1) . T_{m+1} ... T_n
///
/// with the remaining transactions appended in ascending id order.
std::vector<OpRef> BuildSplitOrder(const TransactionSet& txns,
                                   const CounterexampleChain& chain);

/// Materializes the split order into a concrete schedule under `alloc`.
/// By Theorem 3.2, if the chain validates, the result is allowed under
/// `alloc` and not conflict serializable — a counterexample witnessing
/// non-robustness.
StatusOr<Schedule> BuildSplitSchedule(const TransactionSet& txns,
                                      const Allocation& alloc,
                                      const CounterexampleChain& chain);

/// End-to-end verification used by tests and tooling: validates the chain,
/// builds the schedule, and checks with the *independent* semantic checkers
/// that it is allowed under `alloc` and not conflict serializable.
Status VerifyCounterexample(const TransactionSet& txns,
                            const Allocation& alloc,
                            const CounterexampleChain& chain);

}  // namespace mvrob

#endif  // MVROB_CORE_SPLIT_SCHEDULE_H_
