#ifndef MVROB_CORE_OPTIMAL_ALLOCATION_H_
#define MVROB_CORE_OPTIMAL_ALLOCATION_H_

#include <cstdint>

#include "core/robustness.h"

namespace mvrob {

/// Result of the allocation computation (Algorithm 2).
struct OptimalAllocationResult {
  Allocation allocation;
  /// Number of invocations of the robustness checker — exposed for the
  /// complexity benchmarks.
  uint64_t robustness_checks = 0;
};

/// Algorithm 2: computes the *unique* optimal robust allocation over
/// {RC, SI, SSI} for `txns` (Theorem 4.3, Proposition 4.2): no transaction
/// can be moved to a lower level without breaking robustness.
///
/// Starts from A_SSI (always robust, since SSI guarantees serializability)
/// and, for each transaction in turn, assigns the lowest level that keeps
/// the allocation robust. Correctness follows from Proposition 4.1(2): the
/// outcome does not depend on the iteration order.
///
/// `options` is forwarded to every robustness check; the allocation is
/// identical for every thread count (each check is deterministic).
OptimalAllocationResult ComputeOptimalAllocation(const TransactionSet& txns,
                                                 const CheckOptions& options = {});

class RobustnessAnalyzer;

/// Algorithm 2 over a caller-provided analyzer, so callers that already
/// hold one — the template layer runs Algorithm 2 once per function world
/// over conflict-pruned analyzers — reuse its matrices and pivot caches
/// instead of rebuilding them.
OptimalAllocationResult ComputeOptimalAllocation(
    const RobustnessAnalyzer& analyzer, const CheckOptions& options = {});

}  // namespace mvrob

#endif  // MVROB_CORE_OPTIMAL_ALLOCATION_H_
