#ifndef MVROB_CORE_RC_SI_ALLOCATION_H_
#define MVROB_CORE_RC_SI_ALLOCATION_H_

#include <optional>

#include "core/robustness.h"

namespace mvrob {

/// Result of the {RC, SI} allocation problem (Section 5), the setting of
/// systems such as Oracle where no serializable level is available.
struct RcSiAllocationResult {
  /// Whether a robust {RC, SI}-allocation exists at all. By Proposition
  /// 5.4, this holds iff the set is robust against A_SI.
  bool allocatable = false;
  /// The unique optimal robust {RC, SI}-allocation, when allocatable.
  std::optional<Allocation> allocation;
  /// When not allocatable: Algorithm 1's counterexample against A_SI.
  std::optional<CounterexampleChain> counterexample;
  uint64_t robustness_checks = 0;
};

/// Theorem 5.5: decides in PTIME whether `txns` is robustly allocatable
/// against {RC, SI} and, if so, computes the unique optimal allocation by
/// running Algorithm 2 from A_SI downwards.
RcSiAllocationResult ComputeOptimalRcSiAllocation(const TransactionSet& txns);

}  // namespace mvrob

#endif  // MVROB_CORE_RC_SI_ALLOCATION_H_
