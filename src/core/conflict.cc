#include "core/conflict.h"

#include <algorithm>

namespace mvrob {
namespace {

// True if two ascending ObjectId vectors intersect.
bool Intersects(const std::vector<ObjectId>& x,
                const std::vector<ObjectId>& y) {
  auto xi = x.begin();
  auto yi = y.begin();
  while (xi != x.end() && yi != y.end()) {
    if (*xi == *yi) return true;
    if (*xi < *yi) {
      ++xi;
    } else {
      ++yi;
    }
  }
  return false;
}

}  // namespace

bool TxnsConflict(const TransactionSet& txns, TxnId a, TxnId b) {
  if (a == b) return false;
  const Transaction& ta = txns.txn(a);
  const Transaction& tb = txns.txn(b);
  return Intersects(ta.write_set(), tb.write_set()) ||
         Intersects(ta.write_set(), tb.read_set()) ||
         Intersects(ta.read_set(), tb.write_set());
}

bool WwConflictFreeTxns(const TransactionSet& txns, TxnId a, TxnId b) {
  if (a == b) return true;
  return !Intersects(txns.txn(a).write_set(), txns.txn(b).write_set());
}

bool WrConflictFreeTxns(const TransactionSet& txns, TxnId i, TxnId j) {
  if (i == j) return true;
  return !Intersects(txns.txn(i).write_set(), txns.txn(j).read_set());
}

std::optional<std::pair<OpRef, OpRef>> FindConflictingPair(
    const TransactionSet& txns, TxnId from, TxnId to) {
  if (from == to) return std::nullopt;
  const Transaction& tf = txns.txn(from);
  const Transaction& tt = txns.txn(to);
  for (int i = 0; i < tf.num_ops(); ++i) {
    for (int j = 0; j < tt.num_ops(); ++j) {
      if (Conflicting(tf.op(i), tt.op(j))) {
        return std::make_pair(OpRef{from, i}, OpRef{to, j});
      }
    }
  }
  return std::nullopt;
}

}  // namespace mvrob
