#include "core/conflict.h"

#include <algorithm>

namespace mvrob {
namespace {

// True if two ascending ObjectId vectors intersect.
bool Intersects(const std::vector<ObjectId>& x,
                const std::vector<ObjectId>& y) {
  auto xi = x.begin();
  auto yi = y.begin();
  while (xi != x.end() && yi != y.end()) {
    if (*xi == *yi) return true;
    if (*xi < *yi) {
      ++xi;
    } else {
      ++yi;
    }
  }
  return false;
}

}  // namespace

bool TxnsConflict(const TransactionSet& txns, TxnId a, TxnId b) {
  if (a == b) return false;
  const Transaction& ta = txns.txn(a);
  const Transaction& tb = txns.txn(b);
  return Intersects(ta.write_set(), tb.write_set()) ||
         Intersects(ta.write_set(), tb.read_set()) ||
         Intersects(ta.read_set(), tb.write_set());
}

bool WwConflictFreeTxns(const TransactionSet& txns, TxnId a, TxnId b) {
  if (a == b) return true;
  return !Intersects(txns.txn(a).write_set(), txns.txn(b).write_set());
}

bool WrConflictFreeTxns(const TransactionSet& txns, TxnId i, TxnId j) {
  if (i == j) return true;
  return !Intersects(txns.txn(i).write_set(), txns.txn(j).read_set());
}

std::optional<std::pair<OpRef, OpRef>> FindConflictingPair(
    const TransactionSet& txns, TxnId from, TxnId to) {
  if (from == to) return std::nullopt;
  const Transaction& tf = txns.txn(from);
  const Transaction& tt = txns.txn(to);
  for (int i = 0; i < tf.num_ops(); ++i) {
    const Operation& op = tf.op(i);
    if (op.IsCommit()) continue;
    // The earliest operation of `to` conflicting with op: a write always
    // conflicts with reads and writes on the object, a read only with
    // writes — resolved via the per-object first-index lookups instead of
    // a scan over `to`'s operations.
    std::optional<int> j = tt.FirstWriteIndex(op.object);
    if (op.IsWrite()) {
      std::optional<int> r = tt.FirstReadIndex(op.object);
      if (r.has_value() && (!j.has_value() || *r < *j)) j = r;
    }
    if (j.has_value()) {
      return std::make_pair(OpRef{from, i}, OpRef{to, *j});
    }
  }
  return std::nullopt;
}

BitMatrix BuildConflictMatrix(const TransactionSet& txns) {
  return BuildConflictMatrix(txns, ConflictPruner{});
}

BitMatrix BuildConflictMatrix(const TransactionSet& txns,
                              const ConflictPruner& pruner) {
  const size_t n = txns.size();
  BitMatrix conflict(n, n);
  for (TxnId i = 0; i < n; ++i) {
    for (TxnId j = i + 1; j < n; ++j) {
      if (!pruner.MayConflict(i, j)) continue;
      if (TxnsConflict(txns, i, j)) {
        conflict.Set(i, j);
        conflict.Set(j, i);
      }
    }
  }
  return conflict;
}

}  // namespace mvrob
