#ifndef MVROB_CLI_SERVE_H_
#define MVROB_CLI_SERVE_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "iso/allocation.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// Configuration for `mvrob serve` (parsed from CLI flags in cli.cc).
struct ServeParams {
  TransactionSet txns;
  Allocation alloc;

  /// Listen address. Port 0 picks an ephemeral port.
  std::string host = "127.0.0.1";
  int port = 0;
  /// When non-empty, the bound port is written here after listen succeeds —
  /// race-free discovery for tests and scripts using ephemeral ports.
  std::string port_file;

  /// Seconds between robustness re-checks feeding /witness.
  int witness_interval_s = 30;
  /// Stop after this many seconds; 0 = run until SIGINT/SIGTERM.
  int duration_s = 0;
  /// Trailing window of the live per-level series, in seconds.
  uint32_t window_s = 60;

  /// Driver knobs (same semantics as `mvrob simulate`).
  int concurrency = 4;
  uint64_t seed = 0;
  /// Worker threads for the periodic robustness check.
  int threads = 1;
  /// MVCC engine worker threads. 1 = the deterministic driver with
  /// epoch-driven version GC; > 1 = the sharded many-core engine
  /// (mvcc/concurrent_engine.h) with per-shard telemetry and epoch GC
  /// running inside the engine.
  int engine_threads = 1;
  /// Key-space shards for the many-core engine (0 = auto). Ignored when
  /// engine_threads == 1.
  size_t engine_shards = 0;

  /// Adaptive allocation (adapt/controller.h): when true, a controller
  /// thread re-derives cost weights from the live telemetry every
  /// adapt_interval_s seconds, re-runs Algorithm 2 (plus the promotion
  /// optimizer when adapt_budget > 0), and hot-swaps the driver's
  /// allocation at the next engine-epoch boundary — every installed
  /// allocation passes a fresh robustness check first. Off by default;
  /// with adapt == false the serve behavior is unchanged.
  bool adapt = false;
  /// Seconds between controller decisions.
  int adapt_interval_s = 30;
  /// Promotion budget per decision; 0 = allocation-only decisions.
  int adapt_budget = 0;

  /// Transaction tracing (mvcc/txn_trace.h): sample 1 in N logical
  /// transactions into per-attempt spans with causal abort attribution,
  /// served at /trace and exported on shutdown. 0 = tracing off (the
  /// engines and drivers see a null tracer — zero cost, identical runs).
  uint64_t trace_sample = 0;
  /// Shutdown exports: when non-empty, the final metrics snapshot /
  /// Chrome trace (merged with the sampled txn spans when tracing is on)
  /// are written here on clean shutdown.
  std::string stats_json;
  std::string trace_out;

  /// Continuous profiling (common/profiler.h): when > 0 the sampling
  /// profiler starts with the server at this per-thread hz, feeding
  /// /debug/pprof and the mvrob_profile_* series. 0 leaves the profiler
  /// detached (no timers, no signals, bit-identical runs); /debug/pprof
  /// then falls back to an on-demand window per request.
  int profile_hz = 0;
  /// When non-empty, the aggregate folded-stack profile is written here on
  /// clean shutdown (requires profile_hz > 0).
  std::string profile_out;
};

/// Runs the workload continuously on the MVCC engine while serving
/// /metrics (Prometheus text exposition), /healthz, /snapshot (JSON
/// metrics snapshot), /witness (latest robustness verdict) and
/// /allocation (active allocation + adaptive-controller decisions) over
/// HTTP. Blocks until SIGINT/SIGTERM or the duration elapses; returns 0
/// on a clean shutdown.
int RunServe(ServeParams params, std::ostream& out, std::ostream& err);

}  // namespace mvrob

#endif  // MVROB_CLI_SERVE_H_
