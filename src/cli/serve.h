#ifndef MVROB_CLI_SERVE_H_
#define MVROB_CLI_SERVE_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "iso/allocation.h"
#include "txn/transaction_set.h"

namespace mvrob {

/// Configuration for `mvrob serve` (parsed from CLI flags in cli.cc).
struct ServeParams {
  TransactionSet txns;
  Allocation alloc;

  /// Listen address. Port 0 picks an ephemeral port.
  std::string host = "127.0.0.1";
  int port = 0;
  /// When non-empty, the bound port is written here after listen succeeds —
  /// race-free discovery for tests and scripts using ephemeral ports.
  std::string port_file;

  /// Seconds between robustness re-checks feeding /witness.
  int witness_interval_s = 30;
  /// Stop after this many seconds; 0 = run until SIGINT/SIGTERM.
  int duration_s = 0;
  /// Trailing window of the live per-level series, in seconds.
  uint32_t window_s = 60;

  /// Driver knobs (same semantics as `mvrob simulate`).
  int concurrency = 4;
  uint64_t seed = 0;
  /// Worker threads for the periodic robustness check.
  int threads = 1;
  /// MVCC engine worker threads. 1 = the deterministic driver with
  /// epoch-driven version GC; > 1 = the sharded many-core engine
  /// (mvcc/concurrent_engine.h) with per-shard telemetry and epoch GC
  /// running inside the engine.
  int engine_threads = 1;
};

/// Runs the workload continuously on the MVCC engine while serving
/// /metrics (Prometheus text exposition), /healthz, /snapshot (JSON
/// metrics snapshot) and /witness (latest robustness verdict) over HTTP.
/// Blocks until SIGINT/SIGTERM or the duration elapses; returns 0 on a
/// clean shutdown.
int RunServe(ServeParams params, std::ostream& out, std::ostream& err);

}  // namespace mvrob

#endif  // MVROB_CLI_SERVE_H_
