#include "cli/cli.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>

#include "cli/export.h"
#include "cli/serve.h"
#include "common/crash.h"
#include "common/json.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/string_util.h"
#include "common/version.h"
#include "core/constrained_allocation.h"
#include "core/explain.h"
#include "core/incremental.h"
#include "core/optimal_allocation.h"
#include "core/rc_si_allocation.h"
#include "core/robustness.h"
#include "core/split_schedule.h"
#include "core/witness.h"
#include "iso/allowed.h"
#include "iso/materialize.h"
#include "mvcc/concurrent_driver.h"
#include "mvcc/concurrent_engine.h"
#include "mvcc/driver.h"
#include "mvcc/recorder.h"
#include "mvcc/roundtrip.h"
#include "mvcc/trace.h"
#include "mvcc/txn_trace.h"
#include "oracle/brute_force.h"
#include "promote/export.h"
#include "promote/optimizer.h"
#include "oracle/split_enumerator.h"
#include "oracle/statistics.h"
#include "schedule/anomaly.h"
#include "schedule/dot.h"
#include "schedule/serializability.h"
#include "templates/parser.h"
#include "templates/predicate.h"
#include "templates/promote.h"
#include "templates/robustness.h"
#include "templates/witness.h"
#include "txn/parser.h"
#include "workloads/registry.h"
#include "workloads/stats.h"

namespace mvrob {
namespace {

constexpr const char* kUsage = R"(mvrob — mixed isolation-level robustness & allocation

usage: mvrob <command> [flags]

commands:
  check      decide robustness of an allocation (Algorithm 1)
  allocate   compute the optimal robust allocation (Algorithm 2)
  explore    analyze one schedule: dependencies, SeG, allowed-under
  census     enumerate all interleavings: allowed / anomalous counts
  templates  per-program allocation for a template workload: predicate
             reads (key ranges), declared functional constraints, refined
             template-pair conflicts, promotion, engine certification
  report     full markdown analysis of a workload
  simulate   execute the workload on the MVCC engine and report outcomes
  validate   round-trip recorded engine runs through the formal checker
  crosscheck validate Algorithm 1 against the exhaustive oracles
  shell      interactive session: add transactions, watch the optimum move
  promote    search for reads to promote (SELECT ... FOR UPDATE) so a
             strictly cheaper allocation becomes robust
  serve      run the workload continuously and expose live telemetry
             over HTTP: /metrics (Prometheus), /healthz, /snapshot,
             /witness, /allocation, /debug/pprof, /debug/stacks
  version    print build information (git describe, compiler, sanitizer)
  help       this text

common flags:
  --txns <text|@file>      transaction DSL ("T1: R[x] W[y]" per line)
  --workload <spec>        built-in workload instead of --txns, e.g.
                           tpcc:w=2,d=3  smallbank:c=4  auction  ycsb:a
                           synthetic:n=10,o=8,w=40,h=30,seed=3
  --alloc <spec>           allocation "T1=RC T2=SI" (others: --default)
  --default <RC|SI|SSI>    level for unmentioned transactions (default SI)
  --schedule <text>        operation order "R1[x] W2[x] C2 C1" (explore)
  --dot / --timeline       extra renderings (explore)
  --rcsi                   restrict to {RC, SI} (allocate)
  --explain                per-transaction obstacles (allocate)
  --pin "T1=RC ..."        fix transactions to exact levels (allocate)
  --atmost "T2=SI ..."     per-transaction upper bounds (allocate)
  --max <n>                interleaving cap (census; default 2000000)
  --templates <text|@file> template DSL (templates); v2 adds predicate
                           reads R[key_$lo..$hi] / R[key_*D], `function`
                           declarations and `constraint` lines
                           (docs/templates.md)
  --json                   machine-readable output (check, allocate)
  --runs <n>               engine executions (simulate: default 20,
                           validate: default 200)
  --concurrency <n>        sessions in flight (simulate, validate;
                           default 4)
  --engine-threads <n>     OS worker threads for the MVCC engine
                           (simulate, validate, serve; default 1 = the
                           deterministic driver, >1 = the sharded
                           many-core engine; validate then also replays
                           every concurrent run on the single-threaded
                           oracle)
  --engine-shards <n>      key-space shards of the many-core engine
                           (simulate, validate, serve; default 0 = auto
                           = max(16, 4*threads); ignored when
                           --engine-threads is 1)
  --seed <n>               base RNG seed (simulate, validate; default 0)
  --witness-json <file|->  structured witness provenance as JSON: every
                           counterexample edge with its conflict type,
                           operation pair and Definition 3.1 condition
                           (check, allocate, shell; '-' = stdout)
  --witness-dot <file|->   the same witness as a Graphviz digraph
  --record-schedule <file> replayable schedule file of the last engine
                           run (simulate)
  --record-trace <file>    Chrome trace_event timeline of the last
                           engine run (simulate)
  --threads <n>            worker threads for robustness checks (check,
                           allocate, report; default 1, 0 = all cores)
  --stats-json <file>      write a metrics snapshot (counters, gauges,
                           histograms) as JSON after the command (under
                           serve: once, on clean shutdown)
  --trace-out <file>       write recorded phase spans as a Chrome
                           trace_event file (chrome://tracing, Perfetto;
                           under serve: once, on clean shutdown)
  --trace-sample <n>       sample 1 in <n> logical transactions into
                           per-attempt spans with causal abort
                           attribution (simulate, serve). Sampled spans
                           are merged into --trace-out with retries of
                           one transaction linked by flow events; serve
                           also exposes them at /trace
  --metrics-interval <s>   rewrite the --stats-json / --trace-out files
                           every <s> seconds while the command runs
  --log-level <level>      minimum structured-log severity on stderr:
                           debug, info, warn, error, off (default info;
                           env MVROB_LOG_LEVEL)
  --profile-hz <n>         sampling CPU profiler rate, samples per second
                           of on-CPU time per thread (check, allocate,
                           simulate, promote, serve; default 0 = off;
                           serve exposes the live profile at
                           /debug/pprof and as mvrob_profile_* series)
  --profile-out <file>     write the aggregate folded-stack profile here
                           when the command finishes (implies
                           --profile-hz 97 when the rate is unset;
                           render with tools/flamegraph.py)

promote flags:
  --budget <n>             promotion budget: at most <n> reads are
                           promoted (default 8)
  --target <spec|level>    target mode: find promotions making the
                           workload robust under this fixed allocation
                           ("T1=RC T2=SI", unmentioned: --default, which
                           defaults to RC here; or a bare level name for
                           a uniform target, e.g. --target RC)
  --promotion-json <file|-> promotion-plan provenance as JSON
                           (docs/formats.md, "Promotion plan")
  --validate-runs <n>      after the search, certify the promoted
                           workload with <n> recorded engine runs
                           through the round-trip validator (default 0
                           = skip; exits 2 on any disagreement)
  --weight-si <n>          allocation cost of one SI slot (default 1)
  --weight-ssi <n>         allocation cost of one SSI slot (default 2)

templates flags:
  --no-constraints         drop the declared functional constraints and
                           analyze under the distinct-parameter rule
                           alone (the comparison baseline)
  --copies <n>             instances per admissible parameter assignment
                           in the canonical instantiation (default 2)
  --max-instances <n>      refuse canonical instantiations larger than
                           this many transactions (default 4096)
  --promote                search for template reads to promote
                           (SELECT ... FOR UPDATE across every instance)
                           so a strictly cheaper per-template allocation
                           becomes robust
  (--explain, --rcsi, --witness-json and --validate-runs also apply at
   template granularity; the witness JSON names which predicate or
   constraint discharged each template-pair conflict, see docs/formats.md)

serve flags:
  --port <n>               listen port (default 0 = ephemeral)
  --host <addr>            listen address (default 127.0.0.1)
  --port-file <file>       write the bound port here after listening
  --witness-interval <s>   robustness re-check cadence (default 30)
  --duration <s>           stop after <s> seconds (default 0 = until
                           SIGINT/SIGTERM)
  --window <s>             sliding window of the live per-level series
                           (default 60)
  --adapt                  adaptive allocation: re-derive SI/SSI cost
                           weights from the live windowed telemetry,
                           re-run Algorithm 2 (and the promotion
                           optimizer under --adapt-budget), and hot-swap
                           the allocation at the next engine epoch;
                           every installed allocation passes a fresh
                           robustness check first
  --adapt-interval <s>     seconds between controller decisions
                           (default 30)
  --adapt-budget <n>       promotion budget per decision (default 0 =
                           allocation-only decisions)
)";

// Parsed flag map; flags are --name value pairs except boolean switches.
struct Flags {
  std::map<std::string, std::string> values;
  bool Has(const std::string& name) const { return values.contains(name); }
  std::string Get(const std::string& name) const {
    auto it = values.find(name);
    return it == values.end() ? std::string() : it->second;
  }
};

bool IsSwitch(const std::string& flag) {
  return flag == "dot" || flag == "timeline" || flag == "rcsi" ||
         flag == "explain" || flag == "json" || flag == "adapt" ||
         flag == "no-constraints" || flag == "promote";
}
// Note: --pin and --atmost take values and are not switches.

StatusOr<Flags> ParseFlags(const std::vector<std::string>& args,
                           size_t start) {
  Flags flags;
  for (size_t i = start; i < args.size(); ++i) {
    if (!args[i].starts_with("--")) {
      return Status::InvalidArgument(
          StrCat("unexpected argument '", args[i], "'"));
    }
    std::string name = args[i].substr(2);
    if (IsSwitch(name)) {
      flags.values[name] = "1";
      continue;
    }
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument(StrCat("--", name, " needs a value"));
    }
    flags.values[name] = args[++i];
  }
  return flags;
}

// Resolves "@path" arguments to file contents.
StatusOr<std::string> LoadText(const std::string& value) {
  if (!value.starts_with("@")) return value;
  std::ifstream file(value.substr(1));
  if (!file) {
    return Status::NotFound(StrCat("cannot open ", value.substr(1)));
  }
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

StatusOr<TransactionSet> LoadTxns(const Flags& flags) {
  if (flags.Has("workload")) {
    StatusOr<Workload> workload = MakeNamedWorkload(flags.Get("workload"));
    if (!workload.ok()) return workload.status();
    return std::move(workload->txns);
  }
  if (!flags.Has("txns")) {
    return Status::InvalidArgument("--txns or --workload is required");
  }
  StatusOr<std::string> text = LoadText(flags.Get("txns"));
  if (!text.ok()) return text.status();
  return ParseTransactionSet(*text);
}

StatusOr<Allocation> LoadAllocation(const Flags& flags,
                                    const TransactionSet& txns) {
  IsolationLevel fallback = IsolationLevel::kSI;
  if (flags.Has("default")) {
    StatusOr<IsolationLevel> parsed =
        ParseIsolationLevel(flags.Get("default"));
    if (!parsed.ok()) return parsed.status();
    fallback = *parsed;
  }
  return ParseAllocation(txns, flags.Get("alloc"), fallback);
}

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return 1;
}

// Strictly parsed numeric flags: junk ("12x", "abc"), a stray sign, or an
// out-of-range value is an error, never a silently coerced number.
StatusOr<int> IntFlag(const Flags& flags, const std::string& name,
                      int fallback,
                      int min = std::numeric_limits<int>::min(),
                      int max = std::numeric_limits<int>::max()) {
  if (!flags.Has(name)) return fallback;
  StatusOr<int> parsed = ParseInt(flags.Get(name), min, max);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        StrCat("--", name, ": ", parsed.status().message()));
  }
  return parsed;
}

StatusOr<uint64_t> Uint64Flag(const Flags& flags, const std::string& name,
                              uint64_t fallback) {
  if (!flags.Has(name)) return fallback;
  StatusOr<uint64_t> parsed = ParseUint64(flags.Get(name));
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        StrCat("--", name, ": ", parsed.status().message()));
  }
  return parsed;
}

StatusOr<CheckOptions> LoadCheckOptions(const Flags& flags,
                                        MetricsRegistry* metrics) {
  CheckOptions options;
  options.metrics = metrics;
  StatusOr<int> threads = IntFlag(flags, "threads", options.num_threads);
  if (!threads.ok()) return threads.status();
  options.num_threads = *threads;
  return options;
}

// WriteTextFile / EmitArtifact live in cli/export.h, shared with the
// periodic exporter and the serve loop.

// Emits the --witness-json / --witness-dot artifacts for a robustness
// verdict; no-op when neither flag is present.
Status EmitRobustnessWitness(const Flags& flags, const TransactionSet& txns,
                             const Allocation& alloc,
                             const RobustnessResult& result,
                             std::ostream& out) {
  if (flags.Has("witness-json")) {
    Status emitted = EmitArtifact(flags.Get("witness-json"),
                                  RobustnessWitnessJson(txns, alloc, result),
                                  out);
    if (!emitted.ok()) return emitted;
  }
  if (flags.Has("witness-dot")) {
    Status emitted = EmitArtifact(flags.Get("witness-dot"),
                                  RobustnessWitnessDot(txns, alloc, result),
                                  out);
    if (!emitted.ok()) return emitted;
  }
  return Status::Ok();
}

// The allocate/shell counterpart: per-transaction obstacle provenance.
Status EmitAllocationWitness(const Flags& flags, const TransactionSet& txns,
                             const AllocationExplanation& explanation,
                             std::ostream& out) {
  if (flags.Has("witness-json")) {
    Status emitted =
        EmitArtifact(flags.Get("witness-json"),
                     AllocationExplanationJson(txns, explanation), out);
    if (!emitted.ok()) return emitted;
  }
  if (flags.Has("witness-dot")) {
    Status emitted =
        EmitArtifact(flags.Get("witness-dot"),
                     AllocationExplanationDot(txns, explanation), out);
    if (!emitted.ok()) return emitted;
  }
  return Status::Ok();
}

// Emits a counterexample chain as a JSON object.
void ChainToJson(const TransactionSet& txns, const CounterexampleChain& chain,
                 JsonWriter& json) {
  json.BeginObject();
  json.Key("split_txn");
  json.String(txns.txn(chain.t1).name());
  json.Key("split_after");
  json.String(txns.FormatOp(chain.b1));
  json.Key("chain");
  json.BeginArray();
  for (TxnId t : chain.ChainTxns()) json.String(txns.txn(t).name());
  json.EndArray();
  json.EndObject();
}

int CmdCheck(const Flags& flags, std::ostream& out, std::ostream& err,
             MetricsRegistry* metrics) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  StatusOr<Allocation> alloc = LoadAllocation(flags, *txns);
  if (!alloc.ok()) return Fail(err, alloc.status());
  StatusOr<CheckOptions> options = LoadCheckOptions(flags, metrics);
  if (!options.ok()) return Fail(err, options.status());

  RobustnessResult result = CheckRobustness(*txns, *alloc, *options);
  Status witness_out = EmitRobustnessWitness(flags, *txns, *alloc, result, out);
  if (!witness_out.ok()) return Fail(err, witness_out);

  if (flags.Has("json")) {
    JsonWriter json;
    json.BeginObject();
    json.Key("allocation");
    json.String(alloc->ToString(*txns));
    json.Key("robust");
    json.Bool(result.robust);
    if (!result.robust) {
      json.Key("counterexample");
      ChainToJson(*txns, *result.counterexample, json);
    }
    json.EndObject();
    out << json.str() << "\n";
    return 0;
  }

  out << "workload:\n" << txns->ToString();
  out << "allocation: " << alloc->ToString(*txns) << "\n";
  out << "robust: " << (result.robust ? "yes" : "no") << "\n";
  if (!result.robust) {
    out << "counterexample: " << result.counterexample->ToString(*txns)
        << "\n";
    StatusOr<Schedule> witness =
        BuildSplitSchedule(*txns, *alloc, *result.counterexample);
    if (witness.ok()) {
      out << "witness schedule: " << witness->ToString() << "\n";
    }
  }
  return 0;
}

// Parses --pin / --atmost specs into AllocationBounds.
StatusOr<AllocationBounds> LoadBounds(const Flags& flags,
                                      const TransactionSet& txns) {
  AllocationBounds bounds = AllocationBounds::Free(txns.size());
  if (flags.Has("pin")) {
    // Reuse the allocation parser: unmentioned transactions default to RC
    // and a second parse with SSI default distinguishes them.
    StatusOr<Allocation> low =
        ParseAllocation(txns, flags.Get("pin"), IsolationLevel::kRC);
    if (!low.ok()) return low.status();
    StatusOr<Allocation> high =
        ParseAllocation(txns, flags.Get("pin"), IsolationLevel::kSSI);
    if (!high.ok()) return high.status();
    for (TxnId t = 0; t < txns.size(); ++t) {
      if (low->level(t) == high->level(t)) {
        bounds.Pin(t, low->level(t));  // Mentioned in the spec.
      }
    }
  }
  if (flags.Has("atmost")) {
    StatusOr<Allocation> cap =
        ParseAllocation(txns, flags.Get("atmost"), IsolationLevel::kSSI);
    if (!cap.ok()) return cap.status();
    for (TxnId t = 0; t < txns.size(); ++t) {
      if (cap->level(t) < bounds.max_level[t]) {
        bounds.AtMost(t, cap->level(t));
      }
    }
  }
  return bounds;
}

int CmdAllocate(const Flags& flags, std::ostream& out, std::ostream& err,
                MetricsRegistry* metrics) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  StatusOr<CheckOptions> options = LoadCheckOptions(flags, metrics);
  if (!options.ok()) return Fail(err, options.status());

  if (flags.Has("pin") || flags.Has("atmost")) {
    StatusOr<AllocationBounds> bounds = LoadBounds(flags, *txns);
    if (!bounds.ok()) return Fail(err, bounds.status());
    StatusOr<ConstrainedAllocationResult> result =
        ComputeConstrainedAllocation(*txns, *bounds);
    if (!result.ok()) return Fail(err, result.status());
    if (!result->feasible) {
      out << "no robust allocation exists within the given bounds\n";
      out << "counterexample at the bounds' top: "
          << result->counterexample->ToString(*txns) << "\n";
      return 0;
    }
    out << "optimal allocation within bounds: "
        << result->allocation->ToString(*txns) << "\n";
    return 0;
  }

  if (flags.Has("rcsi")) {
    RcSiAllocationResult result = ComputeOptimalRcSiAllocation(*txns);
    if (!result.allocatable) {
      out << "no robust {RC,SI} allocation exists\n";
      out << "counterexample against A_SI: "
          << result.counterexample->ToString(*txns) << "\n";
      return 0;
    }
    out << "optimal {RC,SI} allocation: "
        << result.allocation->ToString(*txns) << "\n";
    return 0;
  }

  OptimalAllocationResult result = ComputeOptimalAllocation(*txns, *options);
  if (flags.Has("witness-json") || flags.Has("witness-dot")) {
    StatusOr<AllocationExplanation> explanation =
        ExplainAllocation(*txns, result.allocation);
    if (!explanation.ok()) return Fail(err, explanation.status());
    Status witness_out = EmitAllocationWitness(flags, *txns, *explanation, out);
    if (!witness_out.ok()) return Fail(err, witness_out);
  }
  if (flags.Has("json")) {
    JsonWriter json;
    json.BeginObject();
    json.Key("levels");
    json.BeginObject();
    for (TxnId t = 0; t < txns->size(); ++t) {
      json.Key(txns->txn(t).name());
      json.String(IsolationLevelToString(result.allocation.level(t)));
    }
    json.EndObject();
    json.Key("robustness_checks");
    json.Uint(result.robustness_checks);
    json.EndObject();
    out << json.str() << "\n";
    return 0;
  }
  out << "optimal allocation: " << result.allocation.ToString(*txns) << "\n";
  out << "levels: RC=" << result.allocation.CountAt(IsolationLevel::kRC)
      << " SI=" << result.allocation.CountAt(IsolationLevel::kSI)
      << " SSI=" << result.allocation.CountAt(IsolationLevel::kSSI) << "\n";
  if (flags.Has("explain")) {
    StatusOr<AllocationExplanation> explanation =
        ExplainAllocation(*txns, result.allocation);
    if (!explanation.ok()) return Fail(err, explanation.status());
    out << explanation->ToString(*txns);
  }
  return 0;
}

int CmdExplore(const Flags& flags, std::ostream& out, std::ostream& err) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  if (!flags.Has("schedule")) {
    return Fail(err, Status::InvalidArgument("--schedule is required"));
  }
  StatusOr<std::vector<OpRef>> order =
      ParseScheduleOrder(*txns, flags.Get("schedule"));
  if (!order.ok()) return Fail(err, order.status());
  StatusOr<Allocation> alloc = LoadAllocation(flags, *txns);
  if (!alloc.ok()) return Fail(err, alloc.status());
  StatusOr<Schedule> schedule = MaterializeSchedule(&*txns, *order, *alloc);
  if (!schedule.ok()) return Fail(err, schedule.status());

  out << "schedule: " << schedule->ToString(/*with_versions=*/true) << "\n";
  if (flags.Has("timeline")) out << ScheduleTimeline(*schedule);
  SerializationGraph graph = SerializationGraph::Build(*schedule);
  for (const Dependency& edge : graph.edges()) {
    out << "  " << FormatDependency(*txns, edge) << "\n";
  }
  out << "conflict serializable: " << (graph.IsAcyclic() ? "yes" : "no")
      << "\n";
  for (const AnomalyReport& anomaly : FindAnomalies(*schedule)) {
    out << "anomaly: " << anomaly.ToString(*txns) << "\n";
  }
  AllowedCheckResult allowed = CheckAllowedUnder(*schedule, *alloc);
  out << "allowed under " << alloc->ToString(*txns) << ": "
      << (allowed.allowed ? "yes" : "no") << "\n";
  for (const std::string& violation : allowed.violations) {
    out << "  - " << violation << "\n";
  }
  if (flags.Has("dot")) out << SerializationGraphToDot(*txns, graph);
  return 0;
}

int CmdCensus(const Flags& flags, std::ostream& out, std::ostream& err) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  StatusOr<Allocation> alloc = LoadAllocation(flags, *txns);
  if (!alloc.ok()) return Fail(err, alloc.status());
  StatusOr<uint64_t> max_interleavings = Uint64Flag(flags, "max", 2'000'000);
  if (!max_interleavings.ok()) return Fail(err, max_interleavings.status());
  StatusOr<ScheduleCensus> census =
      ComputeScheduleCensus(*txns, *alloc, *max_interleavings);
  if (!census.ok()) return Fail(err, census.status());
  out << "interleavings: " << census->interleavings << "\n";
  out << "allowed:       " << census->allowed << "\n";
  out << "serializable:  " << census->serializable << "\n";
  out << "anomalous:     " << census->anomalous << "\n";
  return 0;
}

int CmdTemplates(const Flags& flags, std::ostream& out, std::ostream& err) {
  if (!flags.Has("templates")) {
    return Fail(err, Status::InvalidArgument("--templates is required"));
  }
  StatusOr<std::string> text = LoadText(flags.Get("templates"));
  if (!text.ok()) return Fail(err, text.status());
  StatusOr<TemplateSet> parsed = ParseTemplateSet(*text);
  if (!parsed.ok()) return Fail(err, parsed.status());
  TemplateSet set =
      flags.Has("no-constraints") ? parsed->WithoutConstraints() : *parsed;

  InstantiationOptions inst;
  StatusOr<int> copies =
      IntFlag(flags, "copies", inst.copies_per_assignment, 1, 8);
  if (!copies.ok()) return Fail(err, copies.status());
  inst.copies_per_assignment = *copies;
  StatusOr<int> max_instances =
      IntFlag(flags, "max-instances", inst.max_instances, 1);
  if (!max_instances.ok()) return Fail(err, max_instances.status());
  inst.max_instances = *max_instances;

  TemplateWitnessInputs witness;
  std::optional<TemplateAllocation> levels;

  std::optional<RcSiTemplateAllocationResult> rcsi;
  if (flags.Has("rcsi")) {
    StatusOr<RcSiTemplateAllocationResult> result =
        ComputeOptimalRcSiTemplateAllocation(set, inst);
    if (!result.ok()) return Fail(err, result.status());
    rcsi = *std::move(result);
    if (!rcsi->allocatable) {
      out << "NOT robustly {RC, SI}-allocatable at template granularity.\n"
          << "witness: "
          << rcsi->counterexample->ToString(rcsi->instantiation.txns);
      if (!rcsi->world.empty()) out << " [world " << rcsi->world << "]";
      out << "\n";
    } else {
      levels = *rcsi->levels;
      out << "optimal {RC, SI} per-program allocation: "
          << FormatTemplateAllocation(set, *levels) << "\n";
    }
  } else {
    StatusOr<TemplateAllocationResult> result =
        ComputeOptimalTemplateAllocation(set, inst);
    if (!result.ok()) return Fail(err, result.status());
    levels = result->levels;
    witness.worlds = result->worlds;
    witness.robustness_checks = result->robustness_checks;
    out << "optimal per-program allocation: "
        << FormatTemplateAllocation(set, *levels) << "\n";
    if (result->worlds > 1) {
      out << "function worlds checked: " << result->worlds
          << " (robust in every interpretation of the declared "
             "functions)\n";
    }
  }

  // The refined potential-conflict relation, with attribution: which
  // constraint or predicate discharged each template-op pair relative to
  // the distinct-parameter baseline.
  StatusOr<TemplateConflictAnalysis> conflicts =
      AnalyzeTemplateConflicts(set, inst);
  if (conflicts.ok()) {
    out << "template-pair conflicts: " << conflicts->conflicting_pairs
        << " (distinct-parameter baseline: "
        << conflicts->baseline_conflicting_pairs << ")\n";
    if (flags.Has("explain")) {
      for (const TemplateOpPairConflict& pair : conflicts->op_pairs) {
        if (pair.conflicts || !pair.baseline_conflicts) continue;
        out << "  " << set.tmpl(pair.tmpl_a).name() << ".op" << pair.op_a
            << " x " << set.tmpl(pair.tmpl_b).name() << ".op" << pair.op_b
            << " (" << pair.kind << "): discharged by "
            << pair.discharged_by << "\n";
      }
    }
  }

  std::optional<TemplateExplanation> explanation;
  if (flags.Has("explain") && levels.has_value()) {
    StatusOr<TemplateExplanation> explained =
        ExplainTemplateAllocation(set, *levels, inst);
    if (!explained.ok()) return Fail(err, explained.status());
    explanation = *std::move(explained);
    out << "\nwhy no template can run lower:\n"
        << explanation->ToString(set);
  }

  std::optional<TemplatePromotionPlan> promotion;
  if (flags.Has("promote")) {
    StatusOr<TemplatePromotionPlan> plan =
        OptimizeTemplatePromotions(set, PromoteOptions{}, inst);
    if (!plan.ok()) return Fail(err, plan.status());
    promotion = *std::move(plan);
    if (promotion->improved) {
      out << "\ntemplate promotions (SELECT ... FOR UPDATE): "
          << FormatTemplatePromotions(set, promotion->promotions) << "\n"
          << "  before: "
          << FormatTemplateAllocation(set, promotion->before_levels)
          << " (weighted " << promotion->before_cost.weighted << ")\n"
          << "  after:  "
          << FormatTemplateAllocation(set, promotion->after_levels)
          << " (weighted " << promotion->after_cost.weighted << ")\n";
    } else {
      out << "\nno template promotion lowers the allocation cost\n";
    }
  }

  // Engine certification: every world's canonical instantiation is run on
  // the MVCC engine under the computed per-template allocation and
  // round-tripped through the formal checker.
  uint64_t disagreements = 0;
  StatusOr<int> validate_runs =
      IntFlag(flags, "validate-runs", 0, 0, std::numeric_limits<int>::max());
  if (!validate_runs.ok()) return Fail(err, validate_runs.status());
  if (*validate_runs > 0 && levels.has_value()) {
    StatusOr<uint64_t> seed = Uint64Flag(flags, "seed", 0);
    if (!seed.ok()) return Fail(err, seed.status());
    StatusOr<std::vector<WorldInstantiation>> worlds =
        InstantiateAllWorlds(set, inst);
    if (!worlds.ok()) return Fail(err, worlds.status());
    for (const WorldInstantiation& world : *worlds) {
      std::vector<IsolationLevel> instance_levels;
      for (int tmpl : world.instantiation.template_of_txn) {
        instance_levels.push_back((*levels)[static_cast<size_t>(tmpl)]);
      }
      RoundTripOptions rt;
      rt.runs = *validate_runs;
      rt.seed = *seed;
      StatusOr<RoundTripReport> report = ValidateEngineRuns(
          world.instantiation.txns, Allocation(std::move(instance_levels)),
          rt);
      if (!report.ok()) return Fail(err, report.status());
      disagreements += report->disagreements;
      out << "validation: runs=" << report->runs
          << " certified=" << report->certified
          << " disagreements=" << report->disagreements
          << " anomalous=" << report->anomalous_runs;
      if (!world.instantiation.world.empty()) {
        out << " [world " << world.instantiation.world << "]";
      }
      out << "\n";
    }
  }

  if (flags.Has("witness-json")) {
    if (levels.has_value()) witness.levels = &*levels;
    if (conflicts.ok()) witness.conflicts = &*conflicts;
    if (explanation.has_value()) witness.explanation = &*explanation;
    if (promotion.has_value()) witness.promotion = &*promotion;
    Status emitted = EmitArtifact(flags.Get("witness-json"),
                                  TemplateWitnessJson(set, witness), out);
    if (!emitted.ok()) return Fail(err, emitted);
  }
  if (rcsi.has_value() && !rcsi->allocatable) return 1;
  if (disagreements != 0) return 2;
  return 0;
}

int CmdReport(const Flags& flags, std::ostream& out, std::ostream& err,
              MetricsRegistry* metrics) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  StatusOr<CheckOptions> options = LoadCheckOptions(flags, metrics);
  if (!options.ok()) return Fail(err, options.status());

  out << "# Workload analysis\n\n";
  out << "## Transactions\n\n```\n" << txns->ToString() << "```\n\n";
  out << ComputeWorkloadStats(*txns).ToString() << "\n\n";

  out << "## Robustness against homogeneous allocations\n\n";
  out << "| allocation | robust |\n|---|---|\n";
  RobustnessResult rc = CheckRobustnessRC(*txns);
  RobustnessResult si = CheckRobustnessSI(*txns);
  out << "| A_RC  | " << (rc.robust ? "yes" : "no") << " |\n";
  out << "| A_SI  | " << (si.robust ? "yes" : "no") << " |\n";
  out << "| A_SSI | yes |\n\n";

  OptimalAllocationResult optimal = ComputeOptimalAllocation(*txns, *options);
  out << "## Optimal robust allocation\n\n";
  out << "```\n" << optimal.allocation.ToString(*txns) << "\n```\n\n";
  out << "RC=" << optimal.allocation.CountAt(IsolationLevel::kRC)
      << " SI=" << optimal.allocation.CountAt(IsolationLevel::kSI)
      << " SSI=" << optimal.allocation.CountAt(IsolationLevel::kSSI)
      << " (" << optimal.robustness_checks << " robustness checks)\n\n";

  StatusOr<AllocationExplanation> explanation =
      ExplainAllocation(*txns, optimal.allocation);
  if (explanation.ok()) {
    out << "## Why no transaction can run lower\n\n```\n"
        << explanation->ToString(*txns) << "```\n\n";
  }

  std::vector<CounterexampleChain> spots = FindAllCounterexamples(
      *txns, Allocation::AllSI(txns->size()), /*limit=*/8, *options);
  if (!spots.empty()) {
    out << "## Trouble spots under A_SI\n\n";
    for (const CounterexampleChain& chain : spots) {
      out << "- " << chain.ToString(*txns) << "\n";
    }
    out << "\n";
  }

  RcSiAllocationResult rcsi = ComputeOptimalRcSiAllocation(*txns);
  out << "## The {RC, SI} setting (Oracle)\n\n";
  if (rcsi.allocatable) {
    out << "Robustly allocatable: `" << rcsi.allocation->ToString(*txns)
        << "`\n";
  } else {
    out << "NOT robustly allocatable — no assignment of RC/SI avoids "
           "anomalies.\nWitness: "
        << rcsi.counterexample->ToString(*txns) << "\n";
  }

  // A census when enumeration is cheap.
  StatusOr<ScheduleCensus> census =
      ComputeScheduleCensus(*txns, Allocation::AllSI(txns->size()),
                            /*max_interleavings=*/200'000);
  if (census.ok()) {
    out << "\n## Interleaving census under A_SI\n\n";
    out << census->allowed << " of " << census->interleavings
        << " interleavings allowed; " << census->anomalous
        << " anomalous.\n";
  }
  return 0;
}

int CmdSimulate(const Flags& flags, std::ostream& out, std::ostream& err,
                MetricsRegistry* metrics, TxnTracer* tracer) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  StatusOr<Allocation> alloc = LoadAllocation(flags, *txns);
  if (!alloc.ok()) return Fail(err, alloc.status());
  StatusOr<int> runs =
      IntFlag(flags, "runs", 20, 1, std::numeric_limits<int>::max());
  if (!runs.ok()) return Fail(err, runs.status());
  StatusOr<int> concurrency =
      IntFlag(flags, "concurrency", 4, 1, std::numeric_limits<int>::max());
  if (!concurrency.ok()) return Fail(err, concurrency.status());
  StatusOr<uint64_t> seed = Uint64Flag(flags, "seed", 0);
  if (!seed.ok()) return Fail(err, seed.status());
  StatusOr<int> engine_threads =
      IntFlag(flags, "engine-threads", 1, 1, 256);
  if (!engine_threads.ok()) return Fail(err, engine_threads.status());
  StatusOr<int> engine_shards =
      IntFlag(flags, "engine-shards", 0, 1, 1 << 16);
  if (!engine_shards.ok()) return Fail(err, engine_shards.status());
  const bool concurrent = *engine_threads > 1;

  out << "simulating " << *runs << " executions of " << txns->size()
      << " transactions under " << alloc->ToString(*txns);
  if (concurrent) out << " (" << *engine_threads << " engine threads)";
  out << "\n";
  // --record-schedule / --record-trace export the *last* run; the recorder
  // is cleared between runs so the files cover one complete execution.
  const bool recording =
      flags.Has("record-schedule") || flags.Has("record-trace");
  std::optional<ScheduleRecorder> recorder;
  if (recording) recorder.emplace();
  uint64_t commits = 0;
  uint64_t fuw = 0;
  uint64_t ssi = 0;
  uint64_t serializable = 0;
  std::map<std::string, int> anomaly_counts;
  for (int r = 0; r < *runs; ++r) {
    if (recorder.has_value()) recorder->Clear();
    RandomRunOptions options;
    options.concurrency = *concurrency;
    options.seed = *seed + static_cast<uint64_t>(r);
    options.metrics = metrics;
    options.tracer = tracer;
    // Engines live in optionals so one loop body serves both paths.
    std::optional<Engine> engine;
    std::optional<ConcurrentEngine> concurrent_engine;
    DriverReport report;
    if (concurrent) {
      ConcurrentEngineOptions engine_options;
      engine_options.num_shards = static_cast<size_t>(*engine_shards);
      engine_options.metrics = metrics;
      engine_options.tracer = tracer;
      if (recorder.has_value()) engine_options.recorder = &*recorder;
      concurrent_engine.emplace(txns->num_objects(),
                                static_cast<size_t>(*engine_threads),
                                engine_options);
      options.engine_threads = *engine_threads;
      report = RunConcurrent(*concurrent_engine, *txns, *alloc, options);
    } else {
      EngineOptions engine_options;
      engine_options.metrics = metrics;
      engine_options.tracer = tracer;
      if (recorder.has_value()) engine_options.recorder = &*recorder;
      engine.emplace(txns->num_objects(), engine_options);
      report = RunRandom(*engine, *txns, *alloc, options);
    }
    const EngineStats stats =
        concurrent ? concurrent_engine->stats() : engine->stats();
    commits += report.committed;
    fuw += stats.aborts_write_conflict;
    ssi += stats.aborts_ssi;
    StatusOr<ExportedRun> run =
        concurrent ? ExportCommittedSessions(
                         concurrent_engine->SessionSnapshot(), *txns)
                   : ExportCommittedRun(*engine, *txns);
    if (!run.ok()) continue;
    StatusOr<Schedule> schedule = run->BuildSchedule();
    if (!schedule.ok()) continue;
    std::vector<AnomalyReport> anomalies = FindAnomalies(*schedule);
    if (anomalies.empty()) {
      ++serializable;
    } else {
      for (const AnomalyReport& anomaly : anomalies) {
        ++anomaly_counts[AnomalyKindToString(anomaly.kind)];
      }
    }
  }
  out << "commits: " << commits << ", first-updater aborts: " << fuw
      << ", SSI aborts: " << ssi << "\n";
  out << "serializable runs: " << serializable << "/" << *runs << "\n";
  for (const auto& [kind, count] : anomaly_counts) {
    out << "anomaly '" << kind << "': " << count << " occurrence(s)\n";
  }
  bool robust = CheckRobustness(*txns, *alloc).robust;
  out << "(Algorithm 1 verdict for this allocation: "
      << (robust ? "robust - anomalies are impossible"
                 : "NOT robust - anomalies are possible")
      << ")\n";
  if (recorder.has_value()) {
    if (flags.Has("record-schedule")) {
      Status written = EmitArtifact(flags.Get("record-schedule"),
                                    recorder->ToText(*txns), out);
      if (!written.ok()) return Fail(err, written);
    }
    if (flags.Has("record-trace")) {
      Status written = EmitArtifact(flags.Get("record-trace"),
                                    recorder->ToChromeTrace(*txns), out);
      if (!written.ok()) return Fail(err, written);
    }
    if (recorder->dropped() > 0) {
      GlobalLogger().Log(LogLevel::kWarn, "cli.simulate",
                         "recorder dropped events",
                         {LogField("dropped", recorder->dropped()),
                          LogField("capacity", recorder->capacity())});
    }
  }
  return 0;
}

// Records randomized engine runs and feeds every recording back through
// the formal checker (mvcc/roundtrip.h). Exit code 2 on any
// theory/execution disagreement.
int CmdValidate(const Flags& flags, std::ostream& out, std::ostream& err,
                MetricsRegistry* metrics) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  StatusOr<Allocation> alloc = LoadAllocation(flags, *txns);
  if (!alloc.ok()) return Fail(err, alloc.status());
  StatusOr<CheckOptions> check = LoadCheckOptions(flags, metrics);
  if (!check.ok()) return Fail(err, check.status());
  StatusOr<int> runs =
      IntFlag(flags, "runs", 200, 0, std::numeric_limits<int>::max());
  if (!runs.ok()) return Fail(err, runs.status());
  StatusOr<int> concurrency =
      IntFlag(flags, "concurrency", 4, 1, std::numeric_limits<int>::max());
  if (!concurrency.ok()) return Fail(err, concurrency.status());
  StatusOr<uint64_t> seed = Uint64Flag(flags, "seed", 0);
  if (!seed.ok()) return Fail(err, seed.status());
  StatusOr<int> engine_threads =
      IntFlag(flags, "engine-threads", 1, 1, 256);
  if (!engine_threads.ok()) return Fail(err, engine_threads.status());
  StatusOr<int> engine_shards =
      IntFlag(flags, "engine-shards", 0, 1, 1 << 16);
  if (!engine_shards.ok()) return Fail(err, engine_shards.status());

  RoundTripOptions options;
  options.runs = *runs;
  options.concurrency = *concurrency;
  options.seed = *seed;
  options.engine_threads = *engine_threads;
  options.engine_shards = static_cast<size_t>(*engine_shards);
  options.check = *check;
  options.metrics = metrics;
  StatusOr<RoundTripReport> report =
      ValidateEngineRuns(*txns, *alloc, options);
  if (!report.ok()) return Fail(err, report.status());
  out << report->ToString();
  return report->disagreements == 0 ? 0 : 2;
}

// Interactive loop: one command per line on `in`.
//   add <Name>: R[x] W[y]   add a transaction and reallocate
//   remove <Name>           drop a transaction
//   show                    print workload + current optimal allocation
//   quit
int CmdShell(const Flags& flags, std::istream& in, std::ostream& out,
             std::ostream& err, MetricsRegistry* metrics) {
  IncrementalAllocator allocator;
  CheckOptions shell_options;
  shell_options.metrics = metrics;
  allocator.set_check_options(shell_options);
  // With --witness-json / --witness-dot, the witness files are rewritten
  // after every successful add/remove, tracking the current optimum's
  // provenance across the interactive session.
  auto refresh_witness = [&]() {
    if (!flags.Has("witness-json") && !flags.Has("witness-dot")) return;
    if (allocator.txns().empty()) return;
    StatusOr<AllocationExplanation> explanation =
        ExplainAllocation(allocator.txns(), allocator.allocation());
    if (!explanation.ok()) {
      err << "error: " << explanation.status().ToString() << "\n";
      return;
    }
    Status emitted =
        EmitAllocationWitness(flags, allocator.txns(), *explanation, out);
    if (!emitted.ok()) err << "error: " << emitted.ToString() << "\n";
  };
  out << "mvrob shell - 'add <Name>: R[x] W[y]', 'remove <Name>', 'show', "
         "'quit'\n";
  std::string line;
  while (out << "> " << std::flush, std::getline(in, line)) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed == "show") {
      out << allocator.txns().ToString();
      if (!allocator.txns().empty()) {
        out << "optimal: "
            << allocator.allocation().ToString(allocator.txns()) << "\n";
      }
      continue;
    }
    if (trimmed.starts_with("remove ")) {
      std::string name(StripWhitespace(trimmed.substr(7)));
      TxnId txn = allocator.txns().FindTransaction(name);
      if (txn == kInvalidTxnId) {
        err << "error: no transaction '" << name << "'\n";
        continue;
      }
      Status removed = allocator.RemoveTransaction(txn);
      if (!removed.ok()) {
        err << "error: " << removed.ToString() << "\n";
        continue;
      }
      out << "removed " << name << "\n";
      if (!allocator.txns().empty()) {
        out << "optimal: "
            << allocator.allocation().ToString(allocator.txns()) << "\n";
      }
      refresh_witness();
      continue;
    }
    if (trimmed.starts_with("add ")) {
      // Parse "<Name>: ops" by reusing the workload DSL on a fresh set,
      // then copy the transaction over with interned objects.
      StatusOr<TransactionSet> parsed =
          ParseTransactionSet(trimmed.substr(4));
      if (!parsed.ok() || parsed->size() != 1) {
        err << "error: expected 'add Name: R[x] W[y] ...'\n";
        continue;
      }
      const Transaction& txn = parsed->txn(0);
      std::vector<Operation> ops;
      for (int i = 0; i + 1 < txn.num_ops(); ++i) {
        Operation op = txn.op(i);
        op.object = allocator.InternObject(parsed->ObjectName(op.object));
        ops.push_back(op);
      }
      StatusOr<TxnId> added =
          allocator.AddTransaction(txn.name(), std::move(ops));
      if (!added.ok()) {
        err << "error: " << added.status().ToString() << "\n";
        continue;
      }
      out << "added " << txn.name() << "; optimal: "
          << allocator.allocation().ToString(allocator.txns()) << "\n";
      refresh_witness();
      continue;
    }
    err << "error: unknown shell command '" << trimmed << "'\n";
  }
  return 0;
}

// Long-running telemetry server; see cli/serve.h for the subsystem.
int CmdServe(const Flags& flags, std::ostream& out, std::ostream& err) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  StatusOr<Allocation> alloc = LoadAllocation(flags, *txns);
  if (!alloc.ok()) return Fail(err, alloc.status());

  ServeParams params;
  params.txns = std::move(*txns);
  params.alloc = std::move(*alloc);
  params.host = flags.Has("host") ? flags.Get("host") : params.host;
  params.port_file = flags.Get("port-file");

  StatusOr<int> port = IntFlag(flags, "port", 0, 0, 65535);
  if (!port.ok()) return Fail(err, port.status());
  params.port = *port;
  StatusOr<int> witness_interval =
      IntFlag(flags, "witness-interval", 30, 1,
              std::numeric_limits<int>::max());
  if (!witness_interval.ok()) return Fail(err, witness_interval.status());
  params.witness_interval_s = *witness_interval;
  StatusOr<int> duration =
      IntFlag(flags, "duration", 0, 0, std::numeric_limits<int>::max());
  if (!duration.ok()) return Fail(err, duration.status());
  params.duration_s = *duration;
  StatusOr<int> window = IntFlag(flags, "window", 60, 1, 3600);
  if (!window.ok()) return Fail(err, window.status());
  params.window_s = static_cast<uint32_t>(*window);
  StatusOr<int> concurrency =
      IntFlag(flags, "concurrency", 4, 1, std::numeric_limits<int>::max());
  if (!concurrency.ok()) return Fail(err, concurrency.status());
  params.concurrency = *concurrency;
  StatusOr<uint64_t> seed = Uint64Flag(flags, "seed", 0);
  if (!seed.ok()) return Fail(err, seed.status());
  params.seed = *seed;
  StatusOr<int> threads = IntFlag(flags, "threads", 1);
  if (!threads.ok()) return Fail(err, threads.status());
  params.threads = *threads;
  StatusOr<int> engine_threads =
      IntFlag(flags, "engine-threads", 1, 1, 256);
  if (!engine_threads.ok()) return Fail(err, engine_threads.status());
  params.engine_threads = *engine_threads;
  StatusOr<int> engine_shards =
      IntFlag(flags, "engine-shards", 0, 1, 1 << 16);
  if (!engine_shards.ok()) return Fail(err, engine_shards.status());
  params.engine_shards = static_cast<size_t>(*engine_shards);

  params.adapt = flags.Has("adapt");
  StatusOr<int> adapt_interval =
      IntFlag(flags, "adapt-interval", 30, 1,
              std::numeric_limits<int>::max());
  if (!adapt_interval.ok()) return Fail(err, adapt_interval.status());
  params.adapt_interval_s = *adapt_interval;
  StatusOr<int> adapt_budget =
      IntFlag(flags, "adapt-budget", 0, 0, 1 << 20);
  if (!adapt_budget.ok()) return Fail(err, adapt_budget.status());
  params.adapt_budget = *adapt_budget;

  StatusOr<uint64_t> trace_sample = Uint64Flag(flags, "trace-sample", 0);
  if (!trace_sample.ok()) return Fail(err, trace_sample.status());
  if (flags.Has("trace-sample") && *trace_sample == 0) {
    return Fail(err,
                Status::InvalidArgument("--trace-sample must be >= 1"));
  }
  params.trace_sample = *trace_sample;
  // serve owns its export files: they are written once on clean shutdown
  // (with the sampled txn spans merged into the trace), not by the
  // end-of-command exporter in RunCli.
  params.stats_json = flags.Get("stats-json");
  params.trace_out = flags.Get("trace-out");

  // serve also owns the profiler lifecycle (started with the server,
  // exported on clean shutdown); --profile-out alone implies the default
  // sampling rate, mirroring the non-serve commands.
  StatusOr<int> profile_hz = IntFlag(flags, "profile-hz", 0, 0, 1000);
  if (!profile_hz.ok()) return Fail(err, profile_hz.status());
  params.profile_hz = *profile_hz;
  params.profile_out = flags.Get("profile-out");
  if (params.profile_hz == 0 && !params.profile_out.empty()) {
    params.profile_hz = ProfilerOptions().hz;
  }

  return RunServe(std::move(params), out, err);
}

int CmdCrossCheck(const Flags& flags, std::ostream& out, std::ostream& err) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  StatusOr<Allocation> alloc = LoadAllocation(flags, *txns);
  if (!alloc.ok()) return Fail(err, alloc.status());

  RobustnessResult algorithm = CheckRobustness(*txns, *alloc);
  out << "Algorithm 1 (PTIME):       "
      << (algorithm.robust ? "robust" : "not robust") << "\n";

  std::optional<CounterexampleChain> split =
      EnumerateSplitSchedules(*txns, *alloc);
  out << "Definition 3.1 enumeration: "
      << (split.has_value() ? "counterexample found" : "no split schedule")
      << "\n";

  StatusOr<BruteForceResult> brute = BruteForceRobustness(*txns, *alloc);
  if (brute.ok()) {
    out << "Brute-force oracle:        "
        << (brute->robust ? "robust" : "not robust") << " ("
        << brute->interleavings_checked << " interleavings)\n";
  } else {
    out << "Brute-force oracle:        skipped (" << brute.status().message()
        << ")\n";
  }

  bool agree = algorithm.robust == !split.has_value() &&
               (!brute.ok() || brute->robust == algorithm.robust);
  if (!algorithm.robust) {
    Status verified =
        VerifyCounterexample(*txns, *alloc, *algorithm.counterexample);
    out << "Witness verification:      "
        << (verified.ok() ? "allowed & non-serializable" : "FAILED") << "\n";
    agree = agree && verified.ok();
  }
  out << (agree ? "ALL CHECKS AGREE" : "DISAGREEMENT — please report a bug")
      << "\n";
  return agree ? 0 : 2;
}

// Witness-guided read promotion (docs/promotion.md): search for a small
// set of SELECT ... FOR UPDATE promotions under which Algorithm 2 returns
// a strictly cheaper allocation — or, with --target, under which a fixed
// allocation becomes robust.
int CmdPromote(const Flags& flags, std::ostream& out, std::ostream& err,
               MetricsRegistry* metrics) {
  StatusOr<TransactionSet> txns = LoadTxns(flags);
  if (!txns.ok()) return Fail(err, txns.status());
  StatusOr<CheckOptions> check = LoadCheckOptions(flags, metrics);
  if (!check.ok()) return Fail(err, check.status());
  PromoteOptions options;
  options.check = *check;
  StatusOr<int> budget = IntFlag(flags, "budget", options.max_promotions, 0,
                                 std::numeric_limits<int>::max());
  if (!budget.ok()) return Fail(err, budget.status());
  options.max_promotions = *budget;
  StatusOr<int> weight_si =
      IntFlag(flags, "weight-si", options.weight_si, 0, 1 << 20);
  if (!weight_si.ok()) return Fail(err, weight_si.status());
  options.weight_si = *weight_si;
  StatusOr<int> weight_ssi =
      IntFlag(flags, "weight-ssi", options.weight_ssi, 0, 1 << 20);
  if (!weight_ssi.ok()) return Fail(err, weight_ssi.status());
  options.weight_ssi = *weight_ssi;

  StatusOr<PromotionPlan> plan = [&]() -> StatusOr<PromotionPlan> {
    if (!flags.Has("target")) return OptimizePromotions(*txns, options);
    // Target mode: "T1=RC T2=SI" with --default (RC here) for the rest,
    // or a bare level name for a uniform target.
    const std::string spec = flags.Get("target");
    StatusOr<IsolationLevel> uniform = ParseIsolationLevel(spec);
    if (uniform.ok()) {
      return PromoteForTarget(*txns, Allocation(txns->size(), *uniform),
                              options);
    }
    IsolationLevel fallback = IsolationLevel::kRC;
    if (flags.Has("default")) {
      StatusOr<IsolationLevel> parsed =
          ParseIsolationLevel(flags.Get("default"));
      if (!parsed.ok()) return parsed.status();
      fallback = *parsed;
    }
    StatusOr<Allocation> target = ParseAllocation(*txns, spec, fallback);
    if (!target.ok()) return target.status();
    return PromoteForTarget(*txns, *target, options);
  }();
  if (!plan.ok()) return Fail(err, plan.status());

  // Optional certification, run before emission so the JSON document can
  // carry the verdict: the promoted workload must round-trip through the
  // engine + formal machinery without a single disagreement, and the
  // promoted allocation being robust means zero anomalous runs.
  std::optional<RoundTripReport> validation;
  StatusOr<int> validate_runs =
      IntFlag(flags, "validate-runs", 0, 0, std::numeric_limits<int>::max());
  if (!validate_runs.ok()) return Fail(err, validate_runs.status());
  if (*validate_runs > 0) {
    StatusOr<int> concurrency =
        IntFlag(flags, "concurrency", 4, 1, std::numeric_limits<int>::max());
    if (!concurrency.ok()) return Fail(err, concurrency.status());
    StatusOr<uint64_t> seed = Uint64Flag(flags, "seed", 0);
    if (!seed.ok()) return Fail(err, seed.status());
    RoundTripOptions rt;
    rt.runs = *validate_runs;
    rt.concurrency = *concurrency;
    rt.seed = *seed;
    rt.check = *check;
    rt.metrics = metrics;
    StatusOr<RoundTripReport> report =
        ValidateEngineRuns(plan->promoted, plan->after_allocation, rt);
    if (!report.ok()) return Fail(err, report.status());
    validation = *std::move(report);
  }
  std::string validation_json;
  if (validation.has_value()) {
    JsonWriter json;
    json.BeginObject();
    json.Key("runs");
    json.Uint(validation->runs);
    json.Key("certified");
    json.Uint(validation->certified);
    json.Key("disagreements");
    json.Uint(validation->disagreements);
    json.Key("serializable_runs");
    json.Uint(validation->serializable_runs);
    json.Key("anomalous_runs");
    json.Uint(validation->anomalous_runs);
    json.Key("skipped_unexportable");
    json.Uint(validation->skipped_unexportable);
    json.Key("allocation_robust");
    json.Bool(validation->allocation_robust);
    json.EndObject();
    validation_json = json.str();
  }

  if (flags.Has("json")) {
    out << PromotionPlanJson(*txns, *plan, options, validation_json) << "\n";
  } else {
    out << PromotionPlanToString(*txns, *plan);
    if (validation.has_value()) {
      out << "\nvalidation of the promoted workload under the after "
             "allocation:\n"
          << validation->ToString();
    }
  }
  if (flags.Has("promotion-json")) {
    Status emitted = EmitArtifact(
        flags.Get("promotion-json"),
        PromotionPlanJson(*txns, *plan, options, validation_json), out);
    if (!emitted.ok()) return Fail(err, emitted);
  }
  if (validation.has_value() && validation->disagreements != 0) return 2;
  return 0;
}

int Dispatch(const std::string& command, const Flags& flags, std::istream& in,
             std::ostream& out, std::ostream& err, MetricsRegistry* metrics,
             TxnTracer* tracer) {
  if (command == "check") return CmdCheck(flags, out, err, metrics);
  if (command == "allocate") return CmdAllocate(flags, out, err, metrics);
  if (command == "explore") return CmdExplore(flags, out, err);
  if (command == "census") return CmdCensus(flags, out, err);
  if (command == "templates") return CmdTemplates(flags, out, err);
  if (command == "report") return CmdReport(flags, out, err, metrics);
  if (command == "crosscheck") return CmdCrossCheck(flags, out, err);
  if (command == "simulate") {
    return CmdSimulate(flags, out, err, metrics, tracer);
  }
  if (command == "validate") return CmdValidate(flags, out, err, metrics);
  if (command == "shell") return CmdShell(flags, in, out, err, metrics);
  if (command == "promote") return CmdPromote(flags, out, err, metrics);
  if (command == "serve") return CmdServe(flags, out, err);
  err << "error: unknown command '" << command << "'\n" << kUsage;
  return 1;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  return RunCli(args, std::cin, out, err);
}

int RunCli(const std::vector<std::string>& args, std::istream& in,
           std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 1 : 0;
  }
  if (args[0] == "version" || args[0] == "--version") {
    out << BuildInfoText();
    return 0;
  }
  // Register the invoking thread for the profiler/watchdog/crash stack
  // machinery and arm the crash flight recorder: any fatal signal from
  // here on writes mvrob.crash.<pid>.txt next to the working directory.
  ProfiledThreadScope main_scope("main");
  InstallCrashRecorder(CrashRecorderOptions{});
  StatusOr<Flags> flags = ParseFlags(args, 1);
  if (!flags.ok()) return Fail(err, flags.status());

  // --log-level overrides MVROB_LOG_LEVEL for this invocation.
  if (flags->Has("log-level")) {
    StatusOr<LogLevel> level = ParseLogLevel(flags->Get("log-level"));
    if (!level.ok()) {
      return Fail(err, Status::InvalidArgument(StrCat(
                           "--log-level: ", level.status().message())));
    }
    GlobalLogger().set_min_level(*level);
  }

  const std::string& command = args[0];

  // --stats-json / --trace-out turn on metrics collection for the whole
  // command; without them no registry exists and every instrumentation
  // site stays disabled (null sink). serve owns its own registry and
  // export files (written on clean shutdown, with sampled txn spans
  // merged into the trace) — an outer registry here would clobber them
  // with a near-empty snapshot after RunServe returns.
  const bool serve_owns_exports = command == "serve";
  std::optional<MetricsRegistry> registry;
  MetricsRegistry* metrics = nullptr;
  if (!serve_owns_exports &&
      (flags->Has("stats-json") || flags->Has("trace-out"))) {
    registry.emplace();
    metrics = &*registry;
  }

  // --trace-sample attaches a txn tracer to the simulate engines; serve
  // builds its own from ServeParams::trace_sample.
  std::optional<TxnTracer> tracer;
  if (!serve_owns_exports && flags->Has("trace-sample")) {
    StatusOr<uint64_t> trace_sample = Uint64Flag(*flags, "trace-sample", 0);
    if (!trace_sample.ok()) return Fail(err, trace_sample.status());
    if (*trace_sample == 0) {
      return Fail(err,
                  Status::InvalidArgument("--trace-sample must be >= 1"));
    }
    TxnTracerOptions tracer_options;
    tracer_options.sample_every_n = *trace_sample;
    tracer_options.metrics = metrics;
    tracer.emplace(tracer_options);
  }
  TxnTracer* tracer_ptr = tracer.has_value() ? &*tracer : nullptr;

  // --metrics-interval rewrites the export files on a cadence while the
  // command runs (e.g. a long report), so progress can be tailed.
  std::optional<PeriodicMetricsExporter> exporter;
  if (flags->Has("metrics-interval")) {
    StatusOr<int> interval = IntFlag(*flags, "metrics-interval", 0, 1,
                                     std::numeric_limits<int>::max());
    if (!interval.ok()) return Fail(err, interval.status());
    if (metrics == nullptr) {
      return Fail(err, Status::InvalidArgument(
                           "--metrics-interval requires --stats-json or "
                           "--trace-out (and is not supported with "
                           "serve, which exports on shutdown)"));
    }
    exporter.emplace(*registry, flags->Get("stats-json"),
                     flags->Get("trace-out"),
                     std::chrono::seconds(*interval));
  }

  // --profile-hz / --profile-out: sample the whole command (serve starts
  // its own profiler with the server instead). --profile-out alone
  // implies the default rate.
  StatusOr<int> profile_hz = IntFlag(*flags, "profile-hz", 0, 0, 1000);
  if (!profile_hz.ok()) return Fail(err, profile_hz.status());
  const std::string profile_out = flags->Get("profile-out");
  int effective_hz = *profile_hz;
  if (effective_hz == 0 && !profile_out.empty()) {
    effective_hz = ProfilerOptions().hz;
  }
  bool profiling = false;
  if (!serve_owns_exports && effective_hz > 0) {
    ProfilerOptions profile_options;
    profile_options.hz = effective_hz;
    profile_options.metrics = metrics;
    Status started = Profiler::Start(profile_options);
    if (!started.ok()) return Fail(err, started);
    profiling = true;
  }

  int code;
  {
    // Top-level span covering the entire command.
    PhaseTimer timer(metrics, StrCat("cli.", command));
    code = Dispatch(command, *flags, in, out, err, metrics, tracer_ptr);
  }
  if (profiling) {
    Profiler::Stop();
    if (!profile_out.empty()) {
      Status written = WriteTextFile(
          profile_out, Profiler::RenderFolded(Profiler::CountsSnapshot()));
      if (!written.ok()) return Fail(err, written);
    }
  }
  exporter.reset();  // Stop periodic writes before the final snapshot.
  if (registry.has_value()) {
    Status written =
        ExportMetricsFiles(*registry, flags->Get("stats-json"),
                           flags->Get("trace-out"), tracer_ptr);
    if (!written.ok()) return Fail(err, written);
  }
  return code;
}

}  // namespace mvrob
