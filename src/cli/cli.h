#ifndef MVROB_CLI_CLI_H_
#define MVROB_CLI_CLI_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace mvrob {

/// Entry point of the `mvrob` command-line tool, exposed as a library so
/// tests can drive it. `args` excludes the program name. Returns the
/// process exit code (0 = success; robustness verdicts are output, not
/// exit codes).
///
/// Commands:
///   check    --txns <text|@file> [--alloc <spec>] [--default <level>]
///   allocate --txns <text|@file> [--rcsi] [--explain]
///   explore  --txns <text|@file> --schedule <text> [--alloc <spec>]
///            [--default <level>] [--dot] [--timeline]
///   census   --txns <text|@file> [--alloc <spec>] [--default <level>]
///            [--max <interleavings>]
///   templates --templates <text|@file>
///   help
///
/// `--txns`/`--templates` accept the inline DSL or `@path` to read a file;
/// `--alloc` uses "T1=RC T2=SI" syntax with `--default` (SI if omitted)
/// for unmentioned transactions.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

/// Variant supplying the input stream used by the interactive `shell`
/// command (the two-stream overload connects it to std::cin).
int RunCli(const std::vector<std::string>& args, std::istream& in,
           std::ostream& out, std::ostream& err);

}  // namespace mvrob

#endif  // MVROB_CLI_CLI_H_
